//! Workspace façade re-exports.
pub use scavenger::*;
