//! `psgc` — the command-line front end.
//!
//! Run `psgc --help` for the command and flag reference. Both the parser
//! and the help text are driven by one flag table ([`flag_specs`]), and
//! the collector/backend/growth alternatives come from the library's
//! `FromStr`/`Display` implementations, so the CLI cannot drift from what
//! the API accepts.
//!
//! Exit codes are distinct per failure class:
//!
//! | code | meaning |
//! |---|---|
//! | 0 | success |
//! | 1 | runtime failure (stuck machine, out of fuel, out of memory, I/O) |
//! | 2 | command-line usage error |
//! | 3 | compile/typecheck/certification failure |
//! | 4 | heap invariant violation caught by `--verify-every` |

use std::process::ExitCode;

use scavenger::gc_lang::faults::FaultPlan;
use scavenger::gc_lang::memory::GrowthPolicy;
use scavenger::telemetry::{Recorder, SharedObserver};
use scavenger::{AuditMode, Backend, Collector, PipelineError, RunOptions};

const EXIT_RUNTIME: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_COMPILE: u8 = 3;
const EXIT_INVARIANT: u8 = 4;

/// `(name, argument placeholder, description)` for each command.
const COMMANDS: &[(&str, &str, &str)] = &[
    ("run", "FILE", "compile, certify, and run a program"),
    ("check", "FILE", "compile and certify, but do not run"),
    ("certify", "", "print and typecheck the collector itself"),
    ("eval", "FILE", "run the reference source evaluator only"),
    (
        "disasm",
        "FILE",
        "compile and print the bytecode instruction stream",
    ),
];

/// Everything the flags configure: the library's [`RunOptions`] plus the
/// CLI-only output switches.
#[derive(Default)]
struct Cli {
    opts: RunOptions,
    stats: bool,
    stats_intern: bool,
    stats_pages: bool,
    metrics: bool,
    trace: Option<String>,
    dump_bytecode: bool,
}

/// One flag: its name, value placeholder (`None` for boolean flags), help
/// line, and effect. The parser and the generated help both walk this
/// table.
struct FlagSpec {
    name: &'static str,
    metavar: Option<fn() -> String>,
    help: &'static str,
    apply: fn(&mut Cli, &str) -> Result<(), String>,
}

/// `a|b|c` over anything displayable.
fn alts<T: std::fmt::Display>(items: impl IntoIterator<Item = T>) -> String {
    items
        .into_iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join("|")
}

fn parse_number<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("invalid value {v:?} for {flag} (expected a number)"))
}

fn flag_specs() -> [FlagSpec; 19] {
    [
        FlagSpec {
            name: "--collector",
            metavar: Some(|| alts(Collector::ALL)),
            help: "certified collector to link (default basic)",
            apply: |c, v| {
                c.opts.collector = v.parse()?;
                Ok(())
            },
        },
        FlagSpec {
            name: "--backend",
            metavar: Some(|| alts(Backend::ALL)),
            help: "interpreter backend (default env; subst with --track-types)",
            apply: |c, v| {
                c.opts.backend = Some(v.parse()?);
                Ok(())
            },
        },
        FlagSpec {
            name: "--budget",
            metavar: Some(|| "WORDS".into()),
            help: "base region budget in words (default 256)",
            apply: |c, v| {
                c.opts.budget = parse_number(v, "--budget")?;
                Ok(())
            },
        },
        FlagSpec {
            name: "--growth",
            metavar: Some(|| alts([GrowthPolicy::Fixed, GrowthPolicy::Adaptive])),
            help: "region budget growth policy (default adaptive)",
            apply: |c, v| {
                c.opts.growth = v.parse()?;
                Ok(())
            },
        },
        FlagSpec {
            name: "--fuel",
            metavar: Some(|| "STEPS".into()),
            help: "step limit for the run (default 1000000000)",
            apply: |c, v| {
                c.opts.fuel = parse_number(v, "--fuel")?;
                Ok(())
            },
        },
        FlagSpec {
            name: "--track-types",
            metavar: None,
            help: "maintain the memory typing Ψ while running (slower)",
            apply: |c, _| {
                c.opts.track_types = true;
                Ok(())
            },
        },
        FlagSpec {
            name: "--verify-every",
            metavar: Some(|| "STEPS".into()),
            help: "audit the heap invariants every STEPS machine steps",
            apply: |c, v| {
                c.opts.verify_every = parse_number(v, "--verify-every")?;
                Ok(())
            },
        },
        FlagSpec {
            name: "--audit",
            metavar: Some(|| alts([AuditMode::Incremental, AuditMode::Full])),
            help: "audit strategy for --verify-every (default incremental)",
            apply: |c, v| {
                c.opts.audit = v.parse()?;
                Ok(())
            },
        },
        FlagSpec {
            name: "--inject",
            metavar: Some(|| "KIND@STEP[:SEED]".into()),
            help: "inject a deterministic heap fault (e.g. flip-tag@100:7)",
            apply: |c, v| {
                c.opts.inject = Some(v.parse::<FaultPlan>()?);
                Ok(())
            },
        },
        FlagSpec {
            name: "--max-heap-words",
            metavar: Some(|| "WORDS".into()),
            help: "fail with a typed out-of-memory error past this many live words",
            apply: |c, v| {
                c.opts.max_heap_words = Some(parse_number(v, "--max-heap-words")?);
                Ok(())
            },
        },
        FlagSpec {
            name: "--page-words",
            metavar: Some(|| "WORDS".into()),
            help: "page size of the BiBOP store in words (default 512, rounded to a power of two)",
            apply: |c, v| {
                c.opts.page_words = parse_number(v, "--page-words")?;
                Ok(())
            },
        },
        FlagSpec {
            name: "--dump-bytecode",
            metavar: None,
            help: "print the compiled bytecode instruction stream before running",
            apply: |c, _| {
                c.dump_bytecode = true;
                Ok(())
            },
        },
        FlagSpec {
            name: "--no-superinstructions",
            metavar: None,
            help: "disable superinstruction fusion in the bytecode backend (A/B knob)",
            apply: |c, _| {
                c.opts.superinstructions = false;
                Ok(())
            },
        },
        FlagSpec {
            name: "--trace",
            metavar: Some(|| "FILE".into()),
            help: "write a JSON-lines GC event trace to FILE",
            apply: |c, v| {
                c.trace = Some(v.to_string());
                Ok(())
            },
        },
        FlagSpec {
            name: "--metrics",
            metavar: None,
            help: "print aggregated GC metrics and histograms after the run",
            apply: |c, _| {
                c.metrics = true;
                Ok(())
            },
        },
        FlagSpec {
            name: "--sample",
            metavar: Some(|| "STEPS".into()),
            help: "emit a heap sample event every STEPS machine steps",
            apply: |c, v| {
                c.opts.step_interval = parse_number(v, "--sample")?;
                Ok(())
            },
        },
        FlagSpec {
            name: "--stats",
            metavar: None,
            help: "print machine statistics after the run",
            apply: |c, _| {
                c.stats = true;
                Ok(())
            },
        },
        FlagSpec {
            name: "--stats-intern",
            metavar: None,
            help: "print tag/type/term/value interner occupancy, memo sizes, and skip counts",
            apply: |c, _| {
                c.stats_intern = true;
                Ok(())
            },
        },
        FlagSpec {
            name: "--stats-pages",
            metavar: None,
            help: "print BiBOP page-store statistics after the run",
            apply: |c, _| {
                c.stats_pages = true;
                Ok(())
            },
        },
    ]
}

/// Prints the interner/memo report (`--stats-intern`) to stderr.
fn print_intern_stats() {
    eprintln!("intern:");
    eprintln!("{}", scavenger::gc_lang::intern::stats());
}

/// The help text, generated from [`COMMANDS`] and [`flag_specs`].
fn usage() -> String {
    let mut s = String::from("usage: psgc <command> [FILE] [flags]\n\ncommands:\n");
    for (name, arg, help) in COMMANDS {
        let head = if arg.is_empty() {
            (*name).to_string()
        } else {
            format!("{name} {arg}")
        };
        s.push_str(&format!("  {head:<14} {help}\n"));
    }
    s.push_str("\nflags:\n");
    for f in flag_specs() {
        let head = match f.metavar {
            Some(m) => format!("{} {}", f.name, m()),
            None => f.name.to_string(),
        };
        s.push_str(&format!("  {head:<38} {}\n", f.help));
    }
    s
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("psgc: {msg}");
    eprint!("{}", usage());
    ExitCode::from(EXIT_USAGE)
}

/// Sorts a pipeline error into the compile or runtime exit class.
fn pipeline_exit(e: &PipelineError) -> u8 {
    match e {
        PipelineError::Runtime(_) | PipelineError::OutOfFuel => EXIT_RUNTIME,
        PipelineError::InvariantViolation(_) => EXIT_INVARIANT,
        _ => EXIT_COMPILE,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => return usage_error("missing command"),
        Some("--help" | "-h" | "help") => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Some(cmd) if !COMMANDS.iter().any(|(n, ..)| *n == cmd) => {
            return usage_error(&format!("unknown command {cmd:?}"));
        }
        Some(_) => {}
    }
    let cmd = args[0].as_str();

    let mut cli = Cli::default();
    let mut file: Option<&str> = None;
    let specs = flag_specs();
    let mut i = 1;
    while i < args.len() {
        let arg = args[i].as_str();
        if let "--help" | "-h" = arg {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        if let Some(spec) = specs.iter().find(|s| s.name == arg) {
            let value = if spec.metavar.is_some() {
                i += 1;
                match args.get(i) {
                    Some(v) => v.as_str(),
                    None => return usage_error(&format!("{} needs a value", spec.name)),
                }
            } else {
                ""
            };
            if let Err(e) = (spec.apply)(&mut cli, value) {
                return usage_error(&e);
            }
        } else if !arg.starts_with('-') && file.is_none() {
            file = Some(arg);
        } else {
            return usage_error(&format!("unexpected argument {arg:?}"));
        }
        i += 1;
    }

    match cmd {
        "certify" => cmd_certify(&cli),
        "eval" => match read_source(file) {
            Ok(src) => cmd_eval(&cli, &src),
            Err(code) => code,
        },
        "check" | "run" => match read_source(file) {
            Ok(src) => cmd_run(&mut cli, &src, cmd == "check"),
            Err(code) => code,
        },
        "disasm" => match read_source(file) {
            Ok(src) => cmd_disasm(&cli, &src),
            Err(code) => code,
        },
        _ => unreachable!("command validated above"),
    }
}

fn read_source(file: Option<&str>) -> Result<String, ExitCode> {
    let Some(path) = file else {
        return Err(usage_error("this command needs a FILE argument"));
    };
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("psgc: cannot read {path}: {e}");
        ExitCode::from(EXIT_RUNTIME)
    })
}

fn cmd_certify(cli: &Cli) -> ExitCode {
    let image = cli.opts.collector.image();
    for def in &image.code {
        println!("{}\n", scavenger::gc_lang::pretty::code_def_to_string(def));
    }
    let dialect = match cli.opts.collector {
        Collector::Basic => scavenger::gc_lang::syntax::Dialect::Basic,
        Collector::Forwarding => scavenger::gc_lang::syntax::Dialect::Forwarding,
        Collector::Generational => scavenger::gc_lang::syntax::Dialect::Generational,
    };
    let program = scavenger::gc_lang::machine::Program {
        dialect,
        code: image.code,
        main: scavenger::gc_lang::syntax::Term::Halt(scavenger::gc_lang::syntax::Value::Int(0)),
    };
    let code = match scavenger::gc_lang::tyck::Checker::check_program(&program) {
        Ok(()) => {
            println!("✓ {} collector certified", cli.opts.collector);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("✗ rejected: {e}");
            ExitCode::from(EXIT_COMPILE)
        }
    };
    if cli.stats_intern {
        print_intern_stats();
    }
    code
}

fn cmd_eval(cli: &Cli, src: &str) -> ExitCode {
    let p = match scavenger::lambda::parse::parse_program(src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("psgc: {e}");
            return ExitCode::from(EXIT_COMPILE);
        }
    };
    if let Err(e) = scavenger::lambda::typecheck::check_program(&p) {
        eprintln!("psgc: {e}");
        return ExitCode::from(EXIT_COMPILE);
    }
    match scavenger::lambda::eval::run_program(&p, cli.opts.fuel) {
        Ok(n) => {
            println!("{n}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("psgc: {e}");
            ExitCode::from(EXIT_RUNTIME)
        }
    }
}

fn cmd_disasm(cli: &Cli, src: &str) -> ExitCode {
    let compiled = match cli.opts.compile(src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("psgc: {e}");
            return ExitCode::from(pipeline_exit(&e));
        }
    };
    print!(
        "{}",
        scavenger::gc_lang::bytecode::disassemble(&compiled.program, cli.opts.superinstructions)
    );
    if cli.stats_intern {
        print_intern_stats();
    }
    ExitCode::SUCCESS
}

fn cmd_run(cli: &mut Cli, src: &str, check_only: bool) -> ExitCode {
    // A recorder is only attached when some output wants it; a full event
    // log only when a trace file will be written.
    let recorder = if cli.trace.is_some() || cli.metrics {
        let rec = if cli.trace.is_some() {
            Recorder::new()
        } else {
            Recorder::metrics_only()
        };
        let shared = rec.with_meta(cli.opts.meta()).into_shared();
        let obs: SharedObserver = shared.clone();
        cli.opts.observer = Some(obs);
        Some(shared)
    } else {
        None
    };

    let compiled = match cli.opts.compile(src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("psgc: {e}");
            return ExitCode::from(pipeline_exit(&e));
        }
    };
    if let Err(e) = compiled.typecheck() {
        eprintln!("psgc: certification failed: {e}");
        return ExitCode::from(EXIT_COMPILE);
    }
    if cli.dump_bytecode {
        print!(
            "{}",
            scavenger::gc_lang::bytecode::disassemble(
                &compiled.program,
                cli.opts.superinstructions
            )
        );
    }
    if check_only {
        println!("✓ certified ({} collector)", cli.opts.collector);
        if cli.stats_intern {
            print_intern_stats();
        }
        return ExitCode::SUCCESS;
    }

    let outcome = compiled.run_with(&cli.opts);

    // Flush telemetry even on failed runs: a trace ending in
    // `fuel_exhausted` is exactly what one wants to look at.
    let mut code = ExitCode::SUCCESS;
    if let Some(rec) = &recorder {
        let rec = rec.borrow();
        if let Some(path) = &cli.trace {
            if let Err(e) = std::fs::write(path, rec.to_jsonl()) {
                eprintln!("psgc: cannot write {path}: {e}");
                code = ExitCode::from(EXIT_RUNTIME);
            }
        }
        if cli.metrics {
            eprint!("{}", rec.metrics);
        }
    }

    match outcome {
        Ok(run) => {
            println!("{}", run.result);
            if cli.stats {
                let s = &run.stats;
                eprintln!("backend:          {}", compiled.backend());
                eprintln!(
                    "allocations:      {} ({} words)",
                    s.allocations, s.words_allocated
                );
                eprintln!("steps:            {}", s.steps);
                eprintln!("collections:      {}", s.collections);
                eprintln!("words reclaimed:  {}", s.words_reclaimed);
                eprintln!("peak live words:  {}", s.peak_data_words);
            }
            if cli.stats_pages {
                let p = &run.pages;
                eprintln!("page words:       {}", p.page_words);
                eprintln!(
                    "pages:            {} allocated, {} freed, {} live (peak {})",
                    p.allocated, p.freed, p.live, p.peak_live
                );
                eprintln!("reserved words:   {}", p.reserved_words);
                eprintln!("live data words:  {}", p.live_data_words);
            }
            if cli.stats_intern {
                print_intern_stats();
            }
            code
        }
        Err(e) => {
            eprintln!("psgc: {e}");
            ExitCode::from(pipeline_exit(&e))
        }
    }
}
