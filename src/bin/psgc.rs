//! `psgc` — the command-line front end.
//!
//! ```text
//! psgc run <file.lam> [--collector basic|forwarding|generational]
//!                     [--backend subst|env]
//!                     [--budget WORDS] [--fuel STEPS] [--stats]
//! psgc check <file.lam> [--collector …]    # compile + certify, no run
//! psgc certify [--collector …]             # print + typecheck the collector
//! psgc eval <file.lam>                     # reference evaluator only
//! ```

use std::process::ExitCode;

use scavenger::{Backend, Collector, Pipeline};

fn parse_collector(s: &str) -> Option<Collector> {
    match s {
        "basic" => Some(Collector::Basic),
        "forwarding" => Some(Collector::Forwarding),
        "generational" => Some(Collector::Generational),
        _ => None,
    }
}

struct Opts {
    collector: Collector,
    backend: Option<Backend>,
    budget: usize,
    fuel: u64,
    stats: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: psgc <run|check|certify|eval> [file] \
         [--collector basic|forwarding|generational] [--backend subst|env] \
         [--budget WORDS] [--fuel STEPS] [--stats]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let mut file: Option<&str> = None;
    let mut opts = Opts {
        collector: Collector::Basic,
        backend: None,
        budget: 256,
        fuel: 1_000_000_000,
        stats: false,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--collector" => {
                i += 1;
                match args.get(i).map(String::as_str).and_then(parse_collector) {
                    Some(c) => opts.collector = c,
                    None => return usage(),
                }
            }
            "--backend" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(b) => opts.backend = Some(b),
                    None => return usage(),
                }
            }
            "--budget" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(b) => opts.budget = b,
                    None => return usage(),
                }
            }
            "--fuel" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(f) => opts.fuel = f,
                    None => return usage(),
                }
            }
            "--stats" => opts.stats = true,
            other if !other.starts_with('-') && file.is_none() => file = Some(other),
            _ => return usage(),
        }
        i += 1;
    }

    let read = |path: Option<&str>| -> Result<String, ExitCode> {
        let Some(path) = path else {
            return Err(usage());
        };
        std::fs::read_to_string(path).map_err(|e| {
            eprintln!("psgc: cannot read {path}: {e}");
            ExitCode::FAILURE
        })
    };

    match cmd.as_str() {
        "certify" => {
            let image = opts.collector.image();
            for def in &image.code {
                println!("{}\n", scavenger::gc_lang::pretty::code_def_to_string(def));
            }
            let dialect = match opts.collector {
                Collector::Basic => scavenger::gc_lang::syntax::Dialect::Basic,
                Collector::Forwarding => scavenger::gc_lang::syntax::Dialect::Forwarding,
                Collector::Generational => scavenger::gc_lang::syntax::Dialect::Generational,
            };
            let program = scavenger::gc_lang::machine::Program {
                dialect,
                code: image.code,
                main: scavenger::gc_lang::syntax::Term::Halt(
                    scavenger::gc_lang::syntax::Value::Int(0),
                ),
            };
            match scavenger::gc_lang::tyck::Checker::check_program(&program) {
                Ok(()) => {
                    println!("✓ {} collector certified", opts.collector);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("✗ rejected: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "eval" => {
            let src = match read(file) {
                Ok(s) => s,
                Err(c) => return c,
            };
            let p = match scavenger::lambda::parse::parse_program(&src) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("psgc: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = scavenger::lambda::typecheck::check_program(&p) {
                eprintln!("psgc: {e}");
                return ExitCode::FAILURE;
            }
            match scavenger::lambda::eval::run_program(&p, opts.fuel) {
                Ok(n) => {
                    println!("{n}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("psgc: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "check" | "run" => {
            let src = match read(file) {
                Ok(s) => s,
                Err(c) => return c,
            };
            let mut pipeline = Pipeline::new(opts.collector).region_budget(opts.budget);
            if let Some(backend) = opts.backend {
                pipeline = pipeline.backend(backend);
            }
            let compiled = match pipeline.compile(&src) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("psgc: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if let Err(e) = compiled.typecheck() {
                eprintln!("psgc: certification failed: {e}");
                return ExitCode::FAILURE;
            }
            if cmd == "check" {
                println!("✓ certified ({} collector)", opts.collector);
                return ExitCode::SUCCESS;
            }
            match compiled.run(opts.fuel) {
                Ok(run) => {
                    println!("{}", run.result);
                    if opts.stats {
                        let s = &run.stats;
                        eprintln!("backend:          {}", compiled.backend());
                        eprintln!("steps:            {}", s.steps);
                        eprintln!("allocations:      {} ({} words)", s.allocations, s.words_allocated);
                        eprintln!("collections:      {}", s.collections);
                        eprintln!("words reclaimed:  {}", s.words_reclaimed);
                        eprintln!("peak live words:  {}", s.peak_data_words);
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("psgc: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
