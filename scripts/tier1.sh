#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in one command.
#
#   scripts/tier1.sh
#
# Runs from the repository root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q --workspace
# Certification parallelizes over code blocks by default; exercise the
# serial path too so both sides of the PS_CERT_THREADS split stay green.
PS_CERT_THREADS=1 ./target/release/psgc certify --collector generational >/dev/null
PS_CERT_THREADS=4 ./target/release/psgc certify --collector generational >/dev/null
# The bytecode VM end-to-end: a program that allocates and collects under
# a tight budget, audited against Fig. 7 every 64 steps, plus the
# disassembler over the same source and its golden-file test.
tmp="$(mktemp --suffix=.lam)"
trap 'rm -f "$tmp"' EXIT
printf 'fun build (n : int) : int * int = if0 n then (0, 0) else (let rest = build (n - 1) in (n + fst rest, n))\n fst (build 24)' > "$tmp"
./target/release/psgc run "$tmp" --backend bytecode --verify-every 64 --budget 64 --stats >/dev/null
./target/release/psgc disasm "$tmp" >/dev/null
# The incremental (dirty-page) auditor at full blast: the same program
# audited every step must be byte-identical to the unaudited run — stdout,
# stats, metrics, page counters — on every backend. `cmp` on the whole
# observable output is the gate.
for backend in subst env bytecode; do
  plain="$(./target/release/psgc run "$tmp" --backend "$backend" --budget 64 --stats --stats-pages --metrics 2>&1)"
  audited="$(./target/release/psgc run "$tmp" --backend "$backend" --budget 64 --verify-every 1 --audit incremental --stats --stats-pages --metrics 2>&1)"
  if [ "$plain" != "$audited" ]; then
    echo "tier-1: incremental audit changed observable output on $backend" >&2
    diff <(printf '%s\n' "$plain") <(printf '%s\n' "$audited") >&2 || true
    exit 1
  fi
done
cargo test -q --test disasm_golden
cargo clippy --workspace -- -D warnings
# Panic audit: the language runtime and the collectors must stay free of
# panicking escape hatches outside tests (clippy.toml relaxes the lints
# inside #[cfg(test)]).
cargo clippy -p ps-gc-lang -p ps-collectors -- -D warnings -D clippy::unwrap_used -D clippy::expect_used -D clippy::panic
cargo fmt --check
echo "tier-1: OK"
