#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in one command.
#
#   scripts/tier1.sh
#
# Runs from the repository root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
# Certification parallelizes over code blocks by default; exercise the
# serial path too so both sides of the PS_CERT_THREADS split stay green.
PS_CERT_THREADS=1 ./target/release/psgc certify --collector generational >/dev/null
PS_CERT_THREADS=4 ./target/release/psgc certify --collector generational >/dev/null
cargo clippy --workspace -- -D warnings
# Panic audit: the language runtime and the collectors must stay free of
# panicking escape hatches outside tests (clippy.toml relaxes the lints
# inside #[cfg(test)]).
cargo clippy -p ps-gc-lang -p ps-collectors -- -D warnings -D clippy::unwrap_used -D clippy::expect_used -D clippy::panic
cargo fmt --check
echo "tier-1: OK"
