#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in one command.
#
#   scripts/tier1.sh
#
# Runs from the repository root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
cargo fmt --check
echo "tier-1: OK"
