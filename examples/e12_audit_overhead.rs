//! E12 — heap-auditor overhead: throughput with `--verify-every` disabled
//! versus sparse (every 64 steps) and exhaustive (every step) auditing.
//!
//! The auditor (`gc_lang::verify`) re-derives the Fig. 7 machine-state
//! invariants from the live heap: each audit is a full reachability walk
//! plus per-region word accounting and (under `track_types`) a Ψ
//! conformance sweep, so its cost scales with the live heap and with how
//! often it fires. Disabled is a single integer compare per step. This
//! example times identical compiled programs at `verify_every` ∈
//! {0, 64, 1} and reports the audited/bare slowdown per workload.
//!
//! ```text
//! cargo run --release --example e12_audit_overhead
//! ```

use std::time::Instant;

use scavenger::workloads::{compile_ast, live_dag_churn, live_tree_churn};
use scavenger::{AuditMode, Backend, Collector, Compiled, RunOptions};

/// Times one full run of `c` at the given audit interval. Ψ tracking is on
/// in all configurations so the bare run pays the same bookkeeping and the
/// difference is the audit alone. The audit strategy is pinned to the full
/// walk: E12 has always measured the exhaustive `⊢ M : Ψ` re-derivation,
/// and the incremental dirty-page auditor (now the default; measured by
/// E15) would otherwise replace it silently.
fn timed_run(c: &Compiled, budget: usize, backend: Backend, every: u64) -> (u64, f64) {
    let opts = RunOptions::builder()
        .collector(Collector::Basic) // collector ignored by run_with
        .budget(budget)
        .backend(backend)
        .track_types(true)
        .verify_every(every)
        .audit(AuditMode::Full)
        .build();
    let t0 = Instant::now();
    let run = c.run_with(&opts).expect("runs");
    (run.stats.steps, t0.elapsed().as_secs_f64())
}

/// Best-of-n wall seconds at each audit interval, reps interleaved so all
/// three samples see the same scheduler conditions.
fn best_times(c: &Compiled, budget: usize, backend: Backend, reps: u32) -> (u64, [f64; 3]) {
    let mut best = [f64::INFINITY; 3];
    let mut steps = 0;
    for _ in 0..reps {
        for (i, every) in [0u64, 64, 1].into_iter().enumerate() {
            let (s, secs) = timed_run(c, budget, backend, every);
            if i == 0 {
                steps = s;
            } else {
                assert_eq!(s, steps, "the audit must not change the step count");
            }
            best[i] = best[i].min(secs);
        }
    }
    (steps, best)
}

fn main() {
    println!("E12: heap-auditor overhead, verify-every 0 vs 64 vs 1");
    println!(
        "{:<34} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7}",
        "workload", "steps", "bare ms", "n=64 ms", "n=1 ms", "x(64)", "x(1)"
    );
    // Exhaustive (n=1) auditing costs hundreds of × on the substitution
    // backend — it re-walks the whole substituted program every step — so
    // the workloads here are deliberately small; the *ratios* are what E12
    // records, and they are stable across sizes.
    let cases: Vec<(String, Compiled, usize)> = [3u32, 5]
        .iter()
        .map(|&depth| {
            let budget = (2usize << depth) + 96;
            (
                format!("tree depth {depth} / basic"),
                compile_ast(&live_tree_churn(depth, 15), Collector::Basic, budget),
                budget,
            )
        })
        .chain([4u32].iter().map(|&depth| {
            let budget = (2usize << depth) + 96;
            (
                format!("dag depth {depth} / forwarding"),
                compile_ast(&live_dag_churn(depth, 15), Collector::Forwarding, budget),
                budget,
            )
        }))
        .chain([4u32].iter().map(|&depth| {
            let budget = (2usize << depth) + 96;
            (
                format!("tree depth {depth} / generational"),
                compile_ast(&live_tree_churn(depth, 15), Collector::Generational, budget),
                budget,
            )
        }))
        .collect();
    for backend in Backend::ALL {
        let (mut geo64, mut geo1) = (0.0f64, 0.0f64);
        let mut n = 0u32;
        println!("\nbackend: {backend}");
        for (name, compiled, budget) in &cases {
            let (steps, [bare, sparse, dense]) = best_times(compiled, *budget, backend, 3);
            let (x64, x1) = (sparse / bare, dense / bare);
            geo64 += x64.ln();
            geo1 += x1.ln();
            n += 1;
            println!(
                "{name:<34} {steps:>9} {:>9.2} {:>9.2} {:>9.2} {x64:>7.2} {x1:>7.2}",
                bare * 1e3,
                sparse * 1e3,
                dense * 1e3
            );
        }
        println!(
            "geometric-mean slowdown: {:.2}x at n=64, {:.2}x at n=1",
            (geo64 / f64::from(n)).exp(),
            (geo1 / f64::from(n)).exp()
        );
    }
    println!(
        "\nThe byte-identity of audited and unaudited runs (results, Stats,\n\
         telemetry) is asserted by the battery and backend-agreement suites;\n\
         this example measures only the wall-clock cost."
    );
}
