//! Generational collection (§8): minor collections copy only the young
//! region and stop at references into the old generation.
//!
//! A churning workload runs under the basic and the generational
//! collectors; we print how much each collection copied. Under Fig. 11 the
//! old region is never dropped and survivors promoted to it are never
//! copied again — so per-collection copy work stays flat while the basic
//! collector re-copies the whole live heap every time.
//!
//! ```text
//! cargo run --example generations
//! ```

use scavenger::{Collector, Pipeline, PipelineError};

const SRC: &str = "fun live (n : int) : int * int = if0 n then (0, 0) else \
    (let rest = live (n - 1) in (n + fst rest, n))\n\
    fun churn (k : int) : int = if0 k then 0 else (let junk = (k, (k, k)) in churn (k - 1))\n\
    fun main (n : int) : int = (let keep = live 12 in (let z = churn 120 in fst keep))\n\
    main 0";

fn main() -> Result<(), PipelineError> {
    for collector in [Collector::Basic, Collector::Generational] {
        let compiled = Pipeline::new(collector).region_budget(128).compile(SRC)?;
        compiled.typecheck()?;
        let run = compiled.run(400_000_000)?;
        println!("== {} collector ==", collector);
        println!(
            "result: {}   collections: {}",
            run.result, run.stats.collections
        );
        for (i, ev) in run.stats.reclaim_events.iter().enumerate().take(12) {
            println!(
                "  collection {i:>2}: reclaimed {:>5} words, live (kept) {:>5} words",
                ev.words_reclaimed(),
                ev.kept_words
            );
        }
        if run.stats.reclaim_events.len() > 12 {
            println!("  … {} more", run.stats.reclaim_events.len() - 12);
        }
        println!();
    }
    println!("Note: under the generational collector the old region accumulates");
    println!("promoted survivors and is never copied by a minor collection; the");
    println!("basic collector re-copies the entire live heap every time.");
    Ok(())
}
