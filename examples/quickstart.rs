//! Quickstart: compile an ML-like program down to λGC, certify the whole
//! thing (mutator **and** collector) with the λGC typechecker, and run it
//! through real in-language collections.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use scavenger::{Collector, Pipeline, PipelineError};

const PROGRAM: &str = r#"
-- Sum the squares of 1..n, building a throwaway pair per step so the
-- heap churns and the collector has something to do.
fun sumsq (n : int) : int =
  if0 n then 0 else
  (let p = (n * n, n) in fst p + sumsq (n - 1))

sumsq 50
"#;

fn main() -> Result<(), PipelineError> {
    // A deliberately tiny region budget so `ifgc` fires often.
    let pipeline = Pipeline::new(Collector::Basic).region_budget(128);

    println!("compiling source → CPS → λCLOS → λGC (linked with the Fig. 12 collector)…");
    let compiled = pipeline.compile(PROGRAM)?;

    println!("typechecking the WHOLE λGC program (Definition 6.3)…");
    compiled.typecheck()?;
    println!("  ✓ certified: no trusted collector remains.");

    let run = compiled.run(100_000_000)?;
    let oracle = compiled.reference_result(1_000_000)?;
    println!(
        "result: {} (reference evaluator says {})",
        run.result, oracle
    );
    assert_eq!(run.result, oracle);

    let s = &run.stats;
    println!("machine steps:        {}", s.steps);
    println!("words allocated:      {}", s.words_allocated);
    println!("collections:          {}", s.collections);
    println!("words reclaimed:      {}", s.words_reclaimed);
    println!("peak live heap:       {} words", s.peak_data_words);
    println!("typecase dispatches:  {}", s.typecase_dispatches);
    Ok(())
}
