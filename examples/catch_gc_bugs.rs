//! §2's software-engineering argument, live: inject classic GC bugs into
//! the certified basic collector and watch the λGC typechecker reject each
//! one — bugs that an untyped collector would turn into silent heap
//! corruption.
//!
//! ```text
//! cargo run --example catch_gc_bugs
//! ```

use ps_ir::Symbol;
use scavenger::gc_lang::machine::Program;
use scavenger::gc_lang::subst::Subst;
use scavenger::gc_lang::syntax::{Dialect, Region, Term, Value};
use scavenger::gc_lang::tyck::Checker;
use scavenger::Collector;

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

fn verdict(name: &str, code: Vec<scavenger::gc_lang::syntax::CodeDef>) {
    let program = Program {
        dialect: Dialect::Basic,
        code,
        main: Term::Halt(Value::Int(0)),
    };
    match Checker::check_program(&program) {
        Ok(()) => println!("  {name:<44} ACCEPTED"),
        Err(e) => {
            let msg = e.to_string();
            let first = msg.lines().next().unwrap_or("");
            println!("  {name:<44} REJECTED ({})", &first[..first.len().min(60)]);
        }
    }
}

fn main() {
    println!("certifying collector variants under the λGC typechecker:\n");

    verdict("pristine Fig. 12 collector", Collector::Basic.image().code);

    // Bug 1: allocate the copied pair in FROM-space.
    let mut image = Collector::Basic.image();
    let blk = image
        .code
        .iter_mut()
        .find(|d| d.name == s("copypair2"))
        .unwrap();
    blk.body = Subst::one_rgn(s("r2"), Region::Var(s("r1"))).term(&blk.body);
    verdict("copy allocates in from-space", image.code);

    // Bug 2: gcend frees the TO-space instead of the from-space.
    let mut image = Collector::Basic.image();
    let blk = image
        .code
        .iter_mut()
        .find(|d| d.name == s("gcend"))
        .unwrap();
    blk.body = Subst::one_rgn(s("r2"), Region::Var(s("r1"))).term(&blk.body);
    verdict("collector frees the freshly copied data", image.code);

    // Bug 3: skip copying, hand out a from-space pointer.
    let mut image = Collector::Basic.image();
    let blk = image.code.iter_mut().find(|d| d.name == s("copy")).unwrap();
    if let Term::Typecase {
        tag,
        int_arm,
        arrow_arm,
        prod_arm,
        exist_arm,
    } = &blk.body
    {
        blk.body = Term::Typecase {
            tag: tag.clone(),
            int_arm: *int_arm,
            arrow_arm: *arrow_arm,
            prod_arm: (prod_arm.0, prod_arm.1, *int_arm),
            exist_arm: *exist_arm,
        };
    }
    verdict("copy returns from-space pointers for pairs", image.code);

    // Not-a-bug: never freeing anything is safe (just leaky) — exactly the
    // paper's distinction between safety and completeness.
    let mut image = Collector::Basic.image();
    let blk = image
        .code
        .iter_mut()
        .find(|d| d.name == s("gcend"))
        .unwrap();
    blk.body = Term::app(
        Value::Var(s("f")),
        [],
        [Region::Var(s("r2"))],
        [Value::Var(s("y"))],
    );
    verdict("collector that never frees (leaky but safe)", image.code);

    println!("\nSafety — not completeness of reclamation — is what the types");
    println!("certify (§2.1: \"concentrate on type-safety rather than correctness\").");
}
