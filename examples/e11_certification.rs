//! E11 — certification throughput: wall-clock of `check_program` over the
//! three collector images, and of `track_types` runs over the workload
//! battery.
//!
//! The paper's central claim is that an *ordinary typechecker* certifies
//! the collector (Fig. 6/8/10, Props. 6.3–6.5), which makes certification
//! the reproduction's hot path: every `normalize_ty`/`tag_eq` call used to
//! re-walk freshly `Rc`-cloned trees and re-run `alpha_eq` from scratch.
//! With hash-consed tags/types the same calls are id-keyed memo lookups.
//! This example measures both certification proper and the `track_types`
//! interpreter mode (which rebuilds `Ψ` entries — and, for the forwarding
//! collector, renormalizes widened tags — on the machine's fast path):
//!
//! ```text
//! cargo run --release --example e11_certification
//! ```
//!
//! Each certification row reports the first (cold, empty memo tables) call
//! and the best of `REPS` further calls; battery rows report best-of-`REPS`
//! wall-clock of a complete tracked run on the substitution machine (the
//! oracle backend that `track_types` defaults to). The before/after
//! comparison lives in EXPERIMENTS.md § E11.

use std::time::Instant;

use scavenger::gc_lang::machine::{Outcome, Program};
use scavenger::gc_lang::memory::{GrowthPolicy, MemConfig};
use scavenger::gc_lang::syntax::{Dialect, Term, Value};
use scavenger::gc_lang::tyck::Checker;
use scavenger::workloads::{compile_ast, live_dag_churn, live_tree_churn};
use scavenger::{Collector, Compiled};

const REPS: u32 = 5;

fn dialect(c: Collector) -> Dialect {
    match c {
        Collector::Basic => Dialect::Basic,
        Collector::Forwarding => Dialect::Forwarding,
        Collector::Generational => Dialect::Generational,
    }
}

/// `(cold seconds, best warm seconds)` for certifying one collector image.
fn time_certification(c: Collector) -> (f64, f64) {
    let image = c.image();
    let program = Program {
        dialect: dialect(c),
        code: image.code,
        main: Term::Halt(Value::Int(0)),
    };
    let t0 = Instant::now();
    Checker::check_program(&program).expect("collector certifies");
    let cold = t0.elapsed().as_secs_f64();
    let mut best = cold;
    for _ in 0..REPS {
        let t0 = Instant::now();
        Checker::check_program(&program).expect("collector certifies");
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (cold, best)
}

/// Best-of-`REPS` wall-clock of a full `track_types` run, plus its step
/// count (identical across reps — the machine is deterministic).
fn time_tracked_run(compiled: &Compiled, budget: usize) -> (u64, f64) {
    let config = MemConfig {
        region_budget: budget,
        growth: GrowthPolicy::Adaptive,
        track_types: true,
        max_heap_words: None,
        page_words: 512,
    };
    let mut best = f64::INFINITY;
    let mut steps = 0;
    for _ in 0..REPS {
        let mut m = compiled.machine_with(config);
        let t0 = Instant::now();
        match m.run(1_000_000_000).expect("runs") {
            Outcome::Halted(_) => {}
            other => panic!("abnormal outcome: {other:?}"),
        }
        best = best.min(t0.elapsed().as_secs_f64());
        steps = m.stats().steps;
    }
    (steps, best)
}

fn main() {
    println!("E11: certification and track_types throughput");
    println!("\n-- check_program over the collector images --");
    println!("{:<16} {:>12} {:>12}", "collector", "cold ms", "warm ms");
    for c in Collector::ALL {
        let (cold, warm) = time_certification(c);
        println!(
            "{:<16} {:>12.3} {:>12.3}",
            c.to_string(),
            cold * 1e3,
            warm * 1e3
        );
    }

    println!("\n-- track_types battery runs (substitution machine) --");
    println!(
        "{:<34} {:>8} {:>12} {:>12}",
        "workload", "steps", "wall ms", "steps/s"
    );
    let cases: Vec<(String, Compiled, usize)> = [3u32, 5, 7]
        .iter()
        .map(|&depth| {
            let budget = (2usize << depth) + 96;
            (
                format!("tree depth {depth} / basic"),
                compile_ast(&live_tree_churn(depth, 120), Collector::Basic, budget),
                budget,
            )
        })
        .chain([(
            "dag depth 6 / forwarding".to_string(),
            compile_ast(&live_dag_churn(6, 120), Collector::Forwarding, 128),
            128,
        )])
        .chain([(
            "tree depth 5 / generational".to_string(),
            compile_ast(&live_tree_churn(5, 120), Collector::Generational, 160),
            160,
        )])
        .collect();
    for (name, compiled, budget) in &cases {
        let (steps, secs) = time_tracked_run(compiled, *budget);
        println!(
            "{name:<34} {steps:>8} {:>12.2} {:>12.0}",
            secs * 1e3,
            steps as f64 / secs
        );
    }
}
