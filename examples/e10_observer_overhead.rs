//! E10 — telemetry overhead: throughput with no observer attached versus
//! the same runs with a metrics-only `Recorder` observing every event.
//!
//! The disabled path is a single `Option::is_none()` check inside each
//! inlined hook, so a machine with no observer attached should run within
//! a couple of percent of the pre-telemetry interpreter. This example
//! measures that directly on the E9 workloads: each row times identical
//! compiled programs (a) bare, (b) with a `Recorder` in metrics-only mode,
//! and reports the enabled/disabled throughput ratio.
//!
//! ```text
//! cargo run --release --example e10_observer_overhead
//! ```

use std::time::Instant;

use scavenger::telemetry::{Recorder, SharedObserver};
use scavenger::workloads::{compile_ast, live_tree_churn};
use scavenger::{Backend, Collector, Compiled};

/// Times one full run, optionally with a metrics-only recorder attached.
fn timed_run(c: &Compiled, backend: Backend, observe: bool) -> (u64, f64) {
    let mut c = c.clone().with_backend(backend);
    if observe {
        let obs: SharedObserver = Recorder::metrics_only().into_shared();
        c = c.with_observer(obs, 0);
    }
    let t0 = Instant::now();
    let run = c.run(1_000_000_000).expect("runs");
    (run.stats.steps, t0.elapsed().as_secs_f64())
}

/// Best-of-n steps/second bare vs observed, reps interleaved so both
/// samples see the same scheduler conditions.
fn steps_per_sec(c: &Compiled, backend: Backend, reps: u32) -> (u64, f64, f64) {
    let (mut best_bare, mut best_obs) = (0.0f64, 0.0f64);
    let mut steps = 0;
    for _ in 0..reps {
        let (s, secs) = timed_run(c, backend, false);
        steps = s;
        best_bare = best_bare.max(s as f64 / secs);
        let (s, secs) = timed_run(c, backend, true);
        assert_eq!(s, steps, "observer must not change the step count");
        best_obs = best_obs.max(s as f64 / secs);
    }
    (steps, best_bare, best_obs)
}

fn main() {
    println!("E10: observer overhead, bare vs metrics-only Recorder");
    println!(
        "{:<30} {:>10} {:>13} {:>13} {:>9}",
        "workload", "steps", "bare st/s", "observed st/s", "ratio"
    );
    let cases: Vec<(String, Compiled)> = [3u32, 5, 7, 9]
        .iter()
        .map(|&depth| {
            let budget = (2usize << depth) + 96;
            (
                format!("e1 tree depth {depth} (gc)"),
                compile_ast(&live_tree_churn(depth, 120), Collector::Basic, budget),
            )
        })
        .chain([6u32, 8].iter().map(|&depth| {
            (
                format!("e4 tree depth {depth} (mut)"),
                compile_ast(
                    &live_tree_churn(depth, 120),
                    Collector::Basic,
                    1 << (depth + 3),
                ),
            )
        }))
        .collect();
    for backend in [Backend::Env, Backend::Subst] {
        let mut geomean = 0.0f64;
        let mut n = 0u32;
        println!("\nbackend: {backend}");
        for (name, compiled) in &cases {
            let (steps, bare, observed) = steps_per_sec(compiled, backend, 5);
            let ratio = observed / bare;
            geomean += ratio.ln();
            n += 1;
            println!("{name:<30} {steps:>10} {bare:>13.0} {observed:>13.0} {ratio:>8.3}");
        }
        println!(
            "geometric-mean observed/bare ratio: {:.3}",
            (geomean / f64::from(n)).exp()
        );
    }
    println!(
        "\nThe disabled-observer cost (vs the pre-telemetry build) is the E9\n\
         comparison: rerun `cargo run --release --example e9_throughput` and\n\
         compare against the recorded E9 numbers in EXPERIMENTS.md."
    );
}
