//! The certification story: print the collector the way the paper's
//! figures do, then typecheck it with the λGC typechecker — the
//! "mechanically checkable proof of safety" of §2 applied to the collector
//! itself.
//!
//! ```text
//! cargo run --example certify          # basic collector (Fig. 12)
//! cargo run --example certify -- forwarding
//! cargo run --example certify -- generational
//! ```

use scavenger::gc_lang::machine::Program;
use scavenger::gc_lang::pretty;
use scavenger::gc_lang::syntax::{Dialect, Term, Value};
use scavenger::gc_lang::tyck::Checker;
use scavenger::Collector;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "basic".into());
    let (collector, dialect) = match which.as_str() {
        "basic" => (Collector::Basic, Dialect::Basic),
        "forwarding" => (Collector::Forwarding, Dialect::Forwarding),
        "generational" => (Collector::Generational, Dialect::Generational),
        other => {
            eprintln!("unknown collector {other}; use basic | forwarding | generational");
            std::process::exit(1);
        }
    };
    let image = collector.image();
    println!("── the {which} collector, as λGC code ──\n");
    for def in &image.code {
        println!("{}\n", pretty::code_def_to_string(def));
    }
    let program = Program {
        dialect,
        code: image.code,
        main: Term::Halt(Value::Int(0)),
    };
    print!("typechecking under the {dialect} static semantics… ");
    match Checker::check_program(&program) {
        Ok(()) => println!("✓ certified"),
        Err(e) => {
            println!("✗ REJECTED\n{e}");
            std::process::exit(1);
        }
    }
}
