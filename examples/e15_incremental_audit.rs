//! E15 — incremental (dirty-page) heap auditing: per-step audit cost with
//! the BiBOP page store's dirty tracking versus the full walk E12 measures.
//!
//! The full auditor re-derives Fig. 7's `⊢ M : Ψ` judgement from scratch:
//! a reachability walk from the live term plus whole-heap word accounting
//! and (under `track_types`) a Ψ conformance sweep — hundreds of × at
//! `--verify-every 1` (E12). The incremental auditor instead checks only
//! the pages dirtied since the previous audit: header and word accounting
//! for each dirty page, and dangling-pointer + Ψ conformance for each
//! dirty slot. Between collection boundaries no region dies, so a dangling
//! pointer or ill-typed slot can only appear where something was written;
//! frees schedule one full walk at the next audit. Same faults caught, at
//! a cost proportional to the write rate instead of the heap.
//!
//! This example times identical compiled programs (Ψ tracking on in all
//! configurations) bare, with the incremental auditor every step, and with
//! the full walk every step, on E12's workloads plus the battery's
//! allocation-heavy churn program.
//!
//! ```text
//! cargo run --release --example e15_incremental_audit
//! ```

use std::time::Instant;

use scavenger::workloads::{compile_ast, live_dag_churn, live_tree_churn};
use scavenger::{AuditMode, Backend, Collector, Compiled, RunOptions};

/// Times one full run of `c` with the given audit configuration; `every`
/// 0 is the bare run (the `audit` strategy is then never consulted).
fn timed_run(
    c: &Compiled,
    budget: usize,
    backend: Backend,
    every: u64,
    audit: AuditMode,
) -> (u64, f64) {
    let opts = RunOptions::builder()
        .collector(Collector::Basic) // collector ignored by run_with
        .budget(budget)
        .backend(backend)
        .track_types(true)
        .verify_every(every)
        .audit(audit)
        .build();
    let t0 = Instant::now();
    let run = c.run_with(&opts).expect("runs");
    (run.stats.steps, t0.elapsed().as_secs_f64())
}

/// Best-of-n wall seconds for bare / incremental n=1 / full n=1, reps
/// interleaved so all three samples see the same scheduler conditions.
fn best_times(c: &Compiled, budget: usize, backend: Backend, reps: u32) -> (u64, [f64; 3]) {
    let configs = [
        (0u64, AuditMode::Incremental), // bare; strategy unused
        (1, AuditMode::Incremental),
        (1, AuditMode::Full),
    ];
    let mut best = [f64::INFINITY; 3];
    let mut steps = 0;
    for _ in 0..reps {
        for (i, (every, audit)) in configs.into_iter().enumerate() {
            let (s, secs) = timed_run(c, budget, backend, every, audit);
            if i == 0 {
                steps = s;
            } else {
                assert_eq!(s, steps, "the audit must not change the step count");
            }
            best[i] = best[i].min(secs);
        }
    }
    (steps, best)
}

fn main() {
    println!("E15: incremental dirty-page auditing vs the full walk, verify-every 1");
    println!(
        "{:<34} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7}",
        "workload", "steps", "bare ms", "inc ms", "full ms", "x(inc)", "x(full)"
    );
    let churn = "fun churn (n : int) : int = if0 n then 0 else \
                 (let p = ((n, n), (n, n)) in fst (fst p) - n + churn (n - 1))\n \
                 churn 60";
    let mut cases: Vec<(String, Compiled, usize)> = [3u32, 5]
        .iter()
        .map(|&depth| {
            let budget = (2usize << depth) + 96;
            (
                format!("tree depth {depth} / basic"),
                compile_ast(&live_tree_churn(depth, 15), Collector::Basic, budget),
                budget,
            )
        })
        .chain([4u32].iter().map(|&depth| {
            let budget = (2usize << depth) + 96;
            (
                format!("dag depth {depth} / forwarding"),
                compile_ast(&live_dag_churn(depth, 15), Collector::Forwarding, budget),
                budget,
            )
        }))
        .chain([4u32].iter().map(|&depth| {
            let budget = (2usize << depth) + 96;
            (
                format!("tree depth {depth} / generational"),
                compile_ast(&live_tree_churn(depth, 15), Collector::Generational, budget),
                budget,
            )
        }))
        .collect();
    for collector in [Collector::Basic, Collector::Generational] {
        let compiled = RunOptions::builder()
            .collector(collector)
            .budget(64)
            .build()
            .compile(churn)
            .expect("battery churn compiles");
        cases.push((format!("battery gc-stress / {collector}"), compiled, 64));
    }
    for backend in Backend::ALL {
        let (mut geo_inc, mut geo_full) = (0.0f64, 0.0f64);
        let mut n = 0u32;
        println!("\nbackend: {backend}");
        for (name, compiled, budget) in &cases {
            let (steps, [bare, inc, full]) = best_times(compiled, *budget, backend, 3);
            let (xi, xf) = (inc / bare, full / bare);
            geo_inc += xi.ln();
            geo_full += xf.ln();
            n += 1;
            println!(
                "{name:<34} {steps:>9} {:>9.2} {:>9.2} {:>9.2} {xi:>7.2} {xf:>7.2}",
                bare * 1e3,
                inc * 1e3,
                full * 1e3
            );
        }
        println!(
            "geometric-mean slowdown at n=1: {:.2}x incremental, {:.2}x full walk",
            (geo_inc / f64::from(n)).exp(),
            (geo_full / f64::from(n)).exp()
        );
    }
    println!(
        "\nThe byte-identity of incremental-audited, full-audited, and bare\n\
         runs (results, Stats, telemetry) is asserted by the battery and\n\
         backend-agreement suites; the fault-injection matrix asserts both\n\
         strategies catch every fault class at the same step. This example\n\
         measures only the wall-clock cost."
    );
}
