//! Every intermediate representation of the pipeline, printed: source,
//! CPS'd source, λCLOS (§3), and the final λGC program (Fig. 3's image)
//! with the collector it links against.
//!
//! ```text
//! cargo run --example stages
//! cargo run --example stages -- "let x = (1, 2) in fst x + snd x"
//! ```

use scavenger::{Collector, Pipeline, PipelineError};

const DEFAULT: &str = "fun double (x : int) : int = x + x\n double (double 10) + 2";

fn main() -> Result<(), PipelineError> {
    let src = std::env::args()
        .nth(1)
        .unwrap_or_else(|| DEFAULT.to_string());

    println!("══ 1. source ══════════════════════════════════════════\n{src}\n");

    let parsed = scavenger::lambda::parse::parse_program(&src).map_err(PipelineError::Parse)?;
    scavenger::lambda::typecheck::check_program(&parsed).map_err(PipelineError::SourceType)?;
    let oracle = scavenger::lambda::eval::run_program(&parsed, 10_000_000)
        .expect("terminating source program");

    let cps = scavenger::clos::cps::cps_program(&parsed).map_err(PipelineError::Cps)?;
    println!("══ 2. after CPS conversion (still source syntax) ══════");
    println!("{}\n", scavenger::lambda::print::program(&cps));

    let clos = scavenger::clos::cc::cc_program(&cps).map_err(PipelineError::Cc)?;
    println!("══ 3. λCLOS (closed CPS + existential closures, §3) ═══");
    println!("{}\n", scavenger::clos::print::program(&clos));

    let compiled = Pipeline::new(Collector::Basic)
        .region_budget(128)
        .compile(&src)?;
    compiled.typecheck()?;
    println!("══ 4. λGC (Fig. 3 translation; collector at cd.0–cd.5) ");
    let n_collector = Collector::Basic.image().code.len();
    for (i, def) in compiled.program.code.iter().enumerate().skip(n_collector) {
        println!("-- cd.{i} --");
        println!("{}\n", scavenger::gc_lang::pretty::code_def_to_string(def));
    }
    println!("-- main --");
    println!(
        "{}\n",
        scavenger::gc_lang::pretty::term_to_string(&compiled.program.main)
    );

    let run = compiled.run(100_000_000)?;
    println!("══ 5. execution ═══════════════════════════════════════");
    println!(
        "result {} (oracle {}), {} machine steps, {} collections",
        run.result, oracle, run.stats.steps, run.stats.collections
    );
    assert_eq!(run.result, oracle);
    Ok(())
}
