//! E9 — interpreter throughput: the environment machine versus the Fig. 5
//! substitution machine, on the E1 and E4 workloads.
//!
//! The substitution machine deep-clones the whole continuation at every
//! step (O(|term|) per step); the environment machine shares it via `Rc`
//! and resolves variables lazily (O(1) per step modulo value sizes). This
//! example times complete runs of identical compiled programs on both
//! backends and reports steps/second — the Criterion version lives in
//! `crates/bench/benches/e9_interp_throughput.rs`, but this one needs no
//! network-fetched dependencies:
//!
//! ```text
//! cargo run --release --example e9_throughput
//! ```

use std::time::Instant;

use scavenger::workloads::{compile_ast, live_tree_churn};
use scavenger::{Backend, Collector, Compiled};

/// Times one full run on the given backend, returning (steps, seconds).
fn timed_run(c: &Compiled, backend: Backend) -> (u64, f64) {
    let c = c.clone().with_backend(backend);
    let t0 = Instant::now();
    let run = c.run(1_000_000_000).expect("runs");
    (run.stats.steps, t0.elapsed().as_secs_f64())
}

/// Best-of-n steps/second for both backends, reps interleaved so the two
/// samples see the same scheduler conditions (no Criterion offline).
fn steps_per_sec(c: &Compiled, reps: u32) -> (u64, u64, f64, f64) {
    let (mut best_s, mut best_e) = (0.0f64, 0.0f64);
    let (mut steps_s, mut steps_e) = (0, 0);
    for _ in 0..reps {
        let (s, secs) = timed_run(c, Backend::Subst);
        steps_s = s;
        best_s = best_s.max(s as f64 / secs);
        let (s, secs) = timed_run(c, Backend::Env);
        steps_e = s;
        best_e = best_e.max(s as f64 / secs);
    }
    (steps_s, steps_e, best_s, best_e)
}

fn main() {
    println!("E9: steps/second, substitution machine vs environment machine");
    println!(
        "{:<26} {:>10} {:>14} {:>14} {:>9}",
        "workload", "steps", "subst st/s", "env st/s", "speedup"
    );
    let mut geomean = 0.0f64;
    let mut n = 0u32;
    // E1 rows: live tree of depth d with a tight budget — collection-heavy,
    // so the control term carries the whole collector continuation.
    // E4 row: the same mutator with a large budget — mutator-dominated.
    let cases: Vec<(String, Compiled)> = [3u32, 5, 7, 9]
        .iter()
        .map(|&depth| {
            let budget = (2usize << depth) + 96;
            (
                format!("e1 tree depth {depth} (gc)"),
                compile_ast(&live_tree_churn(depth, 120), Collector::Basic, budget),
            )
        })
        .chain([6u32, 8].iter().map(|&depth| {
            (
                format!("e4 tree depth {depth} (mut)"),
                compile_ast(
                    &live_tree_churn(depth, 120),
                    Collector::Basic,
                    1 << (depth + 3),
                ),
            )
        }))
        .collect();
    for (name, compiled) in &cases {
        let (steps_s, steps_e, subst, env) = steps_per_sec(compiled, 5);
        assert_eq!(steps_s, steps_e, "backends must take identical step counts");
        let speedup = env / subst;
        geomean += speedup.ln();
        n += 1;
        println!("{name:<26} {steps_s:>10} {subst:>14.0} {env:>14.0} {speedup:>8.1}x");
    }
    println!(
        "\ngeometric-mean speedup: {:.1}x",
        (geomean / f64::from(n)).exp()
    );
}
