//! E14 — bytecode VM throughput: the register-based bytecode backend
//! versus the environment machine (and the Fig. 5 substitution oracle as
//! a baseline), on the E9 workloads.
//!
//! The environment machine still walks the interned term graph at every
//! step and keeps a persistent environment spine; the bytecode VM
//! pre-resolves every variable to a register slot at compile time and
//! dispatches over a flat instruction stream, with let-spines and
//! `put`-pair allocations fused into superinstructions. This example times
//! complete runs of identical compiled programs on all three backends,
//! plus the bytecode backend with superinstruction fusion disabled (the
//! A/B knob), and reports steps/second:
//!
//! ```text
//! cargo run --release --example e14_bytecode_throughput
//! ```
//!
//! Byte-identity of results, statistics, and telemetry across the
//! backends is asserted by the battery and backend-agreement suites; this
//! example measures only wall-clock throughput.

use std::time::Instant;

use scavenger::workloads::{compile_ast, live_tree_churn};
use scavenger::{Backend, Collector, Compiled, RunOptions};

/// Times one full run, returning (steps, seconds).
fn timed_run(c: &Compiled, backend: Backend, superinstructions: bool) -> (u64, f64) {
    let opts = RunOptions::builder()
        .collector(Collector::Basic) // collector ignored by run_with
        .backend(backend)
        .superinstructions(superinstructions)
        .build();
    let t0 = Instant::now();
    let run = c.run_with(&opts).expect("runs");
    (run.stats.steps, t0.elapsed().as_secs_f64())
}

/// Best-of-n steps/second for each configuration, reps interleaved so all
/// samples see the same scheduler conditions. Configurations: every
/// backend in [`Backend::ALL`], plus bytecode without superinstructions.
fn steps_per_sec(c: &Compiled, reps: u32) -> (u64, Vec<f64>) {
    let configs: Vec<(Backend, bool)> = Backend::ALL
        .into_iter()
        .map(|b| (b, true))
        .chain([(Backend::Bytecode, false)])
        .collect();
    let mut best = vec![0.0f64; configs.len()];
    let mut steps = 0u64;
    for _ in 0..reps {
        for (i, &(backend, fuse)) in configs.iter().enumerate() {
            let (s, secs) = timed_run(c, backend, fuse);
            if i == 0 {
                steps = s;
            } else {
                assert_eq!(s, steps, "backends must take identical step counts");
            }
            best[i] = best[i].max(s as f64 / secs);
        }
    }
    (steps, best)
}

fn main() {
    println!("E14: steps/second, bytecode VM vs environment machine");
    println!(
        "{:<26} {:>10} {:>12} {:>12} {:>12} {:>12} {:>7} {:>7}",
        "workload", "steps", "subst st/s", "env st/s", "bc st/s", "bc -sup", "bc/env", "-sup/bc"
    );
    let (mut geo_env, mut geo_fuse) = (0.0f64, 0.0f64);
    let mut n = 0u32;
    // E1 rows: live tree of depth d with a tight budget — collection-heavy,
    // so the control term carries the whole collector continuation.
    // E4 rows: the same mutator with a large budget — mutator-dominated.
    let cases: Vec<(String, Compiled)> = [3u32, 5, 7, 9]
        .iter()
        .map(|&depth| {
            let budget = (2usize << depth) + 96;
            (
                format!("e1 tree depth {depth} (gc)"),
                compile_ast(&live_tree_churn(depth, 120), Collector::Basic, budget),
            )
        })
        .chain([6u32, 8].iter().map(|&depth| {
            (
                format!("e4 tree depth {depth} (mut)"),
                compile_ast(
                    &live_tree_churn(depth, 120),
                    Collector::Basic,
                    1 << (depth + 3),
                ),
            )
        }))
        .collect();
    for (name, compiled) in &cases {
        let (steps, best) = steps_per_sec(compiled, 5);
        let [subst, env, bc, bc_nosuper] = best[..] else {
            unreachable!("four configurations")
        };
        let speedup = bc / env;
        let fusion = bc_nosuper / bc;
        geo_env += speedup.ln();
        geo_fuse += fusion.ln();
        n += 1;
        println!(
            "{name:<26} {steps:>10} {subst:>12.0} {env:>12.0} {bc:>12.0} {bc_nosuper:>12.0} \
             {speedup:>6.1}x {fusion:>6.2}x"
        );
    }
    println!(
        "\ngeometric-mean speedup over the environment machine: {:.1}x \
         (superinstructions off retain {:.0}% of that)",
        (geo_env / f64::from(n)).exp(),
        100.0 * (geo_fuse / f64::from(n)).exp()
    );
}
