//! Watching Proposition 6.4 happen: run a program one machine step at a
//! time, re-checking `⊢ (M, e)` after every step, straight through a
//! collection. Prints a compact trace of what the machine is doing.
//!
//! ```text
//! cargo run --example preservation
//! ```

use scavenger::gc_lang::machine::StepOutcome;
use scavenger::gc_lang::wf::{check_state, WfOptions};
use scavenger::{Collector, Pipeline, PipelineError};

const SRC: &str =
    "fun f (n : int) : int = if0 n then 42 else (let p = (n, n) in snd p - n + f (n - 1))\n f 8";

fn main() -> Result<(), PipelineError> {
    let compiled = Pipeline::new(Collector::Basic)
        .region_budget(32)
        .track_types(true)
        .compile(SRC)?;
    compiled.typecheck()?;
    let mut machine = compiled.machine();
    let mut step = 0u64;
    let mut checked = 0u64;
    loop {
        match machine.step().expect("progress (Prop. 6.5)") {
            StepOutcome::Halted(n) => {
                println!(
                    "halted with {n} after {step} steps; {checked} states re-checked well formed"
                );
                assert_eq!(n, 42);
                break;
            }
            StepOutcome::Continue => {
                check_state(&machine, WfOptions::default())
                    .unwrap_or_else(|e| panic!("preservation violated at step {step}: {e}"));
                checked += 1;
                if step.is_multiple_of(200) {
                    println!(
                        "step {step:>5}: live {:>4} words in {} regions, {} collections so far",
                        machine.memory().data_words(),
                        machine.memory().region_names().count() - 1,
                        machine.stats().collections
                    );
                }
            }
        }
        step += 1;
    }
    println!(
        "collections: {}, words reclaimed: {}",
        machine.stats().collections,
        machine.stats().words_reclaimed
    );
    Ok(())
}
