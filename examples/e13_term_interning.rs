//! E13 — hash-consed terms/values and parallel certification.
//!
//! Two infrastructure measurements of the interned *program* layer
//! (`gc_lang::intern` extended from tags/types to terms and values):
//!
//! 1. **Battery throughput on both backends.** The Fig. 5 substitution
//!    machine clones its continuation at every `let` and re-substitutes
//!    the whole program on every step; with interned terms a continuation
//!    "clone" is a `u32` copy and `Subst` skips any subtree whose
//!    free-variable fingerprint misses the domain, handing the same id
//!    back. The environment machine benefits on its frame loads and the
//!    resolved-control materialization. Before/after numbers live in
//!    EXPERIMENTS.md §E13 (before = the pre-refactor tree, same harness).
//!
//! 2. **Parallel certification.** Code blocks are checked under the same
//!    immutable `Ψ|cd`, so `check_program` fans them out over a scoped
//!    thread pool (`PS_CERT_THREADS`); the arenas and memos they share are
//!    read lock-free (`ChunkedSlab`/`ConcurrentInterner`), so workers do
//!    not serialize on the interning layer. This times the warm check of
//!    each collector image at 1/2/4/8 workers. On a single-core host the
//!    table can only show parity (threads time-slice); the printed
//!    `parallelism` line records what the host offered.
//!
//! ```text
//! cargo run --release --example e13_term_interning
//! ```

use std::time::Instant;

use scavenger::gc_lang::machine::{Outcome, Program};
use scavenger::gc_lang::syntax::{Dialect, Term, Value};
use scavenger::gc_lang::tyck::Checker;
use scavenger::workloads::{compile_ast, live_dag_churn, live_tree_churn};
use scavenger::{Collector, Compiled};

const REPS: u32 = 5;
/// Warm certification of one image is sub-millisecond; time it in batches
/// so the clock resolution does not dominate.
const CERT_BATCH: u32 = 50;

fn dialect(c: Collector) -> Dialect {
    match c {
        Collector::Basic => Dialect::Basic,
        Collector::Forwarding => Dialect::Forwarding,
        Collector::Generational => Dialect::Generational,
    }
}

/// The battery workloads, shared verbatim with the before-tree harness.
fn battery() -> Vec<(String, Compiled)> {
    [3u32, 5, 7]
        .iter()
        .map(|&depth| {
            let budget = (2usize << depth) + 96;
            (
                format!("tree depth {depth} / basic"),
                compile_ast(&live_tree_churn(depth, 120), Collector::Basic, budget),
            )
        })
        .chain([(
            "dag depth 6 / forwarding".to_string(),
            compile_ast(&live_dag_churn(6, 120), Collector::Forwarding, 128),
        )])
        .chain([(
            "tree depth 5 / generational".to_string(),
            compile_ast(&live_tree_churn(5, 120), Collector::Generational, 160),
        )])
        .collect()
}

/// Best-of-`REPS` wall-clock of a plain (untracked) run, plus its step
/// count, on the chosen backend.
fn time_run(compiled: &Compiled, env_backend: bool) -> (u64, f64) {
    let mut best = f64::INFINITY;
    let mut steps = 0;
    for _ in 0..REPS {
        if env_backend {
            let mut m = compiled.env_machine();
            let t0 = Instant::now();
            match m.run(1_000_000_000).expect("runs") {
                Outcome::Halted(_) => {}
                other => panic!("abnormal outcome: {other:?}"),
            }
            best = best.min(t0.elapsed().as_secs_f64());
            steps = m.stats().steps;
        } else {
            let mut m = compiled.machine();
            let t0 = Instant::now();
            match m.run(1_000_000_000).expect("runs") {
                Outcome::Halted(_) => {}
                other => panic!("abnormal outcome: {other:?}"),
            }
            best = best.min(t0.elapsed().as_secs_f64());
            steps = m.stats().steps;
        }
    }
    (steps, best)
}

/// Best per-call seconds for a warm `check_program` over `CERT_BATCH`
/// calls, repeated `REPS` times, at the given worker count.
fn time_certification(program: &Program, threads: usize) -> f64 {
    std::env::set_var("PS_CERT_THREADS", threads.to_string());
    // Warm the arenas and memo tables outside the timed region.
    Checker::check_program(program).expect("collector certifies");
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        for _ in 0..CERT_BATCH {
            Checker::check_program(program).expect("collector certifies");
        }
        best = best.min(t0.elapsed().as_secs_f64() / f64::from(CERT_BATCH));
    }
    best
}

fn main() {
    println!("E13: term/value interning and parallel certification");

    for (label, env_backend) in [
        ("substitution machine", false),
        ("environment machine", true),
    ] {
        println!("\n-- battery runs, {label} (plain, untracked) --");
        println!(
            "{:<34} {:>8} {:>12} {:>12}",
            "workload", "steps", "wall ms", "steps/s"
        );
        for (name, compiled) in &battery() {
            let (steps, secs) = time_run(compiled, env_backend);
            println!(
                "{name:<34} {steps:>8} {:>12.2} {:>12.0}",
                secs * 1e3,
                steps as f64 / secs
            );
        }
    }

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("\n-- warm check_program, scaling over PS_CERT_THREADS --");
    println!("host parallelism: {cores} core(s)");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "collector", "1 (ms)", "2 (ms)", "4 (ms)", "8 (ms)", "x@4"
    );
    for c in Collector::ALL {
        let image = c.image();
        let program = Program {
            dialect: dialect(c),
            code: image.code,
            main: Term::Halt(Value::Int(0)),
        };
        let times: Vec<f64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&n| time_certification(&program, n))
            .collect();
        println!(
            "{:<16} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>7.2}x",
            c.to_string(),
            times[0] * 1e3,
            times[1] * 1e3,
            times[2] * 1e3,
            times[3] * 1e3,
            times[0] / times[2]
        );
    }
    std::env::remove_var("PS_CERT_THREADS");
}
