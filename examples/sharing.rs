//! Sharing preservation (§7): the basic collector of Fig. 4/12 "does not
//! preserve sharing and thus turns any DAG into a tree"; the forwarding
//! collector of Fig. 9 copies every unique object once.
//!
//! This example builds DAG-shaped heaps of growing depth directly in the
//! region memory and collects them with the untyped meta-level collector
//! (sharing-preserving, like Fig. 9) versus a deliberately share-oblivious
//! copy (like Fig. 4), printing the exponential-versus-linear divergence.
//! It then demonstrates the same effect inside the language by running one
//! program under both certified collectors.
//!
//! ```text
//! cargo run --example sharing
//! ```

use scavenger::collectors::meta;
use scavenger::gc_lang::memory::{GrowthPolicy, MemConfig, Memory};
use scavenger::gc_lang::syntax::{RegionName, Value};
use scavenger::{Collector, Pipeline, PipelineError};

/// A Fig. 4-style copy: no forwarding table, so shared subgraphs are
/// duplicated along every path.
fn copy_no_sharing(mem: &mut Memory, v: &Value, to: RegionName, copied: &mut usize) -> Value {
    match v {
        Value::Addr(nu, loc) if !nu.is_cd() => {
            let stored = mem.get(*nu, *loc).expect("live address").clone();
            let inner = copy_no_sharing(mem, &stored, to, copied);
            *copied += 1;
            let l2 = mem.put(to, inner).expect("to-space alloc");
            Value::Addr(to, l2)
        }
        Value::Pair(a, b) => Value::pair(
            copy_no_sharing(mem, a, to, copied),
            copy_no_sharing(mem, b, to, copied),
        ),
        other => other.clone(),
    }
}

fn main() -> Result<(), PipelineError> {
    println!("DAG of depth d: d pair cells, but 2^d paths to the leaf.\n");
    println!(
        "{:>6} {:>16} {:>16}",
        "depth", "Fig.4 copies", "Fig.9 copies"
    );
    for depth in [4u32, 8, 12, 16, 20] {
        let config = MemConfig {
            region_budget: 1 << 26,
            growth: GrowthPolicy::Fixed,
            track_types: false,
            max_heap_words: None,
            page_words: 512,
        };
        // Share-oblivious copy.
        let mut m1 = Memory::new(config);
        let r1 = m1.alloc_region();
        let root1 = meta::synth_dag(&mut m1, r1, depth).expect("dag");
        let to1 = m1.alloc_region();
        let mut naive = 0usize;
        copy_no_sharing(&mut m1, &root1, to1, &mut naive);
        // Forwarding copy.
        let mut m2 = Memory::new(config);
        let r2 = m2.alloc_region();
        let root2 = meta::synth_dag(&mut m2, r2, depth).expect("dag");
        let (_, _, stats) = meta::collect(&mut m2, &[root2]).expect("collect");
        println!("{depth:>6} {naive:>16} {:>16}", stats.objects_copied);
    }

    println!("\nThe same effect inside the language: one program, both certified collectors.");
    // Each frame keeps a dup'd (shared) pair live across the recursive
    // call, so collections see a heap full of DAG edges.
    let src = "fun dup (x : int * int) : (int * int) * (int * int) = (x, x)\n\
               fun go (n : int) : int = if0 n then 0 else \
                 (let d = dup ((n, n)) in (let rest = go (n - 1) in fst (fst d) - n + rest))\n go 40";
    for collector in [Collector::Basic, Collector::Forwarding] {
        let run = Pipeline::new(collector)
            .region_budget(96)
            .compile(src)?
            .run(200_000_000)?;
        println!(
            "  {:<11} result={} collections={} words copied to to-space={}",
            collector.to_string(),
            run.result,
            run.stats.collections,
            run.stats.kept_words_total,
        );
    }
    Ok(())
}
