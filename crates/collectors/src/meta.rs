//! An *untyped* meta-level copying collector — the baseline the paper
//! argues against.
//!
//! This collector lives outside the language: it is ordinary Rust code that
//! walks machine values and copies reachable objects into a fresh region.
//! It is exactly the kind of "trusted garbage collector" §1 identifies as
//! the residual hole in PCC/TAL systems: nothing checks it, and a bug here
//! (a missed field, a stale address) silently corrupts the heap.
//!
//! It exists for two reasons:
//!
//! * as the comparison baseline for experiment E4 (what does running the
//!   collector *inside* the language cost relative to a native one?);
//! * as an oracle in tests: after an in-language collection, the live graph
//!   must be isomorphic to what the meta collector would have produced.
//!
//! Like Fig. 9's collector (and unlike Fig. 4's), it preserves sharing,
//! using a side table of forwarding addresses.

use std::collections::HashMap;

use ps_gc_lang::error::Result;
use ps_gc_lang::memory::Memory;
use ps_gc_lang::syntax::{RegionName, Value};

/// Statistics from one meta-level collection.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetaStats {
    /// Objects copied (unique heap cells).
    pub objects_copied: usize,
    /// Words copied.
    pub words_copied: usize,
    /// Forwarding-table hits (shared references that were *not* re-copied).
    pub sharing_hits: usize,
}

/// Copies everything reachable from `roots` into a fresh region and
/// reclaims all other data regions. Returns the new region, the rewritten
/// roots, and statistics.
///
/// # Errors
///
/// Fails on dangling addresses (which a type-safe heap cannot contain —
/// this collector, being untyped, has to just hope).
pub fn collect(mem: &mut Memory, roots: &[Value]) -> Result<(RegionName, Vec<Value>, MetaStats)> {
    let to = mem.alloc_region();
    let mut forwarded: HashMap<(RegionName, u32), (RegionName, u32)> = HashMap::new();
    let mut stats = MetaStats::default();
    let new_roots = roots
        .iter()
        .map(|r| copy_value(mem, r, to, &mut forwarded, &mut stats))
        .collect::<Result<Vec<_>>>()?;
    mem.only(&[to]);
    Ok((to, new_roots, stats))
}

fn copy_value(
    mem: &mut Memory,
    v: &Value,
    to: RegionName,
    forwarded: &mut HashMap<(RegionName, u32), (RegionName, u32)>,
    stats: &mut MetaStats,
) -> Result<Value> {
    match v {
        Value::Int(_) | Value::Var(_) | Value::Code(_) => Ok(v.clone()),
        Value::Addr(nu, loc) => {
            if nu.is_cd() {
                return Ok(v.clone());
            }
            if let Some(&(n2, l2)) = forwarded.get(&(*nu, *loc)) {
                stats.sharing_hits += 1;
                return Ok(Value::Addr(n2, l2));
            }
            let stored = mem.get(*nu, *loc)?.clone();
            let copied = copy_value(mem, &stored, to, forwarded, stats)?;
            stats.objects_copied += 1;
            stats.words_copied += ps_gc_lang::memory::value_words(&copied);
            let l2 = mem.put(to, copied)?;
            forwarded.insert((*nu, *loc), (to, l2));
            Ok(Value::Addr(to, l2))
        }
        Value::Pair(a, b) => Ok(Value::Pair(
            (copy_value(mem, a, to, forwarded, stats)?).into(),
            (copy_value(mem, b, to, forwarded, stats)?).into(),
        )),
        Value::PackTag {
            tvar,
            kind,
            tag,
            val,
            body_ty,
        } => Ok(Value::PackTag {
            tvar: *tvar,
            kind: *kind,
            tag: tag.clone(),
            val: (copy_value(mem, val, to, forwarded, stats)?).into(),
            body_ty: body_ty.clone(),
        }),
        Value::PackAlpha {
            avar,
            regions,
            witness,
            val,
            body_ty,
        } => Ok(Value::PackAlpha {
            avar: *avar,
            regions: regions.clone(),
            witness: witness.clone(),
            val: (copy_value(mem, val, to, forwarded, stats)?).into(),
            body_ty: body_ty.clone(),
        }),
        Value::PackRgn {
            rvar,
            bound,
            witness,
            val,
            body_ty,
        } => Ok(Value::PackRgn {
            rvar: *rvar,
            bound: bound.clone(),
            witness: *witness,
            val: (copy_value(mem, val, to, forwarded, stats)?).into(),
            body_ty: body_ty.clone(),
        }),
        Value::TagApp(f, tags, regions) => Ok(Value::TagApp(
            (copy_value(mem, f, to, forwarded, stats)?).into(),
            tags.clone(),
            regions.clone(),
        )),
        Value::Inl(x) => Ok(Value::Inl(
            (copy_value(mem, x, to, forwarded, stats)?).into(),
        )),
        Value::Inr(x) => Ok(Value::Inr(
            (copy_value(mem, x, to, forwarded, stats)?).into(),
        )),
    }
}

/// Builds a complete binary tree of pairs of the given depth in `region`,
/// returning the root value. Used by tests and the E1/E4 benchmarks to
/// synthesize heaps of known shape.
///
/// # Errors
///
/// Fails if `region` does not exist.
pub fn synth_tree(mem: &mut Memory, region: RegionName, depth: u32) -> Result<Value> {
    if depth == 0 {
        return Ok(Value::Int(1));
    }
    let a = synth_tree(mem, region, depth - 1)?;
    let b = synth_tree(mem, region, depth - 1)?;
    let loc = mem.put(region, Value::pair(a, b))?;
    Ok(Value::Addr(region, loc))
}

/// Builds a DAG: a chain of `depth` pair cells where both components point
/// at the *same* child — linear in cells, exponential in paths. The
/// workload for the sharing experiments (E2).
///
/// # Errors
///
/// Fails if `region` does not exist.
pub fn synth_dag(mem: &mut Memory, region: RegionName, depth: u32) -> Result<Value> {
    let mut cur = Value::Int(1);
    for _ in 0..depth {
        let loc = mem.put(region, Value::pair(cur.clone(), cur))?;
        cur = Value::Addr(region, loc);
    }
    Ok(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_gc_lang::memory::{GrowthPolicy, MemConfig};

    fn mem() -> Memory {
        Memory::new(MemConfig {
            region_budget: 1 << 20,
            growth: GrowthPolicy::Fixed,
            track_types: false,
            max_heap_words: None,
            page_words: 512,
        })
    }

    #[test]
    fn copies_a_tree_exactly() {
        let mut m = mem();
        let r = m.alloc_region();
        let root = synth_tree(&mut m, r, 4).unwrap();
        let before = m.region(r).unwrap().words();
        let (to, roots, stats) = collect(&mut m, &[root]).unwrap();
        assert!(!m.has_region(r));
        assert_eq!(m.region(to).unwrap().words(), before);
        assert_eq!(stats.objects_copied, 15, "2^4 - 1 pair cells");
        assert_eq!(stats.sharing_hits, 0);
        assert_eq!(roots.len(), 1);
    }

    #[test]
    fn garbage_is_not_copied() {
        let mut m = mem();
        let r = m.alloc_region();
        let root = synth_tree(&mut m, r, 3).unwrap();
        // Unreachable garbage.
        synth_tree(&mut m, r, 5).unwrap();
        let (_, _, stats) = collect(&mut m, &[root]).unwrap();
        assert_eq!(stats.objects_copied, 7);
    }

    #[test]
    fn sharing_is_preserved() {
        let mut m = mem();
        let r = m.alloc_region();
        let root = synth_dag(&mut m, r, 20).unwrap();
        let (_, _, stats) = collect(&mut m, &[root]).unwrap();
        // 20 cells, each reachable along two edges; one copy each.
        assert_eq!(stats.objects_copied, 20);
        assert!(stats.sharing_hits > 0);
    }

    #[test]
    fn multiple_roots_share_the_forwarding_table() {
        let mut m = mem();
        let r = m.alloc_region();
        let root = synth_tree(&mut m, r, 3).unwrap();
        let (_, roots, stats) = collect(&mut m, &[root.clone(), root]).unwrap();
        assert_eq!(stats.objects_copied, 7, "second root is fully shared");
        assert_eq!(roots[0], roots[1]);
    }

    #[test]
    fn code_addresses_survive_unchanged() {
        let mut m = mem();
        let r = m.alloc_region();
        let cd_ref = Value::Addr(ps_gc_lang::syntax::CD, 0);
        let loc = m
            .put(r, Value::pair(cd_ref.clone(), Value::Int(2)))
            .unwrap();
        let (_, roots, _) = collect(&mut m, &[Value::Addr(r, loc)]).unwrap();
        let Value::Addr(to, l2) = roots[0] else {
            panic!()
        };
        match m.get(to, l2).unwrap() {
            Value::Pair(a, _) => assert_eq!(**a, cd_ref),
            other => panic!("bad copy {other:?}"),
        }
    }

    #[test]
    fn dangling_addresses_error() {
        let mut m = mem();
        let r = m.alloc_region();
        let bad = Value::Addr(RegionName(99), 0);
        let loc = m.put(r, bad).unwrap();
        assert!(collect(&mut m, &[Value::Addr(r, loc)]).is_err());
    }
}

/// A Cheney-style breadth-first copy (§10 lists Cheney copying as the
/// intended future-work traversal order): an explicit work queue instead of
/// recursion, still sharing-preserving. Behaviourally identical to
/// [`collect`] — tested against it — but with a bounded meta-stack
/// regardless of heap depth.
///
/// # Errors
///
/// Fails on dangling addresses.
pub fn collect_cheney(
    mem: &mut Memory,
    roots: &[Value],
) -> Result<(RegionName, Vec<Value>, MetaStats)> {
    let to = mem.alloc_region();
    let mut forwarded: HashMap<(RegionName, u32), (RegionName, u32)> = HashMap::new();
    let mut stats = MetaStats::default();
    // The "scan pointer": to-space slots whose contents still hold
    // from-space addresses.
    let mut scan: Vec<u32> = Vec::new();

    // Evacuates one cell (shallowly) and queues it for scanning.
    fn evacuate(
        mem: &mut Memory,
        nu: RegionName,
        loc: u32,
        to: RegionName,
        forwarded: &mut HashMap<(RegionName, u32), (RegionName, u32)>,
        scan: &mut Vec<u32>,
        stats: &mut MetaStats,
    ) -> Result<(RegionName, u32)> {
        if let Some(&dst) = forwarded.get(&(nu, loc)) {
            stats.sharing_hits += 1;
            return Ok(dst);
        }
        let stored = mem.get(nu, loc)?.clone();
        stats.objects_copied += 1;
        stats.words_copied += crate::meta::words_of(&stored);
        let l2 = mem.put(to, stored)?;
        forwarded.insert((nu, loc), (to, l2));
        scan.push(l2);
        Ok((to, l2))
    }

    // Rewrites the addresses inside a value shallowly, evacuating targets.
    fn scavenge(
        mem: &mut Memory,
        v: &Value,
        to: RegionName,
        forwarded: &mut HashMap<(RegionName, u32), (RegionName, u32)>,
        scan: &mut Vec<u32>,
        stats: &mut MetaStats,
    ) -> Result<Value> {
        match v {
            Value::Addr(nu, loc) if !nu.is_cd() => {
                let (n2, l2) = evacuate(mem, *nu, *loc, to, forwarded, scan, stats)?;
                Ok(Value::Addr(n2, l2))
            }
            Value::Pair(a, b) => Ok(Value::Pair(
                (scavenge(mem, a, to, forwarded, scan, stats)?).into(),
                (scavenge(mem, b, to, forwarded, scan, stats)?).into(),
            )),
            Value::PackTag {
                tvar,
                kind,
                tag,
                val,
                body_ty,
            } => Ok(Value::PackTag {
                tvar: *tvar,
                kind: *kind,
                tag: tag.clone(),
                val: (scavenge(mem, val, to, forwarded, scan, stats)?).into(),
                body_ty: body_ty.clone(),
            }),
            Value::PackAlpha {
                avar,
                regions,
                witness,
                val,
                body_ty,
            } => Ok(Value::PackAlpha {
                avar: *avar,
                regions: regions.clone(),
                witness: witness.clone(),
                val: (scavenge(mem, val, to, forwarded, scan, stats)?).into(),
                body_ty: body_ty.clone(),
            }),
            Value::PackRgn {
                rvar,
                bound,
                witness,
                val,
                body_ty,
            } => Ok(Value::PackRgn {
                rvar: *rvar,
                bound: bound.clone(),
                witness: *witness,
                val: (scavenge(mem, val, to, forwarded, scan, stats)?).into(),
                body_ty: body_ty.clone(),
            }),
            Value::TagApp(f, tags, regions) => Ok(Value::TagApp(
                (scavenge(mem, f, to, forwarded, scan, stats)?).into(),
                tags.clone(),
                regions.clone(),
            )),
            Value::Inl(x) => Ok(Value::Inl(
                (scavenge(mem, x, to, forwarded, scan, stats)?).into(),
            )),
            Value::Inr(x) => Ok(Value::Inr(
                (scavenge(mem, x, to, forwarded, scan, stats)?).into(),
            )),
            other => Ok(other.clone()),
        }
    }

    let new_roots = roots
        .iter()
        .map(|r| scavenge(mem, r, to, &mut forwarded, &mut scan, &mut stats))
        .collect::<Result<Vec<_>>>()?;

    // Breadth-first: process to-space slots until the scan pointer catches
    // the allocation pointer.
    let mut i = 0;
    while i < scan.len() {
        let loc = scan[i];
        i += 1;
        let stored = mem.get(to, loc)?.clone();
        let rewritten = scavenge(
            &mut *mem,
            &stored,
            to,
            &mut forwarded,
            &mut scan,
            &mut stats,
        )?;
        mem.set(to, loc, rewritten)?;
    }

    mem.only(&[to]);
    Ok((to, new_roots, stats))
}

/// The shallow word size of a stored value (shared by both traversals).
fn words_of(v: &Value) -> usize {
    ps_gc_lang::memory::value_words(v)
}

#[cfg(test)]
mod cheney_tests {
    use super::*;
    use ps_gc_lang::memory::{GrowthPolicy, MemConfig};

    fn mem() -> Memory {
        Memory::new(MemConfig {
            region_budget: 1 << 20,
            growth: GrowthPolicy::Fixed,
            track_types: false,
            max_heap_words: None,
            page_words: 512,
        })
    }

    /// The canonical "heap shape" of a value: addresses replaced by a
    /// stable visit index so two heaps can be compared structurally.
    fn shape(mem: &Memory, v: &Value, ids: &mut HashMap<(RegionName, u32), usize>) -> String {
        match v {
            Value::Int(n) => format!("{n}"),
            Value::Addr(nu, loc) if !nu.is_cd() => {
                if let Some(id) = ids.get(&(*nu, *loc)) {
                    return format!("#{id}");
                }
                let id = ids.len();
                ids.insert((*nu, *loc), id);
                let stored = mem.get(*nu, *loc).expect("live").clone();
                format!("#{id}={}", shape(mem, &stored, ids))
            }
            Value::Addr(..) => "<cd>".to_string(),
            Value::Pair(a, b) => format!("({},{})", shape(mem, a, ids), shape(mem, b, ids)),
            Value::PackTag { val, .. } => format!("pack({})", shape(mem, val, ids)),
            Value::Inl(x) => format!("inl({})", shape(mem, x, ids)),
            Value::Inr(x) => format!("inr({})", shape(mem, x, ids)),
            other => format!("{other:?}"),
        }
    }

    #[test]
    fn cheney_matches_depth_first_on_trees() {
        let mut m1 = mem();
        let r1 = m1.alloc_region();
        let root1 = synth_tree(&mut m1, r1, 5).unwrap();
        let mut m2 = m1.clone();
        let (_, roots_df, s_df) = collect(&mut m1, std::slice::from_ref(&root1)).unwrap();
        let (_, roots_bf, s_bf) = collect_cheney(&mut m2, &[root1]).unwrap();
        assert_eq!(s_df.objects_copied, s_bf.objects_copied);
        let mut ids1 = HashMap::new();
        let mut ids2 = HashMap::new();
        assert_eq!(
            shape(&m1, &roots_df[0], &mut ids1),
            shape(&m2, &roots_bf[0], &mut ids2)
        );
    }

    #[test]
    fn cheney_preserves_sharing() {
        let mut m = mem();
        let r = m.alloc_region();
        let root = synth_dag(&mut m, r, 24).unwrap();
        let (_, _, stats) = collect_cheney(&mut m, &[root]).unwrap();
        assert_eq!(stats.objects_copied, 24);
        assert!(stats.sharing_hits > 0);
    }

    #[test]
    fn cheney_handles_deep_chains_without_deep_recursion() {
        // A left-spine list 50k deep: the depth-first collector would need
        // a 50k-deep meta stack; Cheney's queue keeps it flat. (The
        // recursion inside `scavenge` is bounded by the *immediate* value
        // shape, not the heap.)
        let mut m = mem();
        let r = m.alloc_region();
        let mut cur = Value::Int(0);
        for i in 0..50_000 {
            let loc = m.put(r, Value::pair(Value::Int(i), cur)).unwrap();
            cur = Value::Addr(r, loc);
        }
        let (_, _, stats) = collect_cheney(&mut m, &[cur]).unwrap();
        assert_eq!(stats.objects_copied, 50_000);
    }

    #[test]
    fn cheney_ignores_garbage() {
        let mut m = mem();
        let r = m.alloc_region();
        let root = synth_tree(&mut m, r, 3).unwrap();
        synth_tree(&mut m, r, 6).unwrap();
        let (_, _, stats) = collect_cheney(&mut m, &[root]).unwrap();
        assert_eq!(stats.objects_copied, 7);
    }
}
