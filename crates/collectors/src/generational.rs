//! The generational collector of §8 / Fig. 11, in executable (CPS and
//! closure-converted) form.
//!
//! Fig. 11's `copy[t][ry,ro] : M_{ry,ro}(t) → M_{ro,ro}(t)` copies young
//! objects into the old region and *stops traversing as soon as it hits a
//! reference into the old generation* — sound because the two-index `M`
//! operator forces old objects never to point young (§8). Region
//! existentials hide which generation an object is in; the collector
//! recovers it with `ifreg`.
//!
//! Two departures from the figure, each marked `paper:` below:
//!
//! * Fig. 11's not-old branch needs the children typed `M_{ry,ro}(·)`,
//!   which requires knowing `r = ry`; we test `ifreg (r = ry)` explicitly
//!   (with an unreachable-but-well-typed fallback), since only the equal
//!   branch of `ifreg` refines.
//! * `gc` hands the copy result (`M_{ro,ro}(t)`) to the mutator expecting
//!   `M_{ry',ro}(t)` at the fresh young region — the "free" coercion §8
//!   asserts; it is the generational subtyping rule of our checker.
//!
//! Blocks: `gc`=0, `gcend`=1, `copy`=2, `gpair1`=3, `gpair2`=4,
//! `gexist1`=5.

use ps_ir::Symbol;

use ps_gc_lang::syntax::{CodeDef, Kind, Op, Region, Tag, Term, Ty, Value, CD};

use crate::cont::ContShape;
use crate::CollectorImage;

/// Offset of `gc` within the image.
pub const GC: u32 = 0;
const GCEND: u32 = 1;
const COPY: u32 = 2;
const GPAIR1: u32 = 3;
const GPAIR2: u32 = 4;
const GEXIST1: u32 = 5;

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

fn rv(x: &str) -> Region {
    Region::Var(s(x))
}

/// Continuations receive the copied value at `M_{ro,ro}(τ)`.
fn shape() -> ContShape {
    ContShape {
        regions: vec![s("ry"), s("ro"), s("r3")],
        recv_ty: |sh, tag| {
            Ty::mgen(
                Region::Var(sh.regions[1]),
                Region::Var(sh.regions[1]),
                tag.clone(),
            )
        },
    }
}

/// The mutator-view operator at the collector's regions.
fn mg(young: &str, old: &str, tag: Tag) -> Ty {
    Ty::mgen(rv(young), rv(old), tag)
}

/// The type of a translated mutator function pointer in the generational
/// dialect: `∀[][ry,ro](M_{ry,ro}(t)) → 0 at cd`.
pub fn mutator_fn_ty(tag: Tag) -> Ty {
    let ry = s("ryf");
    let ro = s("rof");
    Ty::code(
        [],
        [ry, ro],
        [Ty::mgen(Region::Var(ry), Region::Var(ro), tag)],
    )
    .at(Region::cd())
}

/// Builds the generational collector: the six minor-collection blocks of
/// Fig. 11 followed by the six major-collection blocks of
/// [`crate::major`].
pub fn collector() -> CollectorImage {
    let mut code = vec![gc(), gcend(), copy(), gpair1(), gpair2(), gexist1()];
    code.extend(crate::major::blocks());
    CollectorImage {
        name: "generational",
        code,
        gc_entry: GC,
    }
}

/// ```text
/// fix gc[t:Ω][ry,ro](f, x).
///   ifgc ro (gcmajor[t][ry,ro](f, x))
///   (let region r3 in copy[t][ry,ro,r3](x, k₀))
/// ```
///
/// The old-region fullness check and the fall-through to the major
/// collector are our extension (§8 only sketches that a full collection
/// must exist).
fn gc() -> CodeDef {
    let sh = shape();
    let t = Tag::Var(s("t"));
    let f_ty = mutator_fn_ty(t.clone());
    let pack = sh.pack(
        Value::Addr(CD, GCEND),
        [t.clone(), Tag::Int, Tag::id_fn()],
        f_ty.clone(),
        Value::Var(s("f")),
        &t,
    );
    let minor = Term::LetRegion {
        rvar: s("r3"),
        body: (Term::let_(
            s("k"),
            Op::Put(rv("r3"), pack),
            Term::app(
                Value::Addr(CD, COPY),
                [t.clone()],
                [rv("ry"), rv("ro"), rv("r3")],
                [Value::Var(s("x")), Value::Var(s("k"))],
            ),
        ))
        .into(),
    };
    let body = Term::IfGc {
        rho: rv("ro"),
        full: (Term::app(
            Value::Addr(CD, crate::major::GC),
            [t.clone()],
            [rv("ry"), rv("ro")],
            [Value::Var(s("f")), Value::Var(s("x"))],
        ))
        .into(),
        cont: (minor).into(),
    };
    CodeDef {
        name: s("gc"),
        tvars: vec![(s("t"), Kind::Omega)],
        rvars: vec![s("ry"), s("ro")],
        params: vec![(s("f"), f_ty), (s("x"), mg("ry", "ro", Tag::Var(s("t"))))],
        body,
    }
}

/// ```text
/// fix gcend[…](y : M_{ro,ro}(t1), f).
///   only {ro} in let region ry' in f[][ry',ro](y)
/// ```
fn gcend() -> CodeDef {
    let t1 = Tag::Var(s("t1"));
    let body = Term::Only {
        regions: vec![rv("ro")],
        body: (Term::LetRegion {
            rvar: s("ry2"),
            body: (Term::app(
                Value::Var(s("f")),
                [],
                [rv("ry2"), rv("ro")],
                [Value::Var(s("y"))],
            ))
            .into(),
        })
        .into(),
    };
    CodeDef {
        name: s("gcend"),
        tvars: vec![
            (s("t1"), Kind::Omega),
            (s("t2"), Kind::Omega),
            (s("te"), Kind::Arrow),
        ],
        rvars: vec![s("ry"), s("ro"), s("r3")],
        params: vec![
            (s("y"), Ty::mgen(rv("ro"), rv("ro"), t1.clone())),
            (s("f"), mutator_fn_ty(t1)),
        ],
        body,
    }
}

/// Repacks a value at `∃r∈{ro}.(body at r)` with witness `ro` — the "free"
/// repacking Fig. 11 performs "just to help the type-system".
fn repack_old(val: Value, body: Ty) -> Value {
    Value::PackRgn {
        rvar: s("rp!g"),
        bound: (vec![rv("ro")]).into(),
        witness: rv("ro"),
        val: (val).into(),
        body_ty: body,
    }
}

/// The generational `copy` (Fig. 11's, CPS'd).
fn copy() -> CodeDef {
    let sh = shape();
    let t = Tag::Var(s("t"));
    let k = Value::Var(s("k"));
    let x = Value::Var(s("x"));

    let scalar_arm = sh.invoke(k.clone(), x.clone());

    let prod_arm = {
        let ta = Tag::Var(s("ta"));
        let tb = Tag::Var(s("tb"));
        let pair_tag = Tag::prod(ta.clone(), tb.clone());
        let rp = s("rp!g");
        let pair_body = |old: &str| {
            Ty::prod(
                Ty::mgen(Region::Var(rp), rv(old), ta.clone()),
                Ty::mgen(Region::Var(rp), rv(old), tb.clone()),
            )
        };
        // Already old: repack and return.
        let old_branch = {
            let z = repack_old(Value::Var(s("xr")), pair_body("ro"));
            Term::let_(s("z"), Op::Val(z), sh.invoke(k.clone(), Value::Var(s("z"))))
        };
        // Young: copy both components via the continuation chain.
        let young_branch = {
            let env_ty = Ty::prod(mg("ry", "ro", tb.clone()), sh.tk(&pair_tag));
            let pack = sh.pack(
                Value::Addr(CD, GPAIR1),
                [ta.clone(), tb.clone(), Tag::id_fn()],
                env_ty,
                Value::Var(s("cenv")),
                &ta,
            );
            Term::let_(
                s("y"),
                Op::Get(Value::Var(s("xr"))),
                Term::let_(
                    s("x2src"),
                    Op::Proj(2, Value::Var(s("y"))),
                    Term::let_(
                        s("cenv"),
                        Op::Val(Value::pair(Value::Var(s("x2src")), k.clone())),
                        Term::let_(
                            s("kp"),
                            Op::Put(rv("r3"), pack),
                            Term::let_(
                                s("x1src"),
                                Op::Proj(1, Value::Var(s("y"))),
                                Term::app(
                                    Value::Addr(CD, COPY),
                                    [ta],
                                    [rv("ry"), rv("ro"), rv("r3")],
                                    [Value::Var(s("x1src")), Value::Var(s("kp"))],
                                ),
                            ),
                        ),
                    ),
                ),
            )
        };
        Term::OpenRgn {
            pkg: x.clone(),
            rvar: s("rx"),
            x: s("xr"),
            body: (Term::IfReg {
                r1: rv("rx"),
                r2: rv("ro"),
                eq: (old_branch).into(),
                ne: (Term::IfReg {
                    r1: rv("rx"),
                    r2: rv("ry"),
                    eq: (young_branch).into(),
                    // paper: unreachable — the bound is {ry, ro} — but only
                    // equal branches refine, so a well-typed fallback is
                    // needed.
                    ne: (Term::Halt(Value::Int(0))).into(),
                })
                .into(),
            })
            .into(),
        }
    };

    let exist_arm = {
        let tep = s("tc");
        let u = s("u!g");
        let tx = s("tx");
        let exist_tag = Tag::exist(u, Tag::app(Tag::Var(tep), Tag::Var(u)));
        let target = Tag::app(Tag::Var(tep), Tag::Var(tx));
        let rp = s("rp!g");
        let exist_body = Ty::exist_tag(
            u,
            Kind::Omega,
            Ty::mgen(
                Region::Var(rp),
                rv("ro"),
                Tag::app(Tag::Var(tep), Tag::Var(u)),
            ),
        );
        let old_branch = {
            let z = repack_old(Value::Var(s("xr")), exist_body.clone());
            Term::let_(s("z"), Op::Val(z), sh.invoke(k.clone(), Value::Var(s("z"))))
        };
        let young_branch = {
            let env_ty = sh.tk(&exist_tag);
            let pack = sh.pack(
                Value::Addr(CD, GEXIST1),
                [Tag::Var(tx), Tag::Int, Tag::Var(tep)],
                env_ty,
                k.clone(),
                &target,
            );
            Term::let_(
                s("y"),
                Op::Get(Value::Var(s("xr"))),
                Term::OpenTag {
                    pkg: Value::Var(s("y")),
                    tvar: tx,
                    x: s("yy"),
                    body: (Term::let_(
                        s("kp"),
                        Op::Put(rv("r3"), pack),
                        Term::app(
                            Value::Addr(CD, COPY),
                            [target],
                            [rv("ry"), rv("ro"), rv("r3")],
                            [Value::Var(s("yy")), Value::Var(s("kp"))],
                        ),
                    ))
                    .into(),
                },
            )
        };
        Term::OpenRgn {
            pkg: x.clone(),
            rvar: s("rx"),
            x: s("xr"),
            body: (Term::IfReg {
                r1: rv("rx"),
                r2: rv("ro"),
                eq: (old_branch).into(),
                ne: (Term::IfReg {
                    r1: rv("rx"),
                    r2: rv("ry"),
                    eq: (young_branch).into(),
                    ne: (Term::Halt(Value::Int(0))).into(),
                })
                .into(),
            })
            .into(),
        }
    };

    let body = Term::Typecase {
        tag: t.clone(),
        int_arm: (scalar_arm.clone()).into(),
        arrow_arm: (scalar_arm).into(),
        prod_arm: (s("ta"), s("tb"), (prod_arm).into()),
        exist_arm: (s("tc"), (exist_arm).into()),
    };
    CodeDef {
        name: s("copy"),
        tvars: vec![(s("t"), Kind::Omega)],
        rvars: vec![s("ry"), s("ro"), s("r3")],
        params: vec![(s("x"), mg("ry", "ro", t.clone())), (s("k"), sh.tk(&t))],
        body,
    }
}

/// Continuation after the first component: copy the second.
fn gpair1() -> CodeDef {
    let sh = shape();
    let t1 = Tag::Var(s("t1"));
    let t2 = Tag::Var(s("t2"));
    let pair_tag = Tag::prod(t1.clone(), t2.clone());
    let env_ty = Ty::prod(Ty::mgen(rv("ro"), rv("ro"), t1.clone()), sh.tk(&pair_tag));
    let pack = sh.pack(
        Value::Addr(CD, GPAIR2),
        [t2.clone(), t1.clone(), Tag::id_fn()],
        env_ty,
        Value::Var(s("cenv")),
        &t2,
    );
    let body = Term::let_(
        s("x2src"),
        Op::Proj(1, Value::Var(s("c"))),
        Term::let_(
            s("ko"),
            Op::Proj(2, Value::Var(s("c"))),
            Term::let_(
                s("cenv"),
                Op::Val(Value::pair(Value::Var(s("x1")), Value::Var(s("ko")))),
                Term::let_(
                    s("kp"),
                    Op::Put(rv("r3"), pack),
                    Term::app(
                        Value::Addr(CD, COPY),
                        [t2.clone()],
                        [rv("ry"), rv("ro"), rv("r3")],
                        [Value::Var(s("x2src")), Value::Var(s("kp"))],
                    ),
                ),
            ),
        ),
    );
    CodeDef {
        name: s("gpair1"),
        tvars: vec![
            (s("t1"), Kind::Omega),
            (s("t2"), Kind::Omega),
            (s("te"), Kind::Arrow),
        ],
        rvars: vec![s("ry"), s("ro"), s("r3")],
        params: vec![
            (s("x1"), Ty::mgen(rv("ro"), rv("ro"), t1.clone())),
            (s("c"), Ty::prod(mg("ry", "ro", t2), sh.tk(&pair_tag))),
        ],
        body,
    }
}

/// Continuation after the second component: allocate the copied pair in the
/// old region and region-pack it (binders swapped as in `copypair2`).
fn gpair2() -> CodeDef {
    let sh = shape();
    let t1 = Tag::Var(s("t1"));
    let t2 = Tag::Var(s("t2"));
    let pair_tag = Tag::prod(t2.clone(), t1.clone());
    let rp = s("rp!g");
    let pair_body = Ty::prod(
        Ty::mgen(Region::Var(rp), rv("ro"), t2.clone()),
        Ty::mgen(Region::Var(rp), rv("ro"), t1.clone()),
    );
    let body = Term::let_(
        s("x1c"),
        Op::Proj(1, Value::Var(s("c"))),
        Term::let_(
            s("ko"),
            Op::Proj(2, Value::Var(s("c"))),
            Term::let_(
                s("zaddr"),
                Op::Put(
                    rv("ro"),
                    Value::pair(Value::Var(s("x1c")), Value::Var(s("x2"))),
                ),
                Term::let_(
                    s("z"),
                    Op::Val(repack_old(Value::Var(s("zaddr")), pair_body)),
                    sh.invoke(Value::Var(s("ko")), Value::Var(s("z"))),
                ),
            ),
        ),
    );
    CodeDef {
        name: s("gpair2"),
        tvars: vec![
            (s("t1"), Kind::Omega),
            (s("t2"), Kind::Omega),
            (s("te"), Kind::Arrow),
        ],
        rvars: vec![s("ry"), s("ro"), s("r3")],
        params: vec![
            (s("x2"), Ty::mgen(rv("ro"), rv("ro"), t1.clone())),
            (
                s("c"),
                Ty::prod(Ty::mgen(rv("ro"), rv("ro"), t2), sh.tk(&pair_tag)),
            ),
        ],
        body,
    }
}

/// Continuation after an existential's payload: re-pack with the original
/// witness into the old region.
fn gexist1() -> CodeDef {
    let sh = shape();
    let t1 = s("t1");
    let te = s("te");
    let u = s("u!h");
    let rp = s("rp!g");
    let exist_tag = Tag::exist(u, Tag::app(Tag::Var(te), Tag::Var(u)));
    let payload_tag = Tag::app(Tag::Var(te), Tag::Var(t1));
    let inner_pack = Value::PackTag {
        tvar: u,
        kind: Kind::Omega,
        tag: Tag::Var(t1),
        val: (Value::Var(s("z"))).into(),
        body_ty: Ty::mgen(rv("ro"), rv("ro"), Tag::app(Tag::Var(te), Tag::Var(u))),
    };
    let exist_body = Ty::exist_tag(
        u,
        Kind::Omega,
        Ty::mgen(
            Region::Var(rp),
            rv("ro"),
            Tag::app(Tag::Var(te), Tag::Var(u)),
        ),
    );
    let body = Term::let_(
        s("waddr"),
        Op::Put(rv("ro"), inner_pack),
        Term::let_(
            s("w"),
            Op::Val(repack_old(Value::Var(s("waddr")), exist_body)),
            sh.invoke(Value::Var(s("c")), Value::Var(s("w"))),
        ),
    );
    CodeDef {
        name: s("gexist1"),
        tvars: vec![
            (s("t1"), Kind::Omega),
            (s("t2"), Kind::Omega),
            (s("te"), Kind::Arrow),
        ],
        rvars: vec![s("ry"), s("ro"), s("r3")],
        params: vec![
            (s("z"), Ty::mgen(rv("ro"), rv("ro"), payload_tag)),
            (s("c"), sh.tk(&exist_tag)),
        ],
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_gc_lang::machine::Program;
    use ps_gc_lang::syntax::Dialect;
    use ps_gc_lang::tyck::Checker;

    /// The generational collector is certified by the λGCgen typechecker
    /// (Fig. 10's rules, plus the documented subtyping).
    #[test]
    fn collector_typechecks() {
        let image = collector();
        let program = Program {
            dialect: Dialect::Generational,
            code: image.code,
            main: Term::Halt(Value::Int(0)),
        };
        Checker::check_program(&program).unwrap();
    }

    #[test]
    fn image_layout() {
        let image = collector();
        assert_eq!(image.code.len(), 12, "six minor + six major blocks");
        assert_eq!(image.code[GC as usize].name, s("gc"));
        assert_eq!(image.code[GC as usize].rvars.len(), 2, "gc takes [ry, ro]");
        assert_eq!(image.code[crate::major::GC as usize].name, s("gcmajor"));
        assert_eq!(image.code[11].name, s("mexist1"));
    }

    #[test]
    fn minor_gc_falls_through_to_major() {
        let image = collector();
        let text = ps_gc_lang::pretty::code_def_to_string(&image.code[GC as usize]);
        assert!(
            text.contains("ifgc ro"),
            "minor gc checks the old region first"
        );
        assert!(text.contains("cd.6"), "… and calls the major collector");
    }

    #[test]
    fn copy_stops_at_old_objects() {
        // The pair and existential arms test `ifreg (rx = ro)` before
        // descending.
        let image = collector();
        let text = ps_gc_lang::pretty::code_def_to_string(&image.code[COPY as usize]);
        assert!(text.contains("ifreg (rx = ro)"));
        assert!(text.contains("ifreg (rx = ry)"));
    }

    #[test]
    fn gcend_reuses_the_old_region() {
        let image = collector();
        let text = ps_gc_lang::pretty::code_def_to_string(&image.code[GCEND as usize]);
        assert!(text.contains("only {ro} in"));
        assert!(text.contains("let region ry2 in"));
    }
}
