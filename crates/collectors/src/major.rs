//! Full (major) collection for the generational scheme — the companion
//! collector §8 alludes to ("another function needs to be written to
//! garbage collect the old generation") but does not show.
//!
//! When the old region fills, *everything* live — young and old — is
//! evacuated into a fresh region `rn`, which then becomes the new old
//! generation. The interesting typing fact: a single `copy` suffices for
//! both generations because a value wholly in the old region inhabits the
//! general mutator type by the generational subtyping
//! `M_{ro,ro}(τ) ≤ M_{ry,ro}(τ)` (the bounded-quantification reading of
//! §8's region existentials); the `r = ro` branch feeds old children
//! straight back into the same `copy`.
//!
//! Blocks are appended after the minor collector's six:
//! `gc`=6, `gcend`=7, `copy`=8, `mpair1`=9, `mpair2`=10, `mexist1`=11.

use ps_ir::Symbol;

use ps_gc_lang::syntax::{CodeDef, Kind, Op, Region, Tag, Term, Ty, Value, CD};

use crate::cont::ContShape;
use crate::generational::mutator_fn_ty;

/// Offset of the major `gc` within the combined generational image.
pub const GC: u32 = 6;
const GCEND: u32 = 7;
const COPY: u32 = 8;
const MPAIR1: u32 = 9;
const MPAIR2: u32 = 10;
const MEXIST1: u32 = 11;

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

fn rv(x: &str) -> Region {
    Region::Var(s(x))
}

/// Continuations receive the evacuated value at `M_{rn,rn}(τ)`.
fn shape() -> ContShape {
    ContShape {
        regions: vec![s("ry"), s("ro"), s("rn"), s("r3")],
        recv_ty: |sh, tag| {
            Ty::mgen(
                Region::Var(sh.regions[2]),
                Region::Var(sh.regions[2]),
                tag.clone(),
            )
        },
    }
}

fn mg(young: &str, old: &str, tag: Tag) -> Ty {
    Ty::mgen(rv(young), rv(old), tag)
}

/// The six blocks of the major collector.
pub fn blocks() -> Vec<CodeDef> {
    vec![gc(), gcend(), copy(), mpair1(), mpair2(), mexist1()]
}

/// ```text
/// fix gcmajor[t:Ω][ry,ro](f, x).
///   let region rn in let region r3 in copymajor[t][ry,ro,rn,r3](x, k₀)
/// ```
fn gc() -> CodeDef {
    let sh = shape();
    let t = Tag::Var(s("t"));
    let f_ty = mutator_fn_ty(t.clone());
    let pack = sh.pack(
        Value::Addr(CD, GCEND),
        [t.clone(), Tag::Int, Tag::id_fn()],
        f_ty.clone(),
        Value::Var(s("f")),
        &t,
    );
    let body = Term::LetRegion {
        rvar: s("rn"),
        body: (Term::LetRegion {
            rvar: s("r3"),
            body: (Term::let_(
                s("k"),
                Op::Put(rv("r3"), pack),
                Term::app(
                    Value::Addr(CD, COPY),
                    [t.clone()],
                    [rv("ry"), rv("ro"), rv("rn"), rv("r3")],
                    [Value::Var(s("x")), Value::Var(s("k"))],
                ),
            ))
            .into(),
        })
        .into(),
    };
    CodeDef {
        name: s("gcmajor"),
        tvars: vec![(s("t"), Kind::Omega)],
        rvars: vec![s("ry"), s("ro")],
        params: vec![(s("f"), f_ty), (s("x"), mg("ry", "ro", Tag::Var(s("t"))))],
        body,
    }
}

/// ```text
/// fix gcendmajor[…](y : M_{rn,rn}(t1), f).
///   only {rn} in let region ry' in f[][ry',rn](y)
/// ```
///
/// `rn` becomes the new old region; the coercion
/// `M_{rn,rn}(t) ≤ M_{ry',rn}(t)` is the same "free" one Fig. 11's `gc`
/// relies on.
fn gcend() -> CodeDef {
    let t1 = Tag::Var(s("t1"));
    let body = Term::Only {
        regions: vec![rv("rn")],
        body: (Term::LetRegion {
            rvar: s("ry2"),
            body: (Term::app(
                Value::Var(s("f")),
                [],
                [rv("ry2"), rv("rn")],
                [Value::Var(s("y"))],
            ))
            .into(),
        })
        .into(),
    };
    CodeDef {
        name: s("gcendmajor"),
        tvars: vec![
            (s("t1"), Kind::Omega),
            (s("t2"), Kind::Omega),
            (s("te"), Kind::Arrow),
        ],
        rvars: vec![s("ry"), s("ro"), s("rn"), s("r3")],
        params: vec![
            (s("y"), Ty::mgen(rv("rn"), rv("rn"), t1.clone())),
            (s("f"), mutator_fn_ty(t1)),
        ],
        body,
    }
}

/// Repacks a value at `∃r∈{rn}.(body at r)`.
fn repack_new(val: Value, body: Ty) -> Value {
    Value::PackRgn {
        rvar: s("rp!m"),
        bound: (vec![rv("rn")]).into(),
        witness: rv("rn"),
        val: (val).into(),
        body_ty: body,
    }
}

/// The major `copy`: evacuates young *and* old objects into `rn`.
///
/// Both `ifreg` branches copy; the only difference is which regions the
/// children are typed at — and thanks to the generational subtyping, both
/// feed the same recursive call.
fn copy() -> CodeDef {
    let sh = shape();
    let t = Tag::Var(s("t"));
    let k = Value::Var(s("k"));
    let x = Value::Var(s("x"));
    let all_regions = [rv("ry"), rv("ro"), rv("rn"), rv("r3")];

    let scalar_arm = sh.invoke(k.clone(), x.clone());

    // The copy body shared by both refined branches of the pair arm (after
    // `ifreg`, `xr` has a concrete region, so `get` and the recursive calls
    // typecheck; in the old branch the children are M_{ro,ro}(·) which
    // subtype into copy's M_{ry,ro}(·) parameter).
    let pair_copy = |ta: &Tag, tb: &Tag| {
        let pair_tag = Tag::prod(ta.clone(), tb.clone());
        let env_ty = Ty::prod(mg("ry", "ro", tb.clone()), sh.tk(&pair_tag));
        let pack = sh.pack(
            Value::Addr(CD, MPAIR1),
            [ta.clone(), tb.clone(), Tag::id_fn()],
            env_ty,
            Value::Var(s("cenv")),
            ta,
        );
        Term::let_(
            s("y"),
            Op::Get(Value::Var(s("xr"))),
            Term::let_(
                s("x2src"),
                Op::Proj(2, Value::Var(s("y"))),
                Term::let_(
                    s("cenv"),
                    Op::Val(Value::pair(Value::Var(s("x2src")), k.clone())),
                    Term::let_(
                        s("kp"),
                        Op::Put(rv("r3"), pack),
                        Term::let_(
                            s("x1src"),
                            Op::Proj(1, Value::Var(s("y"))),
                            Term::app(
                                Value::Addr(CD, COPY),
                                [ta.clone()],
                                all_regions,
                                [Value::Var(s("x1src")), Value::Var(s("kp"))],
                            ),
                        ),
                    ),
                ),
            ),
        )
    };

    let prod_arm = {
        let ta = Tag::Var(s("ta"));
        let tb = Tag::Var(s("tb"));
        Term::OpenRgn {
            pkg: x.clone(),
            rvar: s("rx"),
            x: s("xr"),
            body: (Term::IfReg {
                r1: rv("rx"),
                r2: rv("ro"),
                eq: (pair_copy(&ta, &tb)).into(),
                ne: (Term::IfReg {
                    r1: rv("rx"),
                    r2: rv("ry"),
                    eq: (pair_copy(&ta, &tb)).into(),
                    ne: (Term::Halt(Value::Int(0))).into(),
                })
                .into(),
            })
            .into(),
        }
    };

    let exist_copy = |tep: Symbol, tx: Symbol| {
        let u = s("u!m");
        let exist_tag = Tag::exist(u, Tag::app(Tag::Var(tep), Tag::Var(u)));
        let target = Tag::app(Tag::Var(tep), Tag::Var(tx));
        let env_ty = sh.tk(&exist_tag);
        let pack = sh.pack(
            Value::Addr(CD, MEXIST1),
            [Tag::Var(tx), Tag::Int, Tag::Var(tep)],
            env_ty,
            k.clone(),
            &target,
        );
        Term::let_(
            s("y"),
            Op::Get(Value::Var(s("xr"))),
            Term::OpenTag {
                pkg: Value::Var(s("y")),
                tvar: tx,
                x: s("yy"),
                body: (Term::let_(
                    s("kp"),
                    Op::Put(rv("r3"), pack),
                    Term::app(
                        Value::Addr(CD, COPY),
                        [target],
                        all_regions,
                        [Value::Var(s("yy")), Value::Var(s("kp"))],
                    ),
                ))
                .into(),
            },
        )
    };

    let exist_arm = {
        let tep = s("tc");
        let tx = s("tx");
        Term::OpenRgn {
            pkg: x.clone(),
            rvar: s("rx"),
            x: s("xr"),
            body: (Term::IfReg {
                r1: rv("rx"),
                r2: rv("ro"),
                eq: (exist_copy(tep, tx)).into(),
                ne: (Term::IfReg {
                    r1: rv("rx"),
                    r2: rv("ry"),
                    eq: (exist_copy(tep, tx)).into(),
                    ne: (Term::Halt(Value::Int(0))).into(),
                })
                .into(),
            })
            .into(),
        }
    };

    let body = Term::Typecase {
        tag: t.clone(),
        int_arm: (scalar_arm.clone()).into(),
        arrow_arm: (scalar_arm).into(),
        prod_arm: (s("ta"), s("tb"), (prod_arm).into()),
        exist_arm: (s("tc"), (exist_arm).into()),
    };
    CodeDef {
        name: s("copymajor"),
        tvars: vec![(s("t"), Kind::Omega)],
        rvars: vec![s("ry"), s("ro"), s("rn"), s("r3")],
        params: vec![(s("x"), mg("ry", "ro", t.clone())), (s("k"), sh.tk(&t))],
        body,
    }
}

/// Continuation after the first component.
fn mpair1() -> CodeDef {
    let sh = shape();
    let t1 = Tag::Var(s("t1"));
    let t2 = Tag::Var(s("t2"));
    let pair_tag = Tag::prod(t1.clone(), t2.clone());
    let env_ty = Ty::prod(Ty::mgen(rv("rn"), rv("rn"), t1.clone()), sh.tk(&pair_tag));
    let pack = sh.pack(
        Value::Addr(CD, MPAIR2),
        [t2.clone(), t1.clone(), Tag::id_fn()],
        env_ty,
        Value::Var(s("cenv")),
        &t2,
    );
    let body = Term::let_(
        s("x2src"),
        Op::Proj(1, Value::Var(s("c"))),
        Term::let_(
            s("ko"),
            Op::Proj(2, Value::Var(s("c"))),
            Term::let_(
                s("cenv"),
                Op::Val(Value::pair(Value::Var(s("x1")), Value::Var(s("ko")))),
                Term::let_(
                    s("kp"),
                    Op::Put(rv("r3"), pack),
                    Term::app(
                        Value::Addr(CD, COPY),
                        [t2.clone()],
                        [rv("ry"), rv("ro"), rv("rn"), rv("r3")],
                        [Value::Var(s("x2src")), Value::Var(s("kp"))],
                    ),
                ),
            ),
        ),
    );
    CodeDef {
        name: s("mpair1"),
        tvars: vec![
            (s("t1"), Kind::Omega),
            (s("t2"), Kind::Omega),
            (s("te"), Kind::Arrow),
        ],
        rvars: vec![s("ry"), s("ro"), s("rn"), s("r3")],
        params: vec![
            (s("x1"), Ty::mgen(rv("rn"), rv("rn"), t1.clone())),
            (s("c"), Ty::prod(mg("ry", "ro", t2), sh.tk(&pair_tag))),
        ],
        body,
    }
}

/// Continuation after the second component: allocate in `rn` and
/// region-pack.
fn mpair2() -> CodeDef {
    let sh = shape();
    let t1 = Tag::Var(s("t1"));
    let t2 = Tag::Var(s("t2"));
    let pair_tag = Tag::prod(t2.clone(), t1.clone());
    let rp = s("rp!m");
    let pair_body = Ty::prod(
        Ty::mgen(Region::Var(rp), rv("rn"), t2.clone()),
        Ty::mgen(Region::Var(rp), rv("rn"), t1.clone()),
    );
    let body = Term::let_(
        s("x1c"),
        Op::Proj(1, Value::Var(s("c"))),
        Term::let_(
            s("ko"),
            Op::Proj(2, Value::Var(s("c"))),
            Term::let_(
                s("zaddr"),
                Op::Put(
                    rv("rn"),
                    Value::pair(Value::Var(s("x1c")), Value::Var(s("x2"))),
                ),
                Term::let_(
                    s("z"),
                    Op::Val(repack_new(Value::Var(s("zaddr")), pair_body)),
                    sh.invoke(Value::Var(s("ko")), Value::Var(s("z"))),
                ),
            ),
        ),
    );
    CodeDef {
        name: s("mpair2"),
        tvars: vec![
            (s("t1"), Kind::Omega),
            (s("t2"), Kind::Omega),
            (s("te"), Kind::Arrow),
        ],
        rvars: vec![s("ry"), s("ro"), s("rn"), s("r3")],
        params: vec![
            (s("x2"), Ty::mgen(rv("rn"), rv("rn"), t1.clone())),
            (
                s("c"),
                Ty::prod(Ty::mgen(rv("rn"), rv("rn"), t2), sh.tk(&pair_tag)),
            ),
        ],
        body,
    }
}

/// Continuation after an existential's payload.
fn mexist1() -> CodeDef {
    let sh = shape();
    let t1 = s("t1");
    let te = s("te");
    let u = s("u!n");
    let rp = s("rp!m");
    let exist_tag = Tag::exist(u, Tag::app(Tag::Var(te), Tag::Var(u)));
    let payload_tag = Tag::app(Tag::Var(te), Tag::Var(t1));
    let inner_pack = Value::PackTag {
        tvar: u,
        kind: Kind::Omega,
        tag: Tag::Var(t1),
        val: (Value::Var(s("z"))).into(),
        body_ty: Ty::mgen(rv("rn"), rv("rn"), Tag::app(Tag::Var(te), Tag::Var(u))),
    };
    let exist_body = Ty::exist_tag(
        u,
        Kind::Omega,
        Ty::mgen(
            Region::Var(rp),
            rv("rn"),
            Tag::app(Tag::Var(te), Tag::Var(u)),
        ),
    );
    let body = Term::let_(
        s("waddr"),
        Op::Put(rv("rn"), inner_pack),
        Term::let_(
            s("w"),
            Op::Val(repack_new(Value::Var(s("waddr")), exist_body)),
            sh.invoke(Value::Var(s("c")), Value::Var(s("w"))),
        ),
    );
    CodeDef {
        name: s("mexist1"),
        tvars: vec![
            (s("t1"), Kind::Omega),
            (s("t2"), Kind::Omega),
            (s("te"), Kind::Arrow),
        ],
        rvars: vec![s("ry"), s("ro"), s("rn"), s("r3")],
        params: vec![
            (s("z"), Ty::mgen(rv("rn"), rv("rn"), payload_tag)),
            (s("c"), sh.tk(&exist_tag)),
        ],
        body,
    }
}
