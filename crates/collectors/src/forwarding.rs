//! The forwarding-pointer collector of §7 / Fig. 9, in executable
//! (CPS and closure-converted) form.
//!
//! Fig. 9 is given in direct style "for clarity of presentation"; this is
//! its Fig. 12-style conversion. The differences from the basic collector:
//!
//! * `gc` bundles `(f, x)` into a single from-space object and `widen`s it,
//!   because Fig. 8's rule types the widen body with only the widened value
//!   in scope — the cast must cover the whole live heap at once (§7.1);
//! * `copy` receives the collector view `C_{r₁,r₂}(t)` and checks the tag
//!   bit with `ifleft`: an `inr` object is already forwarded and its
//!   to-space copy is returned directly (sharing preserved — DAGs stay
//!   DAGs);
//! * after copying an object, the continuation overwrites the original
//!   with `set x := inr z` — installing the forwarding pointer costs one
//!   stolen bit per object, not an extra word (§7, fn. 1).
//!
//! Blocks: `gc`=0, `gcend`=1, `copy`=2, `fwdpair1`=3, `fwdpair2`=4,
//! `fwdexist1`=5.

use ps_ir::Symbol;

use ps_gc_lang::syntax::{CodeDef, Kind, Op, Region, Tag, Term, Ty, Value, CD};

use crate::basic::mutator_fn_ty;
use crate::cont::{to_space_shape, ContShape};
use crate::CollectorImage;

/// Offset of `gc` within the image.
pub const GC: u32 = 0;
const GCEND: u32 = 1;
const COPY: u32 = 2;
const FWDPAIR1: u32 = 3;
const FWDPAIR2: u32 = 4;
const FWDEXIST1: u32 = 5;

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

fn rv(x: &str) -> Region {
    Region::Var(s(x))
}

fn shape() -> ContShape {
    to_space_shape(s("r1"), s("r2"), s("r3"))
}

/// The collector view of a tag: `C_{r1,r2}(τ)`.
fn c_of(tag: Tag) -> Ty {
    Ty::c(rv("r1"), rv("r2"), tag)
}

/// Builds the forwarding collector.
pub fn collector() -> CollectorImage {
    CollectorImage {
        name: "forwarding",
        code: vec![gc(), gcend(), copy(), fwdpair1(), fwdpair2(), fwdexist1()],
        gc_entry: GC,
    }
}

/// ```text
/// fix gc[t:Ω][r1](f, x).
///   let region r2 in
///   let w0 = put[r1](inl (f, x)) in
///   let w = widen[r1→r2][(t→0) × t](w0) in
///   let region r3 in
///   ifleft y = get w then …copy… else halt 0
/// ```
fn gc() -> CodeDef {
    let sh = shape();
    let t = Tag::Var(s("t"));
    let f_ty = mutator_fn_ty(t.clone());
    let arrow_tag = Tag::arrow([t.clone()]);
    let bundle_tag = Tag::prod(arrow_tag, t.clone());

    // After the widen: w : C_{r1,r2}((t→0) × t).
    let after_widen = Term::LetRegion {
        rvar: s("r3"),
        body: (Term::let_(
            s("y"),
            Op::Get(Value::Var(s("w"))),
            Term::IfLeft {
                x: s("yv"),
                scrut: Value::Var(s("y")),
                left: (Term::let_(
                    s("ys"),
                    Op::Strip(Value::Var(s("yv"))),
                    Term::let_(
                        s("fv"),
                        Op::Proj(1, Value::Var(s("ys"))),
                        Term::let_(
                            s("xv"),
                            Op::Proj(2, Value::Var(s("ys"))),
                            Term::let_(
                                s("k"),
                                Op::Put(
                                    rv("r3"),
                                    sh.pack(
                                        Value::Addr(CD, GCEND),
                                        [t.clone(), Tag::Int, Tag::id_fn()],
                                        f_ty.clone(),
                                        Value::Var(s("fv")),
                                        &t,
                                    ),
                                ),
                                Term::app(
                                    Value::Addr(CD, COPY),
                                    [t.clone()],
                                    [rv("r1"), rv("r2"), rv("r3")],
                                    [Value::Var(s("xv")), Value::Var(s("k"))],
                                ),
                            ),
                        ),
                    ),
                ))
                .into(),
                // A freshly allocated bundle is always inl; this branch is
                // unreachable but must typecheck.
                right: (Term::Halt(Value::Int(0))).into(),
            },
        ))
        .into(),
    };
    let body = Term::LetRegion {
        rvar: s("r2"),
        body: (Term::let_(
            s("w0"),
            Op::Put(
                rv("r1"),
                Value::inl(Value::pair(Value::Var(s("f")), Value::Var(s("x")))),
            ),
            Term::Widen {
                x: s("w"),
                from: rv("r1"),
                to: rv("r2"),
                tag: bundle_tag,
                v: Value::Var(s("w0")),
                body: (after_widen).into(),
            },
        ))
        .into(),
    };
    CodeDef {
        name: s("gc"),
        tvars: vec![(s("t"), Kind::Omega)],
        rvars: vec![s("r1")],
        params: vec![(s("f"), f_ty), (s("x"), Ty::m(rv("r1"), Tag::Var(s("t"))))],
        body,
    }
}

/// Identical to the basic `gcend`: free everything but to-space, return.
fn gcend() -> CodeDef {
    let t1 = Tag::Var(s("t1"));
    let body = Term::Only {
        regions: vec![rv("r2")],
        body: (Term::app(Value::Var(s("f")), [], [rv("r2")], [Value::Var(s("y"))])).into(),
    };
    CodeDef {
        name: s("gcend"),
        tvars: vec![
            (s("t1"), Kind::Omega),
            (s("t2"), Kind::Omega),
            (s("te"), Kind::Arrow),
        ],
        rvars: vec![s("r1"), s("r2"), s("r3")],
        params: vec![
            (s("y"), Ty::m(rv("r2"), t1.clone())),
            (s("f"), mutator_fn_ty(t1)),
        ],
        body,
    }
}

/// The forwarding `copy` (Fig. 9's, CPS'd): `ifleft` distinguishes live
/// objects (copy, then the continuation installs the forwarding pointer)
/// from forwarded ones (return the to-space copy — sharing preserved).
fn copy() -> CodeDef {
    let sh = shape();
    let t = Tag::Var(s("t"));
    let k = Value::Var(s("k"));
    let x = Value::Var(s("x"));

    let scalar_arm = sh.invoke(k.clone(), x.clone());

    let prod_arm = {
        let ta = Tag::Var(s("ta"));
        let tb = Tag::Var(s("tb"));
        let pair_tag = Tag::prod(ta.clone(), tb.clone());
        // env : C(ta×tb) × (C(tb) × tk[ta×tb]) — the original address, the
        // second component's source, and the outer continuation.
        let env_ty = Ty::prod(
            c_of(pair_tag.clone()),
            Ty::prod(c_of(tb.clone()), sh.tk(&pair_tag)),
        );
        let pack = sh.pack(
            Value::Addr(CD, FWDPAIR1),
            [ta.clone(), tb.clone(), Tag::id_fn()],
            env_ty,
            Value::Var(s("cenv")),
            &ta,
        );
        Term::let_(
            s("y"),
            Op::Get(x.clone()),
            Term::IfLeft {
                x: s("yv"),
                scrut: Value::Var(s("y")),
                left: (Term::let_(
                    s("ys"),
                    Op::Strip(Value::Var(s("yv"))),
                    Term::let_(
                        s("x2src"),
                        Op::Proj(2, Value::Var(s("ys"))),
                        Term::let_(
                            s("cenv"),
                            Op::Val(Value::pair(
                                x.clone(),
                                Value::pair(Value::Var(s("x2src")), k.clone()),
                            )),
                            Term::let_(
                                s("kp"),
                                Op::Put(rv("r3"), pack),
                                Term::let_(
                                    s("x1src"),
                                    Op::Proj(1, Value::Var(s("ys"))),
                                    Term::app(
                                        Value::Addr(CD, COPY),
                                        [ta],
                                        [rv("r1"), rv("r2"), rv("r3")],
                                        [Value::Var(s("x1src")), Value::Var(s("kp"))],
                                    ),
                                ),
                            ),
                        ),
                    ),
                ))
                .into(),
                // Already forwarded: strip off the inr and hand the to-space
                // copy straight to the continuation.
                right: (Term::let_(
                    s("z"),
                    Op::Strip(Value::Var(s("yv"))),
                    sh.invoke(k.clone(), Value::Var(s("z"))),
                ))
                .into(),
            },
        )
    };

    let exist_arm = {
        let tep = s("tc");
        let u = s("u!e");
        let exist_tag = Tag::exist(u, Tag::app(Tag::Var(tep), Tag::Var(u)));
        let tx = s("tx");
        let target = Tag::app(Tag::Var(tep), Tag::Var(tx));
        // env : C(∃u.tc u) × tk[∃u.tc u].
        let env_ty = Ty::prod(c_of(exist_tag.clone()), sh.tk(&exist_tag));
        let pack = sh.pack(
            Value::Addr(CD, FWDEXIST1),
            [Tag::Var(tx), Tag::Int, Tag::Var(tep)],
            env_ty,
            Value::Var(s("cenv")),
            &target,
        );
        Term::let_(
            s("y"),
            Op::Get(x.clone()),
            Term::IfLeft {
                x: s("yv"),
                scrut: Value::Var(s("y")),
                left: (Term::let_(
                    s("ys"),
                    Op::Strip(Value::Var(s("yv"))),
                    Term::OpenTag {
                        pkg: Value::Var(s("ys")),
                        tvar: tx,
                        x: s("yy"),
                        body: (Term::let_(
                            s("cenv"),
                            Op::Val(Value::pair(x.clone(), k.clone())),
                            Term::let_(
                                s("kp"),
                                Op::Put(rv("r3"), pack),
                                Term::app(
                                    Value::Addr(CD, COPY),
                                    [target],
                                    [rv("r1"), rv("r2"), rv("r3")],
                                    [Value::Var(s("yy")), Value::Var(s("kp"))],
                                ),
                            ),
                        ))
                        .into(),
                    },
                ))
                .into(),
                right: (Term::let_(
                    s("z"),
                    Op::Strip(Value::Var(s("yv"))),
                    sh.invoke(k.clone(), Value::Var(s("z"))),
                ))
                .into(),
            },
        )
    };

    let body = Term::Typecase {
        tag: t.clone(),
        int_arm: (scalar_arm.clone()).into(),
        arrow_arm: (scalar_arm).into(),
        prod_arm: (s("ta"), s("tb"), (prod_arm).into()),
        exist_arm: (s("tc"), (exist_arm).into()),
    };
    CodeDef {
        name: s("copy"),
        tvars: vec![(s("t"), Kind::Omega)],
        rvars: vec![s("r1"), s("r2"), s("r3")],
        params: vec![(s("x"), c_of(t.clone())), (s("k"), sh.tk(&t))],
        body,
    }
}

/// Continuation after the first component: copy the second.
///
/// `x1 : M_{r2}(t1)`, `c : C(t1×t2) × (C(t2) × tk[t1×t2])`.
fn fwdpair1() -> CodeDef {
    let sh = shape();
    let t1 = Tag::Var(s("t1"));
    let t2 = Tag::Var(s("t2"));
    let pair_tag = Tag::prod(t1.clone(), t2.clone());
    // Next env: C(t1×t2) × (M_{r2}(t1) × tk[t1×t2]).
    let env_ty = Ty::prod(
        c_of(pair_tag.clone()),
        Ty::prod(Ty::m(rv("r2"), t1.clone()), sh.tk(&pair_tag)),
    );
    let pack = sh.pack(
        Value::Addr(CD, FWDPAIR2),
        [t2.clone(), t1.clone(), Tag::id_fn()],
        env_ty,
        Value::Var(s("cenv")),
        &t2,
    );
    let body = Term::let_(
        s("xorig"),
        Op::Proj(1, Value::Var(s("c"))),
        Term::let_(
            s("rest"),
            Op::Proj(2, Value::Var(s("c"))),
            Term::let_(
                s("x2src"),
                Op::Proj(1, Value::Var(s("rest"))),
                Term::let_(
                    s("ko"),
                    Op::Proj(2, Value::Var(s("rest"))),
                    Term::let_(
                        s("cenv"),
                        Op::Val(Value::pair(
                            Value::Var(s("xorig")),
                            Value::pair(Value::Var(s("x1")), Value::Var(s("ko"))),
                        )),
                        Term::let_(
                            s("kp"),
                            Op::Put(rv("r3"), pack),
                            Term::app(
                                Value::Addr(CD, COPY),
                                [t2.clone()],
                                [rv("r1"), rv("r2"), rv("r3")],
                                [Value::Var(s("x2src")), Value::Var(s("kp"))],
                            ),
                        ),
                    ),
                ),
            ),
        ),
    );
    CodeDef {
        name: s("fwdpair1"),
        tvars: vec![
            (s("t1"), Kind::Omega),
            (s("t2"), Kind::Omega),
            (s("te"), Kind::Arrow),
        ],
        rvars: vec![s("r1"), s("r2"), s("r3")],
        params: vec![
            (s("x1"), Ty::m(rv("r2"), t1.clone())),
            (
                s("c"),
                Ty::prod(c_of(pair_tag.clone()), Ty::prod(c_of(t2), sh.tk(&pair_tag))),
            ),
        ],
        body,
    }
}

/// Continuation after the second component: allocate the copied pair,
/// install the forwarding pointer (`set xorig := inr z`), and return.
///
/// Binders swapped as in `copypair2`: `x2 : M_{r2}(t1)` is the *second*
/// component's copy; the original pair tag is `t2 × t1`.
fn fwdpair2() -> CodeDef {
    let sh = shape();
    let t1 = Tag::Var(s("t1"));
    let t2 = Tag::Var(s("t2"));
    let pair_tag = Tag::prod(t2.clone(), t1.clone());
    let body = Term::let_(
        s("xorig"),
        Op::Proj(1, Value::Var(s("c"))),
        Term::let_(
            s("rest"),
            Op::Proj(2, Value::Var(s("c"))),
            Term::let_(
                s("x1c"),
                Op::Proj(1, Value::Var(s("rest"))),
                Term::let_(
                    s("ko"),
                    Op::Proj(2, Value::Var(s("rest"))),
                    Term::let_(
                        s("z"),
                        Op::Put(
                            rv("r2"),
                            Value::inl(Value::pair(Value::Var(s("x1c")), Value::Var(s("x2")))),
                        ),
                        Term::Set {
                            dst: Value::Var(s("xorig")),
                            src: Value::inr(Value::Var(s("z"))),
                            body: (sh.invoke(Value::Var(s("ko")), Value::Var(s("z")))).into(),
                        },
                    ),
                ),
            ),
        ),
    );
    CodeDef {
        name: s("fwdpair2"),
        tvars: vec![
            (s("t1"), Kind::Omega),
            (s("t2"), Kind::Omega),
            (s("te"), Kind::Arrow),
        ],
        rvars: vec![s("r1"), s("r2"), s("r3")],
        params: vec![
            (s("x2"), Ty::m(rv("r2"), t1.clone())),
            (
                s("c"),
                Ty::prod(
                    c_of(pair_tag.clone()),
                    Ty::prod(Ty::m(rv("r2"), t2), sh.tk(&pair_tag)),
                ),
            ),
        ],
        body,
    }
}

/// Continuation after an existential's payload: re-pack with the original
/// witness, allocate in to-space, forward the original.
///
/// `z : M_{r2}(te t1)`, `c : C(∃u.te u) × tk[∃u.te u]`.
fn fwdexist1() -> CodeDef {
    let sh = shape();
    let t1 = s("t1");
    let te = s("te");
    let u = s("u!x");
    let exist_tag = Tag::exist(u, Tag::app(Tag::Var(te), Tag::Var(u)));
    let payload_tag = Tag::app(Tag::Var(te), Tag::Var(t1));
    let w = s("w!x");
    let repacked = Value::PackTag {
        tvar: w,
        kind: Kind::Omega,
        tag: Tag::Var(t1),
        val: (Value::Var(s("z"))).into(),
        body_ty: Ty::m(rv("r2"), Tag::app(Tag::Var(te), Tag::Var(w))),
    };
    let body = Term::let_(
        s("xorig"),
        Op::Proj(1, Value::Var(s("c"))),
        Term::let_(
            s("ko"),
            Op::Proj(2, Value::Var(s("c"))),
            Term::let_(
                s("zz"),
                Op::Put(rv("r2"), Value::inl(repacked)),
                Term::Set {
                    dst: Value::Var(s("xorig")),
                    src: Value::inr(Value::Var(s("zz"))),
                    body: (sh.invoke(Value::Var(s("ko")), Value::Var(s("zz")))).into(),
                },
            ),
        ),
    );
    CodeDef {
        name: s("fwdexist1"),
        tvars: vec![
            (s("t1"), Kind::Omega),
            (s("t2"), Kind::Omega),
            (s("te"), Kind::Arrow),
        ],
        rvars: vec![s("r1"), s("r2"), s("r3")],
        params: vec![
            (s("z"), Ty::m(rv("r2"), payload_tag)),
            (s("c"), Ty::prod(c_of(exist_tag.clone()), sh.tk(&exist_tag))),
        ],
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_gc_lang::machine::Program;
    use ps_gc_lang::syntax::Dialect;
    use ps_gc_lang::tyck::Checker;

    /// The forwarding collector is certified by the λGCforw typechecker
    /// (Fig. 8's rules) — including the `widen` whose soundness is §7.1's
    /// central result.
    #[test]
    fn collector_typechecks() {
        let image = collector();
        let program = Program {
            dialect: Dialect::Forwarding,
            code: image.code,
            main: Term::Halt(Value::Int(0)),
        };
        Checker::check_program(&program).unwrap();
    }

    #[test]
    fn image_layout() {
        let image = collector();
        assert_eq!(image.code.len(), 6);
        assert_eq!(image.code[GC as usize].name, s("gc"));
        assert_eq!(image.code[FWDPAIR2 as usize].name, s("fwdpair2"));
    }

    #[test]
    fn copy_checks_the_tag_bit() {
        // Both compound arms must begin with get + ifleft (the read barrier
        // exists only inside the collector, §7).
        let image = collector();
        let text = ps_gc_lang::pretty::code_def_to_string(&image.code[COPY as usize]);
        assert!(text.contains("ifleft"));
        assert!(text.contains("strip"));
    }

    #[test]
    fn forwarding_continuations_install_pointers() {
        let image = collector();
        for off in [FWDPAIR2, FWDEXIST1] {
            let text = ps_gc_lang::pretty::code_def_to_string(&image.code[off as usize]);
            assert!(text.contains("set "), "{}", image.code[off as usize].name);
            assert!(text.contains(":= inr"), "{}", image.code[off as usize].name);
        }
    }
}
