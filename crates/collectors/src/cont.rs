//! The continuation machinery shared by the CPS-converted collectors.
//!
//! §6.1 explains that the direct-style `copy` of Fig. 4 hides a stack; the
//! executable collector (Fig. 12) is its CPS and closure conversion, whose
//! continuations are closed with a form of *translucent type*:
//!
//! ```text
//! tc[τ] ≡ ∀⟦t₁,t₂,tₑ⟧[r₁,r₂,r₃](M_{r₂}(τ), αc) →cd 0 × αc
//! tk[τ] ≡ (∃t₁:Ω.∃t₂:Ω.∃tₑ:Ω→Ω.∃αc:{r₁,r₂,r₃}.tc[τ]) at r₃
//! ```
//!
//! A continuation is a pair of a code pointer already specialized to the
//! three tags it closed over (`v⟦t₁,t₂,tₑ⟧`) and its environment, hidden
//! behind `∃αc`. "Since some continuations require t₁,t₂ of kind Ω,Ω while
//! others only need t₁,tₑ, we unify the two into t₁,t₂,tₑ where some of the
//! arguments are simply left unused" (Appendix B).
//!
//! This module builds the types (`tc`, `tk`), the four-deep packing of a
//! continuation value, and the "invoke k" code sequence, parameterized so
//! the basic, forwarding and generational collectors can all reuse them.

use ps_ir::Symbol;

use ps_gc_lang::subst::Subst;
use ps_gc_lang::syntax::{Kind, Op, Region, Tag, Term, Ty, Value};

/// Fixed binder names for the continuation existentials (they live in their
/// own scopes, so fixed names are fine and match Fig. 12's).
pub fn t1g() -> Symbol {
    Symbol::intern("t1!k")
}
pub fn t2g() -> Symbol {
    Symbol::intern("t2!k")
}
pub fn teg() -> Symbol {
    Symbol::intern("te!k")
}
pub fn acg() -> Symbol {
    Symbol::intern("ac!k")
}

/// Shared parameters of the continuation types: the region binders the
/// collector's blocks take (from-space, to-space, …, continuation region —
/// the continuation region is always last) and the type of the value a
/// continuation at target tag `τ` receives.
#[derive(Clone)]
pub struct ContShape {
    /// The collector's region parameters, in order; the last one is the
    /// continuation region.
    pub regions: Vec<Symbol>,
    /// Builds the type of the value handed to a continuation at target tag
    /// `τ` — `M_{r₂}(τ)` for the basic and forwarding collectors,
    /// `M_{ro,ro}(τ)` for the generational one.
    pub recv_ty: fn(&ContShape, &Tag) -> Ty,
}

impl ContShape {
    /// The continuation region (where `tk` packages are allocated). Every
    /// shape is built with at least one region; an empty list falls back to
    /// `cd`, which the typechecker then rejects.
    pub fn cont_region(&self) -> Region {
        self.regions
            .last()
            .map_or(Region::Name(ps_gc_lang::syntax::CD), |r| Region::Var(*r))
    }

    /// The region set confining continuation environments.
    pub fn delta(&self) -> Vec<Region> {
        self.regions.iter().map(|r| Region::Var(*r)).collect()
    }

    /// The type `tc[target]` — the unpacked continuation pair. The Trans
    /// component records the (generic) tag variables; its region binders
    /// deliberately reuse `r₁,r₂,r₃`, exactly as Fig. 12 writes it, so that
    /// `αc`'s confinement set is in scope inside the translucent type.
    pub fn tc(&self, target: &Tag) -> Ty {
        let recv = (self.recv_ty)(self, target);
        Ty::prod(
            Ty::Trans {
                tags: [Tag::Var(t1g()), Tag::Var(t2g()), Tag::Var(teg())]
                    .into_iter()
                    .map(|t| t.id())
                    .collect(),
                regions: self.delta().into(),
                args: [recv, Ty::Alpha(acg())]
                    .into_iter()
                    .map(|a| a.id())
                    .collect(),
                rho: Region::cd(),
            },
            Ty::Alpha(acg()),
        )
    }

    /// The type `tk[target]` — the packed continuation, allocated in the
    /// continuation region.
    pub fn tk(&self, target: &Tag) -> Ty {
        self.tk_body(target).at(self.cont_region())
    }

    /// `tk[target]` without the outer `at r₃` (the stored-value type).
    pub fn tk_body(&self, target: &Tag) -> Ty {
        Ty::exist_tag(
            t1g(),
            Kind::Omega,
            Ty::exist_tag(
                t2g(),
                Kind::Omega,
                Ty::exist_tag(
                    teg(),
                    Kind::Arrow,
                    Ty::exist_alpha(acg(), self.delta(), self.tc(target)),
                ),
            ),
        )
    }

    /// Builds the four-deep continuation package
    /// `⟨t₁=w₁, ⟨t₂=w₂, ⟨tₑ=wₑ, ⟨αc:{r̄}=σ_env, (code⟦w̄⟧, env) : tc[target]⟩⟩⟩⟩`.
    ///
    /// `code` must be a `cd` address whose block has exactly the binders
    /// `[t₁:Ω, t₂:Ω, tₑ:Ω→Ω][r₁,r₂,r₃]` and parameters
    /// `(recv : …, env : …)` matching `tc[target]` at the witnesses.
    pub fn pack(
        &self,
        code: Value,
        witnesses: [Tag; 3],
        env_ty: Ty,
        env_val: Value,
        target: &Tag,
    ) -> Value {
        let [w1, w2, we] = witnesses;
        let tc_generic = self.tc(target);
        let sub1 = Subst::one_tag(t1g(), w1.clone());
        let sub12 = sub1.clone().with_tag(t2g(), w2.clone());
        let sub123 = sub12.clone().with_tag(teg(), we.clone());

        let payload = Value::pair(
            Value::tag_app(code, [w1.clone(), w2.clone(), we.clone()], self.delta()),
            env_val,
        );
        let pack_alpha = Value::PackAlpha {
            avar: acg(),
            regions: (self.delta()).into(),
            witness: env_ty,
            val: (payload).into(),
            body_ty: sub123.ty(&tc_generic),
        };
        let pack_te = Value::PackTag {
            tvar: teg(),
            kind: Kind::Arrow,
            tag: we,
            val: (pack_alpha).into(),
            body_ty: Ty::exist_alpha(acg(), self.delta(), sub12.ty(&tc_generic)),
        };
        let pack_t2 = Value::PackTag {
            tvar: t2g(),
            kind: Kind::Omega,
            tag: w2,
            val: (pack_te).into(),
            body_ty: Ty::exist_tag(
                teg(),
                Kind::Arrow,
                Ty::exist_alpha(acg(), self.delta(), sub1.ty(&tc_generic)),
            ),
        };
        Value::PackTag {
            tvar: t1g(),
            kind: Kind::Omega,
            tag: w1,
            val: (pack_t2).into(),
            // The body *under* the ∃t₁ binder (t₁ free in the generic tc).
            body_ty: Ty::exist_tag(
                t2g(),
                Kind::Omega,
                Ty::exist_tag(
                    teg(),
                    Kind::Arrow,
                    Ty::exist_alpha(acg(), self.delta(), tc_generic.clone()),
                ),
            ),
        }
    }

    /// Emits the "invoke continuation" sequence of Fig. 12:
    ///
    /// ```text
    /// open (get k) as ⟨t₁,t₂,tₑ,αc,c⟩ in (π₁ c)[t₁,t₂,tₑ][r₁,r₂,r₃](v, π₂ c)
    /// ```
    pub fn invoke(&self, k: Value, v: Value) -> Term {
        let kv = Symbol::intern("kv!c");
        let p1 = Symbol::intern("kp1!c");
        let p2 = Symbol::intern("kp2!c");
        let c = Symbol::intern("kc!c");
        let code = Symbol::intern("kcode!c");
        let envv = Symbol::intern("kenv!c");
        let t1o = Symbol::intern("t1o!c");
        let t2o = Symbol::intern("t2o!c");
        let teo = Symbol::intern("teo!c");
        let aco = Symbol::intern("aco!c");
        Term::let_(
            kv,
            Op::Get(k),
            Term::OpenTag {
                pkg: Value::Var(kv),
                tvar: t1o,
                x: p1,
                body: (Term::OpenTag {
                    pkg: Value::Var(p1),
                    tvar: t2o,
                    x: p2,
                    body: (Term::OpenTag {
                        pkg: Value::Var(p2),
                        tvar: teo,
                        x: Symbol::intern("kp3!c"),
                        body: (Term::OpenAlpha {
                            pkg: Value::Var(Symbol::intern("kp3!c")),
                            avar: aco,
                            x: c,
                            body: (Term::let_(
                                code,
                                Op::Proj(1, Value::Var(c)),
                                Term::let_(
                                    envv,
                                    Op::Proj(2, Value::Var(c)),
                                    Term::app(
                                        Value::Var(code),
                                        [Tag::Var(t1o), Tag::Var(t2o), Tag::Var(teo)],
                                        self.delta(),
                                        [v, Value::Var(envv)],
                                    ),
                                ),
                            ))
                            .into(),
                        })
                        .into(),
                    })
                    .into(),
                })
                .into(),
            },
        )
    }
}

/// The standard shape for the basic and forwarding collectors: the
/// continuation receives `M_{r₂}(τ)`.
pub fn to_space_shape(r1: Symbol, r2: Symbol, r3: Symbol) -> ContShape {
    ContShape {
        regions: vec![r1, r2, r3],
        recv_ty: |s, tag| Ty::m(Region::Var(s.regions[1]), tag.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ContShape {
        to_space_shape(
            Symbol::intern("r1"),
            Symbol::intern("r2"),
            Symbol::intern("r3"),
        )
    }

    #[test]
    fn tk_is_a_reference_into_r3() {
        let s = shape();
        match s.tk(&Tag::Int) {
            Ty::At(_, Region::Var(r)) => assert_eq!(r, Symbol::intern("r3")),
            other => panic!("expected at r3, got {other:?}"),
        }
    }

    #[test]
    fn tc_is_a_pair_of_code_and_env() {
        let s = shape();
        match s.tc(&Tag::Int) {
            Ty::Prod(code, env) => {
                assert!(matches!(&*code, Ty::Trans { .. }));
                assert_eq!(*env, Ty::Alpha(acg()));
            }
            other => panic!("expected pair, got {other:?}"),
        }
    }

    #[test]
    fn pack_is_four_deep() {
        let s = shape();
        let v = s.pack(
            Value::Addr(ps_gc_lang::syntax::CD, 0),
            [Tag::Int, Tag::Int, Tag::id_fn()],
            Ty::Int,
            Value::Int(0),
            &Tag::Int,
        );
        // ⟨t1, ⟨t2, ⟨te, ⟨αc, (code⟦…⟧, env)⟩⟩⟩⟩
        let mut depth = 0;
        let mut cur = v;
        loop {
            match cur {
                Value::PackTag { val, .. } => {
                    depth += 1;
                    cur = (*val).clone();
                }
                Value::PackAlpha { val, .. } => {
                    depth += 1;
                    cur = (*val).clone();
                }
                Value::Pair(code, _) => {
                    assert!(matches!(&*code, Value::TagApp(..)));
                    break;
                }
                other => panic!("unexpected layer {other:?}"),
            }
        }
        assert_eq!(depth, 4);
    }
}
