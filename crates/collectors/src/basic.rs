//! The basic stop-and-copy collector — Fig. 12 of the paper (the CPS and
//! closure-converted form of Fig. 4's `gc`/`copy`).
//!
//! Six code blocks, installed at the front of the `cd` region:
//!
//! | offset | block | role |
//! |---|---|---|
//! | 0 | `gc` | entry point: allocate to-space `r₂` and stack region `r₃`, pack the initial continuation, start `copy` |
//! | 1 | `gcend` | final continuation: `only {r₂}`, return to the mutator |
//! | 2 | `copy` | the type-analyzing copy: `typecase t` |
//! | 3 | `copypair1` | continuation after copying a pair's first component |
//! | 4 | `copypair2` | continuation after copying a pair's second component |
//! | 5 | `copyexist1` | continuation after copying an existential's payload |
//!
//! The contract is Fig. 1's: `copy` receives `M_{r₁}(t)` and its
//! continuation receives `M_{r₂}(t)` — the symmetric formulation of §2.2.1
//! that keeps types from growing across collections.

use ps_ir::Symbol;

use ps_gc_lang::syntax::{CodeDef, Kind, Op, Region, Tag, Term, Ty, Value, CD};

use crate::cont::{to_space_shape, ContShape};
use crate::CollectorImage;

/// Offset of `gc` within the image.
pub const GC: u32 = 0;
const GCEND: u32 = 1;
const COPY: u32 = 2;
const COPYPAIR1: u32 = 3;
const COPYPAIR2: u32 = 4;
const COPYEXIST1: u32 = 5;

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

fn rv(x: &str) -> Region {
    Region::Var(s(x))
}

/// The type of a translated mutator function pointer,
/// `∀[][r](M_r(t)) → 0 at cd` (Fig. 3 / Fig. 12's `f`).
pub fn mutator_fn_ty(tag: Tag) -> Ty {
    let r = s("rf");
    Ty::code([], [r], [Ty::m(Region::Var(r), tag)]).at(Region::cd())
}

fn shape() -> ContShape {
    to_space_shape(s("r1"), s("r2"), s("r3"))
}

/// Builds Fig. 12's collector. `base` is the cd offset where the image
/// will be installed (0 in every pipeline here; kept explicit for clarity).
pub fn collector() -> CollectorImage {
    CollectorImage {
        name: "basic",
        code: vec![
            gc(),
            gcend(),
            copy(),
            copypair1(),
            copypair2(),
            copyexist1(),
        ],
        gc_entry: GC,
    }
}

/// `fix gc[t:Ω][r1](f : ∀[][r](M_r(t))→0 at cd, x : M_{r1}(t)).`
fn gc() -> CodeDef {
    let sh = shape();
    let t = Tag::Var(s("t"));
    let f_ty = mutator_fn_ty(t.clone());
    // let region r2 in let region r3 in
    // let k = put[r3] ⟨t₁=t, t₂=Int, tₑ=λu.u, αc=f_ty, (gcend⟦…⟧, f)⟩ in
    // copy[t][r1,r2,r3](x, k)
    let pack = sh.pack(
        Value::Addr(CD, GCEND),
        [t.clone(), Tag::Int, Tag::id_fn()],
        f_ty.clone(),
        Value::Var(s("f")),
        &t,
    );
    let body = Term::LetRegion {
        rvar: s("r2"),
        body: (Term::LetRegion {
            rvar: s("r3"),
            body: (Term::let_(
                s("k"),
                Op::Put(rv("r3"), pack),
                Term::app(
                    Value::Addr(CD, COPY),
                    [t.clone()],
                    [rv("r1"), rv("r2"), rv("r3")],
                    [Value::Var(s("x")), Value::Var(s("k"))],
                ),
            ))
            .into(),
        })
        .into(),
    };
    CodeDef {
        name: s("gc"),
        tvars: vec![(s("t"), Kind::Omega)],
        rvars: vec![s("r1")],
        params: vec![(s("f"), f_ty), (s("x"), Ty::m(rv("r1"), Tag::Var(s("t"))))],
        body,
    }
}

/// `fix gcend[t1,t2,te][r1,r2,r3](y : M_{r2}(t1), f : …). only {r2} in f[][r2](y)`
fn gcend() -> CodeDef {
    let t1 = Tag::Var(s("t1"));
    let body = Term::Only {
        regions: vec![rv("r2")],
        body: (Term::app(Value::Var(s("f")), [], [rv("r2")], [Value::Var(s("y"))])).into(),
    };
    CodeDef {
        name: s("gcend"),
        tvars: vec![
            (s("t1"), Kind::Omega),
            (s("t2"), Kind::Omega),
            (s("te"), Kind::Arrow),
        ],
        rvars: vec![s("r1"), s("r2"), s("r3")],
        params: vec![
            (s("y"), Ty::m(rv("r2"), t1.clone())),
            (s("f"), mutator_fn_ty(t1)),
        ],
        body,
    }
}

/// The main copy entry point: `typecase t` (Fig. 12).
fn copy() -> CodeDef {
    let sh = shape();
    let t = Tag::Var(s("t"));
    let k = Value::Var(s("k"));
    let x = Value::Var(s("x"));

    // int / λ arms: invoke k with x unchanged.
    let scalar_arm = sh.invoke(k.clone(), x.clone());

    // t1' × t2' arm:
    //   let c_env = (π2 (get x), k) in
    //   let k' = put[r3] ⟨…, (copypair1⟦t1',t2',λu.u⟧, c_env)⟩ in
    //   copy[t1'][r1,r2,r3](π1 (get x), k')
    let prod_arm = {
        let t1p = Tag::Var(s("ta"));
        let t2p = Tag::Var(s("tb"));
        let pair_tag = Tag::prod(t1p.clone(), t2p.clone());
        let env_ty = Ty::prod(Ty::m(rv("r1"), t2p.clone()), sh.tk(&pair_tag));
        let pack = sh.pack(
            Value::Addr(CD, COPYPAIR1),
            [t1p.clone(), t2p.clone(), Tag::id_fn()],
            env_ty,
            Value::Var(s("cenv")),
            &t1p,
        );
        Term::let_(
            s("xv"),
            Op::Get(x.clone()),
            Term::let_(
                s("x2src"),
                Op::Proj(2, Value::Var(s("xv"))),
                Term::let_(
                    s("cenv"),
                    Op::Val(Value::pair(Value::Var(s("x2src")), k.clone())),
                    Term::let_(
                        s("kp"),
                        Op::Put(rv("r3"), pack),
                        Term::let_(
                            s("x1src"),
                            Op::Proj(1, Value::Var(s("xv"))),
                            Term::app(
                                Value::Addr(CD, COPY),
                                [t1p],
                                [rv("r1"), rv("r2"), rv("r3")],
                                [Value::Var(s("x1src")), Value::Var(s("kp"))],
                            ),
                        ),
                    ),
                ),
            ),
        )
    };

    // ∃te' arm:
    //   open (get x) as ⟨tx, y⟩ in
    //   let k' = put[r3] ⟨…, (copyexist1⟦tx,Int,te'⟧, k)⟩ in
    //   copy[te' tx][r1,r2,r3](y, k')
    let exist_arm = {
        let tep = s("tc");
        let exist_tag = Tag::exist(s("u!e"), Tag::app(Tag::Var(tep), Tag::Var(s("u!e"))));
        let tx = s("tx");
        let target = Tag::app(Tag::Var(tep), Tag::Var(tx));
        let env_ty = sh.tk(&exist_tag);
        let pack = sh.pack(
            Value::Addr(CD, COPYEXIST1),
            [Tag::Var(tx), Tag::Int, Tag::Var(tep)],
            env_ty,
            k.clone(),
            &target,
        );
        Term::let_(
            s("xv"),
            Op::Get(x.clone()),
            Term::OpenTag {
                pkg: Value::Var(s("xv")),
                tvar: tx,
                x: s("y"),
                body: (Term::let_(
                    s("kp"),
                    Op::Put(rv("r3"), pack),
                    Term::app(
                        Value::Addr(CD, COPY),
                        [target],
                        [rv("r1"), rv("r2"), rv("r3")],
                        [Value::Var(s("y")), Value::Var(s("kp"))],
                    ),
                ))
                .into(),
            },
        )
    };

    let body = Term::Typecase {
        tag: t.clone(),
        int_arm: (scalar_arm.clone()).into(),
        arrow_arm: (scalar_arm).into(),
        prod_arm: (s("ta"), s("tb"), (prod_arm).into()),
        exist_arm: (s("tc"), (exist_arm).into()),
    };
    CodeDef {
        name: s("copy"),
        tvars: vec![(s("t"), Kind::Omega)],
        rvars: vec![s("r1"), s("r2"), s("r3")],
        params: vec![(s("x"), Ty::m(rv("r1"), t.clone())), (s("k"), sh.tk(&t))],
        body,
    }
}

/// First continuation when copying a pair: holds the un-copied second
/// component and the outer continuation.
///
/// Binders: `x1 : M_{r2}(t1)`, `c : M_{r1}(t2) × tk[t1 × t2]`.
fn copypair1() -> CodeDef {
    let sh = shape();
    let t1 = Tag::Var(s("t1"));
    let t2 = Tag::Var(s("t2"));
    let pair_tag = Tag::prod(t1.clone(), t2.clone());
    // Continuation for the second copy: copypair2⟦t2, t1, λu.u⟧ with
    // environment (x1, outer k) : M_{r2}(t1) × tk[t1 × t2].
    let env_ty = Ty::prod(Ty::m(rv("r2"), t1.clone()), sh.tk(&pair_tag));
    let pack = sh.pack(
        Value::Addr(CD, COPYPAIR2),
        [t2.clone(), t1.clone(), Tag::id_fn()],
        env_ty,
        Value::Var(s("cenv")),
        &t2,
    );
    let body = Term::let_(
        s("x2src"),
        Op::Proj(1, Value::Var(s("c"))),
        Term::let_(
            s("ko"),
            Op::Proj(2, Value::Var(s("c"))),
            Term::let_(
                s("cenv"),
                Op::Val(Value::pair(Value::Var(s("x1")), Value::Var(s("ko")))),
                Term::let_(
                    s("kp"),
                    Op::Put(rv("r3"), pack),
                    Term::app(
                        Value::Addr(CD, COPY),
                        [t2.clone()],
                        [rv("r1"), rv("r2"), rv("r3")],
                        [Value::Var(s("x2src")), Value::Var(s("kp"))],
                    ),
                ),
            ),
        ),
    );
    CodeDef {
        name: s("copypair1"),
        tvars: vec![
            (s("t1"), Kind::Omega),
            (s("t2"), Kind::Omega),
            (s("te"), Kind::Arrow),
        ],
        rvars: vec![s("r1"), s("r2"), s("r3")],
        params: vec![
            (s("x1"), Ty::m(rv("r2"), t1.clone())),
            (s("c"), Ty::prod(Ty::m(rv("r1"), t2), sh.tk(&pair_tag))),
        ],
        body,
    }
}

/// Second continuation when copying a pair: allocate the copied pair in
/// to-space and invoke the outer continuation.
///
/// Binders (note the swap relative to `copypair1`): `x2 : M_{r2}(t1)` is the
/// *second* component's copy (`t1` here is the pair's `t2`), and
/// `c : M_{r2}(t2) × tk[t2 × t1]` holds the first component's copy and the
/// outer continuation.
///
/// paper: Fig. 12 annotates `x2 : M_{r2}(t2)` with `c : M_{r2}(t1) ×
/// tk[t1×t2]`, which does not match its own instantiation
/// `copypair2⟦t2,t1,λt.t⟧` in `copypair1` (the received value must sit in
/// the code's *first* tag slot for the continuation calculus to line up);
/// we use the consistent assignment.
fn copypair2() -> CodeDef {
    let sh = shape();
    let t1 = Tag::Var(s("t1"));
    let t2 = Tag::Var(s("t2"));
    let pair_tag = Tag::prod(t2.clone(), t1.clone());
    let body = Term::let_(
        s("x1c"),
        Op::Proj(1, Value::Var(s("c"))),
        Term::let_(
            s("ko"),
            Op::Proj(2, Value::Var(s("c"))),
            Term::let_(
                s("z"),
                Op::Put(
                    rv("r2"),
                    Value::pair(Value::Var(s("x1c")), Value::Var(s("x2"))),
                ),
                sh.invoke(Value::Var(s("ko")), Value::Var(s("z"))),
            ),
        ),
    );
    CodeDef {
        name: s("copypair2"),
        tvars: vec![
            (s("t1"), Kind::Omega),
            (s("t2"), Kind::Omega),
            (s("te"), Kind::Arrow),
        ],
        rvars: vec![s("r1"), s("r2"), s("r3")],
        params: vec![
            (s("x2"), Ty::m(rv("r2"), t1.clone())),
            (s("c"), Ty::prod(Ty::m(rv("r2"), t2), sh.tk(&pair_tag))),
        ],
        body,
    }
}

/// Continuation when copying an existential package: re-pack the copied
/// payload with the original witness tag and allocate it in to-space.
///
/// Binders: `z : M_{r2}(te t1)` (the copied payload, `t1` being the
/// witness), `c : tk[∃u.te u]`.
fn copyexist1() -> CodeDef {
    let sh = shape();
    let t1 = s("t1");
    let te = s("te");
    let u = s("u!x");
    let exist_tag = Tag::exist(u, Tag::app(Tag::Var(te), Tag::Var(u)));
    let payload_tag = Tag::app(Tag::Var(te), Tag::Var(t1));
    // put[r2] ⟨w = t1, z : M_{r2}(te w)⟩ : M_{r2}(∃u.te u)
    let w = s("w!x");
    let repacked = Value::PackTag {
        tvar: w,
        kind: Kind::Omega,
        tag: Tag::Var(t1),
        val: (Value::Var(s("z"))).into(),
        body_ty: Ty::m(rv("r2"), Tag::app(Tag::Var(te), Tag::Var(w))),
    };
    let body = Term::let_(
        s("zz"),
        Op::Put(rv("r2"), repacked),
        sh.invoke(Value::Var(s("c")), Value::Var(s("zz"))),
    );
    CodeDef {
        name: s("copyexist1"),
        tvars: vec![
            (s("t1"), Kind::Omega),
            (s("t2"), Kind::Omega),
            (s("te"), Kind::Arrow),
        ],
        rvars: vec![s("r1"), s("r2"), s("r3")],
        params: vec![
            (s("z"), Ty::m(rv("r2"), payload_tag)),
            (s("c"), sh.tk(&exist_tag)),
        ],
        body,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_gc_lang::machine::Program;
    use ps_gc_lang::syntax::Dialect;
    use ps_gc_lang::tyck::Checker;

    /// The headline result: our λGC typechecker certifies Fig. 12's
    /// collector, block by block, with no mutator present.
    #[test]
    fn collector_typechecks() {
        let image = collector();
        let program = Program {
            dialect: Dialect::Basic,
            code: image.code,
            main: Term::Halt(Value::Int(0)),
        };
        Checker::check_program(&program).unwrap();
    }

    #[test]
    fn image_layout() {
        let image = collector();
        assert_eq!(image.code.len(), 6);
        assert_eq!(image.gc_entry, GC);
        assert_eq!(image.code[GC as usize].name, s("gc"));
        assert_eq!(image.code[COPY as usize].name, s("copy"));
    }

    #[test]
    fn gc_signature_matches_fig12() {
        let image = collector();
        let gc = &image.code[GC as usize];
        assert_eq!(gc.tvars.len(), 1);
        assert_eq!(gc.rvars.len(), 1);
        assert_eq!(gc.params.len(), 2);
        // x : M_{r1}(t)
        match &gc.params[1].1 {
            Ty::M(Region::Var(r), tag) => {
                assert_eq!(*r, s("r1"));
                assert_eq!(**tag, Tag::Var(s("t")));
            }
            other => panic!("unexpected x type {other:?}"),
        }
    }

    #[test]
    fn continuation_blocks_have_the_unified_binders() {
        // Appendix B: all continuations take [t1:Ω, t2:Ω, te:Ω→Ω].
        let image = collector();
        for off in [GCEND, COPYPAIR1, COPYPAIR2, COPYEXIST1] {
            let def = &image.code[off as usize];
            assert_eq!(def.tvars.len(), 3, "{}", def.name);
            assert_eq!(def.tvars[2].1, Kind::Arrow, "{}", def.name);
            assert_eq!(def.rvars.len(), 3, "{}", def.name);
            assert_eq!(def.params.len(), 2, "{}", def.name);
        }
    }

    #[test]
    fn collector_prints() {
        // The pretty-printed collector should resemble Fig. 12.
        let image = collector();
        let text = ps_gc_lang::pretty::code_def_to_string(&image.code[COPY as usize]);
        assert!(text.contains("typecase t of"));
        assert!(text.contains("copy"));
    }
}
