//! # ps-collectors — the type-safe collectors, as λGC programs
//!
//! The paper's central artifact: garbage collectors written *inside* the
//! type-safe language λGC, certified by an ordinary typechecker rather than
//! trusted. This crate constructs them as λGC ASTs:
//!
//! * [`basic`] — the stop-and-copy collector of Fig. 12 (the executable CPS
//!   and closure-converted form of Fig. 4);
//! * `forwarding` — Fig. 9's collector with efficient forwarding pointers
//!   (our CPS conversion of it);
//! * `generational` — Fig. 11's generational collector (CPS-converted),
//!   plus the full-collection companion §8 alludes to;
//! * [`meta`] — an *untyped* meta-level copying collector operating
//!   directly on the machine state: the trusted-GC baseline the paper
//!   argues against, used for comparison benchmarks.

pub mod basic;
pub mod cont;
pub mod forwarding;
pub mod generational;
pub mod major;
pub mod meta;

use ps_gc_lang::syntax::CodeDef;

/// A collector compiled to λGC code, ready to be installed at the front of
/// the `cd` region.
#[derive(Clone, Debug)]
pub struct CollectorImage {
    /// The collector's canonical name (`basic`/`forwarding`/`generational`),
    /// used for telemetry metadata and diagnostics.
    pub name: &'static str,
    /// The collector's code blocks (install at cd offsets `0..len`).
    pub code: Vec<CodeDef>,
    /// Offset of the `gc` entry point within `code`.
    pub gc_entry: u32,
}
