//! Keeps the textual collector listings in `gc-lang/tests/fixtures/` in
//! sync with the builders. The fixtures serve two purposes: they are the
//! human-readable "figures" of this repository (compare with the paper's
//! Figs. 9/11/12), and they feed gc-lang's parser round-trip tests without
//! a dependency cycle.
//!
//! Run with `PS_EMIT_FIXTURES=1` to regenerate.

use std::path::PathBuf;

use ps_collectors::{basic, forwarding, generational};
use ps_gc_lang::pretty;

fn listing(code: &[ps_gc_lang::syntax::CodeDef]) -> String {
    let mut out = String::new();
    for def in code {
        out.push_str(&pretty::code_def_to_string(def));
        out.push_str("\n\n");
    }
    out
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../gc-lang/tests/fixtures")
        .join(format!("{name}.gc"))
}

#[test]
fn fixtures_are_in_sync() {
    for (name, code) in [
        ("basic", basic::collector().code),
        ("forwarding", forwarding::collector().code),
        ("generational", generational::collector().code),
    ] {
        let expected = listing(&code);
        let path = fixture_path(name);
        if std::env::var("PS_EMIT_FIXTURES").is_ok() {
            std::fs::write(&path, &expected).expect("write fixture");
            continue;
        }
        let actual = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing fixture {}: {e}\nregenerate with PS_EMIT_FIXTURES=1 cargo test -p ps-collectors --test emit_fixtures",
                path.display()
            )
        });
        assert_eq!(
            actual,
            expected,
            "stale fixture {}; regenerate with PS_EMIT_FIXTURES=1",
            path.display()
        );
    }
}
