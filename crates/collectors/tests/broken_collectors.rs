//! The paper's software-engineering claim, §2: "a type-safe GC must make
//! explicit the contract between the collector and the mutator and it must
//! make sure that it is always respected. Without typechecking, such rules
//! can prove difficult to implement correctly and bugs can be very
//! difficult to find."
//!
//! This suite injects classic garbage-collector bugs into the certified
//! collectors and shows that the λGC typechecker rejects every one of them
//! — each would be a silent heap corruption in an untyped collector.

use ps_collectors::{basic, forwarding, generational};
use ps_gc_lang::machine::Program;
use ps_gc_lang::syntax::{CodeDef, Dialect, Op, Region, Term, Value};
use ps_gc_lang::tyck::Checker;
use ps_ir::Symbol;

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

fn check(dialect: Dialect, code: Vec<CodeDef>) -> Result<(), ps_gc_lang::error::LangError> {
    Checker::check_program(&Program {
        dialect,
        code,
        main: Term::Halt(Value::Int(0)),
    })
}

/// Rewrites every `Region::Var(from)` to `Region::Var(to)` inside a term —
/// the "wrong region" class of bugs.
fn swap_regions(e: &Term, from: Symbol, to: Symbol) -> Term {
    ps_gc_lang::subst::Subst::one_rgn(from, Region::Var(to)).term(e)
}

/// Finds a block by name.
fn block_mut<'a>(code: &'a mut [CodeDef], name: &str) -> &'a mut CodeDef {
    code.iter_mut()
        .find(|d| d.name == s(name))
        .unwrap_or_else(|| panic!("no block {name}"))
}

// ===== basic collector ====================================================

#[test]
fn sanity_unmodified_collectors_certify() {
    check(Dialect::Basic, basic::collector().code).unwrap();
    check(Dialect::Forwarding, forwarding::collector().code).unwrap();
    check(Dialect::Generational, generational::collector().code).unwrap();
}

/// Bug: the collector "copies" a pair by returning the from-space pointer
/// instead of allocating in to-space (`put[r1]` instead of `put[r2]` in
/// `copypair2`). After `only {r2}` the mutator would chase a dangling
/// pointer.
#[test]
fn allocating_copies_in_from_space_is_rejected() {
    let mut image = basic::collector();
    let block = block_mut(&mut image.code, "copypair2");
    block.body = swap_regions(&block.body, s("r2"), s("r1"));
    let err = check(Dialect::Basic, image.code).unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("type error") || msg.contains("ill-formed"),
        "{msg}"
    );
}

/// Bug: `gcend` frees the *to*-space and keeps the from-space
/// (`only {r1}` instead of `only {r2}`) — the freshly copied data would be
/// reclaimed.
#[test]
fn freeing_the_wrong_region_is_rejected() {
    let mut image = basic::collector();
    let block = block_mut(&mut image.code, "gcend");
    // Replace `only {r2} in f[][r2](y)` with `only {r1} in f[][r1](y)`.
    block.body = swap_regions(&block.body, s("r2"), s("r1"));
    let err = check(Dialect::Basic, image.code).unwrap_err();
    // y : M_{r2}(t1) does not survive the restriction to {r1}.
    assert!(err.to_string().contains("unbound variable y"), "{err}");
}

/// Bug: `gcend` forgets to free anything (drops the `only`) — not unsound,
/// but then the mutator resumes with the from-space alive; the type system
/// ACCEPTS this (it is safe, just leaky), which is exactly the paper's
/// point that safety, not completeness of reclamation, is what is
/// certified.
#[test]
fn leaky_collector_is_safe_and_accepted() {
    let mut image = basic::collector();
    let block = block_mut(&mut image.code, "gcend");
    block.body = Term::app(
        Value::Var(s("f")),
        [],
        [Region::Var(s("r2"))],
        [Value::Var(s("y"))],
    );
    check(Dialect::Basic, image.code).unwrap();
}

/// Bug: copy's pair arm copies the first component *twice* and never the
/// second (a classic transposition). The second component of the new pair
/// would have the wrong type whenever t1 ≠ t2.
#[test]
fn copying_the_wrong_field_is_rejected() {
    let mut image = basic::collector();
    let block = block_mut(&mut image.code, "copy");
    // In copy's body, the pair arm projects π2 for the continuation env and
    // π1 for the recursive call; make both π1.
    fn fix_proj(e: &Term) -> Term {
        match e {
            Term::Let {
                x,
                op: Op::Proj(2, v),
                body,
            } if *x == Symbol::intern("x2src") => Term::Let {
                x: *x,
                op: Op::Proj(1, v.clone()),
                body: (fix_proj(body)).into(),
            },
            Term::Let { x, op, body } => Term::Let {
                x: *x,
                op: op.clone(),
                body: (fix_proj(body)).into(),
            },
            Term::Typecase {
                tag,
                int_arm,
                arrow_arm,
                prod_arm,
                exist_arm,
            } => Term::Typecase {
                tag: tag.clone(),
                int_arm: *int_arm,
                arrow_arm: *arrow_arm,
                prod_arm: (prod_arm.0, prod_arm.1, (fix_proj(&prod_arm.2)).into()),
                exist_arm: *exist_arm,
            },
            other => other.clone(),
        }
    }
    block.body = fix_proj(&block.body);
    let err = check(Dialect::Basic, image.code).unwrap_err();
    assert!(err.to_string().contains("type error"), "{err}");
}

/// Bug: the collector skips copying entirely in the pair arm and hands the
/// from-space pointer to the continuation (the continuation expects
/// `M_{r2}(t)`).
#[test]
fn returning_from_space_pointers_is_rejected() {
    let mut image = basic::collector();
    let block = block_mut(&mut image.code, "copy");
    // Rewrite the prod arm to just invoke k with x.
    if let Term::Typecase {
        tag,
        int_arm,
        arrow_arm,
        prod_arm,
        exist_arm,
    } = &block.body
    {
        block.body = Term::Typecase {
            tag: tag.clone(),
            int_arm: *int_arm,
            arrow_arm: *arrow_arm,
            prod_arm: (prod_arm.0, prod_arm.1, *int_arm),
            exist_arm: *exist_arm,
        };
    } else {
        panic!("copy body is a typecase");
    }
    let err = check(Dialect::Basic, image.code).unwrap_err();
    assert!(err.to_string().contains("type error"), "{err}");
}

// ===== forwarding collector ==============================================

/// Bug: installing the forwarding pointer as `inl` (a live object) instead
/// of `inr` — every later visitor would treat the forwarding pointer as
/// data.
#[test]
fn forwarding_with_the_wrong_tag_bit_is_rejected() {
    let mut image = forwarding::collector();
    let block = block_mut(&mut image.code, "fwdpair2");
    fn inr_to_inl(e: &Term) -> Term {
        match e {
            Term::Set {
                dst,
                src: Value::Inr(v),
                body,
            } => Term::Set {
                dst: dst.clone(),
                src: Value::Inl(*v),
                body: *body,
            },
            Term::Let { x, op, body } => Term::Let {
                x: *x,
                op: op.clone(),
                body: (inr_to_inl(body)).into(),
            },
            other => other.clone(),
        }
    }
    block.body = inr_to_inl(&block.body);
    let err = check(Dialect::Forwarding, image.code).unwrap_err();
    assert!(err.to_string().contains("type error"), "{err}");
}

/// Bug: forwarding to a from-space address (`set x := inr x` self-loop).
#[test]
fn forwarding_to_from_space_is_rejected() {
    let mut image = forwarding::collector();
    let block = block_mut(&mut image.code, "fwdpair2");
    fn self_forward(e: &Term) -> Term {
        match e {
            Term::Set { dst, body, .. } => Term::Set {
                dst: dst.clone(),
                src: Value::inr(dst.clone()),
                body: *body,
            },
            Term::Let { x, op, body } => Term::Let {
                x: *x,
                op: op.clone(),
                body: (self_forward(body)).into(),
            },
            other => other.clone(),
        }
    }
    block.body = self_forward(&block.body);
    let err = check(Dialect::Forwarding, image.code).unwrap_err();
    assert!(err.to_string().contains("type error"), "{err}");
}

/// Bug: using a forwarding-dialect construct in the basic calculus — the
/// dialects are distinct languages (§7 extends λGC).
#[test]
fn dialect_violations_are_rejected() {
    let image = forwarding::collector();
    let err = check(Dialect::Basic, image.code).unwrap_err();
    assert!(err.to_string().contains("dialect"), "{err}");
}

// ===== generational collector ============================================

/// Bug: the minor collector promotes young objects back into the *young*
/// region (put[ry] instead of put[ro] in gpair2) — the "promoted" object
/// would die with the young region it was supposed to escape, and the
/// result type M_{ro,ro}(t) would be a lie.
#[test]
fn promoting_into_the_young_region_is_rejected() {
    let mut image = generational::collector();
    let block = block_mut(&mut image.code, "gpair2");
    block.body = swap_regions(&block.body, s("ro"), s("ry"));
    let err = check(Dialect::Generational, image.code).unwrap_err();
    assert!(err.to_string().contains("type error"), "{err}");
}

/// Bug: gcend frees the old region and keeps the young one — all promoted
/// data would dangle.
#[test]
fn generational_freeing_old_region_is_rejected() {
    let mut image = generational::collector();
    let block = block_mut(&mut image.code, "gcend");
    block.body = swap_regions(&block.body, s("ro"), s("ry"));
    let err = check(Dialect::Generational, image.code).unwrap_err();
    assert!(err.to_string().contains("unbound variable y"), "{err}");
}
