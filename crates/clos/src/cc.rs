//! Typed closure conversion: CPS'd source programs → λCLOS.
//!
//! Closures become existential packages `∃t.((t × τ) → 0) × t` in the
//! Minamide–Morrisett–Harper style (paper ref. 10) the paper adopts (§3): the
//! environment's type is the hidden witness, the code is a closed top-level
//! function, and application opens the package and passes `(env, arg)`.
//!
//! This is the key departure from Wang–Appel (paper ref. 23), who used Tolmach-style
//! defunctionalization requiring whole-program analysis; packages keep the
//! conversion local, which is what lets the collector be a library (§2.2).
//!
//! Invariants assumed of the input (established by [`crate::cps`]):
//! all applications are tail calls, every intermediate computation is
//! let-bound, and all functions answer `int`.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use ps_ir::symbol::gensym;
use ps_ir::Symbol;

use ps_lambda::syntax::{Expr, SrcProgram, SrcTy};

use crate::syntax::{CExp, CFun, CProgram, CTy, CVal};

/// An error raised during closure conversion (only on inputs violating the
/// CPS invariants).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CcError(pub String);

impl fmt::Display for CcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "closure conversion error: {}", self.0)
    }
}

impl std::error::Error for CcError {}

type CResult<T> = Result<T, CcError>;

/// The closure-conversion type translation: arrows (which after CPS all
/// answer `int`) become closure packages.
pub fn cc_ty(ty: &SrcTy) -> CTy {
    match ty {
        SrcTy::Int => CTy::Int,
        SrcTy::Prod(a, b) => CTy::prod(cc_ty(a), cc_ty(b)),
        SrcTy::Arrow(dom, _answer) => CTy::closure(cc_ty(dom)),
    }
}

struct Cc<'a> {
    /// Top-level function names of the CPS'd program (globals, not
    /// captured).
    top: &'a HashMap<Symbol, SrcTy>,
    /// Lifted code blocks.
    lifted: Vec<CFun>,
}

/// Conversion-time environment: in-scope variables with both their source
/// and converted types.
#[derive(Clone, Default)]
struct Env {
    vars: HashMap<Symbol, (SrcTy, CTy)>,
}

impl<'a> Cc<'a> {
    /// Ordered free variables of `e` that are bound in `env` (top-level
    /// names and the expression's own binders excluded).
    fn free_vars(&self, e: &Expr, env: &Env) -> Vec<Symbol> {
        fn go(e: &Expr, bound: &mut Vec<Symbol>, out: &mut Vec<Symbol>) {
            match e {
                Expr::Int(_) => {}
                Expr::Var(x) => {
                    if !bound.contains(x) && !out.contains(x) {
                        out.push(*x);
                    }
                }
                Expr::Bin(_, a, b) | Expr::Pair(a, b) | Expr::App(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Expr::If0(a, b, c) => {
                    go(a, bound, out);
                    go(b, bound, out);
                    go(c, bound, out);
                }
                Expr::Proj(_, a) => go(a, bound, out),
                Expr::Lam { param, body, .. } => {
                    bound.push(*param);
                    go(body, bound, out);
                    bound.pop();
                }
                Expr::Let { x, rhs, body } => {
                    go(rhs, bound, out);
                    bound.push(*x);
                    go(body, bound, out);
                    bound.pop();
                }
            }
        }
        let mut raw = Vec::new();
        go(e, &mut Vec::new(), &mut raw);
        let mut out: Vec<Symbol> = raw
            .into_iter()
            .filter(|x| env.vars.contains_key(x) && !self.top.contains_key(x))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Builds the environment tuple value and its types for a capture list.
    fn env_tuple(&self, fvs: &[Symbol], env: &Env) -> (CVal, CTy, SrcTy) {
        if fvs.is_empty() {
            return (CVal::Int(0), CTy::Int, SrcTy::Int);
        }
        let (last_src, last_cc) = env.vars[fvs.last().unwrap()].clone();
        let mut val = CVal::Var(*fvs.last().unwrap());
        let mut cty = last_cc;
        let mut sty = last_src;
        for x in fvs[..fvs.len() - 1].iter().rev() {
            let (xs, xc) = env.vars[x].clone();
            val = CVal::pair(CVal::Var(*x), val);
            cty = CTy::prod(xc, cty);
            sty = SrcTy::prod(xs, sty);
        }
        (val, cty, sty)
    }

    /// Converts a *value* expression (the CPS invariant guarantees these
    /// are the only expressions in value positions).
    fn value(&mut self, env: &Env, e: &Expr) -> CResult<CVal> {
        match e {
            Expr::Int(n) => Ok(CVal::Int(*n)),
            Expr::Var(x) => {
                if env.vars.contains_key(x) {
                    Ok(CVal::Var(*x))
                } else if let Some(fty) = self.top.get(x) {
                    // A reference to a top-level function becomes a closure
                    // with a dummy (integer) environment.
                    let dom = match fty {
                        SrcTy::Arrow(d, _) => cc_ty(d),
                        other => {
                            return Err(CcError(format!(
                                "top-level {x} has non-function type {other}"
                            )))
                        }
                    };
                    let t = gensym("tenv");
                    Ok(CVal::Pack {
                        tvar: t,
                        witness: CTy::Int,
                        val: Rc::new(CVal::pair(CVal::FnName(*x), CVal::Int(0))),
                        body_ty: CTy::prod(CTy::arrow(CTy::prod(CTy::Var(t), dom)), CTy::Var(t)),
                    })
                } else {
                    Err(CcError(format!("unbound variable {x}")))
                }
            }
            Expr::Pair(a, b) => Ok(CVal::pair(self.value(env, a)?, self.value(env, b)?)),
            Expr::Lam {
                param,
                param_ty,
                body,
            } => {
                let fvs = self.free_vars(body, env);
                let fvs: Vec<Symbol> = fvs.into_iter().filter(|v| v != param).collect();
                let (env_val, env_cty, env_sty) = self.env_tuple(&fvs, env);
                // The lifted code block.
                let code_name = gensym("code");
                let p = gensym("cp");
                let envv = gensym("cenv");
                // Inner scope: captured variables + the parameter.
                let mut inner = Env::default();
                for x in &fvs {
                    inner.vars.insert(*x, env.vars[x].clone());
                }
                inner
                    .vars
                    .insert(*param, (param_ty.clone(), cc_ty(param_ty)));
                let mut body_exp = self.tail(&inner, body)?;
                // Destructure the environment tuple (right-nested pairs):
                // record the binding chain forwards, then wrap the body
                // innermost-last so each `rest` is in scope for the next.
                enum Bind {
                    Split {
                        x: Symbol,
                        cur: Symbol,
                        rest: Symbol,
                    },
                    Last {
                        x: Symbol,
                        cur: Symbol,
                    },
                }
                if !fvs.is_empty() {
                    let mut cur = envv;
                    let mut chain = Vec::with_capacity(fvs.len());
                    for (i, x) in fvs.iter().enumerate() {
                        if i + 1 == fvs.len() {
                            chain.push(Bind::Last { x: *x, cur });
                        } else {
                            let rest = gensym("cenv");
                            chain.push(Bind::Split { x: *x, cur, rest });
                            cur = rest;
                        }
                    }
                    for b in chain.into_iter().rev() {
                        body_exp = match b {
                            Bind::Last { x, cur } => CExp::let_(x, CVal::Var(cur), body_exp),
                            Bind::Split { x, cur, rest } => CExp::let_proj(
                                x,
                                1,
                                CVal::Var(cur),
                                CExp::let_proj(rest, 2, CVal::Var(cur), body_exp),
                            ),
                        };
                    }
                }
                let code_body = CExp::let_proj(
                    envv,
                    1,
                    CVal::Var(p),
                    CExp::let_proj(*param, 2, CVal::Var(p), body_exp),
                );
                self.lifted.push(CFun {
                    name: code_name,
                    param: p,
                    param_ty: CTy::prod(env_cty.clone(), cc_ty(param_ty)),
                    body: code_body,
                });
                let _ = env_sty;
                let t = gensym("tenv");
                Ok(CVal::Pack {
                    tvar: t,
                    witness: env_cty,
                    val: Rc::new(CVal::pair(CVal::FnName(code_name), env_val)),
                    body_ty: CTy::prod(
                        CTy::arrow(CTy::prod(CTy::Var(t), cc_ty(param_ty))),
                        CTy::Var(t),
                    ),
                })
            }
            other => Err(CcError(format!(
                "expression {other:?} in value position violates the CPS invariant"
            ))),
        }
    }

    /// Converts a tail expression.
    fn tail(&mut self, env: &Env, e: &Expr) -> CResult<CExp> {
        match e {
            Expr::Let { x, rhs, body } => {
                // The rhs is one of the CPS-value forms or a primitive.
                match &**rhs {
                    Expr::Bin(op, a, b) => {
                        let av = self.value(env, a)?;
                        let bv = self.value(env, b)?;
                        let mut env2 = env.clone();
                        env2.vars.insert(*x, (SrcTy::Int, CTy::Int));
                        Ok(CExp::LetPrim {
                            x: *x,
                            op: *op,
                            a: av,
                            b: bv,
                            body: Rc::new(self.tail(&env2, body)?),
                        })
                    }
                    Expr::Proj(i, a) => {
                        let av = self.value(env, a)?;
                        let src_ty = self.src_ty_of(env, a)?;
                        let comp = match src_ty {
                            SrcTy::Prod(p, q) => {
                                if *i == 1 {
                                    (*p).clone()
                                } else {
                                    (*q).clone()
                                }
                            }
                            other => {
                                return Err(CcError(format!("projection of non-pair type {other}")))
                            }
                        };
                        let mut env2 = env.clone();
                        env2.vars.insert(*x, (comp.clone(), cc_ty(&comp)));
                        Ok(CExp::let_proj(*x, *i, av, self.tail(&env2, body)?))
                    }
                    value_form => {
                        let v = self.value(env, value_form)?;
                        let src_ty = self.src_ty_of(env, value_form)?;
                        let mut env2 = env.clone();
                        env2.vars.insert(*x, (src_ty.clone(), cc_ty(&src_ty)));
                        Ok(CExp::let_(*x, v, self.tail(&env2, body)?))
                    }
                }
            }
            Expr::App(f, a) => {
                let fv = self.value(env, f)?;
                let av = self.value(env, a)?;
                let pkg = gensym("clo");
                let pay = gensym("cpair");
                let code = gensym("cptr");
                let cenv = gensym("cenv");
                let arg = gensym("carg");
                let tv = gensym("topen");
                // let clo = fv in open clo as ⟨t, p⟩ in
                //   let code = π1 p in let env = π2 p in
                //   let arg = (env, av) in code(arg)
                Ok(CExp::let_(
                    pkg,
                    fv,
                    CExp::Open {
                        pkg: CVal::Var(pkg),
                        tvar: tv,
                        x: pay,
                        body: Rc::new(CExp::let_proj(
                            code,
                            1,
                            CVal::Var(pay),
                            CExp::let_proj(
                                cenv,
                                2,
                                CVal::Var(pay),
                                CExp::let_(
                                    arg,
                                    CVal::pair(CVal::Var(cenv), av),
                                    CExp::App(CVal::Var(code), CVal::Var(arg)),
                                ),
                            ),
                        )),
                    },
                ))
            }
            Expr::If0(c, t, f) => {
                let cv = self.value(env, c)?;
                Ok(CExp::If0 {
                    v: cv,
                    zero: Rc::new(self.tail(env, t)?),
                    nonzero: Rc::new(self.tail(env, f)?),
                })
            }
            // A plain value in tail position is the program's answer.
            Expr::Int(_) | Expr::Var(_) => {
                let v = self.value(env, e)?;
                Ok(CExp::Halt(v))
            }
            other => Err(CcError(format!(
                "expression {other:?} in tail position violates the CPS invariant"
            ))),
        }
    }

    /// The source type of a CPS-value expression.
    fn src_ty_of(&mut self, env: &Env, e: &Expr) -> CResult<SrcTy> {
        match e {
            Expr::Int(_) => Ok(SrcTy::Int),
            Expr::Var(x) => env
                .vars
                .get(x)
                .map(|(s, _)| s.clone())
                .or_else(|| self.top.get(x).cloned())
                .ok_or_else(|| CcError(format!("unbound variable {x}"))),
            Expr::Pair(a, b) => Ok(SrcTy::prod(
                self.src_ty_of(env, a)?,
                self.src_ty_of(env, b)?,
            )),
            Expr::Lam { param_ty, body, .. } => {
                // CPS'd lambdas always answer int.
                let _ = body;
                Ok(SrcTy::arrow(param_ty.clone(), SrcTy::Int))
            }
            other => Err(CcError(format!("no source type for non-value {other:?}"))),
        }
    }
}

/// Closure-converts a CPS'd program into λCLOS.
///
/// # Errors
///
/// Fails if the input violates the CPS invariants (see module docs).
pub fn cc_program(p: &SrcProgram) -> CResult<CProgram> {
    let top: HashMap<Symbol, SrcTy> = p.defs.iter().map(|d| (d.name, d.ty())).collect();
    let mut cc = Cc {
        top: &top,
        lifted: Vec::new(),
    };
    let mut funs = Vec::new();
    for d in &p.defs {
        // Uniform calling convention: every top-level function takes
        // (dummy-env × converted-parameter).
        let pf = gensym("fp");
        let mut env = Env::default();
        env.vars
            .insert(d.param, (d.param_ty.clone(), cc_ty(&d.param_ty)));
        let body = cc.tail(&env, &d.body)?;
        funs.push(CFun {
            name: d.name,
            param: pf,
            param_ty: CTy::prod(CTy::Int, cc_ty(&d.param_ty)),
            body: CExp::let_proj(d.param, 2, CVal::Var(pf), body),
        });
    }
    let main = cc.tail(&Env::default(), &p.main)?;
    funs.extend(cc.lifted);
    Ok(CProgram { funs, main })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cps::cps_program;
    use crate::eval;
    use crate::tyck;
    use ps_lambda::parse::parse_program;

    /// Full front-end: parse → typecheck → CPS → closure-convert →
    /// typecheck λCLOS → run, comparing with the source evaluator.
    fn pipeline(src: &str) -> i64 {
        let p = parse_program(src).unwrap();
        ps_lambda::typecheck::check_program(&p).unwrap();
        let expected = ps_lambda::eval::run_program(&p, 1_000_000).unwrap();
        let cps = cps_program(&p).unwrap();
        let clos = cc_program(&cps).unwrap();
        tyck::check_program(&clos)
            .unwrap_or_else(|e| panic!("λCLOS output ill-typed for {src}: {e}"));
        let got = eval::run_program(&clos, 10_000_000).unwrap();
        assert_eq!(
            got, expected,
            "closure conversion changed the result of {src}"
        );
        got
    }

    #[test]
    fn arithmetic() {
        assert_eq!(pipeline("1 + 2 * 3"), 7);
    }

    #[test]
    fn pairs_and_projections() {
        assert_eq!(pipeline("fst (1, 2) + snd (3, 4)"), 5);
        assert_eq!(pipeline("snd (fst ((1, 2), 3))"), 2);
    }

    #[test]
    fn conditionals() {
        assert_eq!(pipeline("if0 0 then 10 else 20"), 10);
        assert_eq!(pipeline("if0 7 then 10 else 20"), 20);
    }

    #[test]
    fn closures_capture_environment() {
        assert_eq!(pipeline("let y = 10 in (fn (x : int) => x + y) 5"), 15);
        assert_eq!(
            pipeline("let a = 1 in let b = 2 in let c = 3 in (fn (x : int) => a + b + c + x) 4"),
            10
        );
    }

    #[test]
    fn top_level_recursion() {
        assert_eq!(
            pipeline("fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\n fact 6"),
            720
        );
    }

    #[test]
    fn mutual_recursion() {
        assert_eq!(
            pipeline(
                "fun even (n : int) : int = if0 n then 1 else odd (n - 1)\n\
                 fun odd (n : int) : int = if0 n then 0 else even (n - 1)\n\
                 even 8"
            ),
            1
        );
    }

    #[test]
    fn higher_order_and_currying() {
        assert_eq!(
            pipeline(
                "fun twice (f : int -> int) : int -> int = fn (x : int) => f (f x)\n\
                 (twice (fn (y : int) => y * 2)) 5"
            ),
            20
        );
    }

    #[test]
    fn functions_stored_in_pairs() {
        assert_eq!(
            pipeline(
                "fun applyp (p : (int -> int) * int) : int = (fst p) (snd p)\n\
                 applyp ((fn (x : int) => x + 1), 41)"
            ),
            42
        );
    }

    #[test]
    fn heap_heavy_list_as_pairs() {
        // Build a 20-element list of pairs and sum it: exercises data
        // structures through the converted existential machinery.
        assert_eq!(
            pipeline(
                "fun build (n : int) : int * int = if0 n then (0, 0) else \
                   (let rest = build (n - 1) in (n + fst rest, n))\n\
                 fst (build 20)"
            ),
            210
        );
    }

    #[test]
    fn closure_over_closure() {
        assert_eq!(
            pipeline("let add = fn (x : int) => fn (y : int) => x + y in (add 30) 12"),
            42
        );
    }

    #[test]
    fn cc_ty_shapes() {
        // ⟦int → int⟧ after CPS is ((int × (int→int))→int); converted, the
        // outermost becomes a closure package.
        let t = crate::cps::cps_ty(&SrcTy::arrow(SrcTy::Int, SrcTy::Int));
        match cc_ty(&t) {
            CTy::Exist(..) => {}
            other => panic!("expected closure package, got {other}"),
        }
    }

    #[test]
    fn value_invariant_violation_reported() {
        let mut cc = Cc {
            top: &HashMap::new(),
            lifted: Vec::new(),
        };
        let bad = Expr::If0(
            Rc::new(Expr::Int(0)),
            Rc::new(Expr::Int(1)),
            Rc::new(Expr::Int(2)),
        );
        assert!(cc.value(&Env::default(), &bad).is_err());
    }
}
