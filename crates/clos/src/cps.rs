//! CPS conversion (the first phase of §3's pipeline).
//!
//! The conversion stays *inside* the source language: a CPS'd program is
//! again a well-typed source program in which every function takes a pair
//! `(argument, continuation)` and "returns" only by invoking the
//! continuation; the answer type is `int`. This gives a free correctness
//! oracle — the reference evaluator must produce the same result before and
//! after conversion — before closure conversion leaves the source language.
//!
//! Types translate as
//!
//! ```text
//! ⟦int⟧   = int
//! ⟦τ × σ⟧ = ⟦τ⟧ × ⟦σ⟧
//! ⟦τ → σ⟧ = (⟦τ⟧ × (⟦σ⟧ → int)) → int
//! ```
//!
//! The implementation is one-pass with meta-continuations (in the style of
//! Danvy–Filinski, paper ref. 7), so no administrative β-redexes are produced;
//! `if0` reifies a join-point continuation to avoid duplicating contexts.

use std::collections::HashMap;
use std::fmt;

use ps_ir::symbol::gensym;
use ps_ir::Symbol;

use ps_lambda::syntax::{Expr, FunDef, SrcProgram, SrcTy};
use ps_lambda::typecheck;

/// An error raised during CPS conversion (only on ill-typed input).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpsError(pub String);

impl fmt::Display for CpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CPS conversion error: {}", self.0)
    }
}

impl std::error::Error for CpsError {}

type CResult<T> = Result<T, CpsError>;

/// The CPS type translation `⟦τ⟧`.
pub fn cps_ty(ty: &SrcTy) -> SrcTy {
    match ty {
        SrcTy::Int => SrcTy::Int,
        SrcTy::Prod(a, b) => SrcTy::prod(cps_ty(a), cps_ty(b)),
        SrcTy::Arrow(a, b) => SrcTy::arrow(
            SrcTy::prod(cps_ty(a), SrcTy::arrow(cps_ty(b), SrcTy::Int)),
            SrcTy::Int,
        ),
    }
}

/// The meta-continuation: receives the CPS *value* for the converted
/// expression and that expression's **source** type.
type MetaK<'a> = &'a mut dyn FnMut(Expr, &SrcTy) -> CResult<Expr>;

fn infer_src(env: &HashMap<Symbol, SrcTy>, e: &Expr) -> CResult<SrcTy> {
    typecheck::infer(env, e).map_err(|te| CpsError(te.0))
}

/// Converts one expression. `env` maps variables to their **source**
/// types (used only to compute result types of lambdas and branches).
fn cps_exp(env: &HashMap<Symbol, SrcTy>, e: &Expr, k: MetaK) -> CResult<Expr> {
    match e {
        Expr::Int(n) => k(Expr::Int(*n), &SrcTy::Int),
        Expr::Var(x) => {
            let ty = env
                .get(x)
                .cloned()
                .ok_or_else(|| CpsError(format!("unbound variable {x}")))?;
            k(Expr::Var(*x), &ty)
        }
        Expr::Bin(op, a, b) => {
            let op = *op;
            cps_exp(env, a, &mut |va, _| {
                cps_exp(env, b, &mut |vb, _| {
                    let x = gensym("prim");
                    let body = k(Expr::Var(x), &SrcTy::Int)?;
                    Ok(Expr::let_(
                        x,
                        Expr::Bin(op, va.clone().into(), vb.into()),
                        body,
                    ))
                })
            })
        }
        Expr::Pair(a, b) => cps_exp(env, a, &mut |va, ta| {
            let ta = ta.clone();
            cps_exp(env, b, &mut |vb, tb| {
                let x = gensym("pair");
                let ty = SrcTy::prod(ta.clone(), tb.clone());
                let body = k(Expr::Var(x), &ty)?;
                Ok(Expr::let_(x, Expr::pair(va.clone(), vb), body))
            })
        }),
        Expr::Proj(i, a) => {
            let i = *i;
            cps_exp(env, a, &mut |va, ta| {
                let comp = match ta {
                    SrcTy::Prod(x, y) => {
                        if i == 1 {
                            (**x).clone()
                        } else {
                            (**y).clone()
                        }
                    }
                    other => return Err(CpsError(format!("projection of non-pair type {other}"))),
                };
                let x = gensym("proj");
                let body = k(Expr::Var(x), &comp)?;
                Ok(Expr::let_(x, Expr::Proj(i, va.into()), body))
            })
        }
        Expr::If0(c, t, f) => {
            // Infer the (common) branch type in the source world.
            let branch_ty = infer_src(env, t)?;
            cps_exp(env, c, &mut |vc, _| {
                let jk = gensym("join");
                let xj = gensym("jv");
                // The join continuation carries a CPS-world value.
                let jk_body = k(Expr::Var(xj), &branch_ty)?;
                let jk_lam = Expr::Lam {
                    param: xj,
                    param_ty: cps_ty(&branch_ty),
                    body: jk_body.into(),
                };
                let call_join = |v: Expr| Expr::app(Expr::Var(jk), v);
                let then_e = cps_exp(env, t, &mut |v, _| Ok(call_join(v)))?;
                let else_e = cps_exp(env, f, &mut |v, _| Ok(call_join(v)))?;
                Ok(Expr::let_(
                    jk,
                    jk_lam,
                    Expr::If0(vc.into(), then_e.into(), else_e.into()),
                ))
            })
        }
        Expr::Lam {
            param,
            param_ty,
            body,
        } => {
            let mut env2 = env.clone();
            env2.insert(*param, param_ty.clone());
            let ret_ty = infer_src(&env2, body)?;
            let p = gensym("clo");
            let kv = gensym("k");
            let inner = cps_exp(&env2, body, &mut |v, _| Ok(Expr::app(Expr::Var(kv), v)))?;
            let cps_lam = Expr::Lam {
                param: p,
                param_ty: SrcTy::prod(cps_ty(param_ty), SrcTy::arrow(cps_ty(&ret_ty), SrcTy::Int)),
                body: Expr::let_(
                    *param,
                    Expr::Proj(1, Expr::Var(p).into()),
                    Expr::let_(kv, Expr::Proj(2, Expr::Var(p).into()), inner),
                )
                .into(),
            };
            let src_ty = SrcTy::arrow(param_ty.clone(), ret_ty);
            k(cps_lam, &src_ty)
        }
        Expr::App(f, a) => cps_exp(env, f, &mut |vf, tf| {
            let (dom, cod) = match tf {
                SrcTy::Arrow(d, c) => ((**d).clone(), (**c).clone()),
                other => {
                    return Err(CpsError(format!(
                        "application of non-function type {other}"
                    )))
                }
            };
            let _ = dom;
            cps_exp(env, a, &mut |va, _| {
                let r = gensym("ret");
                let body = k(Expr::Var(r), &cod)?;
                let cont = Expr::Lam {
                    param: r,
                    param_ty: cps_ty(&cod),
                    body: body.into(),
                };
                Ok(Expr::app(vf.clone(), Expr::pair(va, cont)))
            })
        }),
        Expr::Let { x, rhs, body } => cps_exp(env, rhs, &mut |v, trhs| {
            let mut env2 = env.clone();
            env2.insert(*x, trhs.clone());
            let inner = cps_exp(&env2, body, k)?;
            Ok(Expr::let_(*x, v, inner))
        }),
    }
}

/// CPS-converts a whole program.
///
/// Every definition `fun f (x : τ) : σ = e` becomes
/// `fun f (p : ⟦τ⟧ × (⟦σ⟧ → int)) : int = …`; the main expression is run
/// with the identity continuation.
///
/// # Errors
///
/// Fails only on ill-typed input (run
/// [`ps_lambda::typecheck::check_program`] first for a better message).
pub fn cps_program(p: &SrcProgram) -> CResult<SrcProgram> {
    let top = typecheck::top_env(p);
    let mut defs = Vec::with_capacity(p.defs.len());
    for d in &p.defs {
        let mut env = top.clone();
        env.insert(d.param, d.param_ty.clone());
        let pk = gensym("parg");
        let kv = gensym("k");
        let inner = cps_exp(&env, &d.body, &mut |v, _| Ok(Expr::app(Expr::Var(kv), v)))?;
        let body = Expr::let_(
            d.param,
            Expr::Proj(1, Expr::Var(pk).into()),
            Expr::let_(kv, Expr::Proj(2, Expr::Var(pk).into()), inner),
        );
        defs.push(FunDef {
            name: d.name,
            param: pk,
            param_ty: SrcTy::prod(
                cps_ty(&d.param_ty),
                SrcTy::arrow(cps_ty(&d.ret_ty), SrcTy::Int),
            ),
            ret_ty: SrcTy::Int,
            body,
        });
    }
    // The CPS'd top-level environment gives functions their new types, but
    // conversion of the main expression needs the *source* environment for
    // type computation — original `top` — while emitted code refers to the
    // CPS'd functions. These coincide because conversion only consults the
    // environment for source types and emits names verbatim.
    let main = cps_exp(&top, &p.main, &mut |v, _| Ok(v))?;
    Ok(SrcProgram { defs, main })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_lambda::eval::run_program;
    use ps_lambda::parse::parse_program;

    /// Source and CPS'd program must agree, and the CPS'd program must
    /// still typecheck.
    fn roundtrip(src: &str) -> i64 {
        let p = parse_program(src).unwrap();
        typecheck::check_program(&p).unwrap();
        let expected = run_program(&p, 1_000_000).unwrap();
        let q = cps_program(&p).unwrap();
        typecheck::check_program(&q).unwrap_or_else(|e| panic!("CPS output ill-typed: {e}\n{q:?}"));
        let got = run_program(&q, 10_000_000).unwrap();
        assert_eq!(got, expected, "CPS changed the result for {src}");
        got
    }

    #[test]
    fn literals_and_arithmetic() {
        assert_eq!(roundtrip("1 + 2 * 3"), 7);
    }

    #[test]
    fn pairs() {
        assert_eq!(roundtrip("fst (1, 2) + snd (3, 4)"), 5);
    }

    #[test]
    fn conditionals() {
        assert_eq!(roundtrip("if0 0 then 10 else 20"), 10);
        assert_eq!(roundtrip("if0 1 then 10 else 20"), 20);
        assert_eq!(roundtrip("if0 2 - 2 then 1 + 1 else 9"), 2);
    }

    #[test]
    fn lets() {
        assert_eq!(roundtrip("let x = 4 in let y = x * x in y - x"), 12);
    }

    #[test]
    fn lambdas() {
        assert_eq!(roundtrip("(fn (x : int) => x + 1) 41"), 42);
        assert_eq!(roundtrip("let y = 10 in (fn (x : int) => x + y) 5"), 15);
    }

    #[test]
    fn recursion() {
        assert_eq!(
            roundtrip("fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\n fact 6"),
            720
        );
    }

    #[test]
    fn mutual_recursion() {
        assert_eq!(
            roundtrip(
                "fun even (n : int) : int = if0 n then 1 else odd (n - 1)\n\
                 fun odd (n : int) : int = if0 n then 0 else even (n - 1)\n\
                 even 9"
            ),
            0
        );
    }

    #[test]
    fn higher_order() {
        assert_eq!(
            roundtrip(
                "fun twice (f : int -> int) : int -> int = fn (x : int) => f (f x)\n\
                 (twice (fn (y : int) => y * 2)) 5"
            ),
            20
        );
    }

    #[test]
    fn functions_in_pairs() {
        assert_eq!(
            roundtrip(
                "fun applyp (p : (int -> int) * int) : int = (fst p) (snd p)\n\
                 applyp ((fn (x : int) => x + 1), 41)"
            ),
            42
        );
    }

    #[test]
    fn cps_types_translate() {
        let t = SrcTy::arrow(SrcTy::Int, SrcTy::Int);
        // (int × (int → int)) → int
        match cps_ty(&t) {
            SrcTy::Arrow(dom, cod) => {
                assert_eq!(*cod, SrcTy::Int);
                assert!(matches!(&*dom, SrcTy::Prod(..)));
            }
            other => panic!("bad CPS type {other}"),
        }
    }

    #[test]
    fn cps_functions_return_int() {
        let p = parse_program("fun id (x : int * int) : int * int = x\n fst (id (1, 2))").unwrap();
        let q = cps_program(&p).unwrap();
        for d in &q.defs {
            assert_eq!(d.ret_ty, SrcTy::Int, "CPS'd functions answer int");
        }
    }
}
