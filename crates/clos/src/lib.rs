//! # ps-clos — λCLOS and the front-end conversions
//!
//! λCLOS (§3) is the language the paper starts its translation to λGC
//! from: closed CPS code with existential closures. This crate provides
//!
//! * [`syntax`] — the λCLOS AST (types are exactly λGC tags);
//! * [`tyck`] — the λCLOS typechecker;
//! * [`eval`] — a tail-call evaluator (the mid-pipeline oracle);
//! * [`cps`] — one-pass CPS conversion (source → source);
//! * [`cc`] — typed closure conversion (CPS'd source → λCLOS) using
//!   existential packages rather than Wang–Appel's whole-program
//!   defunctionalization.
//!
//! # Examples
//!
//! ```
//! let p = ps_lambda::parse::parse_program(
//!     "fun double (x : int) : int = x + x\n double 21",
//! )
//! .unwrap();
//! let cps = ps_clos::cps::cps_program(&p).unwrap();
//! let clos = ps_clos::cc::cc_program(&cps).unwrap();
//! ps_clos::tyck::check_program(&clos).unwrap();
//! assert_eq!(ps_clos::eval::run_program(&clos, 100_000).unwrap(), 42);
//! ```

pub mod cc;
pub mod cps;
pub mod eval;
pub mod print;
pub mod syntax;
pub mod tyck;
