//! Abstract syntax of λCLOS (§3 of the paper).
//!
//! λCLOS is the language after CPS conversion and closure conversion:
//! functions never return (`τ → 0`), all code is closed and lives in a
//! `letrec` of top-level definitions, and closures are existential packages
//! `⟨t = τ₁, v : τ₂⟩ : ∃t.τ₂`.
//!
//! As in the rest of the workspace, integer primitives and `if0` are
//! carried along as documented extensions; they add no type constructors.

use std::fmt;
use std::rc::Rc;

use ps_ir::Symbol;

pub use ps_lambda::syntax::BinOp;

/// A λCLOS type `τ ::= Int | t | τ₁ × τ₂ | τ → 0 | ∃t.τ`.
///
/// This is exactly the λGC *tag* grammar (minus tag functions) — the
/// translation of Fig. 3 sends these types to λGC tags unchanged.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum CTy {
    Int,
    /// A type variable bound by an existential.
    Var(Symbol),
    Prod(Rc<CTy>, Rc<CTy>),
    /// `τ → 0` — a (unary) function that never returns.
    Arrow(Rc<CTy>),
    /// `∃t.τ`.
    Exist(Symbol, Rc<CTy>),
}

impl CTy {
    /// Convenience constructor for `τ₁ × τ₂`.
    pub fn prod(a: CTy, b: CTy) -> CTy {
        CTy::Prod(Rc::new(a), Rc::new(b))
    }

    /// Convenience constructor for `τ → 0`.
    pub fn arrow(a: CTy) -> CTy {
        CTy::Arrow(Rc::new(a))
    }

    /// Convenience constructor for `∃t.τ`.
    pub fn exist(t: Symbol, body: CTy) -> CTy {
        CTy::Exist(t, Rc::new(body))
    }

    /// The standard closure type `∃t.((t × τ) → 0) × t` produced by typed
    /// closure conversion (§3, following Minamide–Morrisett–Harper).
    pub fn closure(arg: CTy) -> CTy {
        let t = ps_ir::symbol::gensym("tenv");
        CTy::exist(
            t,
            CTy::prod(CTy::arrow(CTy::prod(CTy::Var(t), arg)), CTy::Var(t)),
        )
    }

    /// Capture-avoiding substitution of `tau` for variable `t`.
    pub fn subst(&self, t: Symbol, tau: &CTy) -> CTy {
        match self {
            CTy::Int => CTy::Int,
            CTy::Var(x) => {
                if *x == t {
                    tau.clone()
                } else {
                    self.clone()
                }
            }
            CTy::Prod(a, b) => CTy::prod(a.subst(t, tau), b.subst(t, tau)),
            CTy::Arrow(a) => CTy::arrow(a.subst(t, tau)),
            CTy::Exist(x, body) => {
                if *x == t {
                    self.clone()
                } else if free_in(*x, tau) {
                    let fresh = x.fresh();
                    let renamed = body.subst(*x, &CTy::Var(fresh));
                    CTy::exist(fresh, renamed.subst(t, tau))
                } else {
                    CTy::exist(*x, body.subst(t, tau))
                }
            }
        }
    }
}

fn free_in(t: Symbol, tau: &CTy) -> bool {
    match tau {
        CTy::Int => false,
        CTy::Var(x) => *x == t,
        CTy::Prod(a, b) => free_in(t, a) || free_in(t, b),
        CTy::Arrow(a) => free_in(t, a),
        CTy::Exist(x, body) => *x != t && free_in(t, body),
    }
}

/// α-equivalence of λCLOS types.
pub fn cty_alpha_eq(a: &CTy, b: &CTy) -> bool {
    fn go(a: &CTy, b: &CTy, env: &mut Vec<(Symbol, Symbol)>) -> bool {
        match (a, b) {
            (CTy::Int, CTy::Int) => true,
            (CTy::Var(x), CTy::Var(y)) => {
                for &(p, q) in env.iter().rev() {
                    if p == *x || q == *y {
                        return p == *x && q == *y;
                    }
                }
                x == y
            }
            (CTy::Prod(a1, a2), CTy::Prod(b1, b2)) => go(a1, b1, env) && go(a2, b2, env),
            (CTy::Arrow(x), CTy::Arrow(y)) => go(x, y, env),
            (CTy::Exist(x, bx), CTy::Exist(y, by)) => {
                env.push((*x, *y));
                let r = go(bx, by, env);
                env.pop();
                r
            }
            _ => false,
        }
    }
    go(a, b, &mut Vec::new())
}

impl fmt::Display for CTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CTy::Int => write!(f, "Int"),
            CTy::Var(t) => write!(f, "{t}"),
            CTy::Prod(a, b) => write!(f, "({a} × {b})"),
            CTy::Arrow(a) => write!(f, "({a} → 0)"),
            CTy::Exist(t, body) => write!(f, "∃{t}.{body}"),
        }
    }
}

/// A λCLOS value.
#[derive(Clone, Debug, PartialEq)]
pub enum CVal {
    Int(i64),
    Var(Symbol),
    /// A top-level function name `f`.
    FnName(Symbol),
    Pair(Rc<CVal>, Rc<CVal>),
    /// `⟨t = τ₁, v : τ₂⟩ : ∃t.τ₂` — `body_ty` is the `τ₂` (with `tvar`
    /// free).
    Pack {
        tvar: Symbol,
        witness: CTy,
        val: Rc<CVal>,
        body_ty: CTy,
    },
}

impl CVal {
    /// Convenience constructor for pairs.
    pub fn pair(a: CVal, b: CVal) -> CVal {
        CVal::Pair(Rc::new(a), Rc::new(b))
    }
}

/// A λCLOS term.
#[derive(Clone, Debug, PartialEq)]
pub enum CExp {
    /// `let x = v in e`.
    Let { x: Symbol, v: CVal, body: Rc<CExp> },
    /// `let x = πᵢ v in e`.
    LetProj {
        x: Symbol,
        i: u8,
        v: CVal,
        body: Rc<CExp>,
    },
    /// `let x = v₁ ⊕ v₂ in e` (extension).
    LetPrim {
        x: Symbol,
        op: BinOp,
        a: CVal,
        b: CVal,
        body: Rc<CExp>,
    },
    /// `v₁(v₂)`.
    App(CVal, CVal),
    /// `open v as ⟨t, x⟩ in e`.
    Open {
        pkg: CVal,
        tvar: Symbol,
        x: Symbol,
        body: Rc<CExp>,
    },
    /// `halt v` with `v : Int`.
    Halt(CVal),
    /// `if0 v e₁ e₂` (extension).
    If0 {
        v: CVal,
        zero: Rc<CExp>,
        nonzero: Rc<CExp>,
    },
}

impl CExp {
    /// Convenience constructor for `let`.
    pub fn let_(x: Symbol, v: CVal, body: CExp) -> CExp {
        CExp::Let {
            x,
            v,
            body: Rc::new(body),
        }
    }

    /// Convenience constructor for `let x = πᵢ v`.
    pub fn let_proj(x: Symbol, i: u8, v: CVal, body: CExp) -> CExp {
        CExp::LetProj {
            x,
            i,
            v,
            body: Rc::new(body),
        }
    }

    /// Size in AST nodes.
    pub fn size(&self) -> usize {
        match self {
            CExp::App(..) | CExp::Halt(_) => 1,
            CExp::Let { body, .. }
            | CExp::LetProj { body, .. }
            | CExp::LetPrim { body, .. }
            | CExp::Open { body, .. } => 1 + body.size(),
            CExp::If0 { zero, nonzero, .. } => 1 + zero.size() + nonzero.size(),
        }
    }
}

/// A top-level λCLOS function `f = λ(x : τ).e`.
#[derive(Clone, Debug, PartialEq)]
pub struct CFun {
    pub name: Symbol,
    pub param: Symbol,
    pub param_ty: CTy,
    pub body: CExp,
}

impl CFun {
    /// The function's type `τ → 0`.
    pub fn ty(&self) -> CTy {
        CTy::arrow(self.param_ty.clone())
    }
}

/// A λCLOS program: `letrec f̄ = λ(x̄:τ̄).ē in e`.
#[derive(Clone, Debug, PartialEq)]
pub struct CProgram {
    pub funs: Vec<CFun>,
    pub main: CExp,
}

impl CProgram {
    /// Total AST size.
    pub fn size(&self) -> usize {
        self.funs.iter().map(|f| 1 + f.body.size()).sum::<usize>() + self.main.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    #[test]
    fn substitution_in_types() {
        let t = s("t");
        let ty = CTy::prod(CTy::Var(t), CTy::Int);
        assert_eq!(ty.subst(t, &CTy::Int), CTy::prod(CTy::Int, CTy::Int));
    }

    #[test]
    fn substitution_respects_binders() {
        let t = s("t");
        let ty = CTy::exist(t, CTy::Var(t));
        assert_eq!(ty.subst(t, &CTy::Int), ty);
    }

    #[test]
    fn substitution_avoids_capture() {
        let t = s("t");
        let u = s("u");
        let ty = CTy::exist(u, CTy::Var(t));
        let out = ty.subst(t, &CTy::Var(u));
        match out {
            CTy::Exist(b, body) => {
                assert_ne!(b, u);
                assert_eq!(*body, CTy::Var(u));
            }
            _ => panic!("expected existential"),
        }
    }

    #[test]
    fn alpha_equivalence() {
        let a = CTy::exist(s("a"), CTy::Var(s("a")));
        let b = CTy::exist(s("b"), CTy::Var(s("b")));
        assert!(cty_alpha_eq(&a, &b));
        assert!(!cty_alpha_eq(&a, &CTy::exist(s("c"), CTy::Int)));
    }

    #[test]
    fn closure_type_shape() {
        match CTy::closure(CTy::Int) {
            CTy::Exist(t, body) => match &*body {
                CTy::Prod(code, env) => {
                    assert_eq!(**env, CTy::Var(t));
                    assert!(matches!(**code, CTy::Arrow(_)));
                }
                _ => panic!("expected product"),
            },
            _ => panic!("expected existential"),
        }
    }

    #[test]
    fn display() {
        assert_eq!(CTy::prod(CTy::Int, CTy::Int).to_string(), "(Int × Int)");
        assert_eq!(CTy::arrow(CTy::Int).to_string(), "(Int → 0)");
    }

    #[test]
    fn sizes() {
        let e = CExp::let_(s("x"), CVal::Int(1), CExp::Halt(CVal::Var(s("x"))));
        assert_eq!(e.size(), 2);
    }
}
