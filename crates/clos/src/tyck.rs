//! Typechecker for λCLOS.
//!
//! Environments: `Θ` for existential type variables, `Γ` for value
//! variables, plus the `letrec` function signatures. Types compare up to
//! α-equivalence.

use std::collections::{HashMap, HashSet};
use std::fmt;

use ps_ir::Symbol;

use crate::syntax::{cty_alpha_eq, CExp, CProgram, CTy, CVal};

/// A λCLOS type error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClosTypeError(pub String);

impl fmt::Display for ClosTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λCLOS type error: {}", self.0)
    }
}

impl std::error::Error for ClosTypeError {}

type TResult<T> = Result<T, ClosTypeError>;

/// The checking context.
#[derive(Clone, Debug, Default)]
pub struct ClosCtx {
    /// Function signatures (the `letrec` environment).
    pub funs: HashMap<Symbol, CTy>,
    /// Type variables in scope.
    pub theta: HashSet<Symbol>,
    /// Value variables.
    pub gamma: HashMap<Symbol, CTy>,
}

fn wf(ctx: &ClosCtx, ty: &CTy) -> TResult<()> {
    match ty {
        CTy::Int => Ok(()),
        CTy::Var(t) => {
            if ctx.theta.contains(t) {
                Ok(())
            } else {
                Err(ClosTypeError(format!("unbound type variable {t}")))
            }
        }
        CTy::Prod(a, b) => {
            wf(ctx, a)?;
            wf(ctx, b)
        }
        CTy::Arrow(a) => wf(ctx, a),
        CTy::Exist(t, body) => {
            let mut ctx2 = ctx.clone();
            ctx2.theta.insert(*t);
            wf(&ctx2, body)
        }
    }
}

/// Infers the type of a value.
///
/// # Errors
///
/// Fails on unbound variables and ill-typed packages.
pub fn infer_val(ctx: &ClosCtx, v: &CVal) -> TResult<CTy> {
    match v {
        CVal::Int(_) => Ok(CTy::Int),
        CVal::Var(x) => ctx
            .gamma
            .get(x)
            .cloned()
            .ok_or_else(|| ClosTypeError(format!("unbound variable {x}"))),
        CVal::FnName(f) => ctx
            .funs
            .get(f)
            .cloned()
            .ok_or_else(|| ClosTypeError(format!("unknown function {f}"))),
        CVal::Pair(a, b) => Ok(CTy::prod(infer_val(ctx, a)?, infer_val(ctx, b)?)),
        CVal::Pack {
            tvar,
            witness,
            val,
            body_ty,
        } => {
            wf(ctx, witness)?;
            {
                let mut ctx2 = ctx.clone();
                ctx2.theta.insert(*tvar);
                wf(&ctx2, body_ty)?;
            }
            let expected = body_ty.subst(*tvar, witness);
            let got = infer_val(ctx, val)?;
            if !cty_alpha_eq(&got, &expected) {
                return Err(ClosTypeError(format!(
                    "package payload has type {got}, expected {expected}"
                )));
            }
            Ok(CTy::exist(*tvar, body_ty.clone()))
        }
    }
}

/// Checks a term.
///
/// # Errors
///
/// Fails on the first rule violation, with a short description.
pub fn check_exp(ctx: &ClosCtx, e: &CExp) -> TResult<()> {
    match e {
        CExp::Let { x, v, body } => {
            let t = infer_val(ctx, v)?;
            let mut ctx2 = ctx.clone();
            ctx2.gamma.insert(*x, t);
            check_exp(&ctx2, body)
        }
        CExp::LetProj { x, i, v, body } => match infer_val(ctx, v)? {
            CTy::Prod(a, b) => {
                let t = if *i == 1 { (*a).clone() } else { (*b).clone() };
                let mut ctx2 = ctx.clone();
                ctx2.gamma.insert(*x, t);
                check_exp(&ctx2, body)
            }
            other => Err(ClosTypeError(format!(
                "projection of non-pair type {other}"
            ))),
        },
        CExp::LetPrim { x, a, b, body, .. } => {
            for (what, v) in [("left", a), ("right", b)] {
                match infer_val(ctx, v)? {
                    CTy::Int => {}
                    other => {
                        return Err(ClosTypeError(format!(
                            "{what} operand of primitive has type {other}, expected Int"
                        )))
                    }
                }
            }
            let mut ctx2 = ctx.clone();
            ctx2.gamma.insert(*x, CTy::Int);
            check_exp(&ctx2, body)
        }
        CExp::App(f, a) => match infer_val(ctx, f)? {
            CTy::Arrow(dom) => {
                let at = infer_val(ctx, a)?;
                if cty_alpha_eq(&at, &dom) {
                    Ok(())
                } else {
                    Err(ClosTypeError(format!(
                        "argument has type {at}, function expects {dom}"
                    )))
                }
            }
            other => Err(ClosTypeError(format!(
                "application of non-function type {other}"
            ))),
        },
        CExp::Open { pkg, tvar, x, body } => match infer_val(ctx, pkg)? {
            CTy::Exist(t0, bty) => {
                let mut ctx2 = ctx.clone();
                if !ctx2.theta.insert(*tvar) {
                    return Err(ClosTypeError(format!("open shadows type variable {tvar}")));
                }
                ctx2.gamma.insert(*x, bty.subst(t0, &CTy::Var(*tvar)));
                check_exp(&ctx2, body)
            }
            other => Err(ClosTypeError(format!(
                "open of non-existential type {other}"
            ))),
        },
        CExp::Halt(v) => match infer_val(ctx, v)? {
            CTy::Int => Ok(()),
            other => Err(ClosTypeError(format!("halt on type {other}, expected Int"))),
        },
        CExp::If0 { v, zero, nonzero } => {
            match infer_val(ctx, v)? {
                CTy::Int => {}
                other => {
                    return Err(ClosTypeError(format!(
                        "if0 condition has type {other}, expected Int"
                    )))
                }
            }
            check_exp(ctx, zero)?;
            check_exp(ctx, nonzero)
        }
    }
}

/// Checks a whole program: each function body under its parameter (code is
/// closed — only the `letrec` names and the parameter are in scope), then
/// the main term.
///
/// # Errors
///
/// Fails on the first ill-typed definition or term.
pub fn check_program(p: &CProgram) -> TResult<()> {
    let mut funs = HashMap::new();
    for f in &p.funs {
        if funs.insert(f.name, f.ty()).is_some() {
            return Err(ClosTypeError(format!("duplicate function {}", f.name)));
        }
    }
    for f in &p.funs {
        let mut ctx = ClosCtx {
            funs: funs.clone(),
            ..ClosCtx::default()
        };
        wf(&ctx, &f.param_ty)
            .map_err(|e| ClosTypeError(format!("{} (parameter of {})", e.0, f.name)))?;
        ctx.gamma.insert(f.param, f.param_ty.clone());
        check_exp(&ctx, &f.body)
            .map_err(|e| ClosTypeError(format!("{} (in body of {})", e.0, f.name)))?;
    }
    let ctx = ClosCtx {
        funs,
        ..ClosCtx::default()
    };
    check_exp(&ctx, &p.main).map_err(|e| ClosTypeError(format!("{} (in main)", e.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::CFun;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    #[test]
    fn halt_int() {
        check_exp(&ClosCtx::default(), &CExp::Halt(CVal::Int(1))).unwrap();
    }

    #[test]
    fn halt_pair_fails() {
        let e = CExp::Halt(CVal::pair(CVal::Int(1), CVal::Int(2)));
        assert!(check_exp(&ClosCtx::default(), &e).is_err());
    }

    #[test]
    fn simple_function_program() {
        // letrec f = λ(x:Int). halt x in f(42)
        let f = CFun {
            name: s("f"),
            param: s("x"),
            param_ty: CTy::Int,
            body: CExp::Halt(CVal::Var(s("x"))),
        };
        let p = CProgram {
            funs: vec![f],
            main: CExp::App(CVal::FnName(s("f")), CVal::Int(42)),
        };
        check_program(&p).unwrap();
    }

    #[test]
    fn function_bodies_are_closed() {
        // A body referencing a main-term variable must fail.
        let f = CFun {
            name: s("g"),
            param: s("x"),
            param_ty: CTy::Int,
            body: CExp::Halt(CVal::Var(s("outer"))),
        };
        let p = CProgram {
            funs: vec![f],
            main: CExp::let_(s("outer"), CVal::Int(1), CExp::Halt(CVal::Int(0))),
        };
        assert!(check_program(&p).is_err());
    }

    #[test]
    fn packages_and_open() {
        // A closure-shaped package ⟨t=Int, (f, 7) : ((t×Int)→0) × t⟩.
        let t = s("t");
        let f = CFun {
            name: s("code"),
            param: s("p"),
            param_ty: CTy::prod(CTy::Int, CTy::Int),
            body: CExp::Halt(CVal::Int(0)),
        };
        let pkg = CVal::Pack {
            tvar: t,
            witness: CTy::Int,
            val: std::rc::Rc::new(CVal::pair(CVal::FnName(s("code")), CVal::Int(7))),
            body_ty: CTy::prod(CTy::arrow(CTy::prod(CTy::Var(t), CTy::Int)), CTy::Var(t)),
        };
        // open pkg as ⟨t,p⟩ in let c = π1 p in let env = π2 p in
        // let arg = (env, 1) in c(arg)
        let body = CExp::Open {
            pkg,
            tvar: s("topen"),
            x: s("p"),
            body: std::rc::Rc::new(CExp::let_proj(
                s("c"),
                1,
                CVal::Var(s("p")),
                CExp::let_proj(
                    s("env"),
                    2,
                    CVal::Var(s("p")),
                    CExp::let_(
                        s("arg"),
                        CVal::pair(CVal::Var(s("env")), CVal::Int(1)),
                        CExp::App(CVal::Var(s("c")), CVal::Var(s("arg"))),
                    ),
                ),
            )),
        };
        let p = CProgram {
            funs: vec![f],
            main: body,
        };
        check_program(&p).unwrap();
    }

    #[test]
    fn package_payload_mismatch() {
        let t = s("t");
        let pkg = CVal::Pack {
            tvar: t,
            witness: CTy::Int,
            val: std::rc::Rc::new(CVal::pair(CVal::Int(1), CVal::Int(2))),
            body_ty: CTy::Var(t),
        };
        assert!(infer_val(&ClosCtx::default(), &pkg).is_err());
    }

    #[test]
    fn hidden_witness_does_not_leak() {
        // After open, the payload has an abstract type; halting on it fails.
        let t = s("t");
        let pkg = CVal::Pack {
            tvar: t,
            witness: CTy::Int,
            val: std::rc::Rc::new(CVal::Int(1)),
            body_ty: CTy::Var(t),
        };
        let e = CExp::Open {
            pkg,
            tvar: s("u"),
            x: s("x"),
            body: std::rc::Rc::new(CExp::Halt(CVal::Var(s("x")))),
        };
        assert!(check_exp(&ClosCtx::default(), &e).is_err());
    }

    #[test]
    fn if0_and_prims() {
        let e = CExp::LetPrim {
            x: s("n"),
            op: BinOp::Sub,
            a: CVal::Int(3),
            b: CVal::Int(3),
            body: std::rc::Rc::new(CExp::If0 {
                v: CVal::Var(s("n")),
                zero: std::rc::Rc::new(CExp::Halt(CVal::Int(1))),
                nonzero: std::rc::Rc::new(CExp::Halt(CVal::Int(0))),
            }),
        };
        check_exp(&ClosCtx::default(), &e).unwrap();
    }

    use crate::syntax::BinOp;
}
