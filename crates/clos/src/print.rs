//! Pretty-printing of λCLOS programs in the paper's §3 notation.
//!
//! Used by diagnostics and by the `certify` example's sibling displays; the
//! rendering mirrors the grammar of §3:
//!
//! ```text
//! letrec f = λ(x : τ).e … in e
//! ```

use ps_ir::Doc;

use crate::syntax::{CExp, CFun, CProgram, CTy, CVal};

/// Renders a λCLOS type.
pub fn ty(t: &CTy) -> Doc {
    Doc::text(t.to_string())
}

/// Renders a λCLOS value.
pub fn value(v: &CVal) -> Doc {
    match v {
        CVal::Int(n) => Doc::text(n.to_string()),
        CVal::Var(x) => Doc::text(x.to_string()),
        CVal::FnName(f) => Doc::text(f.to_string()),
        CVal::Pair(a, b) => Doc::text("(")
            .append(value(a))
            .append(Doc::text(", "))
            .append(value(b))
            .append(Doc::text(")")),
        CVal::Pack {
            tvar,
            witness,
            val,
            body_ty,
        } => Doc::text(format!("⟨{tvar} = "))
            .append(ty(witness))
            .append(Doc::text(", "))
            .append(value(val))
            .append(Doc::text(" : "))
            .append(ty(body_ty))
            .append(Doc::text("⟩")),
    }
}

/// Renders a λCLOS term.
pub fn exp(e: &CExp) -> Doc {
    match e {
        CExp::Let { x, v, body } => Doc::text(format!("let {x} = "))
            .append(value(v))
            .append(Doc::text(" in"))
            .append(Doc::hardline())
            .append(exp(body)),
        CExp::LetProj { x, i, v, body } => Doc::text(format!("let {x} = π{i} "))
            .append(value(v))
            .append(Doc::text(" in"))
            .append(Doc::hardline())
            .append(exp(body)),
        CExp::LetPrim { x, op, a, b, body } => Doc::text(format!("let {x} = "))
            .append(value(a))
            .append(Doc::text(format!(" {op} ")))
            .append(value(b))
            .append(Doc::text(" in"))
            .append(Doc::hardline())
            .append(exp(body)),
        CExp::App(f, a) => value(f)
            .append(Doc::text("("))
            .append(value(a))
            .append(Doc::text(")")),
        CExp::Open { pkg, tvar, x, body } => Doc::text("open ")
            .append(value(pkg))
            .append(Doc::text(format!(" as ⟨{tvar}, {x}⟩ in")))
            .append(Doc::hardline())
            .append(exp(body)),
        CExp::Halt(v) => Doc::text("halt ").append(value(v)),
        CExp::If0 { v, zero, nonzero } => Doc::text("if0 ")
            .append(value(v))
            .append(Doc::text(" then"))
            .append(Doc::hardline().append(exp(zero)).nest(2))
            .append(Doc::hardline())
            .append(Doc::text("else"))
            .append(Doc::hardline().append(exp(nonzero)).nest(2)),
    }
}

/// Renders a function definition.
pub fn fun(f: &CFun) -> Doc {
    Doc::text(format!("{} = λ({} : ", f.name, f.param))
        .append(ty(&f.param_ty))
        .append(Doc::text(")."))
        .append(Doc::hardline().append(exp(&f.body)).nest(2))
}

/// Renders a whole program, `letrec`-style.
pub fn program(p: &CProgram) -> String {
    let mut doc = Doc::text("letrec");
    for f in &p.funs {
        doc = doc.append(Doc::hardline().append(fun(f)).nest(2));
    }
    doc = doc
        .append(Doc::hardline())
        .append(Doc::text("in"))
        .append(Doc::hardline().append(exp(&p.main)).nest(2));
    doc.render(100)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{cc, cps};
    use ps_lambda::parse::parse_program;

    #[test]
    fn values_render() {
        assert_eq!(value(&CVal::Int(3)).render(80), "3");
        assert_eq!(
            value(&CVal::pair(CVal::Int(1), CVal::Int(2))).render(80),
            "(1, 2)"
        );
    }

    #[test]
    fn whole_pipeline_output_renders() {
        let p = parse_program("fun inc (x : int) : int = x + 1\n inc 41").unwrap();
        let cps = cps::cps_program(&p).unwrap();
        let clos = cc::cc_program(&cps).unwrap();
        let text = program(&clos);
        assert!(text.starts_with("letrec"));
        assert!(text.contains("λ("), "{text}");
        assert!(text.contains("halt"), "{text}");
        // Every top-level function appears.
        for f in &clos.funs {
            assert!(text.contains(&f.name.to_string()), "{}", f.name);
        }
    }

    #[test]
    fn packages_render_with_witness() {
        let t = ps_ir::Symbol::intern("t");
        let v = CVal::Pack {
            tvar: t,
            witness: CTy::Int,
            val: std::rc::Rc::new(CVal::Int(1)),
            body_ty: CTy::Var(t),
        };
        let s = value(&v).render(80);
        assert!(s.contains("⟨t = Int"), "{s}");
    }
}
