//! An evaluator for λCLOS.
//!
//! λCLOS is CPS, so evaluation is a flat loop: each step either extends the
//! environment or tail-calls a top-level function with a single argument
//! value. The evaluator is the mid-pipeline oracle: CPS + closure
//! conversion must preserve the source program's result, and the λGC
//! translation must preserve this evaluator's.

use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

use ps_ir::Symbol;

use crate::syntax::{CExp, CProgram, CVal};

/// A λCLOS runtime value.
#[derive(Clone, Debug, PartialEq)]
pub enum RtVal {
    Int(i64),
    Pair(Rc<RtVal>, Rc<RtVal>),
    /// An existential package (the witness is erased at runtime except for
    /// debugging).
    Pack(Rc<RtVal>),
    /// A top-level function, by index.
    Fun(usize),
}

impl RtVal {
    fn as_int(&self) -> Result<i64, ClosEvalError> {
        match self {
            RtVal::Int(n) => Ok(*n),
            other => Err(ClosEvalError(format!("expected integer, got {other:?}"))),
        }
    }
}

/// A λCLOS evaluation error (impossible for typechecked programs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClosEvalError(pub String);

impl fmt::Display for ClosEvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "λCLOS evaluation error: {}", self.0)
    }
}

impl std::error::Error for ClosEvalError {}

type EResult<T> = Result<T, ClosEvalError>;

fn eval_val(p: &CProgram, env: &HashMap<Symbol, RtVal>, v: &CVal) -> EResult<RtVal> {
    match v {
        CVal::Int(n) => Ok(RtVal::Int(*n)),
        CVal::Var(x) => env
            .get(x)
            .cloned()
            .ok_or_else(|| ClosEvalError(format!("unbound variable {x}"))),
        CVal::FnName(f) => p
            .funs
            .iter()
            .position(|d| d.name == *f)
            .map(RtVal::Fun)
            .ok_or_else(|| ClosEvalError(format!("unknown function {f}"))),
        CVal::Pair(a, b) => Ok(RtVal::Pair(
            Rc::new(eval_val(p, env, a)?),
            Rc::new(eval_val(p, env, b)?),
        )),
        CVal::Pack { val, .. } => Ok(RtVal::Pack(Rc::new(eval_val(p, env, val)?))),
    }
}

/// Runs a λCLOS program to its halt value.
///
/// # Errors
///
/// Fails on runtime type confusion (impossible after
/// [`crate::tyck::check_program`]) or fuel exhaustion.
pub fn run_program(p: &CProgram, fuel: u64) -> EResult<i64> {
    let mut env: HashMap<Symbol, RtVal> = HashMap::new();
    let mut exp: CExp = p.main.clone();
    let mut steps = 0u64;
    loop {
        steps += 1;
        if steps > fuel {
            return Err(ClosEvalError("out of fuel".to_string()));
        }
        exp = match exp {
            CExp::Let { x, v, body } => {
                let rv = eval_val(p, &env, &v)?;
                env.insert(x, rv);
                (*body).clone()
            }
            CExp::LetProj { x, i, v, body } => {
                match eval_val(p, &env, &v)? {
                    RtVal::Pair(a, b) => {
                        env.insert(x, if i == 1 { (*a).clone() } else { (*b).clone() });
                    }
                    other => {
                        return Err(ClosEvalError(format!("projection of non-pair {other:?}")))
                    }
                }
                (*body).clone()
            }
            CExp::LetPrim { x, op, a, b, body } => {
                let a = eval_val(p, &env, &a)?.as_int()?;
                let b = eval_val(p, &env, &b)?.as_int()?;
                env.insert(x, RtVal::Int(op.apply(a, b)));
                (*body).clone()
            }
            CExp::App(f, a) => {
                let fv = eval_val(p, &env, &f)?;
                let av = eval_val(p, &env, &a)?;
                match fv {
                    RtVal::Fun(i) => {
                        let def = &p.funs[i];
                        env = HashMap::new();
                        env.insert(def.param, av);
                        def.body.clone()
                    }
                    other => {
                        return Err(ClosEvalError(format!(
                            "application of non-function {other:?}"
                        )))
                    }
                }
            }
            CExp::Open { pkg, x, body, .. } => {
                match eval_val(p, &env, &pkg)? {
                    RtVal::Pack(inner) => {
                        env.insert(x, (*inner).clone());
                    }
                    other => return Err(ClosEvalError(format!("open of non-package {other:?}"))),
                }
                (*body).clone()
            }
            CExp::Halt(v) => return eval_val(p, &env, &v)?.as_int(),
            CExp::If0 { v, zero, nonzero } => {
                if eval_val(p, &env, &v)?.as_int()? == 0 {
                    (*zero).clone()
                } else {
                    (*nonzero).clone()
                }
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::{BinOp, CFun, CTy};

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    #[test]
    fn halt_value() {
        let p = CProgram {
            funs: vec![],
            main: CExp::Halt(CVal::Int(7)),
        };
        assert_eq!(run_program(&p, 100).unwrap(), 7);
    }

    #[test]
    fn let_proj_prim() {
        let p = CProgram {
            funs: vec![],
            main: CExp::let_(
                s("p"),
                CVal::pair(CVal::Int(2), CVal::Int(3)),
                CExp::let_proj(
                    s("a"),
                    1,
                    CVal::Var(s("p")),
                    CExp::let_proj(
                        s("b"),
                        2,
                        CVal::Var(s("p")),
                        CExp::LetPrim {
                            x: s("c"),
                            op: BinOp::Mul,
                            a: CVal::Var(s("a")),
                            b: CVal::Var(s("b")),
                            body: Rc::new(CExp::Halt(CVal::Var(s("c")))),
                        },
                    ),
                ),
            ),
        };
        assert_eq!(run_program(&p, 100).unwrap(), 6);
    }

    #[test]
    fn tail_calls_do_not_grow() {
        // A countdown loop via a recursive top-level function.
        let f = CFun {
            name: s("count"),
            param: s("n"),
            param_ty: CTy::Int,
            body: CExp::If0 {
                v: CVal::Var(s("n")),
                zero: Rc::new(CExp::Halt(CVal::Int(0))),
                nonzero: Rc::new(CExp::LetPrim {
                    x: s("m"),
                    op: BinOp::Sub,
                    a: CVal::Var(s("n")),
                    b: CVal::Int(1),
                    body: Rc::new(CExp::App(CVal::FnName(s("count")), CVal::Var(s("m")))),
                }),
            },
        };
        let p = CProgram {
            funs: vec![f],
            main: CExp::App(CVal::FnName(s("count")), CVal::Int(10_000)),
        };
        assert_eq!(run_program(&p, 1_000_000).unwrap(), 0);
    }

    #[test]
    fn packages_erase_to_payload() {
        let p = CProgram {
            funs: vec![],
            main: CExp::Open {
                pkg: CVal::Pack {
                    tvar: s("t"),
                    witness: CTy::Int,
                    val: Rc::new(CVal::Int(5)),
                    body_ty: CTy::Var(s("t")),
                },
                tvar: s("u"),
                x: s("x"),
                body: Rc::new(CExp::Halt(CVal::Var(s("x")))),
            },
        };
        assert_eq!(run_program(&p, 100).unwrap(), 5);
    }

    #[test]
    fn fuel_limits() {
        let f = CFun {
            name: s("spin"),
            param: s("n"),
            param_ty: CTy::Int,
            body: CExp::App(CVal::FnName(s("spin")), CVal::Var(s("n"))),
        };
        let p = CProgram {
            funs: vec![f],
            main: CExp::App(CVal::FnName(s("spin")), CVal::Int(0)),
        };
        assert!(run_program(&p, 100).is_err());
    }
}
