//! E5 — "GC as a library, certified by the typechecker" (§1, §2.2).
//!
//! The cost of certification: typechecking each collector image, and
//! typechecking whole translated programs as the mutator grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ps_bench::{compile_ast, live_tree_churn};
use scavenger::gc_lang::tyck::Checker;
use scavenger::Collector;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_typecheck");
    group.sample_size(10);
    for collector in [Collector::Basic, Collector::Forwarding, Collector::Generational] {
        let image = collector.image();
        let program = scavenger::gc_lang::machine::Program {
            dialect: match collector {
                Collector::Basic => scavenger::gc_lang::syntax::Dialect::Basic,
                Collector::Forwarding => scavenger::gc_lang::syntax::Dialect::Forwarding,
                Collector::Generational => scavenger::gc_lang::syntax::Dialect::Generational,
            },
            code: image.code,
            main: scavenger::gc_lang::syntax::Term::Halt(scavenger::gc_lang::syntax::Value::Int(0)),
        };
        group.bench_function(BenchmarkId::new("collector", collector.to_string()), |b| {
            b.iter(|| Checker::check_program(&program).expect("certified"))
        });
    }
    for depth in [3u32, 6, 9] {
        let compiled = compile_ast(&live_tree_churn(depth, 10), Collector::Basic, 1 << 20);
        println!(
            "E5: translated program at depth {depth}: {} λGC term nodes",
            compiled.program.main.size()
                + compiled.program.code.iter().map(|d| d.body.size()).sum::<usize>()
        );
        group.bench_with_input(BenchmarkId::new("whole-program", depth), &depth, |b, _| {
            b.iter(|| Checker::check_program(&compiled.program).expect("typechecks"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
