//! E1 — basic collector copy cost is linear in live data (Fig. 4/12).
//!
//! A mutator keeps a complete pair-tree of depth `d` live while churning;
//! every collection copies the whole tree. We sweep `d` and time complete
//! runs; the per-collection copy work (printed once) grows as `2^d`, and
//! run time with it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ps_bench::{compile_ast, copy_work, live_tree_churn, run_stats};
use scavenger::Collector;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_basic_copy");
    group.sample_size(10);
    println!("\nE1: live tree of depth d, basic collector, fixed churn");
    println!("{:>6} {:>12} {:>14} {:>17}", "depth", "collections", "copied words", "words/collection");
    for depth in [3u32, 5, 7, 9] {
        let program = live_tree_churn(depth, 120);
        // Budget: the live tree plus a little churn headroom, so the first
        // collection happens soon after the tree is built at every depth.
        let budget = (2usize << depth) + 96;
        let compiled = compile_ast(&program, Collector::Basic, budget);
        let stats = run_stats(&compiled);
        let copied = copy_work(&stats);
        let per = (copied as u64).checked_div(stats.collections).unwrap_or(0);
        println!("{depth:>6} {:>12} {copied:>14} {per:>17}", stats.collections);
        group.bench_with_input(BenchmarkId::new("run", depth), &depth, |b, _| {
            b.iter(|| run_stats(&compiled))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
