//! E4 — the cost of running the collector *inside* the language (§6.1).
//!
//! §6.1: the CPS'd copy allocates its continuation stack in a temporary
//! region r₃, "bounded by the size of the to region … although this memory
//! overhead is a considerable shortcoming". We (a) print the measured
//! r₃-peak versus to-space size per collection, and (b) time the
//! in-language collection against the untyped meta-level collector on an
//! equivalent heap — the trusted-GC baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ps_bench::{compile_ast, live_tree_churn, run_stats};
use scavenger::collectors::meta;
use scavenger::gc_lang::memory::{GrowthPolicy, MemConfig, Memory};
use scavenger::Collector;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_cps_overhead");
    group.sample_size(10);
    println!("\nE4a: continuation region r3 vs to-space, per collection (basic collector)");
    println!("{:>6} {:>14} {:>16} {:>8}", "depth", "to-space (w)", "cont region (w)", "ratio");
    for depth in [4u32, 6, 8] {
        let program = live_tree_churn(depth, 120);
        let compiled = compile_ast(&program, Collector::Basic, 1 << (depth + 3));
        let stats = run_stats(&compiled);
        for ev in stats.reclaim_events.iter().take(1) {
            // The dropped regions of a basic collection are the from-space
            // and the continuation region; the larger dropped region is the
            // from-space, the smaller the continuation stack.
            let mut dropped: Vec<usize> = ev.dropped.iter().map(|(_, w, _)| *w).collect();
            dropped.sort_unstable();
            let cont = dropped.first().copied().unwrap_or(0);
            let kept = ev.kept_words.max(1);
            println!("{depth:>6} {kept:>14} {cont:>16} {:>8.2}", cont as f64 / kept as f64);
        }
        group.bench_with_input(BenchmarkId::new("in-language", depth), &depth, |b, _| {
            b.iter(|| run_stats(&compiled))
        });
        // Meta-level baseline on an equivalent heap.
        group.bench_with_input(BenchmarkId::new("meta", depth), &depth, |b, _| {
            b.iter_batched(
                || {
                    let mut m = Memory::new(MemConfig {
                        region_budget: 1 << 24,
                        growth: GrowthPolicy::Fixed,
                        track_types: false,
                        max_heap_words: None,
                        page_words: 512,
                    });
                    let r = m.alloc_region();
                    let root = meta::synth_tree(&mut m, r, depth).expect("tree");
                    (m, root)
                },
                |(mut m, root)| meta::collect(&mut m, &[root]).expect("collect"),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
