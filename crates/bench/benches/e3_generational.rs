//! E3 — minor collections do not copy the old generation (§8, Fig. 11).
//!
//! A long-lived tree plus heavy churn: the basic collector re-copies the
//! tree at every collection; the generational collector promotes it once
//! and then only sweeps the young region. We print collector-performed
//! allocation (copies + promotions + continuation records) as the
//! live-data size grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ps_bench::{compile_ast, gc_alloc_overhead, live_tree_churn, run_stats};
use scavenger::Collector;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_generational");
    group.sample_size(10);
    println!("\nE3: long-lived tree of depth d + churn — collector allocation");
    println!("{:>6} {:>16} {:>20}", "depth", "basic (words)", "generational (words)");
    for depth in [4u32, 6, 8] {
        let program = live_tree_churn(depth, 200);
        let b_work = gc_alloc_overhead(&program, Collector::Basic, 160);
        let g_work = gc_alloc_overhead(&program, Collector::Generational, 160);
        println!("{depth:>6} {b_work:>16} {g_work:>20}");
        let basic = compile_ast(&program, Collector::Basic, 160);
        let gener = compile_ast(&program, Collector::Generational, 160);
        group.bench_with_input(BenchmarkId::new("basic", depth), &depth, |b, _| {
            b.iter(|| run_stats(&basic))
        });
        group.bench_with_input(BenchmarkId::new("generational", depth), &depth, |b, _| {
            b.iter(|| run_stats(&gener))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
