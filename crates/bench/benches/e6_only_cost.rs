//! E6 — `only` deallocation cost is proportional to the number of regions
//! (§4.1: "a more expensive deallocation operation… in our case we have
//! very few regions…, so it is a good tradeoff"; §6.4: "the cost is
//! proportional to the number of regions… an insignificant runtime
//! penalty").

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use scavenger::gc_lang::memory::{GrowthPolicy, MemConfig, Memory};
use scavenger::gc_lang::syntax::Value;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_only_cost");
    for regions in [1usize, 4, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::new("only", regions), &regions, |b, &n| {
            b.iter_batched(
                || {
                    let mut m = Memory::new(MemConfig {
                        region_budget: 1 << 20,
                        growth: GrowthPolicy::Fixed,
                        track_types: false,
                        max_heap_words: None,
                        page_words: 512,
                    });
                    let mut keep = None;
                    for i in 0..n {
                        let r = m.alloc_region();
                        m.put(r, Value::Int(i as i64)).expect("put");
                        keep = Some(r);
                    }
                    (m, keep.expect("at least one region"))
                },
                |(mut m, keep)| m.only(&[keep]),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
