//! E2 — forwarding pointers preserve sharing (§7, Fig. 9).
//!
//! A live DAG of depth `d` has `d` cells but `2^d` paths. The basic
//! collector copies along paths (exponential); the forwarding collector
//! copies each cell once (linear). The printed table shows the crossover;
//! the timed runs show it in wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ps_bench::{compile_ast, copy_work, live_dag_churn, run_stats};
use scavenger::Collector;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_forwarding");
    group.sample_size(10);
    println!("\nE2: live DAG of depth d — copy work per collector");
    println!("{:>6} {:>16} {:>18}", "depth", "basic (words)", "forwarding (words)");
    for depth in [4u32, 8, 12] {
        let program = live_dag_churn(depth, 80);
        let basic = compile_ast(&program, Collector::Basic, 128);
        let fwd = compile_ast(&program, Collector::Forwarding, 128);
        let bw = copy_work(&run_stats(&basic));
        let fw = copy_work(&run_stats(&fwd));
        println!("{depth:>6} {bw:>16} {fw:>18}");
        group.bench_with_input(BenchmarkId::new("basic", depth), &depth, |b, _| {
            b.iter(|| run_stats(&basic))
        });
        group.bench_with_input(BenchmarkId::new("forwarding", depth), &depth, |b, _| {
            b.iter(|| run_stats(&fwd))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
