//! E9 — interpreter throughput: the environment machine versus the Fig. 5
//! substitution machine, on the E1 (collection-heavy) and E4
//! (mutator-dominated) workloads.
//!
//! Both backends execute the identical rule sequence (the differential
//! suite checks this step-for-step), so steps/second is a like-for-like
//! comparison. The offline variant of this measurement is
//! `examples/e9_throughput.rs` at the repository root.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ps_bench::{compile_ast, live_tree_churn, run_stats};
use scavenger::gc_lang::machine::Outcome;
use scavenger::{Collector, Compiled};

fn run_env_stats(c: &Compiled) -> scavenger::gc_lang::machine::Stats {
    let mut m = c.env_machine();
    match m.run(1_000_000_000).expect("runs") {
        Outcome::Halted(_) => m.stats().clone(),
        Outcome::OutOfFuel => panic!("out of fuel"),
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_interp_throughput");
    group.sample_size(10);
    let cases = [3u32, 5, 7, 9]
        .iter()
        .map(|&d| ("e1_gc", d, (2usize << d) + 96))
        .chain([6u32, 8].iter().map(|&d| ("e4_mut", d, 1usize << (d + 3))))
        .collect::<Vec<_>>();
    for (tag, depth, budget) in cases {
        let program = live_tree_churn(depth, 120);
        let compiled = compile_ast(&program, Collector::Basic, budget);
        let steps = run_stats(&compiled).steps;
        assert_eq!(steps, run_env_stats(&compiled).steps, "backends must agree");
        group.throughput(Throughput::Elements(steps));
        group.bench_with_input(
            BenchmarkId::new(format!("{tag}/subst"), depth),
            &depth,
            |b, _| b.iter(|| run_stats(&compiled)),
        );
        group.bench_with_input(
            BenchmarkId::new(format!("{tag}/env"), depth),
            &depth,
            |b, _| b.iter(|| run_env_stats(&compiled)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
