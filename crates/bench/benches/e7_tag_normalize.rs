//! E7 — tag normalization (Prop. 6.1): reduction of well-kinded tags is
//! strongly normalizing; how much does the collector's per-typecase tag
//! work cost as tags grow?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scavenger::gc_lang::tags;
use scavenger::gc_lang::syntax::Tag;

/// A balanced product tag of the given depth.
fn product_tag(depth: u32) -> Tag {
    if depth == 0 {
        Tag::Int
    } else {
        Tag::prod(product_tag(depth - 1), product_tag(depth - 1))
    }
}

/// A redex-heavy tag: `id (id (… (id τ)))`.
fn redex_chain(n: u32, inner: Tag) -> Tag {
    let mut t = inner;
    for _ in 0..n {
        t = Tag::app(Tag::id_fn(), t);
    }
    t
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_tag_normalize");
    for depth in [4u32, 8, 12] {
        let tag = product_tag(depth);
        println!("E7: product tag depth {depth}: size {}", tags::tag_size(&tag));
        group.bench_with_input(BenchmarkId::new("normal-form", depth), &depth, |b, _| {
            b.iter(|| tags::normalize(&tag))
        });
    }
    for n in [8u32, 64, 512] {
        let tag = redex_chain(n, product_tag(4));
        group.bench_with_input(BenchmarkId::new("redex-chain", n), &n, |b, _| {
            b.iter(|| {
                let mut steps = 0;
                tags::normalize_counted(&tag, &mut steps);
                assert_eq!(steps, n as u64);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
