//! E8 — the §2.2.1 ablation: the asymmetric `S_{T,F}` Typerec accumulates
//! (types grow with every collection) while the symmetric `M` keeps types
//! constant-size. The printed series is the paper's motivating argument;
//! the timed comparison shows the compounding cost of carrying the tower.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scavenger::gc_lang::ablation::{m_growth, s_growth};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_s_vs_m");
    println!("\nE8: type size after k collections");
    println!("{:>6} {:>14} {:>14}", "k", "asymmetric S", "symmetric M");
    for k in [1usize, 4, 16, 64] {
        let s = s_growth(k);
        let m = m_growth(k);
        println!("{k:>6} {:>14} {:>14}", s.last().unwrap(), m.last().unwrap());
        group.bench_with_input(BenchmarkId::new("s_growth", k), &k, |b, &k| {
            b.iter(|| s_growth(k))
        });
        group.bench_with_input(BenchmarkId::new("m_growth", k), &k, |b, &k| {
            b.iter(|| m_growth(k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
