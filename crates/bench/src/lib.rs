//! Criterion harness for the E1–E9 experiments.
//!
//! The workload builders live in [`scavenger::workloads`] so that the
//! offline examples (`examples/e9_throughput.rs` at the repo root) and the
//! Criterion benches in this crate share one set of programs; this crate
//! re-exports them for the benches. This package is deliberately *outside*
//! the workspace (see the root `Cargo.toml`): Criterion is not vendored,
//! so the workspace itself builds and tests fully offline, and this crate
//! is only built on machines with a crates.io mirror via
//! `cargo bench --manifest-path crates/bench/Cargo.toml`.

pub use scavenger::workloads::*;
