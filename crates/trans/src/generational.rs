//! The λCLOS → λGCgen translation (§8's variant of Fig. 3).
//!
//! Functions take the region pair `[ry, ro]`; allocations go to the young
//! region and are wrapped in region packages
//! `⟨r ∈ {ry,ro} = ry, addr⟩ : ∃r∈{ry,ro}.(… at r)` so the mutator "does
//! not need to care whether an object is allocated in the young or the old
//! region" (§8); reads open the package first. The invariant that old
//! objects never point young holds trivially: the mutator only ever
//! allocates young.
//!
//! The region-package annotations need the component types of every
//! allocation, so this translation tracks λCLOS types as it goes (via
//! [`ps_clos::tyck`]'s value inference).

use ps_ir::symbol::gensym;
use ps_ir::Symbol;

use ps_clos::syntax::{CExp, CProgram, CTy, CVal};
use ps_clos::tyck::{infer_val, ClosCtx};
use ps_collectors::CollectorImage;
use ps_gc_lang::machine::Program;
use ps_gc_lang::syntax::{CodeDef, Dialect, Kind, Op, Region, Tag, Term, Ty, Value, CD};

use crate::basic::{prim_of, tag_of};
use crate::TransError;

type TResult<T> = Result<T, TransError>;

struct Trans {
    labels: std::collections::HashMap<Symbol, u32>,
    gc_entry: u32,
    ry: Symbol,
    ro: Symbol,
}

impl Trans {
    fn ryv(&self) -> Region {
        Region::Var(self.ry)
    }
    fn rov(&self) -> Region {
        Region::Var(self.ro)
    }
    fn bound(&self) -> Vec<Region> {
        vec![self.ryv(), self.rov()]
    }

    /// `M_{r, ro}(τ)` with `r` a bound region-package variable.
    fn mg_at(&self, r: Symbol, tag: Tag) -> Ty {
        Ty::mgen(Region::Var(r), self.rov(), tag)
    }

    /// The mutator-view type of a λCLOS value: `M_{ry,ro}(τ)`.
    fn mg(&self, tag: Tag) -> Ty {
        Ty::mgen(self.ryv(), self.rov(), tag)
    }

    fn value(&self, ctx: &ClosCtx, v: &CVal, binds: &mut Vec<(Symbol, Op)>) -> TResult<Value> {
        match v {
            CVal::Int(n) => Ok(Value::Int(*n)),
            CVal::Var(x) => Ok(Value::Var(*x)),
            CVal::FnName(f) => {
                let off = self
                    .labels
                    .get(f)
                    .ok_or_else(|| TransError(format!("unknown function {f}")))?;
                Ok(Value::Addr(CD, *off))
            }
            CVal::Pair(a, b) => {
                let aty = infer_val(ctx, a).map_err(|e| TransError(e.0))?;
                let bty = infer_val(ctx, b).map_err(|e| TransError(e.0))?;
                let av = self.value(ctx, a, binds)?;
                let bv = self.value(ctx, b, binds)?;
                let x = gensym("p");
                let rp = gensym("rp");
                binds.push((x, Op::Put(self.ryv(), Value::pair(av, bv))));
                let body = Ty::prod(self.mg_at(rp, tag_of(&aty)), self.mg_at(rp, tag_of(&bty)));
                let pkg = Value::PackRgn {
                    rvar: rp,
                    bound: (self.bound()).into(),
                    witness: self.ryv(),
                    val: (Value::Var(x)).into(),
                    body_ty: body,
                };
                let y = gensym("pg");
                binds.push((y, Op::Val(pkg)));
                Ok(Value::Var(y))
            }
            CVal::Pack {
                tvar,
                witness,
                val,
                body_ty,
            } => {
                let pv = self.value(ctx, val, binds)?;
                let inner = Value::PackTag {
                    tvar: *tvar,
                    kind: Kind::Omega,
                    tag: tag_of(witness),
                    val: (pv).into(),
                    body_ty: self.mg(tag_of(body_ty)),
                };
                let x = gensym("pk");
                binds.push((x, Op::Put(self.ryv(), inner)));
                let rp = gensym("rp");
                let pkg = Value::PackRgn {
                    rvar: rp,
                    bound: (self.bound()).into(),
                    witness: self.ryv(),
                    val: (Value::Var(x)).into(),
                    body_ty: Ty::exist_tag(*tvar, Kind::Omega, self.mg_at(rp, tag_of(body_ty))),
                };
                let y = gensym("pkg");
                binds.push((y, Op::Val(pkg)));
                Ok(Value::Var(y))
            }
        }
    }

    fn wrap(binds: Vec<(Symbol, Op)>, body: Term) -> Term {
        binds
            .into_iter()
            .rev()
            .fold(body, |acc, (x, op)| Term::let_(x, op, acc))
    }

    fn exp(&self, ctx: &ClosCtx, e: &CExp) -> TResult<Term> {
        match e {
            CExp::Let { x, v, body } => {
                let ty = infer_val(ctx, v).map_err(|e| TransError(e.0))?;
                let mut binds = Vec::new();
                let gv = self.value(ctx, v, &mut binds)?;
                let mut ctx2 = ctx.clone();
                ctx2.gamma.insert(*x, ty);
                let rest = Term::let_(*x, Op::Val(gv), self.exp(&ctx2, body)?);
                Ok(Self::wrap(binds, rest))
            }
            CExp::LetProj { x, i, v, body } => {
                let vty = infer_val(ctx, v).map_err(|e| TransError(e.0))?;
                let comp = match &vty {
                    CTy::Prod(a, b) => {
                        if *i == 1 {
                            (**a).clone()
                        } else {
                            (**b).clone()
                        }
                    }
                    other => return Err(TransError(format!("projection of non-pair {other}"))),
                };
                let mut binds = Vec::new();
                let gv = self.value(ctx, v, &mut binds)?;
                let mut ctx2 = ctx.clone();
                ctx2.gamma.insert(*x, comp);
                let body = self.exp(&ctx2, body)?;
                // open v as ⟨r, a⟩ in let y = get a in let x = πᵢ y in …
                let rp = gensym("ro");
                let a = gensym("a");
                let y = gensym("y");
                let rest = Term::OpenRgn {
                    pkg: gv,
                    rvar: rp,
                    x: a,
                    body: (Term::let_(
                        y,
                        Op::Get(Value::Var(a)),
                        Term::let_(*x, Op::Proj(*i, Value::Var(y)), body),
                    ))
                    .into(),
                };
                Ok(Self::wrap(binds, rest))
            }
            CExp::LetPrim { x, op, a, b, body } => {
                let mut binds = Vec::new();
                let av = self.value(ctx, a, &mut binds)?;
                let bv = self.value(ctx, b, &mut binds)?;
                let mut ctx2 = ctx.clone();
                ctx2.gamma.insert(*x, CTy::Int);
                let rest = Term::let_(*x, Op::Prim(prim_of(*op), av, bv), self.exp(&ctx2, body)?);
                Ok(Self::wrap(binds, rest))
            }
            CExp::App(f, a) => {
                let mut binds = Vec::new();
                let fv = self.value(ctx, f, &mut binds)?;
                let av = self.value(ctx, a, &mut binds)?;
                Ok(Self::wrap(
                    binds,
                    Term::app(fv, [], [self.ryv(), self.rov()], [av]),
                ))
            }
            CExp::Open { pkg, tvar, x, body } => {
                let pty = infer_val(ctx, pkg).map_err(|e| TransError(e.0))?;
                let inner_ty = match &pty {
                    CTy::Exist(t0, b) => b.subst(*t0, &CTy::Var(*tvar)),
                    other => return Err(TransError(format!("open of non-existential {other}"))),
                };
                let mut binds = Vec::new();
                let pv = self.value(ctx, pkg, &mut binds)?;
                let mut ctx2 = ctx.clone();
                ctx2.theta.insert(*tvar);
                ctx2.gamma.insert(*x, inner_ty);
                let body = self.exp(&ctx2, body)?;
                let rp = gensym("ro");
                let a = gensym("a");
                let y = gensym("y");
                let rest = Term::OpenRgn {
                    pkg: pv,
                    rvar: rp,
                    x: a,
                    body: (Term::let_(
                        y,
                        Op::Get(Value::Var(a)),
                        Term::OpenTag {
                            pkg: Value::Var(y),
                            tvar: *tvar,
                            x: *x,
                            body: (body).into(),
                        },
                    ))
                    .into(),
                };
                Ok(Self::wrap(binds, rest))
            }
            CExp::Halt(v) => {
                let mut binds = Vec::new();
                let gv = self.value(ctx, v, &mut binds)?;
                Ok(Self::wrap(binds, Term::Halt(gv)))
            }
            CExp::If0 { v, zero, nonzero } => {
                let mut binds = Vec::new();
                let gv = self.value(ctx, v, &mut binds)?;
                Ok(Self::wrap(
                    binds,
                    Term::If0 {
                        scrut: gv,
                        zero: (self.exp(ctx, zero)?).into(),
                        nonzero: (self.exp(ctx, nonzero)?).into(),
                    },
                ))
            }
        }
    }

    fn function(&self, top: &ClosCtx, f: &ps_clos::syntax::CFun) -> TResult<CodeDef> {
        let off = self.labels[&f.name];
        let tag = tag_of(&f.param_ty);
        let mut ctx = top.clone();
        ctx.gamma.insert(f.param, f.param_ty.clone());
        let body = self.exp(&ctx, &f.body)?;
        let guarded = Term::IfGc {
            rho: self.ryv(),
            full: (Term::app(
                Value::Addr(CD, self.gc_entry),
                [tag.clone()],
                [self.ryv(), self.rov()],
                [Value::Addr(CD, off), Value::Var(f.param)],
            ))
            .into(),
            cont: (body).into(),
        };
        Ok(CodeDef {
            name: f.name,
            tvars: vec![],
            rvars: vec![self.ry, self.ro],
            params: vec![(f.param, self.mg(tag))],
            body: guarded,
        })
    }
}

/// Translates a λCLOS program into λGCgen, linked with the generational
/// collector.
///
/// # Errors
///
/// Fails on ill-formed λCLOS input (typecheck it first).
pub fn translate(p: &CProgram, collector: &CollectorImage) -> TResult<Program> {
    let base = collector.code.len() as u32;
    let labels = p
        .funs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name, base + i as u32))
        .collect();
    let tr = Trans {
        labels,
        gc_entry: collector.gc_entry,
        ry: gensym("ry"),
        ro: gensym("ro"),
    };
    let top = ClosCtx {
        funs: p.funs.iter().map(|f| (f.name, f.ty())).collect(),
        ..ClosCtx::default()
    };
    let mut code = collector.code.clone();
    for f in &p.funs {
        code.push(tr.function(&top, f)?);
    }
    // let region ro in let region ry in e′ — the old region outlives minor
    // collections; the young one is recreated by each gc.
    let main = Term::LetRegion {
        rvar: tr.ro,
        body: (Term::LetRegion {
            rvar: tr.ry,
            body: (tr.exp(&top, &p.main)?).into(),
        })
        .into(),
    };
    Ok(Program {
        dialect: Dialect::Generational,
        code,
        main,
    })
}
