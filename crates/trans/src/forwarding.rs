//! The λCLOS → λGCforw translation (§7's variant of Fig. 3).
//!
//! Identical to the basic translation except that the mutator maintains the
//! forwarding invariant the `M` operator of §7 imposes: every heap object
//! carries the spare tag bit, so allocations wrap their payload in `inl`
//! and reads `strip` it. The mutator never checks the bit — `strip` works
//! directly on `left σ` ("without the `right σ` alternative, to avoid the
//! need for checks"); only the collector's `ifleft` ever branches on it.

use ps_ir::symbol::gensym;
use ps_ir::Symbol;

use ps_clos::syntax::{CExp, CProgram, CVal};
use ps_collectors::CollectorImage;
use ps_gc_lang::machine::Program;
use ps_gc_lang::syntax::{CodeDef, Dialect, Kind, Op, Region, Term, Ty, Value, CD};

use crate::basic::tag_of;
use crate::TransError;

type TResult<T> = Result<T, TransError>;

struct Trans {
    labels: std::collections::HashMap<Symbol, u32>,
    gc_entry: u32,
    r: Symbol,
}

impl Trans {
    fn rv(&self) -> Region {
        Region::Var(self.r)
    }

    fn value(&self, v: &CVal, binds: &mut Vec<(Symbol, Op)>) -> TResult<Value> {
        match v {
            CVal::Int(n) => Ok(Value::Int(*n)),
            CVal::Var(x) => Ok(Value::Var(*x)),
            CVal::FnName(f) => {
                let off = self
                    .labels
                    .get(f)
                    .ok_or_else(|| TransError(format!("unknown function {f}")))?;
                Ok(Value::Addr(CD, *off))
            }
            CVal::Pair(a, b) => {
                let av = self.value(a, binds)?;
                let bv = self.value(b, binds)?;
                let x = gensym("p");
                // put[r](inl (a, b)) — the mutator provides the tag bit.
                binds.push((x, Op::Put(self.rv(), Value::inl(Value::pair(av, bv)))));
                Ok(Value::Var(x))
            }
            CVal::Pack {
                tvar,
                witness,
                val,
                body_ty,
            } => {
                let pv = self.value(val, binds)?;
                let x = gensym("pk");
                let pack = Value::PackTag {
                    tvar: *tvar,
                    kind: Kind::Omega,
                    tag: tag_of(witness),
                    val: (pv).into(),
                    body_ty: Ty::m(self.rv(), tag_of(body_ty)),
                };
                binds.push((x, Op::Put(self.rv(), Value::inl(pack))));
                Ok(Value::Var(x))
            }
        }
    }

    fn wrap(binds: Vec<(Symbol, Op)>, body: Term) -> Term {
        binds
            .into_iter()
            .rev()
            .fold(body, |acc, (x, op)| Term::let_(x, op, acc))
    }

    /// `get` then `strip` — the mutator's read path.
    fn read(&self, v: Value, k: impl FnOnce(Symbol) -> Term) -> Term {
        let g = gensym("g");
        let sv = gensym("sv");
        Term::let_(
            g,
            Op::Get(v),
            Term::let_(sv, Op::Strip(Value::Var(g)), k(sv)),
        )
    }

    fn exp(&self, e: &CExp) -> TResult<Term> {
        match e {
            CExp::Let { x, v, body } => {
                let mut binds = Vec::new();
                let gv = self.value(v, &mut binds)?;
                let rest = Term::let_(*x, Op::Val(gv), self.exp(body)?);
                Ok(Self::wrap(binds, rest))
            }
            CExp::LetProj { x, i, v, body } => {
                let mut binds = Vec::new();
                let gv = self.value(v, &mut binds)?;
                let body = self.exp(body)?;
                let i = *i;
                let x = *x;
                let rest = self.read(gv, |sv| Term::let_(x, Op::Proj(i, Value::Var(sv)), body));
                Ok(Self::wrap(binds, rest))
            }
            CExp::LetPrim { x, op, a, b, body } => {
                let mut binds = Vec::new();
                let av = self.value(a, &mut binds)?;
                let bv = self.value(b, &mut binds)?;
                let rest = Term::let_(
                    *x,
                    Op::Prim(crate::basic::prim_of(*op), av, bv),
                    self.exp(body)?,
                );
                Ok(Self::wrap(binds, rest))
            }
            CExp::App(f, a) => {
                let mut binds = Vec::new();
                let fv = self.value(f, &mut binds)?;
                let av = self.value(a, &mut binds)?;
                Ok(Self::wrap(binds, Term::app(fv, [], [self.rv()], [av])))
            }
            CExp::Open { pkg, tvar, x, body } => {
                let mut binds = Vec::new();
                let pv = self.value(pkg, &mut binds)?;
                let body = self.exp(body)?;
                let tvar = *tvar;
                let x = *x;
                let rest = self.read(pv, |sv| Term::OpenTag {
                    pkg: Value::Var(sv),
                    tvar,
                    x,
                    body: (body).into(),
                });
                Ok(Self::wrap(binds, rest))
            }
            CExp::Halt(v) => {
                let mut binds = Vec::new();
                let gv = self.value(v, &mut binds)?;
                Ok(Self::wrap(binds, Term::Halt(gv)))
            }
            CExp::If0 { v, zero, nonzero } => {
                let mut binds = Vec::new();
                let gv = self.value(v, &mut binds)?;
                Ok(Self::wrap(
                    binds,
                    Term::If0 {
                        scrut: gv,
                        zero: (self.exp(zero)?).into(),
                        nonzero: (self.exp(nonzero)?).into(),
                    },
                ))
            }
        }
    }

    fn function(&self, f: &ps_clos::syntax::CFun) -> TResult<CodeDef> {
        let off = self.labels[&f.name];
        let tag = tag_of(&f.param_ty);
        let body = self.exp(&f.body)?;
        let guarded = Term::IfGc {
            rho: self.rv(),
            full: (Term::app(
                Value::Addr(CD, self.gc_entry),
                [tag.clone()],
                [self.rv()],
                [Value::Addr(CD, off), Value::Var(f.param)],
            ))
            .into(),
            cont: (body).into(),
        };
        Ok(CodeDef {
            name: f.name,
            tvars: vec![],
            rvars: vec![self.r],
            params: vec![(f.param, Ty::m(self.rv(), tag))],
            body: guarded,
        })
    }
}

/// Translates a λCLOS program into λGCforw, linked with the forwarding
/// collector.
///
/// # Errors
///
/// Fails on references to unknown functions (ill-formed input).
pub fn translate(p: &CProgram, collector: &CollectorImage) -> TResult<Program> {
    let base = collector.code.len() as u32;
    let labels = p
        .funs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name, base + i as u32))
        .collect();
    let tr = Trans {
        labels,
        gc_entry: collector.gc_entry,
        r: gensym("r"),
    };
    let mut code = collector.code.clone();
    for f in &p.funs {
        code.push(tr.function(f)?);
    }
    let main = Term::LetRegion {
        rvar: tr.r,
        body: (tr.exp(&p.main)?).into(),
    };
    Ok(Program {
        dialect: Dialect::Forwarding,
        code,
        main,
    })
}
