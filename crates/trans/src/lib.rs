//! # ps-trans — the λCLOS → λGC translation (Fig. 3)
//!
//! Links mutator programs with the type-safe collectors of
//! [`ps_collectors`]: every translated function checks `ifgc` on entry and
//! calls the in-language `gc` with itself as the return continuation.
//!
//! One submodule per dialect:
//!
//! * [`basic`] — Fig. 3 verbatim, against the Fig. 12 collector;
//! * `forwarding` — the §7 variant (extra `inl`/`strip` at every
//!   allocation and read);
//! * `generational` — the §8 variant (region packages, two-region calling
//!   convention).

pub mod basic;
pub mod forwarding;
pub mod generational;

use std::fmt;

/// An error raised by a translation (only on ill-formed λCLOS input).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransError(pub String);

impl fmt::Display for TransError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "translation error: {}", self.0)
    }
}

impl std::error::Error for TransError {}
