//! The λCLOS → λGC translation of Fig. 3 (basic dialect).
//!
//! The translation is directed by the type translation `M_ρ`: every λCLOS
//! function `f = λ(x : τ).e` becomes a λGC code block
//!
//! ```text
//! λ[][r](x : M_r(τ)). ifgc r (gc[τ][r](cd.ℓ_f, x)) e′
//! ```
//!
//! — it takes the current region, checks whether a collection is needed
//! (passing *itself* as the return continuation, so the check is simply
//! redone after the collection, §5), and otherwise runs the translated
//! body, in which pairs and packages are `put` into the region and reads go
//! through `get`.
//!
//! Notice that "the garbage collector receives the tags as they were in
//! λCLOS rather than as they are translated" (§5): λCLOS types embed
//! directly into λGC tags via [`tag_of`].

use ps_ir::symbol::gensym;
use ps_ir::Symbol;

use ps_clos::syntax::{CExp, CProgram, CTy, CVal};
use ps_collectors::CollectorImage;
use ps_gc_lang::machine::Program;
use ps_gc_lang::syntax::{CodeDef, Dialect, Kind, Op, PrimOp, Region, Tag, Term, Ty, Value, CD};

use crate::TransError;

/// Embeds a λCLOS type as a λGC tag (they share a grammar; §4.2).
pub fn tag_of(ty: &CTy) -> Tag {
    match ty {
        CTy::Int => Tag::Int,
        CTy::Var(t) => Tag::Var(*t),
        CTy::Prod(a, b) => Tag::prod(tag_of(a), tag_of(b)),
        CTy::Arrow(a) => Tag::arrow([tag_of(a)]),
        CTy::Exist(t, body) => Tag::exist(*t, tag_of(body)),
    }
}

/// Converts a λCLOS binary operator into a λGC primitive.
pub fn prim_of(op: ps_lambda::syntax::BinOp) -> PrimOp {
    match op {
        ps_lambda::syntax::BinOp::Add => PrimOp::Add,
        ps_lambda::syntax::BinOp::Sub => PrimOp::Sub,
        ps_lambda::syntax::BinOp::Mul => PrimOp::Mul,
    }
}

struct Trans<'a> {
    /// Function name → cd offset.
    labels: std::collections::HashMap<Symbol, u32>,
    /// The collector's `gc` entry offset.
    gc_entry: u32,
    /// The current region variable `r`.
    r: Symbol,
    program: &'a CProgram,
}

type TResult<T> = Result<T, TransError>;

impl<'a> Trans<'a> {
    fn rv(&self) -> Region {
        Region::Var(self.r)
    }

    /// Translates a λCLOS value. Compound values need allocation, so the
    /// result is a λGC value together with prefix bindings (§5's "turning
    /// such code back into the strict λGC is immediate").
    fn value(&self, v: &CVal, binds: &mut Vec<(Symbol, Op)>) -> TResult<Value> {
        match v {
            CVal::Int(n) => Ok(Value::Int(*n)),
            CVal::Var(x) => Ok(Value::Var(*x)),
            CVal::FnName(f) => {
                let off = self
                    .labels
                    .get(f)
                    .ok_or_else(|| TransError(format!("unknown function {f}")))?;
                Ok(Value::Addr(CD, *off))
            }
            CVal::Pair(a, b) => {
                let av = self.value(a, binds)?;
                let bv = self.value(b, binds)?;
                let x = gensym("p");
                binds.push((x, Op::Put(self.rv(), Value::pair(av, bv))));
                Ok(Value::Var(x))
            }
            CVal::Pack {
                tvar,
                witness,
                val,
                body_ty,
            } => {
                let pv = self.value(val, binds)?;
                let x = gensym("pk");
                let pack = Value::PackTag {
                    tvar: *tvar,
                    kind: Kind::Omega,
                    tag: tag_of(witness),
                    val: (pv).into(),
                    body_ty: Ty::m(self.rv(), tag_of(body_ty)),
                };
                binds.push((x, Op::Put(self.rv(), pack)));
                Ok(Value::Var(x))
            }
        }
    }

    fn wrap(binds: Vec<(Symbol, Op)>, body: Term) -> Term {
        binds
            .into_iter()
            .rev()
            .fold(body, |acc, (x, op)| Term::let_(x, op, acc))
    }

    fn exp(&self, e: &CExp) -> TResult<Term> {
        match e {
            CExp::Let { x, v, body } => {
                let mut binds = Vec::new();
                let gv = self.value(v, &mut binds)?;
                let rest = Term::let_(*x, Op::Val(gv), self.exp(body)?);
                Ok(Self::wrap(binds, rest))
            }
            CExp::LetProj { x, i, v, body } => {
                // let x = πᵢ (get v) in e
                let mut binds = Vec::new();
                let gv = self.value(v, &mut binds)?;
                let tmp = gensym("g");
                let rest = Term::let_(
                    tmp,
                    Op::Get(gv),
                    Term::let_(*x, Op::Proj(*i, Value::Var(tmp)), self.exp(body)?),
                );
                Ok(Self::wrap(binds, rest))
            }
            CExp::LetPrim { x, op, a, b, body } => {
                let mut binds = Vec::new();
                let av = self.value(a, &mut binds)?;
                let bv = self.value(b, &mut binds)?;
                let rest = Term::let_(*x, Op::Prim(prim_of(*op), av, bv), self.exp(body)?);
                Ok(Self::wrap(binds, rest))
            }
            CExp::App(f, a) => {
                // v₁(v₂) ⇒ v₁′[][r](v₂′)
                let mut binds = Vec::new();
                let fv = self.value(f, &mut binds)?;
                let av = self.value(a, &mut binds)?;
                Ok(Self::wrap(binds, Term::app(fv, [], [self.rv()], [av])))
            }
            CExp::Open { pkg, tvar, x, body } => {
                // open (get v′) as ⟨t, x⟩ in e′
                let mut binds = Vec::new();
                let pv = self.value(pkg, &mut binds)?;
                let tmp = gensym("g");
                let rest = Term::let_(
                    tmp,
                    Op::Get(pv),
                    Term::OpenTag {
                        pkg: Value::Var(tmp),
                        tvar: *tvar,
                        x: *x,
                        body: (self.exp(body)?).into(),
                    },
                );
                Ok(Self::wrap(binds, rest))
            }
            CExp::Halt(v) => {
                let mut binds = Vec::new();
                let gv = self.value(v, &mut binds)?;
                Ok(Self::wrap(binds, Term::Halt(gv)))
            }
            CExp::If0 { v, zero, nonzero } => {
                let mut binds = Vec::new();
                let gv = self.value(v, &mut binds)?;
                Ok(Self::wrap(
                    binds,
                    Term::If0 {
                        scrut: gv,
                        zero: (self.exp(zero)?).into(),
                        nonzero: (self.exp(nonzero)?).into(),
                    },
                ))
            }
        }
    }

    fn function(&self, f: &ps_clos::syntax::CFun) -> TResult<CodeDef> {
        let off = self.labels[&f.name];
        let tag = tag_of(&f.param_ty);
        let body = self.exp(&f.body)?;
        // ifgc r (gc[τ][r](cd.ℓ_f, x)) e′
        let guarded = Term::IfGc {
            rho: self.rv(),
            full: (Term::app(
                Value::Addr(CD, self.gc_entry),
                [tag.clone()],
                [self.rv()],
                [Value::Addr(CD, off), Value::Var(f.param)],
            ))
            .into(),
            cont: (body).into(),
        };
        Ok(CodeDef {
            name: f.name,
            tvars: vec![],
            rvars: vec![self.r],
            params: vec![(f.param, Ty::m(self.rv(), tag))],
            body: guarded,
        })
    }
}

/// Translates a λCLOS program into a λGC program linked with the given
/// collector (Fig. 3).
///
/// The collector's blocks occupy cd offsets `0..collector.code.len()`;
/// translated functions follow.
///
/// # Errors
///
/// Fails on references to unknown functions (ill-formed input).
pub fn translate(p: &CProgram, collector: &CollectorImage) -> TResult<Program> {
    let base = collector.code.len() as u32;
    let labels: std::collections::HashMap<Symbol, u32> = p
        .funs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name, base + i as u32))
        .collect();
    let tr = Trans {
        labels,
        gc_entry: collector.gc_entry,
        r: gensym("r"),
        program: p,
    };
    let _ = tr.program;
    let mut code = collector.code.clone();
    for f in &p.funs {
        code.push(tr.function(f)?);
    }
    // The main term allocates the initial region (Fig. 3's program rule).
    let main = Term::LetRegion {
        rvar: tr.r,
        body: (tr.exp(&p.main)?).into(),
    };
    Ok(Program {
        dialect: Dialect::Basic,
        code,
        main,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_embed_types() {
        let t = Symbol::intern("t");
        let ty = CTy::exist(
            t,
            CTy::prod(CTy::arrow(CTy::prod(CTy::Var(t), CTy::Int)), CTy::Var(t)),
        );
        let tag = tag_of(&ty);
        match tag {
            Tag::Exist(_, body) => match &*body {
                Tag::Prod(code, env) => {
                    assert!(matches!(**code, Tag::Arrow(_)));
                    assert!(matches!(**env, Tag::Var(_)));
                }
                other => panic!("bad embedding {other:?}"),
            },
            other => panic!("bad embedding {other:?}"),
        }
    }
}
