//! End-to-end tests of the basic pipeline: source → CPS → λCLOS → λGC with
//! the Fig. 12 collector, run with region budgets small enough to force
//! collections, and checked against the source evaluator.

use ps_clos::{cc, cps};
use ps_collectors::basic;
use ps_gc_lang::machine::{Outcome, Program, SubstMachine};
use ps_gc_lang::memory::{GrowthPolicy, MemConfig};
use ps_gc_lang::tyck::Checker;
use ps_gc_lang::wf::{check_state, WfOptions};
use ps_lambda::parse::parse_program;
use ps_trans::basic::translate;

fn compile(src: &str) -> Program {
    let p = parse_program(src).unwrap();
    ps_lambda::typecheck::check_program(&p).unwrap();
    let cpsd = cps::cps_program(&p).unwrap();
    let clos = cc::cc_program(&cpsd).unwrap();
    ps_clos::tyck::check_program(&clos).unwrap();
    translate(&clos, &basic::collector()).unwrap()
}

fn expected(src: &str) -> i64 {
    let p = parse_program(src).unwrap();
    ps_lambda::eval::run_program(&p, 10_000_000).unwrap()
}

/// Run with a given base budget; return (result, collections).
fn run_with_budget(program: &Program, budget: usize) -> (i64, u64) {
    let mut m = SubstMachine::load(
        program,
        MemConfig {
            region_budget: budget,
            growth: GrowthPolicy::Adaptive,
            track_types: false,
            max_heap_words: None,
            page_words: 512,
        },
    );
    match m.run(50_000_000).unwrap() {
        Outcome::Halted(n) => (n, m.stats().collections),
        other => panic!("abnormal outcome: {other:?}"),
    }
}

const FACT: &str = "fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\n fact 10";
const LIST_SUM: &str = "fun build (n : int) : int * int = if0 n then (0, 0) else \
    (let rest = build (n - 1) in (n + fst rest, n))\n fst (build 30)";
const HIGHER: &str = "fun twice (f : int -> int) : int -> int = fn (x : int) => f (f x)\n\
    fun compose (n : int) : int = (twice (twice (fn (y : int) => y + n))) 1\n compose 10";
const CHURN: &str = "fun churn (n : int) : int = if0 n then 0 else \
    (let p = (n, (n, n)) in fst (snd p) - n + churn (n - 1))\n churn 40";

#[test]
fn whole_programs_typecheck() {
    // Definition 6.3: the linked mutator+collector program typechecks — the
    // complete certified-GC story with no trusted collector.
    for src in [FACT, LIST_SUM, HIGHER, CHURN] {
        let program = compile(src);
        Checker::check_program(&program)
            .unwrap_or_else(|e| panic!("translated program ill-typed for {src}: {e}"));
    }
}

#[test]
fn results_are_preserved_without_gc() {
    // Huge budget: no collection ever triggers.
    for src in [FACT, LIST_SUM, HIGHER, CHURN] {
        let program = compile(src);
        let (got, collections) = run_with_budget(&program, 1 << 24);
        assert_eq!(got, expected(src), "{src}");
        assert_eq!(collections, 0, "{src}");
    }
}

#[test]
fn results_are_preserved_through_collections() {
    // Tiny budget: every function entry is close to the edge, so the
    // collector runs many times; results must not change.
    for src in [FACT, LIST_SUM, HIGHER, CHURN] {
        let program = compile(src);
        let (got, collections) = run_with_budget(&program, 96);
        assert_eq!(got, expected(src), "{src}");
        assert!(collections > 0, "expected collections for {src}");
    }
}

#[test]
fn collections_reclaim_garbage() {
    let program = compile(CHURN);
    let mut m = SubstMachine::load(
        &program,
        MemConfig {
            region_budget: 128,
            growth: GrowthPolicy::Adaptive,
            track_types: false,
            max_heap_words: None,
            page_words: 512,
        },
    );
    assert!(matches!(m.run(50_000_000).unwrap(), Outcome::Halted(0)));
    let stats = m.stats();
    assert!(stats.collections > 0);
    assert!(stats.words_reclaimed > 0, "GC must reclaim garbage");
    // The peak heap must stay well below total allocation: memory is being
    // recycled, not just accumulated.
    assert!(
        (stats.peak_data_words as u64) < stats.words_allocated,
        "peak {} vs allocated {}",
        stats.peak_data_words,
        stats.words_allocated
    );
}

#[test]
fn preservation_holds_across_a_collection() {
    // Step a small program with type tracking on, re-checking ⊢ (M, e)
    // at every step through at least one full collection (Prop. 6.4 made
    // executable).
    let src =
        "fun f (n : int) : int = if0 n then 7 else (let p = (n, n) in snd p + 0 * f (n - 1))\n f 6";
    let want = expected(src);
    let program = compile(src);
    let mut m = SubstMachine::load(
        &program,
        MemConfig {
            region_budget: 24,
            growth: GrowthPolicy::Adaptive,
            track_types: true,
            max_heap_words: None,
            page_words: 512,
        },
    );
    check_state(
        &m,
        WfOptions {
            check_code_bodies: true,
            reachable_only: false,
        },
    )
    .unwrap();
    let mut steps = 0u64;
    loop {
        match m.step().unwrap() {
            ps_gc_lang::machine::StepOutcome::Halted(n) => {
                assert_eq!(n, want);
                break;
            }
            ps_gc_lang::machine::StepOutcome::Continue => {
                check_state(&m, WfOptions::default())
                    .unwrap_or_else(|e| panic!("preservation failed at step {steps}: {e}"));
                steps += 1;
                assert!(steps < 1_000_000, "runaway");
            }
        }
    }
    assert!(m.stats().collections > 0, "wanted at least one collection");
}
