//! End-to-end tests of the generational pipeline (§8): source → λGCgen with
//! the Fig. 11 collector; minor collections copy young data only.

use ps_clos::{cc, cps};
use ps_collectors::generational;
use ps_gc_lang::machine::{Outcome, Program, SubstMachine};
use ps_gc_lang::memory::{GrowthPolicy, MemConfig};
use ps_gc_lang::tyck::Checker;
use ps_gc_lang::wf::{check_state, WfOptions};
use ps_lambda::parse::parse_program;
use ps_trans::generational::translate;

fn compile(src: &str) -> Program {
    let p = parse_program(src).unwrap();
    ps_lambda::typecheck::check_program(&p).unwrap();
    let cpsd = cps::cps_program(&p).unwrap();
    let clos = cc::cc_program(&cpsd).unwrap();
    ps_clos::tyck::check_program(&clos).unwrap();
    translate(&clos, &generational::collector()).unwrap()
}

fn expected(src: &str) -> i64 {
    let p = parse_program(src).unwrap();
    ps_lambda::eval::run_program(&p, 10_000_000).unwrap()
}

fn run_with_budget(program: &Program, budget: usize) -> (i64, ps_gc_lang::machine::Stats) {
    let mut m = SubstMachine::load(
        program,
        MemConfig {
            region_budget: budget,
            growth: GrowthPolicy::Adaptive,
            track_types: false,
            max_heap_words: None,
            page_words: 512,
        },
    );
    match m.run(100_000_000).unwrap() {
        Outcome::Halted(n) => (n, m.stats().clone()),
        other => panic!("abnormal outcome: {other:?}"),
    }
}

const FACT: &str = "fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\n fact 10";
const LIST_SUM: &str = "fun build (n : int) : int * int = if0 n then (0, 0) else \
    (let rest = build (n - 1) in (n + fst rest, n))\n fst (build 30)";
const HIGHER: &str = "fun twice (f : int -> int) : int -> int = fn (x : int) => f (f x)\n\
    fun compose (n : int) : int = (twice (twice (fn (y : int) => y + n))) 1\n compose 10";
const CHURN: &str = "fun churn (n : int) : int = if0 n then 0 else \
    (let p = (n, (n, n)) in fst (snd p) - n + churn (n - 1))\n churn 40";

#[test]
fn whole_programs_typecheck() {
    for src in [FACT, LIST_SUM, HIGHER, CHURN] {
        let program = compile(src);
        Checker::check_program(&program)
            .unwrap_or_else(|e| panic!("translated program ill-typed for {src}: {e}"));
    }
}

#[test]
fn results_preserved_without_gc() {
    for src in [FACT, LIST_SUM, HIGHER, CHURN] {
        let program = compile(src);
        let (got, stats) = run_with_budget(&program, 1 << 24);
        assert_eq!(got, expected(src), "{src}");
        assert_eq!(stats.collections, 0, "{src}");
    }
}

#[test]
fn results_preserved_through_minor_collections() {
    for src in [FACT, LIST_SUM, HIGHER, CHURN] {
        let program = compile(src);
        let (got, stats) = run_with_budget(&program, 96);
        assert_eq!(got, expected(src), "{src}");
        assert!(stats.collections > 0, "expected collections for {src}");
    }
}

#[test]
fn minor_collections_do_not_copy_old_data() {
    // Every reclaim event of a minor collection drops the young region and
    // the continuation region but keeps the old region untouched; the old
    // region (ν1, allocated first) must survive all collections. The
    // budget is large enough that the old region never fills, so no major
    // collection interferes (the major-collection tests below cover that
    // path).
    let program = compile(CHURN);
    let mut m = SubstMachine::load(
        &program,
        MemConfig {
            region_budget: 512,
            growth: GrowthPolicy::Adaptive,
            track_types: false,
            max_heap_words: None,
            page_words: 512,
        },
    );
    assert!(matches!(m.run(100_000_000).unwrap(), Outcome::Halted(0)));
    let stats = m.stats();
    assert!(stats.collections > 0);
    let old_region = ps_gc_lang::syntax::RegionName(1);
    for ev in &stats.reclaim_events {
        assert!(
            ev.dropped.iter().all(|(nu, _, _)| *nu != old_region),
            "a minor collection dropped the old region: {ev:?}"
        );
    }
    // The old region is still live at halt.
    assert!(m.memory().has_region(old_region));
}

#[test]
fn preservation_through_a_minor_collection() {
    let src =
        "fun f (n : int) : int = if0 n then 3 else (let p = (n, n) in snd p - n + f (n - 1))\n f 5";
    let want = expected(src);
    let program = compile(src);
    let mut m = SubstMachine::load(
        &program,
        MemConfig {
            region_budget: 32,
            growth: GrowthPolicy::Adaptive,
            track_types: true,
            max_heap_words: None,
            page_words: 512,
        },
    );
    check_state(
        &m,
        WfOptions {
            check_code_bodies: true,
            reachable_only: false,
        },
    )
    .unwrap();
    let mut steps = 0u64;
    loop {
        match m.step().unwrap() {
            ps_gc_lang::machine::StepOutcome::Halted(n) => {
                assert_eq!(n, want);
                break;
            }
            ps_gc_lang::machine::StepOutcome::Continue => {
                check_state(&m, WfOptions::default())
                    .unwrap_or_else(|e| panic!("preservation failed at step {steps}: {e}"));
                steps += 1;
                assert!(steps < 1_000_000, "runaway");
            }
        }
    }
    assert!(m.stats().collections > 0, "wanted a collection");
}

#[test]
fn major_collections_run_when_the_old_region_fills() {
    // Tiny budgets: minor collections keep promoting survivors (and
    // soon-to-be-garbage) into the old region until it fills, at which
    // point the minor gc's `ifgc ro` falls through to the major collector,
    // which evacuates everything into a fresh region and drops the old one.
    let program = compile(LIST_SUM);
    let mut m = SubstMachine::load(
        &program,
        MemConfig {
            region_budget: 64,
            growth: GrowthPolicy::Adaptive,
            track_types: false,
            max_heap_words: None,
            page_words: 512,
        },
    );
    let Outcome::Halted(n) = m.run(200_000_000).unwrap() else {
        panic!("out of fuel");
    };
    assert_eq!(n, expected(LIST_SUM));
    let stats = m.stats();
    // A major collection drops three regions (young, old, continuation);
    // a minor collection drops two (young, continuation).
    let majors = stats
        .reclaim_events
        .iter()
        .filter(|ev| ev.dropped.len() >= 3)
        .count();
    let minors = stats
        .reclaim_events
        .iter()
        .filter(|ev| ev.dropped.len() < 3)
        .count();
    assert!(
        majors > 0,
        "expected at least one major collection: {stats:?}"
    );
    assert!(minors > 0, "expected minor collections too");
}

#[test]
fn preservation_through_a_major_collection() {
    let src = "fun build (n : int) : int * int = if0 n then (0, 0) else \
        (let rest = build (n - 1) in (n + fst rest, n))\n fst (build 12)";
    let want = expected(src);
    let program = compile(src);
    let mut m = SubstMachine::load(
        &program,
        MemConfig {
            region_budget: 40,
            growth: GrowthPolicy::Adaptive,
            track_types: true,
            max_heap_words: None,
            page_words: 512,
        },
    );
    let mut steps = 0u64;
    loop {
        match m.step().unwrap() {
            ps_gc_lang::machine::StepOutcome::Halted(n) => {
                assert_eq!(n, want);
                break;
            }
            ps_gc_lang::machine::StepOutcome::Continue => {
                if steps.is_multiple_of(3) {
                    check_state(&m, WfOptions::default())
                        .unwrap_or_else(|e| panic!("preservation failed at step {steps}: {e}"));
                }
                steps += 1;
                assert!(steps < 3_000_000, "runaway");
            }
        }
    }
    let majors = m
        .stats()
        .reclaim_events
        .iter()
        .filter(|ev| ev.dropped.len() >= 3)
        .count();
    assert!(majors > 0, "wanted a major collection in this run");
}
