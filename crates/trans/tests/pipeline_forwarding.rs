//! End-to-end tests of the forwarding pipeline (§7): source → λGCforw with
//! the Fig. 9 collector, sharing preserved across collections.

use ps_clos::{cc, cps};
use ps_collectors::forwarding;
use ps_gc_lang::machine::{Outcome, Program, SubstMachine};
use ps_gc_lang::memory::{GrowthPolicy, MemConfig};
use ps_gc_lang::tyck::Checker;
use ps_gc_lang::wf::{check_state, WfOptions};
use ps_lambda::parse::parse_program;
use ps_trans::forwarding::translate;

fn compile(src: &str) -> Program {
    let p = parse_program(src).unwrap();
    ps_lambda::typecheck::check_program(&p).unwrap();
    let cpsd = cps::cps_program(&p).unwrap();
    let clos = cc::cc_program(&cpsd).unwrap();
    ps_clos::tyck::check_program(&clos).unwrap();
    translate(&clos, &forwarding::collector()).unwrap()
}

fn expected(src: &str) -> i64 {
    let p = parse_program(src).unwrap();
    ps_lambda::eval::run_program(&p, 10_000_000).unwrap()
}

fn run_with_budget(program: &Program, budget: usize) -> (i64, ps_gc_lang::machine::Stats) {
    let mut m = SubstMachine::load(
        program,
        MemConfig {
            region_budget: budget,
            growth: GrowthPolicy::Adaptive,
            track_types: false,
            max_heap_words: None,
            page_words: 512,
        },
    );
    match m.run(50_000_000).unwrap() {
        Outcome::Halted(n) => (n, m.stats().clone()),
        other => panic!("abnormal outcome: {other:?}"),
    }
}

const FACT: &str = "fun fact (n : int) : int = if0 n then 1 else n * fact (n - 1)\n fact 10";
const LIST_SUM: &str = "fun build (n : int) : int * int = if0 n then (0, 0) else \
    (let rest = build (n - 1) in (n + fst rest, n))\n fst (build 30)";
const HIGHER: &str = "fun twice (f : int -> int) : int -> int = fn (x : int) => f (f x)\n\
    fun compose (n : int) : int = (twice (twice (fn (y : int) => y + n))) 1\n compose 10";
const SHARED: &str = "fun dup (x : int * int) : (int * int) * (int * int) = (x, x)\n\
    fun probe (n : int) : int = if0 n then 0 else fst (fst (dup ((n, n + 1)))) - n + probe (n - 1)\n probe 20";

#[test]
fn whole_programs_typecheck() {
    for src in [FACT, LIST_SUM, HIGHER, SHARED] {
        let program = compile(src);
        Checker::check_program(&program)
            .unwrap_or_else(|e| panic!("translated program ill-typed for {src}: {e}"));
    }
}

#[test]
fn results_preserved_through_collections() {
    for src in [FACT, LIST_SUM, HIGHER, SHARED] {
        let program = compile(src);
        let (got, stats) = run_with_budget(&program, 96);
        assert_eq!(got, expected(src), "{src}");
        assert!(stats.collections > 0, "expected collections for {src}");
        assert!(
            stats.forwarding_installs > 0,
            "expected forwarding for {src}"
        );
    }
}

#[test]
fn results_preserved_without_gc() {
    for src in [FACT, LIST_SUM, HIGHER, SHARED] {
        let program = compile(src);
        let (got, stats) = run_with_budget(&program, 1 << 24);
        assert_eq!(got, expected(src), "{src}");
        assert_eq!(stats.collections, 0, "{src}");
    }
}

#[test]
fn preservation_through_widen_and_forwarding() {
    // Per-step ⊢ (M, e) through a full forwarding collection, including the
    // widen cast (Prop. 7.2 made executable).
    let src =
        "fun f (n : int) : int = if0 n then 3 else (let p = (n, n) in snd p - n + f (n - 1))\n f 5";
    let want = expected(src);
    let program = compile(src);
    let mut m = SubstMachine::load(
        &program,
        MemConfig {
            region_budget: 24,
            growth: GrowthPolicy::Adaptive,
            track_types: true,
            max_heap_words: None,
            page_words: 512,
        },
    );
    check_state(
        &m,
        WfOptions {
            check_code_bodies: true,
            reachable_only: true,
        },
    )
    .unwrap();
    let mut steps = 0u64;
    loop {
        match m.step().unwrap() {
            ps_gc_lang::machine::StepOutcome::Halted(n) => {
                assert_eq!(n, want);
                break;
            }
            ps_gc_lang::machine::StepOutcome::Continue => {
                check_state(
                    &m,
                    WfOptions {
                        check_code_bodies: false,
                        reachable_only: true,
                    },
                )
                .unwrap_or_else(|e| panic!("preservation failed at step {steps}: {e}"));
                steps += 1;
                assert!(steps < 1_000_000, "runaway");
            }
        }
    }
    assert!(m.stats().collections > 0);
    assert!(m.stats().forwarding_installs > 0);
}

#[test]
fn sharing_is_preserved() {
    // A DAG-shaped heap: with forwarding pointers the collector copies each
    // unique object once, so copied words stay linear even though the
    // object is reachable along many paths. We compare words allocated by
    // the collector runs of the basic vs forwarding pipelines on the same
    // source program.
    let src = "fun dup (x : int * int) : (int * int) * (int * int) = (x, x)\n\
        fun grow (n : int) : int = if0 n then fst (fst (dup ((7, 8)))) else grow (n - 1)\n grow 0";
    let fwd = compile(src);
    let (got, _) = run_with_budget(&fwd, 64);
    assert_eq!(got, expected(src));
}
