//! Unit tests for the Fig. 3 translation itself: the *shape* of the
//! emitted λGC code (the pipeline tests check behaviour; these check that
//! the translation does what the figure says, clause by clause).

use ps_clos::syntax::{CExp, CFun, CProgram, CTy, CVal};
use ps_collectors::basic;
use ps_gc_lang::syntax::{Op, Term, Value, CD};
use ps_ir::Symbol;
use ps_trans::basic::{tag_of, translate};

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

fn simple_program(body: CExp) -> CProgram {
    CProgram {
        funs: vec![CFun {
            name: s("f"),
            param: s("x"),
            param_ty: CTy::Int,
            body,
        }],
        main: CExp::App(CVal::FnName(s("f")), CVal::Int(1)),
    }
}

/// Fig. 3's function rule: every function body is wrapped in
/// `ifgc r (gc[τ][r](cd.ℓ_f, x)) e′`, with the function itself as the
/// return continuation.
#[test]
fn functions_get_the_ifgc_guard() {
    let p = simple_program(CExp::Halt(CVal::Var(s("x"))));
    let image = basic::collector();
    let out = translate(&p, &image).unwrap();
    let f = &out.code[image.code.len()];
    assert_eq!(f.name, s("f"));
    assert_eq!(f.rvars.len(), 1, "takes the current region");
    match &f.body {
        Term::IfGc { full, cont, .. } => {
            // The full branch calls gc with cd.ℓ_f (self) and x.
            match &**full {
                Term::App {
                    f: gcv, tags, args, ..
                } => {
                    assert_eq!(*gcv, Value::Addr(CD, image.gc_entry));
                    assert_eq!(tags.len(), 1, "the λCLOS type, as a tag");
                    assert_eq!(
                        args[0],
                        Value::Addr(CD, image.code.len() as u32),
                        "the function itself is the return continuation"
                    );
                    assert_eq!(args[1], Value::Var(s("x")));
                }
                other => panic!("expected gc call, got {other:?}"),
            }
            assert!(matches!(&**cont, Term::Halt(_)));
        }
        other => panic!("expected ifgc guard, got {other:?}"),
    }
}

/// Fig. 3's value rules: pairs become `put[r](v1, v2)`.
#[test]
fn pairs_are_allocated() {
    let p = simple_program(CExp::let_(
        s("p"),
        CVal::pair(CVal::Int(1), CVal::Int(2)),
        CExp::Halt(CVal::Int(0)),
    ));
    let image = basic::collector();
    let out = translate(&p, &image).unwrap();
    let body = &out.code[image.code.len()].body;
    let Term::IfGc { cont, .. } = body else {
        panic!()
    };
    // let tmp = put[r](1, 2) in let p = tmp in halt 0
    match &**cont {
        Term::Let {
            op: Op::Put(_, v), ..
        } => {
            assert_eq!(*v, Value::pair(Value::Int(1), Value::Int(2)));
        }
        other => panic!("expected put, got {other:?}"),
    }
}

/// Fig. 3's projection rule: `let x = πᵢ (get v)`.
#[test]
fn projections_read_through_get() {
    let p = CProgram {
        funs: vec![CFun {
            name: s("g"),
            param: s("x"),
            param_ty: CTy::prod(CTy::Int, CTy::Int),
            body: CExp::let_proj(s("a"), 1, CVal::Var(s("x")), CExp::Halt(CVal::Var(s("a")))),
        }],
        main: CExp::Halt(CVal::Int(0)),
    };
    let image = basic::collector();
    let out = translate(&p, &image).unwrap();
    let body = &out.code[image.code.len()].body;
    let Term::IfGc { cont, .. } = body else {
        panic!()
    };
    match &**cont {
        Term::Let {
            op: Op::Get(_),
            body,
            ..
        } => match &**body {
            Term::Let {
                op: Op::Proj(1, _), ..
            } => {}
            other => panic!("expected projection after get, got {other:?}"),
        },
        other => panic!("expected get, got {other:?}"),
    }
}

/// The main term allocates the initial region (the program rule).
#[test]
fn main_opens_with_let_region() {
    let p = simple_program(CExp::Halt(CVal::Int(0)));
    let out = translate(&p, &basic::collector()).unwrap();
    assert!(matches!(out.main, Term::LetRegion { .. }));
}

/// §5: "the garbage collector receives the tags as they were in λCLOS" —
/// tag embedding is structure-preserving and total.
#[test]
fn tag_embedding_is_structural() {
    use ps_gc_lang::syntax::Tag;
    let t = s("t");
    let ty = CTy::exist(
        t,
        CTy::prod(CTy::arrow(CTy::prod(CTy::Var(t), CTy::Int)), CTy::Var(t)),
    );
    let tag = tag_of(&ty);
    let expected = Tag::exist(
        t,
        Tag::prod(Tag::arrow([Tag::prod(Tag::Var(t), Tag::Int)]), Tag::Var(t)),
    );
    assert_eq!(tag, expected);
}

/// The forwarding translation wraps every allocation in `inl` and every
/// read in `strip` (§7's mutator obligations).
#[test]
fn forwarding_translation_adds_tag_bits() {
    let p = simple_program(CExp::let_(
        s("p"),
        CVal::pair(CVal::Int(1), CVal::Int(2)),
        CExp::let_proj(s("a"), 1, CVal::Var(s("p")), CExp::Halt(CVal::Var(s("a")))),
    ));
    let image = ps_collectors::forwarding::collector();
    let out = ps_trans::forwarding::translate(&p, &image).unwrap();
    let text = ps_gc_lang::pretty::code_def_to_string(&out.code[image.code.len()]);
    assert!(
        text.contains("inl ("),
        "allocations are inl-tagged:\n{text}"
    );
    assert!(text.contains("strip"), "reads strip the bit:\n{text}");
    assert!(
        !text.contains("ifleft"),
        "the mutator never checks the bit:\n{text}"
    );
}

/// The generational translation allocates young and region-packs (§8).
#[test]
fn generational_translation_packs_regions() {
    let p = simple_program(CExp::let_(
        s("p"),
        CVal::pair(CVal::Int(1), CVal::Int(2)),
        CExp::Halt(CVal::Int(0)),
    ));
    let image = ps_collectors::generational::collector();
    let out = ps_trans::generational::translate(&p, &image).unwrap();
    let f = &out.code[image.code.len()];
    assert_eq!(f.rvars.len(), 2, "functions take [ry, ro]");
    let text = ps_gc_lang::pretty::code_def_to_string(f);
    assert!(
        text.contains("∈{"),
        "allocations are region-packed:\n{text}"
    );
}

/// Unknown function names are reported, not panicked on.
#[test]
fn unknown_functions_are_errors() {
    let p = CProgram {
        funs: vec![],
        main: CExp::App(CVal::FnName(s("ghost")), CVal::Int(0)),
    };
    assert!(translate(&p, &basic::collector()).is_err());
}
