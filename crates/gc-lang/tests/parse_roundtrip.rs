//! Round-trip tests for the λGC concrete syntax: `parse ∘ print` must be
//! the identity up to printing (`print ∘ parse ∘ print = print`), checked
//! on hand-written forms and — the real test — on all three certified
//! collectors.

use ps_gc_lang::parse::{parse_code_def, parse_tag, parse_term, parse_ty};
use ps_gc_lang::pretty;
use ps_gc_lang::syntax::{CodeDef, Dialect};
use ps_gc_lang::tyck::Checker;

fn roundtrip_def(def: &CodeDef) -> CodeDef {
    let printed = pretty::code_def_to_string(def);
    let parsed = parse_code_def(&printed)
        .unwrap_or_else(|e| panic!("{} failed to reparse: {e}\n{printed}", def.name));
    let reprinted = pretty::code_def_to_string(&parsed);
    assert_eq!(
        printed, reprinted,
        "print∘parse not stable for {}",
        def.name
    );
    parsed
}

#[test]
fn tags_roundtrip() {
    for src in [
        "Int",
        "Int × Int",
        "t",
        "∃t.t × Int",
        "λt.(t × Int)",
        "(Int) → 0",
        "(Int, Int) → 0",
        "te t",
        "(λt.t) Int",
        "∃u!e.(λtenv.(tenv × Int) → 0 × tenv) u!e",
    ] {
        let t = parse_tag(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        let printed = pretty::tag_to_string(&t);
        let back = parse_tag(&printed).unwrap_or_else(|e| panic!("{printed}: {e}"));
        assert_eq!(t, back, "{src} → {printed}");
    }
}

#[test]
fn types_roundtrip() {
    for src in [
        "int",
        "int × int",
        "int at cd",
        "M[r1](t)",
        "M[ry, ro](t)",
        "C[r1, r2](t)",
        "∀[t:Ω][r](M[r](t)) → 0",
        "∀[t:Ω, te:Ω→Ω][r1, r2](int, M[r1](t)) → 0 at cd",
        "∃t:Ω.M[cd](t)",
        "∃a:{r1, r2}.(int × a)",
        "∀⟦t1, t2⟧[r1, r2](M[r2](t1), ac) →cd 0",
        "left int + right int",
        "left (int × int) at r1",
        "∃r∈{ry, ro}.(M[r, ro](t) × int at r)",
    ] {
        let t = parse_ty(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        let printed = pretty::ty_to_string(&t);
        let back = parse_ty(&printed).unwrap_or_else(|e| panic!("{src} → {printed}: {e}"));
        assert_eq!(pretty::ty_to_string(&back), printed, "{src} → {printed}");
    }
}

#[test]
fn terms_roundtrip() {
    for src in [
        "halt 0",
        "halt -3",
        "let x = 1 in halt x",
        "let x = π1 (1, 2) in halt x",
        "let region r in let a = put[r](1, 2) in let b = get a in halt 0",
        "let x = a + b in halt x",
        "only {r1, r2} in halt 0",
        "ifgc r (halt 1) halt 0",
        "f[Int][r](x, y)",
        "cd.3[t × Int][r1, r2](x)",
        "if0 x then halt 0 else halt 1",
        "set a := inr b ; halt 0",
        "ifleft y = x then halt 0 else halt 1",
        "ifreg (r1 = r2) then halt 0 else halt 1",
        "let w = widen[r1 → r2][Int × Int](v) in halt 0",
        "open p as ⟨t, x⟩ in halt 0",
        "openα p as ⟨a, x⟩ in halt 0",
        "openρ p as ⟨r, x⟩ in halt 0",
        "typecase t of int ⇒ halt 0 λ ⇒ halt 1 a × b ⇒ halt 2 ∃e ⇒ halt 3",
    ] {
        let t = parse_term(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        let printed = pretty::term_to_string(&t);
        let back = parse_term(&printed).unwrap_or_else(|e| panic!("{src} → {printed}: {e}"));
        assert_eq!(pretty::term_to_string(&back), printed, "{src} → {printed}");
    }
}

#[test]
fn basic_collector_roundtrips_and_recertifies() {
    let image = ps_collectors_image(Dialect::Basic);
    let reparsed: Vec<CodeDef> = image.iter().map(roundtrip_def).collect();
    Checker::check_program(&ps_gc_lang::machine::Program {
        dialect: Dialect::Basic,
        code: reparsed,
        main: ps_gc_lang::syntax::Term::Halt(ps_gc_lang::syntax::Value::Int(0)),
    })
    .expect("reparsed collector certifies");
}

#[test]
fn forwarding_collector_roundtrips_and_recertifies() {
    let image = ps_collectors_image(Dialect::Forwarding);
    let reparsed: Vec<CodeDef> = image.iter().map(roundtrip_def).collect();
    Checker::check_program(&ps_gc_lang::machine::Program {
        dialect: Dialect::Forwarding,
        code: reparsed,
        main: ps_gc_lang::syntax::Term::Halt(ps_gc_lang::syntax::Value::Int(0)),
    })
    .expect("reparsed collector certifies");
}

#[test]
fn generational_collector_roundtrips_and_recertifies() {
    let image = ps_collectors_image(Dialect::Generational);
    let reparsed: Vec<CodeDef> = image.iter().map(roundtrip_def).collect();
    Checker::check_program(&ps_gc_lang::machine::Program {
        dialect: Dialect::Generational,
        code: reparsed,
        main: ps_gc_lang::syntax::Term::Halt(ps_gc_lang::syntax::Value::Int(0)),
    })
    .expect("reparsed collector certifies");
}

/// The collectors live in a downstream crate; to keep this test inside
/// gc-lang (where the parser lives), the collector listings are inlined at
/// build time would be circular — instead this helper is compiled only if
/// the sibling crate is available as a dev-dependency. (It is.)
fn ps_collectors_image(dialect: Dialect) -> Vec<CodeDef> {
    // Re-derive from the text fixtures generated by the collectors crate is
    // impossible here without a dependency cycle; instead hand-roll via the
    // build artefacts exposed through the test-support feature…
    //
    // Simplest correct solution: gc-lang cannot depend on ps-collectors, so
    // this helper reads the listing files checked under `tests/fixtures/`,
    // which `crates/collectors/tests/emit_fixtures.rs` regenerates and
    // verifies stay in sync.
    let name = match dialect {
        Dialect::Basic => "basic",
        Dialect::Forwarding => "forwarding",
        Dialect::Generational => "generational",
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let file = format!("{path}/{name}.gc");
    let src = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        panic!("missing fixture {file}: {e} (run the collectors test emit_fixtures first)")
    });
    ps_gc_lang::parse::parse_code_defs(&src).unwrap_or_else(|e| panic!("{file}: {e}"))
}
