//! Row-by-row tests of the hard-wired Typerec definitions: the `M` table of
//! §4.2, the forwarding `M`/`C` tables of §7, and the generational
//! `M_{ρy,ρo}` table of §8. Each test checks one displayed equation.

use ps_gc_lang::moper::{normalize_ty, ty_eq};
use ps_gc_lang::syntax::{Dialect, Kind, Region, Tag, Ty};
use ps_ir::Symbol;

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

fn r(x: &str) -> Region {
    Region::Var(s(x))
}

// ===== §4.2: Mρ(τ), basic dialect =========================================

#[test]
fn m_int() {
    // Mρ(Int) ⇒ int
    assert!(ty_eq(&Ty::m(r("p"), Tag::Int), &Ty::Int, Dialect::Basic));
}

#[test]
fn m_prod() {
    // Mρ(τ1 × τ2) ⇒ (Mρ(τ1) × Mρ(τ2)) at ρ
    let lhs = Ty::m(r("p"), Tag::prod(Tag::Int, Tag::prod(Tag::Int, Tag::Int)));
    let rhs = Ty::prod(
        Ty::m(r("p"), Tag::Int),
        Ty::m(r("p"), Tag::prod(Tag::Int, Tag::Int)),
    )
    .at(r("p"));
    assert!(ty_eq(&lhs, &rhs, Dialect::Basic));
}

#[test]
fn m_exist() {
    // Mρ(∃t.τ) ⇒ (∃t:Ω.Mρ(τ)) at ρ
    let t = s("t");
    let lhs = Ty::m(r("p"), Tag::exist(t, Tag::prod(Tag::Var(t), Tag::Int)));
    let rhs = Ty::exist_tag(
        t,
        Kind::Omega,
        Ty::m(r("p"), Tag::prod(Tag::Var(t), Tag::Int)),
    )
    .at(r("p"));
    assert!(ty_eq(&lhs, &rhs, Dialect::Basic));
}

#[test]
fn m_arrow() {
    // Mρ(τ → 0) ⇒ ∀[][r](M_r(τ)) → 0 at cd
    let rr = s("rfresh");
    let lhs = Ty::m(r("p"), Tag::arrow([Tag::Int]));
    let rhs = Ty::code([], [rr], [Ty::m(Region::Var(rr), Tag::Int)]).at(Region::cd());
    assert!(ty_eq(&lhs, &rhs, Dialect::Basic));
}

// ===== §7: forwarding M and C =============================================

#[test]
fn fwd_m_prod_has_the_tag_bit() {
    // Mρ(τ1×τ2) ⇒ (left(Mρ(τ1) × Mρ(τ2))) at ρ
    let lhs = Ty::m(r("p"), Tag::prod(Tag::Int, Tag::Int));
    let rhs = Ty::Left(Ty::prod(Ty::m(r("p"), Tag::Int), Ty::m(r("p"), Tag::Int)).id()).at(r("p"));
    assert!(ty_eq(&lhs, &rhs, Dialect::Forwarding));
}

#[test]
fn fwd_m_exist_has_the_tag_bit() {
    let t = s("t");
    let lhs = Ty::m(r("p"), Tag::exist(t, Tag::Var(t)));
    let rhs = Ty::Left(Ty::exist_tag(t, Kind::Omega, Ty::m(r("p"), Tag::Var(t))).id()).at(r("p"));
    assert!(ty_eq(&lhs, &rhs, Dialect::Forwarding));
}

#[test]
fn fwd_m_arrow_is_unchanged() {
    // Code is never forwarded; Mρ(τ→0) is the same as in the basic dialect.
    let rr = s("rfresh2");
    let lhs = Ty::m(r("p"), Tag::arrow([Tag::Int]));
    let rhs = Ty::code([], [rr], [Ty::m(Region::Var(rr), Tag::Int)]).at(Region::cd());
    assert!(ty_eq(&lhs, &rhs, Dialect::Forwarding));
}

#[test]
fn c_int_and_arrow() {
    // Cρ,ρ′(Int) ⇒ int; Cρ,ρ′(τ→0) ⇒ Mρ(τ→0)
    assert!(ty_eq(
        &Ty::c(r("p"), r("q"), Tag::Int),
        &Ty::Int,
        Dialect::Forwarding
    ));
    assert!(ty_eq(
        &Ty::c(r("p"), r("q"), Tag::arrow([Tag::Int])),
        &Ty::m(r("p"), Tag::arrow([Tag::Int])),
        Dialect::Forwarding
    ));
}

#[test]
fn c_prod_is_the_displayed_sum() {
    // Cρ,ρ′(τ1×τ2) ⇒ (left(C τ1 × C τ2) + right(Mρ′(τ1×τ2))) at ρ
    let tau = Tag::prod(Tag::Int, Tag::Int);
    let lhs = Ty::c(r("p"), r("q"), tau.clone());
    let rhs = Ty::sum(
        Ty::prod(
            Ty::c(r("p"), r("q"), Tag::Int),
            Ty::c(r("p"), r("q"), Tag::Int),
        ),
        Ty::m(r("q"), tau),
    )
    .at(r("p"));
    assert!(ty_eq(&lhs, &rhs, Dialect::Forwarding));
}

#[test]
fn c_exist_is_the_displayed_sum() {
    // Cρ,ρ′(∃t.τ) ⇒ (left(∃t.C τ) + right(Mρ′(∃t.τ))) at ρ
    let t = s("t");
    let tau = Tag::exist(t, Tag::Var(t));
    let lhs = Ty::c(r("p"), r("q"), tau.clone());
    let rhs = Ty::sum(
        Ty::exist_tag(t, Kind::Omega, Ty::c(r("p"), r("q"), Tag::Var(t))),
        Ty::m(r("q"), tau),
    )
    .at(r("p"));
    assert!(ty_eq(&lhs, &rhs, Dialect::Forwarding));
}

// ===== §8: generational M_{ρy,ρo} =========================================

#[test]
fn mgen_int_and_arrow() {
    assert!(ty_eq(
        &Ty::mgen(r("y"), r("o"), Tag::Int),
        &Ty::Int,
        Dialect::Generational
    ));
    // M_{ρy,ρo}(τ→0) ⇒ ∀[][ry,ro](M_{ry,ro}(τ)) → 0 at cd
    let ry = s("gy");
    let ro = s("go");
    let lhs = Ty::mgen(r("y"), r("o"), Tag::arrow([Tag::Int]));
    let rhs = Ty::code(
        [],
        [ry, ro],
        [Ty::mgen(Region::Var(ry), Region::Var(ro), Tag::Int)],
    )
    .at(Region::cd());
    assert!(ty_eq(&lhs, &rhs, Dialect::Generational));
}

#[test]
fn mgen_prod_is_the_displayed_region_existential() {
    // M_{ρy,ρo}(τ1×τ2) ⇒ ∃r∈{ρy,ρo}.((M_{r,ρo}(τ1) × M_{r,ρo}(τ2)) at r)
    let rv = s("gr");
    let lhs = Ty::mgen(r("y"), r("o"), Tag::prod(Tag::Int, Tag::Int));
    let rhs = Ty::exist_rgn(
        rv,
        [r("y"), r("o")],
        Ty::prod(
            Ty::mgen(Region::Var(rv), r("o"), Tag::Int),
            Ty::mgen(Region::Var(rv), r("o"), Tag::Int),
        ),
    );
    assert!(ty_eq(&lhs, &rhs, Dialect::Generational));
}

#[test]
fn mgen_exist_is_the_displayed_region_existential() {
    // M_{ρy,ρo}(∃t.τ) ⇒ ∃r∈{ρy,ρo}.((∃t.M_{r,ρo}(τ)) at r)
    let rv = s("gr2");
    let t = s("gt");
    let lhs = Ty::mgen(r("y"), r("o"), Tag::exist(t, Tag::Var(t)));
    let rhs = Ty::exist_rgn(
        rv,
        [r("y"), r("o")],
        Ty::exist_tag(
            t,
            Kind::Omega,
            Ty::mgen(Region::Var(rv), r("o"), Tag::Var(t)),
        ),
    );
    assert!(ty_eq(&lhs, &rhs, Dialect::Generational));
}

#[test]
fn mgen_children_keep_the_old_index() {
    // "By using the set {r, ρo} we make sure that if r is the old
    // generation, pointers underneath it cannot point back to the new
    // generation" — the children's old index stays ρo, not r.
    let lhs = normalize_ty(
        &Ty::mgen(
            r("y"),
            r("o"),
            Tag::prod(Tag::prod(Tag::Int, Tag::Int), Tag::Int),
        ),
        Dialect::Generational,
    );
    match lhs {
        Ty::ExistRgn { body, .. } => match &*body {
            Ty::Prod(first, _) => match &**first {
                Ty::ExistRgn { bound, .. } => {
                    // the inner pair's bound is {r, ρo}, with ρo free.
                    assert!(bound.contains(&r("o")), "{bound:?}");
                    assert_eq!(bound.len(), 2);
                }
                other => panic!("expected nested region existential, got {other:?}"),
            },
            other => panic!("expected product, got {other:?}"),
        },
        other => panic!("expected region existential, got {other:?}"),
    }
}

// ===== operator misuse across dialects ====================================

#[test]
fn c_is_forwarding_only() {
    use ps_gc_lang::tyck::{Checker, Ctx};
    let mut ctx = Ctx::empty();
    ctx.delta.insert(r("p"));
    ctx.delta.insert(r("q"));
    let ty = Ty::c(r("p"), r("q"), Tag::Int);
    assert!(Checker::new(Dialect::Basic).ty_wf(&ctx, &ty).is_err());
    assert!(Checker::new(Dialect::Forwarding).ty_wf(&ctx, &ty).is_ok());
}

#[test]
fn mgen_is_generational_only() {
    use ps_gc_lang::tyck::{Checker, Ctx};
    let mut ctx = Ctx::empty();
    ctx.delta.insert(r("p"));
    ctx.delta.insert(r("q"));
    let ty = Ty::mgen(r("p"), r("q"), Tag::Int);
    assert!(Checker::new(Dialect::Basic).ty_wf(&ctx, &ty).is_err());
    assert!(Checker::new(Dialect::Generational).ty_wf(&ctx, &ty).is_ok());
}
