//! Negative tests: the region-safety half of the system. Every term here
//! is a would-be use-after-free or region escape; the typechecker must
//! reject it (the machine-level dynamic failures are covered in the
//! machine's own tests).

use ps_gc_lang::machine::Program;
use ps_gc_lang::syntax::{Dialect, Kind, Op, Region, Tag, Term, Ty, Value};
use ps_gc_lang::tyck::{Checker, Ctx};
use ps_ir::Symbol;

fn s(x: &str) -> Symbol {
    Symbol::intern(x)
}

fn check_main(dialect: Dialect, main: Term) -> Result<(), ps_gc_lang::error::LangError> {
    Checker::check_program(&Program {
        dialect,
        code: vec![],
        main,
    })
}

/// Reading through an address whose region was reclaimed by `only`.
#[test]
fn use_after_only_rejected() {
    let e = Term::LetRegion {
        rvar: s("ra"),
        body: (Term::let_(
            s("a"),
            Op::Put(Region::Var(s("ra")), Value::Int(1)),
            Term::Only {
                regions: vec![],
                body: (Term::let_(
                    s("b"),
                    Op::Get(Value::Var(s("a"))),
                    Term::Halt(Value::Var(s("b"))),
                ))
                .into(),
            },
        ))
        .into(),
    };
    assert!(check_main(Dialect::Basic, e).is_err());
}

/// Escaping a region through a value returned… there is no return in CPS,
/// so the escape route is an α-package whose confinement set lies about
/// the regions inside.
#[test]
fn alpha_package_bound_cannot_lie() {
    // ⟨α : {} = int at ra, v⟩ — the witness mentions ra but the bound
    // set is empty.
    let e = Term::LetRegion {
        rvar: s("ra"),
        body: (Term::let_(
            s("a"),
            Op::Put(Region::Var(s("ra")), Value::Int(1)),
            Term::let_(
                s("p"),
                Op::Val(Value::PackAlpha {
                    avar: s("al"),
                    regions: (vec![]).into(),
                    witness: Ty::Int.at(Region::Var(s("ra"))),
                    val: (Value::Var(s("a"))).into(),
                    body_ty: Ty::Alpha(s("al")),
                }),
                Term::Halt(Value::Int(0)),
            ),
        ))
        .into(),
    };
    assert!(check_main(Dialect::Basic, e).is_err());
}

/// A region existential whose bound set is not in scope.
#[test]
fn region_package_bound_must_be_in_scope() {
    let gen = Checker::new(Dialect::Generational);
    let pkg = Value::PackRgn {
        rvar: s("r"),
        bound: (vec![Region::Var(s("ghost"))]).into(),
        witness: Region::Var(s("ghost")),
        val: (Value::Int(0)).into(),
        body_ty: Ty::Int,
    };
    assert!(gen.synth_value(&Ctx::empty(), &pkg).is_err());
}

/// `put` into a region variable that is not bound.
#[test]
fn put_into_unbound_region_rejected() {
    let e = Term::let_(
        s("a"),
        Op::Put(Region::Var(s("nowhere")), Value::Int(1)),
        Term::Halt(Value::Int(0)),
    );
    assert!(check_main(Dialect::Basic, e).is_err());
}

/// `only` cannot keep a region that is not in scope.
#[test]
fn only_cannot_keep_unknown_regions() {
    let e = Term::Only {
        regions: vec![Region::Var(s("phantom"))],
        body: (Term::Halt(Value::Int(0))).into(),
    };
    assert!(check_main(Dialect::Basic, e).is_err());
}

/// The `only` restriction drops α-variables whose confinement set died.
#[test]
fn only_drops_alphas_bound_to_dead_regions() {
    // open a package confined to ra, then `only {}` and try to use the
    // opened value.
    let e = Term::LetRegion {
        rvar: s("ra"),
        body: (Term::let_(
            s("a"),
            Op::Put(Region::Var(s("ra")), Value::Int(1)),
            Term::let_(
                s("p"),
                Op::Val(Value::PackAlpha {
                    avar: s("al"),
                    regions: (vec![Region::Var(s("ra"))]).into(),
                    witness: Ty::Int.at(Region::Var(s("ra"))),
                    val: (Value::Var(s("a"))).into(),
                    body_ty: Ty::Alpha(s("al")),
                }),
                Term::OpenAlpha {
                    pkg: Value::Var(s("p")),
                    avar: s("b"),
                    x: s("xb"),
                    body: (Term::Only {
                        regions: vec![],
                        body: (Term::let_(
                            // xb : β, β confined to the reclaimed ra — the
                            // binding must be gone.
                            s("y"),
                            Op::Val(Value::Var(s("xb"))),
                            Term::Halt(Value::Int(0)),
                        ))
                        .into(),
                    })
                    .into(),
                },
            ),
        ))
        .into(),
    };
    assert!(check_main(Dialect::Basic, e).is_err());
}

/// The widen body cannot smuggle values other than the widened one
/// (Fig. 8 types it under Γ = {x} only) — this is what forces Fig. 9 to
/// bundle (f, x) before casting.
#[test]
fn widen_body_cannot_use_outer_bindings() {
    let e = Term::LetRegion {
        rvar: s("r1"),
        body: (Term::LetRegion {
            rvar: s("r2"),
            body: (Term::let_(
                s("secret"),
                Op::Val(Value::Int(5)),
                Term::Widen {
                    x: s("w"),
                    from: Region::Var(s("r1")),
                    to: Region::Var(s("r2")),
                    tag: Tag::Int,
                    v: Value::Int(0),
                    body: (Term::Halt(Value::Var(s("secret")))).into(),
                },
            ))
            .into(),
        })
        .into(),
    };
    assert!(check_main(Dialect::Forwarding, e).is_err());
}

/// Code blocks cannot capture regions: a block whose parameter type
/// mentions a free (unbound) region variable is ill formed.
#[test]
fn code_cannot_capture_regions() {
    let def = ps_gc_lang::syntax::CodeDef {
        name: s("leak"),
        tvars: vec![],
        rvars: vec![],
        params: vec![(s("x"), Ty::Int.at(Region::Var(s("outer"))))],
        body: Term::Halt(Value::Int(0)),
    };
    assert!(Checker::new(Dialect::Basic).check_code(&def).is_err());
}

/// Tag-bit subsumption does not let arbitrary values pretend to be sums.
#[test]
fn ints_are_not_sums() {
    let fw = Checker::new(Dialect::Forwarding);
    let mut ctx = Ctx::empty();
    ctx.gamma.insert(s("v"), Ty::Int);
    let e = Term::IfLeft {
        x: s("x"),
        scrut: Value::Var(s("v")),
        left: (Term::Halt(Value::Int(0))).into(),
        right: (Term::Halt(Value::Int(0))).into(),
    };
    assert!(fw.check_term(&ctx, &e).is_err());
}

/// Applying code at the wrong number of regions is rejected.
#[test]
fn region_arity_mismatch_rejected() {
    let def = ps_gc_lang::syntax::CodeDef {
        name: s("two"),
        tvars: vec![],
        rvars: vec![s("ra"), s("rb")],
        params: vec![],
        body: Term::Halt(Value::Int(0)),
    };
    let main = Term::LetRegion {
        rvar: s("r0"),
        body: (Term::app(
            Value::Addr(ps_gc_lang::syntax::CD, 0),
            [],
            [Region::Var(s("r0"))],
            [],
        ))
        .into(),
    };
    let p = Program {
        dialect: Dialect::Basic,
        code: vec![def],
        main,
    };
    assert!(Checker::check_program(&p).is_err());
}

/// The tag argument of an application must match the declared kind.
#[test]
fn tag_kind_mismatch_rejected() {
    let def = ps_gc_lang::syntax::CodeDef {
        name: s("wantfn"),
        tvars: vec![(s("te"), Kind::Arrow)],
        rvars: vec![],
        params: vec![],
        body: Term::Halt(Value::Int(0)),
    };
    let main = Term::app(Value::Addr(ps_gc_lang::syntax::CD, 0), [Tag::Int], [], []);
    let p = Program {
        dialect: Dialect::Basic,
        code: vec![def],
        main,
    };
    assert!(Checker::check_program(&p).is_err());
    let def2 = ps_gc_lang::syntax::CodeDef {
        name: s("wantfn2"),
        tvars: vec![(s("te"), Kind::Arrow)],
        rvars: vec![],
        params: vec![],
        body: Term::Halt(Value::Int(0)),
    };
    let main2 = Term::app(
        Value::Addr(ps_gc_lang::syntax::CD, 0),
        [Tag::id_fn()],
        [],
        [],
    );
    let p2 = Program {
        dialect: Dialect::Basic,
        code: vec![def2],
        main: main2,
    };
    assert!(Checker::check_program(&p2).is_ok());
}
