//! Property tests for the BiBOP page store: random `put`/`set`/`only`
//! sequences against a flat model map, with the page-level bookkeeping
//! (loc encoding, footprint accounting, free-list reuse) and the heap
//! auditor checked after every operation.
//!
//! The driver is a decision tape (the proptest input), so shrinking the
//! tape shrinks the operation sequence.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use ps_gc_lang::memory::{value_words, MemConfig, Memory};
use ps_gc_lang::syntax::{Dialect, RegionName, Term, Value};

struct Tape<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Tape<'a> {
    fn next(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }
}

/// A storable value of tape-chosen shape: nested pairs of ints, depth ≤ 3,
/// so word sizes span several size classes.
fn gen_value(tape: &mut Tape, depth: u32) -> Value {
    if depth == 0 || tape.next() % 3 == 0 {
        return Value::Int(i64::from(tape.next()));
    }
    Value::pair(gen_value(tape, depth - 1), gen_value(tape, depth - 1))
}

/// Rebuilds `v` with the same shape (hence the same word count) but fresh
/// leaf ints — a `set` payload that keeps every dialect's word accounting
/// exact.
fn reshape(tape: &mut Tape, v: &Value) -> Value {
    match v {
        Value::Pair(a, b) => Value::pair(reshape(tape, a), reshape(tape, b)),
        _ => Value::Int(i64::from(tape.next())),
    }
}

/// The model: a flat map of every live slot, plus the page ids the store
/// has handed out and taken back.
#[derive(Default)]
struct Model {
    slots: BTreeMap<(RegionName, u32), Value>,
    in_use_pages: BTreeSet<u32>,
    freed_pages: BTreeSet<u32>,
}

fn check_against_model(mem: &Memory, model: &Model, page_words: usize) {
    // Every model slot reads back exactly; the loc encoding resolves
    // through the owning region's page list to the same value.
    let slot_bits = page_words.max(1).next_power_of_two().trailing_zeros();
    for ((nu, loc), expected) in &model.slots {
        let got = mem.get(*nu, *loc).expect("live slot reads back");
        assert_eq!(got, expected, "round-trip at {nu}.{loc}");
        let region = mem.region(*nu).expect("owning region is live");
        let ordinal = (loc >> slot_bits) as usize;
        let slot = (loc & ((1 << slot_bits) - 1)) as usize;
        let pid = region.page_ids()[ordinal];
        let page = mem.page(pid).expect("page is live");
        assert_eq!(page.owner(), *nu);
        assert_eq!(page.ordinal() as usize, ordinal);
        assert_eq!(page.loc_of(slot), *loc, "loc encoding round-trips");
        assert_eq!(page.slot(slot), Some(expected), "page-level read agrees");
    }
    // Page accounting: the stats, the live-page walk, and the model's idea
    // of which ids are in use all agree; reserved words are exactly the
    // footprints of live pages.
    let stats = mem.page_stats();
    let live_ids: BTreeSet<u32> = mem.live_page_ids().into_iter().collect();
    assert_eq!(live_ids, model.in_use_pages, "live page ids");
    assert_eq!(stats.live, live_ids.len());
    assert_eq!(stats.allocated - stats.freed, stats.live as u64);
    assert!(stats.peak_live >= stats.live);
    let footprints: usize = mem.live_pages_iter_footprint();
    assert_eq!(stats.reserved_words, footprints, "reserved word accounting");
    let model_words: usize = model.slots.values().map(value_words).sum();
    assert_eq!(stats.live_data_words, model_words, "live data words");
}

/// Footprint sum helper on Memory: not part of the API, so recompute from
/// the public page views.
trait FootprintSum {
    fn live_pages_iter_footprint(&self) -> usize;
}

impl FootprintSum for Memory {
    fn live_pages_iter_footprint(&self) -> usize {
        self.live_page_ids()
            .into_iter()
            .filter_map(|pid| self.page(pid))
            .map(|p| p.footprint())
            .sum()
    }
}

fn run_tape(bytes: &[u8], dialect: Dialect) {
    let mut tape = Tape { bytes, pos: 0 };
    // Small pages so sequences of tens of ops exercise multi-page regions,
    // several size classes, and ordinal/slot splits.
    let page_words = match tape.next() % 3 {
        0 => 4,
        1 => 8,
        _ => 16,
    };
    let config = MemConfig {
        page_words,
        ..MemConfig::default()
    };
    let mut mem = Memory::new(config);
    let mut model = Model::default();
    let mut regions: Vec<RegionName> = Vec::new();
    let root = Term::Halt(Value::Int(0));

    let ops = 24 + (tape.next() as usize % 40);
    for _ in 0..ops {
        match tape.next() % 8 {
            // Allocate a region (bounded so `only` has meaningful work).
            0 if regions.len() < 6 => {
                regions.push(mem.alloc_region());
            }
            // Reclaim: keep a tape-chosen subset of live regions.
            1 if !regions.is_empty() => {
                let keep: Vec<RegionName> = regions
                    .iter()
                    .copied()
                    .filter(|_| tape.next() % 2 == 0)
                    .collect();
                let report = mem.only(&keep);
                for (_, pid, _) in &report.freed_pages {
                    assert!(
                        model.in_use_pages.remove(pid),
                        "freed page {pid} was not live"
                    );
                    model.freed_pages.insert(*pid);
                }
                for (nu, ..) in &report.dropped {
                    model.slots.retain(|(r, _), _| r != nu);
                }
                regions.retain(|r| keep.contains(r));
            }
            // Overwrite an existing slot with a same-shape value.
            2 if !model.slots.is_empty() => {
                let i = tape.next() as usize % model.slots.len();
                let (&(nu, loc), old) = model.slots.iter().nth(i).expect("indexed within len");
                let fresh = reshape(&mut tape, old);
                mem.set(nu, loc, fresh.clone()).expect("set on a live slot");
                model.slots.insert((nu, loc), fresh);
            }
            // Everything else: put a random value into a random region.
            _ => {
                if regions.is_empty() {
                    regions.push(mem.alloc_region());
                }
                let nu = regions[tape.next() as usize % regions.len()];
                let v = gen_value(&mut tape, 3);
                let rec = mem.put_counted(nu, v.clone()).expect("unbounded put");
                assert_eq!(rec.words, value_words(&v));
                if let Some(alloc) = rec.page {
                    // A fresh page must reuse a previously freed id when
                    // one is available (LIFO free list), and must never
                    // collide with a live page.
                    assert!(
                        !model.in_use_pages.contains(&alloc.page),
                        "page {} handed out twice",
                        alloc.page
                    );
                    if !model.freed_pages.is_empty() {
                        assert!(
                            model.freed_pages.remove(&alloc.page),
                            "free list ignored: got page {} with {:?} free",
                            alloc.page,
                            model.freed_pages
                        );
                    }
                    model.in_use_pages.insert(alloc.page);
                    assert!(alloc.footprint >= rec.words);
                }
                let prior = model.slots.insert((nu, rec.loc), v);
                assert!(prior.is_none(), "put returned an occupied loc");
            }
        }
        check_against_model(&mem, &model, page_words);
        // Both audit strategies stay green throughout: the incremental
        // audit on the dirty set, and the full walk whenever frees have
        // scheduled one.
        if mem.wants_full_audit() {
            ps_gc_lang::verify::audit_state(&mem, dialect, &root).expect("full audit clean");
            mem.note_full_audit();
        } else {
            ps_gc_lang::verify::audit_dirty(&mut mem, dialect).expect("incremental audit clean");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random op sequences round-trip through the page store under the
    /// strict word-accounting dialect.
    #[test]
    fn page_store_round_trips_basic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        run_tape(&bytes, Dialect::Basic);
    }

    /// And under the forwarding dialect, whose word audit is an upper
    /// bound (in-place shrinking `set` is legal there).
    #[test]
    fn page_store_round_trips_forwarding(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        run_tape(&bytes, Dialect::Forwarding);
    }
}
