//! Property tests for the tag calculus: Propositions 6.1 (strong
//! normalization) and 6.2 (confluence), plus substitution/kinding
//! metatheory.

use std::collections::HashMap;

use proptest::prelude::*;

use ps_gc_lang::subst::Subst;
use ps_gc_lang::syntax::{Kind, Tag};
use ps_gc_lang::tags;
use ps_ir::symbol::gensym;
use ps_ir::Symbol;

/// Generates a random *well-kinded* tag of kind Ω (with tag-function
/// redexes sprinkled in), from a byte tape.
fn gen_tag(bytes: &[u8], pos: &mut usize, env: &mut Vec<Symbol>, depth: u32) -> Tag {
    let next = |pos: &mut usize| {
        let b = bytes.get(*pos).copied().unwrap_or(0);
        *pos += 1;
        b
    };
    if depth == 0 {
        return if env.is_empty() || next(pos) % 2 == 0 {
            Tag::Int
        } else {
            let i = next(pos) as usize % env.len();
            Tag::Var(env[i])
        };
    }
    match next(pos) % 8 {
        0 | 1 => Tag::Int,
        2 => {
            if env.is_empty() {
                Tag::Int
            } else {
                let i = next(pos) as usize % env.len();
                Tag::Var(env[i])
            }
        }
        3 => Tag::prod(
            gen_tag(bytes, pos, env, depth - 1),
            gen_tag(bytes, pos, env, depth - 1),
        ),
        4 => Tag::arrow([gen_tag(bytes, pos, env, depth - 1)]),
        5 => {
            let t = gensym("pt");
            env.push(t);
            let body = gen_tag(bytes, pos, env, depth - 1);
            env.pop();
            Tag::exist(t, body)
        }
        // A β-redex: (λt.body) arg.
        _ => {
            let t = gensym("pt");
            env.push(t);
            let body = gen_tag(bytes, pos, env, depth - 1);
            env.pop();
            let arg = gen_tag(bytes, pos, env, depth - 1);
            Tag::app(Tag::lam(t, body), arg)
        }
    }
}

/// An *applicative-order* normalizer — a different strategy than the
/// crate's normal-order one. By confluence (Prop. 6.2) they must agree.
fn applicative_normalize(tau: &Tag) -> Tag {
    match tau {
        Tag::Var(_) | Tag::Int | Tag::AnyArrow(_) => tau.clone(),
        Tag::Prod(a, b) => Tag::prod(applicative_normalize(a), applicative_normalize(b)),
        Tag::Arrow(args) => Tag::arrow(
            args.iter()
                .map(|a| applicative_normalize(a))
                .collect::<Vec<_>>(),
        ),
        Tag::Exist(t, body) => Tag::exist(*t, applicative_normalize(body)),
        Tag::Lam(t, body) => Tag::lam(*t, applicative_normalize(body)),
        Tag::App(f, a) => {
            // Normalize the ARGUMENT first (the opposite of normal order).
            let a = applicative_normalize(a);
            let f = applicative_normalize(f);
            match f {
                Tag::Lam(t, body) => applicative_normalize(&Subst::one_tag(t, a).tag(body.node())),
                other => Tag::app(other, a),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Generated tags are well kinded at Ω.
    #[test]
    fn generated_tags_kind_check(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut pos = 0;
        let tag = gen_tag(&bytes, &mut pos, &mut Vec::new(), 4);
        prop_assert_eq!(
            tags::kind_of(&tag, &HashMap::new()).unwrap(),
            Kind::Omega
        );
    }

    /// Prop. 6.1: normalization terminates (implicitly — the call returns)
    /// and yields a normal form; normalization is idempotent.
    #[test]
    fn normalization_yields_normal_forms(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut pos = 0;
        let tag = gen_tag(&bytes, &mut pos, &mut Vec::new(), 4);
        let nf = tags::normalize(&tag);
        prop_assert!(tags::is_normal(&nf), "{nf:?}");
        prop_assert!(tags::alpha_eq(&tags::normalize(&nf), &nf));
    }

    /// Prop. 6.2: confluence — normal-order and applicative-order
    /// strategies reach α-equal normal forms.
    #[test]
    fn normalization_is_confluent(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut pos = 0;
        let tag = gen_tag(&bytes, &mut pos, &mut Vec::new(), 4);
        let a = tags::normalize(&tag);
        let b = applicative_normalize(&tag);
        prop_assert!(tags::alpha_eq(&a, &b), "normal {a:?} vs applicative {b:?}");
    }

    /// Substitution commutes with normalization for closed ranges:
    /// `normalize(τ[σ/t]) == normalize(normalize(τ)[σ/t])`.
    #[test]
    fn substitution_commutes_with_normalization(
        bytes in proptest::collection::vec(any::<u8>(), 0..48),
        bytes2 in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        let t = gensym("ps");
        let mut pos = 0;
        let mut env = vec![t];
        let tau = gen_tag(&bytes, &mut pos, &mut env, 4);
        let mut pos2 = 0;
        let sigma = gen_tag(&bytes2, &mut pos2, &mut Vec::new(), 3);
        let lhs = tags::normalize(&Subst::one_tag(t, sigma.clone()).tag(&tau));
        let rhs = tags::normalize(&Subst::one_tag(t, sigma).tag(&tags::normalize(&tau)));
        prop_assert!(tags::alpha_eq(&lhs, &rhs), "{lhs:?} vs {rhs:?}");
    }

    /// α-equivalence is preserved by normalization.
    #[test]
    fn alpha_eq_stable_under_renaming(bytes in proptest::collection::vec(any::<u8>(), 0..48)) {
        let mut pos = 0;
        let tag = gen_tag(&bytes, &mut pos, &mut Vec::new(), 4);
        // Rename every binder by round-tripping through a substitution that
        // forces freshening.
        let renamed = Subst::new().tag(&tag);
        prop_assert!(tags::alpha_eq(&tags::normalize(&tag), &tags::normalize(&renamed)));
    }
}
