//! λGC parser robustness: arbitrary strings and λGC-alphabet token soup
//! never panic the parser.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn gc_parser_total_on_arbitrary_input(s in "\\PC*") {
        let _ = ps_gc_lang::parse::parse_term(&s);
        let _ = ps_gc_lang::parse::parse_ty(&s);
        let _ = ps_gc_lang::parse::parse_tag(&s);
        let _ = ps_gc_lang::parse::parse_code_defs(&s);
    }

    #[test]
    fn gc_parser_total_on_token_soup(words in proptest::collection::vec(
        prop_oneof![
            Just("fix"), Just("let"), Just("region"), Just("in"), Just("only"),
            Just("typecase"), Just("of"), Just("open"), Just("as"), Just("halt"),
            Just("ifgc"), Just("put"), Just("get"), Just("int"), Just("Int"),
            Just("M"), Just("["), Just("]"), Just("("), Just(")"), Just("{"),
            Just("}"), Just("⟨"), Just("⟩"), Just(","), Just("."), Just(":"),
            Just("="), Just("×"), Just("→"), Just("⇒"), Just("∀"), Just("∃"),
            Just("λ"), Just("Ω"), Just("0"), Just("x"), Just("r"), Just("t"),
            Just("cd"), Just("ν1"), Just("π1"),
        ].prop_map(str::to_string),
        0..48,
    )) {
        let s = words.join(" ");
        let _ = ps_gc_lang::parse::parse_term(&s);
        let _ = ps_gc_lang::parse::parse_ty(&s);
        let _ = ps_gc_lang::parse::parse_code_defs(&s);
    }
}
