//! Step-for-step agreement of every interpreter backend.
//!
//! The alternative backends promise more than equal final answers: each
//! claims to simulate the Fig. 5 substitution machine *exactly* — same
//! rule fired at every step, same statistics after every step, and a
//! resolved control view that is syntactically identical to the
//! substitution machine's closed control term.
//!
//! This test generates random closed, runnable λGC programs (tape-driven,
//! so every generated program terminates) and runs all [`Backend::ALL`]
//! machines in lockstep against the substitution oracle, checking all
//! three invariants at every single step. A new backend added to `ALL`
//! joins the matrix with no edits here.

use proptest::prelude::*;

use ps_gc_lang::machine::{Backend, Machine, Program, StepOutcome};
use ps_gc_lang::memory::{GrowthPolicy, MemConfig};
use ps_gc_lang::syntax::{CodeDef, Dialect, Kind, Op, PrimOp, Region, Tag, Term, Ty, Value, CD};
use ps_gc_lang::telemetry::Recorder;
use ps_ir::symbol::gensym;
use ps_ir::Symbol;

/// Fixed library of code blocks every generated program links against —
/// they exercise the frame-clearing `App` rule, tag/region polymorphism,
/// `typecase` dispatch on a tag parameter, and partial tag application.
fn code_defs() -> Vec<CodeDef> {
    let n = Symbol::intern("ba_n");
    let m = gensym("ba_m");
    let r = Symbol::intern("ba_r");
    let t = Symbol::intern("ba_t");
    let a = gensym("ba_a");
    let p = gensym("ba_p");
    let x = gensym("ba_x");
    vec![
        // 0: finish(n) = halt n
        CodeDef {
            name: Symbol::intern("ba_finish"),
            tvars: vec![],
            rvars: vec![],
            params: vec![(n, Ty::Int)],
            body: Term::Halt(Value::Var(n)),
        },
        // 1: twice(n) = let m = n + n in halt m
        CodeDef {
            name: Symbol::intern("ba_twice"),
            tvars: vec![],
            rvars: vec![],
            params: vec![(n, Ty::Int)],
            body: Term::let_(
                m,
                Op::Prim(PrimOp::Add, Value::Var(n), Value::Var(n)),
                Term::Halt(Value::Var(m)),
            ),
        },
        // 2: alloc[r](n) = let a = put r (n,n) in let p = get a in
        //                  let x = π1 p in halt x
        CodeDef {
            name: Symbol::intern("ba_alloc"),
            tvars: vec![],
            rvars: vec![r],
            params: vec![(n, Ty::Int)],
            body: Term::let_(
                a,
                Op::Put(Region::Var(r), Value::pair(Value::Var(n), Value::Var(n))),
                Term::let_(
                    p,
                    Op::Get(Value::Var(a)),
                    Term::let_(x, Op::Proj(1, Value::Var(p)), Term::Halt(Value::Var(x))),
                ),
            ),
        },
        // 3: disp[t](n) = typecase t of int ⇒ halt n | …
        CodeDef {
            name: Symbol::intern("ba_disp"),
            tvars: vec![(t, Kind::Omega)],
            rvars: vec![],
            params: vec![(n, Ty::Int)],
            body: Term::Typecase {
                tag: Tag::Var(t),
                int_arm: (Term::Halt(Value::Var(n))).into(),
                arrow_arm: (Term::Halt(Value::Int(11))).into(),
                prod_arm: (
                    Symbol::intern("ba_t1"),
                    Symbol::intern("ba_t2"),
                    (Term::Halt(Value::Int(22))).into(),
                ),
                exist_arm: (Symbol::intern("ba_te"), (Term::Halt(Value::Int(33))).into()),
            },
        },
    ]
}

/// Byte tape driving generation; runs out → zeros → generation collapses
/// to the terminal case, so every program is finite and halts.
struct Tape<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Tape<'_> {
    fn next(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }
}

/// Variables in scope during generation, by the shape of what they hold.
#[derive(Clone, Default)]
struct Scope {
    /// Bound to integers.
    ints: Vec<Symbol>,
    /// Bound to addresses of `(int, int)` pairs, with the index into
    /// `regions` of the region they live in.
    pairs: Vec<(Symbol, usize)>,
    /// Region variables, with a liveness flag (dropped by `only`).
    regions: Vec<(Symbol, bool)>,
}

impl Scope {
    fn live_regions(&self) -> Vec<usize> {
        (0..self.regions.len())
            .filter(|&i| self.regions[i].1)
            .collect()
    }
}

fn int_value(tape: &mut Tape, scope: &Scope) -> Value {
    let b = tape.next();
    if !scope.ints.is_empty() && b.is_multiple_of(2) {
        Value::Var(scope.ints[b as usize / 2 % scope.ints.len()])
    } else {
        Value::Int(i64::from(b) - 128)
    }
}

fn random_tag(tape: &mut Tape) -> Tag {
    match tape.next() % 3 {
        0 => Tag::Int,
        1 => Tag::prod(Tag::Int, Tag::Int),
        _ => Tag::exist(Symbol::intern("ba_ex"), Tag::Int),
    }
}

/// A terminal: halts directly or jumps to one of the library blocks.
fn gen_terminal(tape: &mut Tape, scope: &Scope) -> Term {
    let live = scope.live_regions();
    match tape.next() % 6 {
        0 | 1 => Term::Halt(int_value(tape, scope)),
        2 => Term::app(Value::Addr(CD, 0), [], [], [int_value(tape, scope)]),
        3 => Term::app(Value::Addr(CD, 1), [], [], [int_value(tape, scope)]),
        4 if !live.is_empty() => {
            let r = scope.regions[live[tape.next() as usize % live.len()]].0;
            Term::app(
                Value::Addr(CD, 2),
                [],
                [Region::Var(r)],
                [int_value(tape, scope)],
            )
        }
        5 => {
            // Partial tag application: exercises the extra TagApp
            // unfolding step on both machines.
            let tag = random_tag(tape);
            Term::app(
                Value::tag_app(Value::Addr(CD, 3), [tag], []),
                [],
                [],
                [int_value(tape, scope)],
            )
        }
        _ => Term::app(
            Value::Addr(CD, 3),
            [random_tag(tape)],
            [],
            [int_value(tape, scope)],
        ),
    }
}

fn gen_term(tape: &mut Tape, fuel: u32, scope: &mut Scope) -> Term {
    if fuel == 0 {
        return gen_terminal(tape, scope);
    }
    let live = scope.live_regions();
    match tape.next() % 10 {
        0 => {
            let x = gensym("ba_i");
            let op = Op::Val(int_value(tape, scope));
            scope.ints.push(x);
            Term::let_(x, op, gen_term(tape, fuel - 1, scope))
        }
        1 => {
            let x = gensym("ba_i");
            let prim = [PrimOp::Add, PrimOp::Sub, PrimOp::Mul][tape.next() as usize % 3];
            let op = Op::Prim(prim, int_value(tape, scope), int_value(tape, scope));
            scope.ints.push(x);
            Term::let_(x, op, gen_term(tape, fuel - 1, scope))
        }
        2 => {
            let r = gensym("ba_r");
            scope.regions.push((r, true));
            Term::LetRegion {
                rvar: r,
                body: (gen_term(tape, fuel - 1, scope)).into(),
            }
        }
        3 if !live.is_empty() => {
            let ri = live[tape.next() as usize % live.len()];
            let a = gensym("ba_a");
            let op = Op::Put(
                Region::Var(scope.regions[ri].0),
                Value::pair(int_value(tape, scope), int_value(tape, scope)),
            );
            scope.pairs.push((a, ri));
            Term::let_(a, op, gen_term(tape, fuel - 1, scope))
        }
        4 if !scope.pairs.is_empty() => {
            let &(a, ri) = &scope.pairs[tape.next() as usize % scope.pairs.len()];
            if !scope.regions[ri].1 {
                return gen_terminal(tape, scope);
            }
            let p = gensym("ba_p");
            let y = gensym("ba_y");
            let idx = 1 + tape.next() % 2;
            scope.ints.push(y);
            Term::let_(
                p,
                Op::Get(Value::Var(a)),
                Term::let_(
                    y,
                    Op::Proj(idx, Value::Var(p)),
                    gen_term(tape, fuel - 1, scope),
                ),
            )
        }
        5 => {
            let half = fuel / 2;
            let zero = gen_term(tape, half, &mut scope.clone());
            let nonzero = gen_term(tape, half, scope);
            Term::If0 {
                scrut: int_value(tape, scope),
                zero: (zero).into(),
                nonzero: (nonzero).into(),
            }
        }
        6 if !live.is_empty() => {
            // Keep a random subset of the live regions; the rest (and all
            // addresses into them) leave scope.
            let mask = tape.next();
            let mut keep = Vec::new();
            for (k, &ri) in live.iter().enumerate() {
                if mask >> (k % 8) & 1 == 1 {
                    keep.push(Region::Var(scope.regions[ri].0));
                } else {
                    scope.regions[ri].1 = false;
                }
            }
            let dropped: Vec<usize> = (0..scope.regions.len())
                .filter(|&i| !scope.regions[i].1)
                .collect();
            scope.pairs.retain(|&(_, ri)| !dropped.contains(&ri));
            Term::Only {
                regions: keep,
                body: (gen_term(tape, fuel - 1, scope)).into(),
            }
        }
        7 if !live.is_empty() => {
            let r1 = scope.regions[live[tape.next() as usize % live.len()]].0;
            let r2 = scope.regions[live[tape.next() as usize % live.len()]].0;
            let half = fuel / 2;
            let eq = gen_term(tape, half, &mut scope.clone());
            let ne = gen_term(tape, half, scope);
            Term::IfReg {
                r1: Region::Var(r1),
                r2: Region::Var(r2),
                eq: (eq).into(),
                ne: (ne).into(),
            }
        }
        8 if !live.is_empty() => {
            let r = scope.regions[live[tape.next() as usize % live.len()]].0;
            let half = fuel / 2;
            let full = gen_term(tape, half, &mut scope.clone());
            let cont = gen_term(tape, half, scope);
            Term::IfGc {
                rho: Region::Var(r),
                full: (full).into(),
                cont: (cont).into(),
            }
        }
        9 => {
            // Typecase on a concrete tag: binds tag variables in the
            // product arm (unused below, but they flow through both
            // machines' environments/substitutions).
            let tag = random_tag(tape);
            let half = fuel / 2;
            let int_arm = gen_term(tape, half, &mut scope.clone());
            let other = gen_term(tape, half, scope);
            Term::Typecase {
                tag,
                int_arm: (int_arm).into(),
                arrow_arm: (Term::Halt(Value::Int(11))).into(),
                prod_arm: (gensym("ba_t1"), gensym("ba_t2"), (other.clone()).into()),
                exist_arm: (gensym("ba_te"), (other).into()),
            }
        }
        _ => gen_terminal(tape, scope),
    }
}

fn gen_program(bytes: &[u8]) -> Program {
    let mut tape = Tape { bytes, pos: 0 };
    let mut scope = Scope::default();
    let fuel = 3 + u32::from(tape.next() % 6);
    Program {
        dialect: Dialect::Basic,
        code: code_defs(),
        main: gen_term(&mut tape, fuel, &mut scope),
    }
}

/// Runs all backends in lockstep against the substitution oracle (the
/// first entry of [`Backend::ALL`]), asserting after every step that the
/// statistics agree, that the telemetry event streams agree, and that
/// every backend's resolved control equals the oracle's closed control
/// term.
fn lockstep(program: &Program) {
    lockstep_with_budget(program, 4096);
}

fn lockstep_with_budget(program: &Program, region_budget: usize) {
    let config = MemConfig {
        region_budget,
        growth: GrowthPolicy::Fixed,
        track_types: false,
        max_heap_words: None,
        page_words: 512,
    };
    assert_eq!(Backend::ALL[0], Backend::Subst, "the oracle leads ALL");
    // Every machine gets a recorder (sampling on, to cover `Step` events);
    // the event streams must match after every step.
    let mut machines: Vec<Box<dyn Machine>> = Vec::new();
    let mut recorders = Vec::new();
    for backend in Backend::ALL {
        let mut m = backend.load(program, config);
        let rec = Recorder::new().into_shared();
        m.set_observer(rec.clone(), 7);
        machines.push(m);
        recorders.push(rec);
    }
    let mut seen = 0usize;
    for step in 0..4000u32 {
        let control = machines[0].resolved_control();
        for (i, m) in machines.iter().enumerate().skip(1) {
            assert_eq!(
                control,
                m.resolved_control(),
                "{}: control terms diverge before step {step}",
                Backend::ALL[i]
            );
        }
        let outcomes: Vec<_> = machines.iter_mut().map(|m| m.step()).collect();
        match &outcomes[0] {
            Ok(a) => {
                for (i, o) in outcomes.iter().enumerate().skip(1) {
                    let backend = Backend::ALL[i];
                    let Ok(b) = o else {
                        panic!("{backend} stuck at step {step}: {a:?} vs {o:?}");
                    };
                    assert_eq!(a, b, "{backend}: step outcomes diverge at step {step}");
                    assert_eq!(
                        machines[0].stats(),
                        machines[i].stats(),
                        "{backend}: stats diverge at step {step}"
                    );
                    assert_eq!(
                        machines[0].halted(),
                        machines[i].halted(),
                        "{backend}: halt states diverge"
                    );
                }
                {
                    let evs_s = &recorders[0].borrow().events;
                    for (i, rec) in recorders.iter().enumerate().skip(1) {
                        let backend = Backend::ALL[i];
                        let evs = &rec.borrow().events;
                        assert_eq!(
                            evs_s.len(),
                            evs.len(),
                            "{backend}: event counts diverge at step {step}"
                        );
                        assert_eq!(
                            &evs_s[seen..],
                            &evs[seen..],
                            "{backend}: events diverge at step {step}"
                        );
                    }
                    seen = evs_s.len();
                }
                if matches!(a, StepOutcome::Halted(_)) {
                    for (i, rec) in recorders.iter().enumerate().skip(1) {
                        assert_eq!(
                            recorders[0].borrow().metrics,
                            rec.borrow().metrics,
                            "{}: telemetry metrics diverge at halt",
                            Backend::ALL[i]
                        );
                    }
                    return;
                }
            }
            Err(a) => {
                for (i, o) in outcomes.iter().enumerate().skip(1) {
                    let backend = Backend::ALL[i];
                    let Err(b) = o else {
                        panic!("only the oracle stuck at step {step}: {a:?} vs {o:?} ({backend})");
                    };
                    assert_eq!(
                        a.to_string(),
                        b.to_string(),
                        "{backend}: error messages diverge"
                    );
                }
                return;
            }
        }
    }
    panic!("generated program did not terminate within the step bound");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn backends_agree_step_for_step(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        lockstep(&gen_program(&bytes));
    }
}

/// A fixed deep program as a non-random smoke check (also ensures the
/// generator's terminal forms are all reachable regardless of tape luck).
#[test]
fn fixed_tapes_agree() {
    for seed in 0..64u8 {
        let bytes: Vec<u8> = (0..96)
            .map(|i| seed.wrapping_mul(37).wrapping_add(i))
            .collect();
        lockstep(&gen_program(&bytes));
    }
}

/// The same tapes under a tiny region budget: `ifgc` now takes its "full"
/// branch, so the telemetry comparison also covers `gc_begin`/`copy`/
/// `gc_end` phases opened by fullness triggers.
#[test]
fn fixed_tapes_agree_under_memory_pressure() {
    for seed in 0..32u8 {
        let bytes: Vec<u8> = (0..96)
            .map(|i| seed.wrapping_mul(53).wrapping_add(i))
            .collect();
        lockstep_with_budget(&gen_program(&bytes), 6);
    }
}

/// Runs a program on one backend with the given audit cadence, returning
/// the outcome (a generated program may legitimately get stuck — both
/// backends must then get stuck identically), the final statistics, and
/// the serialized telemetry trace.
type AuditedRun = (
    Result<ps_gc_lang::machine::Outcome, ps_gc_lang::error::LangError>,
    ps_gc_lang::machine::Stats,
    String,
);

fn audited_run(
    program: &Program,
    backend: Backend,
    verify_every: u64,
    plan: Option<ps_gc_lang::faults::FaultPlan>,
) -> AuditedRun {
    let config = MemConfig {
        region_budget: 4096,
        growth: GrowthPolicy::Fixed,
        track_types: true,
        max_heap_words: None,
        page_words: 512,
    };
    let rec = Recorder::new().into_shared();
    let mut m = backend.load(program, config);
    m.set_observer(rec.clone(), 7);
    m.set_verify_every(verify_every);
    m.set_fault_plan(plan);
    let (outcome, stats) = (m.run(4000), m.stats().clone());
    let jsonl = rec.borrow().to_jsonl();
    (outcome, stats, jsonl)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The auditor is purely observational: on clean runs, `verify_every`
    /// at full blast never reports a violation and leaves the outcome,
    /// statistics, and telemetry byte stream identical — on every backend.
    #[test]
    fn audited_clean_runs_are_byte_identical(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let program = gen_program(&bytes);
        for backend in Backend::ALL {
            let (o_plain, s_plain, t_plain) = audited_run(&program, backend, 0, None);
            let (o_audit, s_audit, t_audit) = audited_run(&program, backend, 1, None);
            prop_assert!(
                !matches!(
                    o_audit,
                    Ok(ps_gc_lang::machine::Outcome::InvariantViolation(_))
                ),
                "audit fired on a clean run: {o_audit:?}"
            );
            prop_assert_eq!(&o_plain, &o_audit, "outcome changed under audit");
            prop_assert_eq!(&s_plain, &s_audit, "stats changed under audit");
            prop_assert_eq!(&t_plain, &t_audit, "telemetry changed under audit");
        }
    }
}

/// Armed with the same fault plan, all backends must pick the same
/// injection site at the same step and return the same verdict — either
/// all detect the identical violation or the plan finds no target on
/// any of them.
#[test]
fn backends_agree_under_fault_injection() {
    for kind in ps_gc_lang::faults::FaultKind::ALL {
        for seed in 0..4u64 {
            let bytes: Vec<u8> = (0..96)
                .map(|i| (seed as u8).wrapping_mul(91).wrapping_add(i))
                .collect();
            let program = gen_program(&bytes);
            let plan = ps_gc_lang::faults::FaultPlan {
                kind,
                step: 2,
                seed,
            };
            let (o_subst, s_subst, t_subst) = audited_run(&program, Backend::Subst, 1, Some(plan));
            for backend in Backend::ALL {
                if backend == Backend::Subst {
                    continue;
                }
                let (o, s, t) = audited_run(&program, backend, 1, Some(plan));
                assert_eq!(o_subst, o, "{kind}@{seed}/{backend}: outcomes diverge");
                assert_eq!(s_subst, s, "{kind}@{seed}/{backend}: stats diverge");
                assert_eq!(t_subst, t, "{kind}@{seed}/{backend}: telemetry diverges");
            }
        }
    }
}
