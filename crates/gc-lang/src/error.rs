//! Error types shared by the λGC kind checker, typechecker and machine.

use std::fmt;

/// What went wrong.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// A tag failed to kind-check (`Θ ⊢ τ : κ`).
    Kinding,
    /// A type was ill-formed (`∆; Θ; Φ ⊢ σ`).
    TypeFormation,
    /// A value, operation or term failed to typecheck (Fig. 6/8/10).
    Typing,
    /// The machine reached a stuck state (a progress violation, Prop. 6.5).
    Stuck,
    /// A memory access failed (dangling address, missing region).
    Memory,
    /// A construct was used outside its dialect (e.g. `widen` in λGC).
    Dialect,
    /// A machine-state well-formedness check failed (Fig. 7).
    WellFormedness,
    /// The store grew past the configured `max_heap_words` cap.
    OutOfMemory,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::Kinding => "kinding error",
            ErrorKind::TypeFormation => "ill-formed type",
            ErrorKind::Typing => "type error",
            ErrorKind::Stuck => "stuck machine state",
            ErrorKind::Memory => "memory error",
            ErrorKind::Dialect => "dialect violation",
            ErrorKind::WellFormedness => "ill-formed machine state",
            ErrorKind::OutOfMemory => "out of memory",
        };
        write!(f, "{s}")
    }
}

/// An error raised by any λGC judgement or by the machine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LangError {
    kind: ErrorKind,
    msg: String,
    /// Innermost-first trail of contexts (e.g. the code block being checked).
    context: Vec<String>,
}

impl LangError {
    /// Creates a new error.
    pub fn new(kind: ErrorKind, msg: impl Into<String>) -> LangError {
        LangError {
            kind,
            msg: msg.into(),
            context: Vec::new(),
        }
    }

    /// The category of this error.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The human-readable message (without context trail).
    pub fn message(&self) -> &str {
        &self.msg
    }

    /// Adds a context frame (innermost first).
    pub fn in_context(mut self, ctx: impl Into<String>) -> LangError {
        self.context.push(ctx.into());
        self
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.msg)?;
        for c in &self.context {
            write!(f, "\n  in {c}")?;
        }
        Ok(())
    }
}

impl std::error::Error for LangError {}

/// Result alias for λGC judgements.
pub type Result<T> = std::result::Result<T, LangError>;

/// Shorthand constructors.
pub(crate) fn kind_err(msg: impl Into<String>) -> LangError {
    LangError::new(ErrorKind::Kinding, msg)
}
pub(crate) fn type_err(msg: impl Into<String>) -> LangError {
    LangError::new(ErrorKind::Typing, msg)
}
pub(crate) fn form_err(msg: impl Into<String>) -> LangError {
    LangError::new(ErrorKind::TypeFormation, msg)
}
pub(crate) fn stuck_err(msg: impl Into<String>) -> LangError {
    LangError::new(ErrorKind::Stuck, msg)
}
pub(crate) fn mem_err(msg: impl Into<String>) -> LangError {
    LangError::new(ErrorKind::Memory, msg)
}
pub(crate) fn dialect_err(msg: impl Into<String>) -> LangError {
    LangError::new(ErrorKind::Dialect, msg)
}
pub(crate) fn oom_err(msg: impl Into<String>) -> LangError {
    LangError::new(ErrorKind::OutOfMemory, msg)
}
pub(crate) fn wf_err(msg: impl Into<String>) -> LangError {
    LangError::new(ErrorKind::WellFormedness, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = LangError::new(ErrorKind::Typing, "expected int");
        assert_eq!(e.to_string(), "type error: expected int");
    }

    #[test]
    fn context_frames_render_in_order() {
        let e = LangError::new(ErrorKind::Stuck, "boom")
            .in_context("copy")
            .in_context("gc");
        let s = e.to_string();
        assert!(s.contains("in copy"));
        assert!(s.contains("in gc"));
        assert!(s.find("copy").unwrap() < s.find("gc").unwrap());
    }

    #[test]
    fn accessors() {
        let e = LangError::new(ErrorKind::Memory, "dangling");
        assert_eq!(e.kind(), ErrorKind::Memory);
        assert_eq!(e.message(), "dangling");
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync>() {}
        assert_err::<LangError>();
    }
}
