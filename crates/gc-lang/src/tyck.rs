//! The static semantics of λGC: Fig. 6, extended with Fig. 8 (λGCforw) and
//! Fig. 10 (λGCgen).
//!
//! The checker is judgement-directed: [`Checker::check_term`] implements
//! `Ψ; ∆; Θ; Φ; Γ ⊢ e`, [`Checker::synth_value`] and
//! [`Checker::check_value`] implement `Ψ; ∆; Θ; Φ; Γ ⊢ v : σ` (checking
//! mode exists because λGCforw's sum subsumption rules
//! `v : σ₁ ⟹ v : σ₁ + σ₂` are not syntax-directed), and
//! [`Checker::ty_wf`] implements `∆; Θ; Φ ⊢ σ`.
//!
//! Departures from the paper's figures, each marked `paper:` at its use
//! site:
//!
//! * the `λ` arm of `typecase` on a tag variable `t` refines `t` to
//!   [`crate::syntax::Tag::AnyArrow`] (Fig. 6 leaves the branch unrefined,
//!   which cannot typecheck Fig. 4's own collector);
//! * `put[ρ]` statically requires `ρ ≠ cd` (the paper separates code and
//!   data informally in §4.3/§6.2; without this restriction progress would
//!   fail on a `put[cd]`);
//! * `let region r` requires `r` not already in scope (the paper assumes
//!   unique binders, Appendix A).

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use ps_ir::Symbol;

use crate::error::{dialect_err, form_err, type_err, LangError, Result};
use crate::machine::Program;
use crate::memory::Memory;
use crate::moper::normalize_ty;
#[cfg(test)]
use crate::moper::ty_eq;
use crate::subst::{ty_regions, Subst};
use crate::syntax::{CodeDef, Dialect, Kind, Op, Region, RegionName, Tag, Term, Ty, Value, CD};
use crate::tags;

/// Worker count for parallel code-block certification: `PS_CERT_THREADS`
/// if set (clamped to ≥ 1; `1` forces the serial path), otherwise the
/// machine's available parallelism. Unparsable values fall back to serial
/// rather than guessing.
fn cert_threads() -> usize {
    match std::env::var("PS_CERT_THREADS") {
        Ok(v) => v.trim().parse::<usize>().map_or(1, |n| n.max(1)),
        Err(_) => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// The memory type `Ψ`: region name → offset → stored-value type.
pub type PsiTable = BTreeMap<RegionName, BTreeMap<u32, Ty>>;

/// The static environments `∆; Θ; Φ; Γ` of Fig. 6.
#[derive(Clone, Debug, Default)]
pub struct Ctx {
    /// `∆` — regions in scope (`cd` is always implicitly present).
    pub delta: BTreeSet<Region>,
    /// `Θ` — tag variables and their kinds.
    pub theta: HashMap<Symbol, Kind>,
    /// `Φ` — type variables `α` and their region-set bounds.
    pub phi: HashMap<Symbol, Vec<Region>>,
    /// `Γ` — value variables.
    pub gamma: HashMap<Symbol, Ty>,
    /// Bounds of region variables introduced by `open` on region
    /// existentials: §8 notes these existentials are "closer to a bounded
    /// quantification", and the generational subtyping below needs the
    /// bound (`r ∈ ∆` means a value at `M_{r,ρo}(τ)` inhabits
    /// `M_{ρy,ρo}(τ)` whenever `∆ ⊆ {ρy, ρo}`).
    pub rbounds: HashMap<Symbol, Vec<Region>>,
}

impl Ctx {
    /// The empty context (top level).
    pub fn empty() -> Ctx {
        Ctx::default()
    }

    /// Is `ρ` in `∆` (or `cd`, which always is)?
    pub fn in_delta(&self, rho: &Region) -> bool {
        rho.is_cd() || self.delta.contains(rho)
    }
}

/// The λGC typechecker for a fixed dialect and memory typing.
///
/// # Examples
///
/// ```
/// use ps_gc_lang::machine::Program;
/// use ps_gc_lang::syntax::{Dialect, Term, Value};
/// use ps_gc_lang::tyck::Checker;
///
/// let ok = Program {
///     dialect: Dialect::Basic,
///     code: vec![],
///     main: Term::Halt(Value::Int(0)),
/// };
/// Checker::check_program(&ok).unwrap();
///
/// let bad = Program {
///     dialect: Dialect::Basic,
///     code: vec![],
///     main: Term::Halt(Value::pair(Value::Int(1), Value::Int(2))),
/// };
/// assert!(Checker::check_program(&bad).is_err());
/// ```
#[derive(Clone, Debug)]
pub struct Checker<'p> {
    dialect: Dialect,
    psi: Cow<'p, PsiTable>,
}

impl<'p> Checker<'p> {
    /// A checker with an empty `Ψ` (for standalone code).
    pub fn new(dialect: Dialect) -> Checker<'static> {
        Checker {
            dialect,
            psi: Cow::Owned(PsiTable::new()),
        }
    }

    /// A checker with an explicit `Ψ`.
    pub fn with_psi(dialect: Dialect, psi: PsiTable) -> Checker<'static> {
        Checker {
            dialect,
            psi: Cow::Owned(psi),
        }
    }

    /// A checker whose `Ψ` is borrowed from a machine memory (which must
    /// have been created with type tracking on). Borrowing instead of
    /// cloning is what keeps the incremental heap audit O(dirty work): the
    /// auditor builds one of these per audit, and a deep `Ψ` copy every
    /// step would dwarf the checks themselves.
    pub fn from_memory(dialect: Dialect, mem: &Memory) -> Checker<'_> {
        Checker {
            dialect,
            psi: Cow::Borrowed(mem.psi_table()),
        }
    }

    /// The dialect being checked.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// `Dom(Ψ)` as a `∆`.
    pub fn psi_domain(&self) -> BTreeSet<Region> {
        self.psi.keys().map(|n| Region::Name(*n)).collect()
    }

    fn psi_lookup(&self, nu: RegionName, loc: u32) -> Option<&Ty> {
        self.psi.get(&nu)?.get(&loc)
    }

    /// `Ψ|∆′` — restrict to the given names plus `cd`.
    fn restrict_psi(&self, keep: &BTreeSet<Region>) -> Checker<'static> {
        let psi = self
            .psi
            .iter()
            .filter(|(n, _)| n.is_cd() || keep.contains(&Region::Name(**n)))
            .map(|(n, t)| (*n, t.clone()))
            .collect();
        Checker {
            dialect: self.dialect,
            psi: Cow::Owned(psi),
        }
    }

    fn require_dialect(&self, wanted: &[Dialect], what: &str) -> Result<()> {
        if wanted.contains(&self.dialect) {
            Ok(())
        } else {
            Err(dialect_err(format!(
                "{what} is not part of {}",
                self.dialect
            )))
        }
    }

    // ===== whole programs ================================================

    /// Checks a whole program: every code block in `cd`, then the main term
    /// under empty environments (Definition 6.3 without a data store).
    ///
    /// Code blocks are certified in parallel (they are independent: each is
    /// closed and checked against the same `Ψ|cd`); set `PS_CERT_THREADS=1`
    /// to force the serial path, or `PS_CERT_THREADS=n` to pin the worker
    /// count. The verdict and the reported error are identical either way.
    ///
    /// # Errors
    ///
    /// Returns the first kinding/typing error found — in block order, not
    /// completion order — with context naming the offending code block.
    pub fn check_program(program: &Program) -> Result<()> {
        let mut cd_entries = BTreeMap::new();
        for (i, def) in program.code.iter().enumerate() {
            cd_entries.insert(i as u32, def.ty());
        }
        let mut psi = PsiTable::new();
        psi.insert(CD, cd_entries);
        let checker = Checker::with_psi(program.dialect, psi);
        checker.check_code_blocks(&program.code)?;
        checker
            .check_term(&Ctx::empty(), &program.main)
            .map_err(|e| e.in_context("main term"))
    }

    /// Certifies every code block of a program, fanning out over
    /// [`cert_threads`] workers when there is more than one block to check.
    /// The only state shared between workers is the interning layer, whose
    /// read paths (id deref, memo probes) are lock-free and whose hash-cons
    /// tables are sharded, so workers do not serialize on it; results land
    /// in per-block slots drained in block order, so a parallel run reports
    /// exactly the error a serial run would.
    fn check_code_blocks(&self, code: &[CodeDef]) -> Result<()> {
        let threads = cert_threads().min(code.len());
        if threads <= 1 {
            for def in code {
                self.check_code(def)
                    .map_err(|e| e.in_context(format!("code block {}", def.name)))?;
            }
            return Ok(());
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<OnceLock<Result<()>>> = code.iter().map(|_| OnceLock::new()).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(def) = code.get(i) else { break };
                    let res = self
                        .check_code(def)
                        .map_err(|e| e.in_context(format!("code block {}", def.name)));
                    // Each index is claimed by exactly one worker.
                    let _ = slots[i].set(res);
                });
            }
        });
        for slot in slots {
            // The scope joins every worker, and the work counter stops
            // handing out indices only after the last slot is claimed.
            #[allow(clippy::expect_used)]
            slot.into_inner().expect("slot filled by a joined worker")?;
        }
        Ok(())
    }

    /// Checks a code block (the `λ[t̄:κ̄][r̄](x̄:σ̄).e` rule of Fig. 6):
    /// the body is typed under `Ψ|cd; cd, r̄; t̄:κ̄; ·; x̄:σ̄`, and every
    /// parameter type must be well formed under `cd, r̄; t̄; ·`.
    pub fn check_code(&self, def: &CodeDef) -> Result<()> {
        let mut ctx = Ctx::empty();
        for (t, k) in &def.tvars {
            if ctx.theta.insert(*t, *k).is_some() {
                return Err(type_err(format!(
                    "duplicate tag binder {t} in {}",
                    def.name
                )));
            }
        }
        for r in &def.rvars {
            if !ctx.delta.insert(Region::Var(*r)) {
                return Err(type_err(format!(
                    "duplicate region binder {r} in {}",
                    def.name
                )));
            }
        }
        let restricted = self.restrict_psi(&BTreeSet::new());
        for (x, sigma) in &def.params {
            restricted
                .ty_wf(&ctx, sigma)
                .map_err(|e| e.in_context(format!("parameter {x} of {}", def.name)))?;
            if ctx.gamma.insert(*x, sigma.clone()).is_some() {
                return Err(type_err(format!("duplicate parameter {x} in {}", def.name)));
            }
        }
        restricted
            .check_term(&ctx, &def.body)
            .map_err(|e| e.in_context(format!("body of {}", def.name)))
    }

    // ===== type formation (∆; Θ; Φ ⊢ σ) ==================================

    /// The type-formation judgement `∆; Θ; Φ ⊢ σ` of Fig. 6 (left column),
    /// extended per Figs. 8 and 10.
    pub fn ty_wf(&self, ctx: &Ctx, sigma: &Ty) -> Result<()> {
        match sigma {
            Ty::Int => Ok(()),
            Ty::Prod(a, b) => {
                self.ty_wf(ctx, a)?;
                self.ty_wf(ctx, b)
            }
            Ty::Sum(a, b) => {
                self.require_dialect(&[Dialect::Forwarding], "sum type")?;
                self.ty_wf(ctx, a)?;
                self.ty_wf(ctx, b)
            }
            Ty::Left(a) | Ty::Right(a) => {
                self.require_dialect(&[Dialect::Forwarding], "tag-bit type")?;
                self.ty_wf(ctx, a)
            }
            Ty::Code { tvars, rvars, args } => {
                // Args well formed under {r̄}; Θ, t̄:κ̄; ·.
                // paper: Fig. 6's formation rule reads `{~r}; t̄:κ̄; ·`, but
                // Fig. 4's own `gc` parameter `f : ∀[][r](M_r(t)) → 0`
                // mentions gc's tag binder t, so Θ must be kept (as the
                // translucent-type rule does explicitly). Region and value
                // environments are still discarded — that is what closedness
                // of code is about.
                let mut inner = Ctx::empty();
                inner.theta = ctx.theta.clone();
                for (t, k) in tvars.iter() {
                    inner.theta.insert(*t, *k);
                }
                for r in rvars.iter() {
                    inner.delta.insert(Region::Var(*r));
                }
                for a in args.iter() {
                    self.ty_wf(&inner, a)?;
                }
                Ok(())
            }
            Ty::ExistTag { tvar, kind, body } => {
                let mut inner = ctx.clone();
                inner.theta.insert(*tvar, *kind);
                self.ty_wf(&inner, body)
            }
            Ty::At(inner, rho) => {
                if !ctx.in_delta(rho) {
                    return Err(form_err(format!("region {rho} not in scope in σ at ρ")));
                }
                self.ty_wf(ctx, inner)
            }
            Ty::M(rho, tag) => {
                if !ctx.in_delta(rho) {
                    return Err(form_err(format!("region {rho} not in scope in M")));
                }
                tags::check_kind(tag, &ctx.theta, Kind::Omega)
            }
            Ty::C(from, to, tag) => {
                self.require_dialect(&[Dialect::Forwarding], "C operator")?;
                if !ctx.in_delta(from) || !ctx.in_delta(to) {
                    return Err(form_err("region not in scope in C".to_string()));
                }
                tags::check_kind(tag, &ctx.theta, Kind::Omega)
            }
            Ty::MGen(y, o, tag) => {
                self.require_dialect(&[Dialect::Generational], "two-index M operator")?;
                if !ctx.in_delta(y) || !ctx.in_delta(o) {
                    return Err(form_err("region not in scope in M_gen".to_string()));
                }
                tags::check_kind(tag, &ctx.theta, Kind::Omega)
            }
            Ty::Alpha(a) => {
                let bound = ctx
                    .phi
                    .get(a)
                    .ok_or_else(|| form_err(format!("unbound type variable {a}")))?;
                for r in bound {
                    if !ctx.in_delta(r) {
                        return Err(form_err(format!(
                            "type variable {a}'s bound region {r} not in scope"
                        )));
                    }
                }
                Ok(())
            }
            Ty::ExistAlpha {
                avar,
                regions,
                body,
            } => {
                for r in regions.iter() {
                    if !ctx.in_delta(r) {
                        return Err(form_err(format!("∃α bound region {r} not in scope")));
                    }
                }
                let mut inner = ctx.clone();
                inner.phi.insert(*avar, regions.to_vec());
                self.ty_wf(&inner, body)
            }
            Ty::Trans {
                tags: ts,
                regions,
                args,
                rho,
            } => {
                // paper: see the note on `Ty::Trans` in `syntax` — the
                // translucent type records its region instantiation rather
                // than quantifying, so args are checked in the ambient
                // environments with the recorded regions in scope.
                if !ctx.in_delta(rho) {
                    return Err(form_err(format!(
                        "region {rho} not in scope in translucent type"
                    )));
                }
                for r in regions.iter() {
                    if !ctx.in_delta(r) {
                        return Err(form_err(format!(
                            "region {r} not in scope in translucent type"
                        )));
                    }
                }
                for t in ts.iter() {
                    tags::kind_of(t, &ctx.theta)?;
                }
                for a in args.iter() {
                    self.ty_wf(ctx, a)?;
                }
                Ok(())
            }
            Ty::ExistRgn { rvar, bound, body } => {
                self.require_dialect(&[Dialect::Generational], "region existential")?;
                for r in bound.iter() {
                    if !ctx.in_delta(r) {
                        return Err(form_err(format!("∃r bound region {r} not in scope")));
                    }
                }
                let mut inner = ctx.clone();
                inner.delta.insert(Region::Var(*rvar));
                self.ty_wf(&inner, body)
            }
        }
    }

    // ===== values ========================================================

    /// Synthesizes a type for a value (`Ψ; ∆; Θ; Φ; Γ ⊢ v : σ`).
    ///
    /// # Errors
    ///
    /// Fails on unbound variables, dangling addresses, ill-kinded package
    /// witnesses, and malformed tag applications.
    pub fn synth_value(&self, ctx: &Ctx, v: &Value) -> Result<Ty> {
        match v {
            Value::Int(_) => Ok(Ty::Int),
            Value::Var(x) => ctx
                .gamma
                .get(x)
                .cloned()
                .ok_or_else(|| type_err(format!("unbound variable {x}"))),
            Value::Addr(nu, loc) => {
                let sigma = self
                    .psi_lookup(*nu, *loc)
                    .ok_or_else(|| type_err(format!("no Ψ entry for address {nu}.{loc}")))?;
                Ok(sigma.clone().at(Region::Name(*nu)))
            }
            Value::Pair(a, b) => Ok(Ty::prod(
                self.synth_value(ctx, a)?,
                self.synth_value(ctx, b)?,
            )),
            Value::PackTag {
                tvar,
                kind,
                tag,
                val,
                body_ty,
            } => {
                tags::check_kind(tag, &ctx.theta, *kind)?;
                let instantiated = Subst::one_tag(*tvar, tag.clone()).ty(body_ty);
                self.check_value(ctx, val, &instantiated)
                    .map_err(|e| e.in_context("tag package payload"))?;
                Ok(Ty::exist_tag(*tvar, *kind, body_ty.clone()))
            }
            Value::PackAlpha {
                avar,
                regions,
                witness,
                val,
                body_ty,
            } => {
                // ∆′; Θ; Φ|∆′ ⊢ σ₁ and v : σ₂[σ₁/α].
                let mut inner = Ctx::empty();
                inner.theta = ctx.theta.clone();
                inner.delta = regions.iter().copied().collect();
                inner.phi = ctx
                    .phi
                    .iter()
                    .filter(|(_, bound)| bound.iter().all(|r| r.is_cd() || regions.contains(r)))
                    .map(|(a, b)| (*a, b.clone()))
                    .collect();
                self.ty_wf(&inner, witness)
                    .map_err(|e| e.in_context("α-package witness"))?;
                let instantiated = Subst::one_alpha(*avar, witness.clone()).ty(body_ty);
                self.check_value(ctx, val, &instantiated)
                    .map_err(|e| e.in_context("α-package payload"))?;
                Ok(Ty::exist_alpha(
                    *avar,
                    regions.iter().copied(),
                    body_ty.clone(),
                ))
            }
            Value::PackRgn {
                rvar,
                bound,
                witness,
                val,
                body_ty,
            } => {
                self.require_dialect(&[Dialect::Generational], "region package")?;
                if !bound.contains(witness) {
                    return Err(type_err(format!(
                        "region package witness {witness} not in its bound"
                    )));
                }
                for r in bound.iter() {
                    if !ctx.in_delta(r) {
                        return Err(type_err(format!("region package bound {r} not in scope")));
                    }
                }
                let instantiated = Subst::one_rgn(*rvar, *witness).ty(body_ty).at(*witness);
                self.check_value(ctx, val, &instantiated)
                    .map_err(|e| e.in_context("region package payload"))?;
                Ok(Ty::exist_rgn(*rvar, bound.iter().copied(), body_ty.clone()))
            }
            Value::TagApp(f, ts, rhos) => {
                let fty = normalize_ty(&self.synth_value(ctx, f)?, self.dialect);
                match fty {
                    Ty::At(inner, rho) => match &*inner {
                        Ty::Code { tvars, rvars, args } => {
                            if tvars.len() != ts.len() || rvars.len() != rhos.len() {
                                return Err(type_err(format!(
                                    "translucent application arity: code takes [{}][{}], given [{}][{}]",
                                    tvars.len(),
                                    rvars.len(),
                                    ts.len(),
                                    rhos.len()
                                )));
                            }
                            let mut sub = Subst::new();
                            for ((t, k), tau) in tvars.iter().zip(ts.iter()) {
                                tags::check_kind(tau, &ctx.theta, *k)?;
                                sub = sub.with_tag(*t, tau.clone());
                            }
                            for (r, nu) in rvars.iter().zip(rhos.iter()) {
                                if !ctx.in_delta(nu) {
                                    return Err(type_err(format!(
                                        "translucent region {nu} not in scope"
                                    )));
                                }
                                sub = sub.with_rgn(*r, *nu);
                            }
                            Ok(Ty::Trans {
                                tags: ts.iter().map(|t| t.id()).collect(),
                                regions: rhos.iter().copied().collect(),
                                args: args.iter().map(|a| sub.ty_id(*a)).collect(),
                                rho,
                            })
                        }
                        other => Err(type_err(format!(
                            "tag application of non-code value of type {other:?}"
                        ))),
                    },
                    other => Err(type_err(format!(
                        "tag application of non-address value of type {other:?}"
                    ))),
                }
            }
            Value::Code(def) => {
                self.check_code(def)?;
                Ok(def.ty())
            }
            Value::Inl(x) => {
                self.require_dialect(&[Dialect::Forwarding], "inl")?;
                Ok(Ty::Left(self.synth_value(ctx, x)?.id()))
            }
            Value::Inr(x) => {
                self.require_dialect(&[Dialect::Forwarding], "inr")?;
                Ok(Ty::Right(self.synth_value(ctx, x)?.id()))
            }
        }
    }

    /// Checks a value against an expected type, applying λGCforw's sum
    /// subsumption (`v : σ₁ ⟹ v : σ₁ + σ₂`) structurally through value
    /// forms, as the paper's value judgements do.
    pub fn check_value(&self, ctx: &Ctx, v: &Value, expected: &Ty) -> Result<()> {
        // Fast path: exact (synthesized) match, or the generational
        // subtyping below. `expected` is normalized once, up front: both the
        // fast path and the structural match below compare against the same
        // `norm` (this used to normalize `expected` on each branch).
        let norm = normalize_ty(expected, self.dialect);
        let synth = self.synth_value(ctx, v);
        if let Ok(t) = &synth {
            if self.subty(ctx, &normalize_ty(t, self.dialect), &norm) {
                return Ok(());
            }
        }
        match (&norm, v) {
            (Ty::Sum(a, b), _) => {
                let left = Ty::Left(*a);
                let right = Ty::Right(*b);
                self.check_value(ctx, v, &left)
                    .or_else(|_| self.check_value(ctx, v, &right))
                    .map_err(|_| self.mismatch(v, &norm, synth))
            }
            (Ty::Left(a), Value::Inl(inner)) => self.check_value(ctx, inner, a),
            (Ty::Right(b), Value::Inr(inner)) => self.check_value(ctx, inner, b),
            (Ty::Prod(a, b), Value::Pair(x, y)) => {
                self.check_value(ctx, x, a)?;
                self.check_value(ctx, y, b)
            }
            (
                Ty::ExistTag { tvar, kind, body },
                Value::PackTag {
                    kind: vk, tag, val, ..
                },
            ) => {
                if kind != vk {
                    return Err(self.mismatch(v, &norm, synth));
                }
                tags::check_kind(tag, &ctx.theta, *kind)?;
                let instantiated = Subst::one_tag(*tvar, tag.clone()).ty(body);
                self.check_value(ctx, val, &instantiated)
            }
            _ => Err(self.mismatch(v, &norm, synth)),
        }
    }

    /// Subtyping on (normalized) types. Beyond α-equivalence, this carries
    /// the generational-dialect coercions §8 treats as free:
    ///
    /// * `∃r∈∆₁.σ ≤ ∃r∈∆₂.σ` when `∆₁ ⊆ ∆₂` (the repacking
    ///   `⟨r∈{ρo}=ρo, x⟩` Fig. 11 performs "just to help the type system"
    ///   at the top of an object; widening the bound is sound because the
    ///   witness stays in the smaller set);
    /// * `M_{ρo,ρo}(τ) ≤ M_{ρy,ρo}(τ)` on stuck operators — data wholly in
    ///   the old generation inhabits the general mutator type, which is how
    ///   the collector's result (`M_{ro,ro}(t)`) flows back to the mutator
    ///   (`M_{ry,ro}(t)` at a fresh `ry`) in Fig. 11's `gc`.
    ///
    /// Products and references are covariant; everything else is invariant.
    fn subty(&self, ctx: &Ctx, a: &Ty, b: &Ty) -> bool {
        if crate::moper::alpha_eq_ty(a, b) {
            return true;
        }
        match (a, b) {
            (Ty::MGen(ya, oa, ta), Ty::MGen(yb, ob, tb)) => {
                // Bounded quantification: r ∈ ∆ with ∆ (transitively)
                // within {yb, ob}.
                let index_ok =
                    ya == yb || ya == oa || region_within(ctx, ya, &[*yb, *ob], &mut Vec::new());
                oa == ob && tags::alpha_eq(ta, tb) && index_ok
            }
            (
                Ty::ExistRgn {
                    rvar: ra,
                    bound: da,
                    body: ba,
                },
                Ty::ExistRgn {
                    rvar: rb,
                    bound: db,
                    body: bb,
                },
            ) => {
                let subset = da
                    .iter()
                    .all(|r| region_within(ctx, r, db, &mut Vec::new()));
                let bb2 = Subst::one_rgn(*rb, Region::Var(*ra)).ty(bb);
                subset && self.subty(ctx, ba, &bb2)
            }
            (Ty::Prod(a1, a2), Ty::Prod(b1, b2)) => {
                self.subty(ctx, a1, b1) && self.subty(ctx, a2, b2)
            }
            (Ty::At(ia, ra), Ty::At(ib, rb)) => ra == rb && self.subty(ctx, ia, ib),
            (
                Ty::ExistTag {
                    tvar: ta,
                    kind: ka,
                    body: ba,
                },
                Ty::ExistTag {
                    tvar: tb,
                    kind: kb,
                    body: bb,
                },
            ) => {
                let bb2 = Subst::one_tag(*tb, Tag::Var(*ta)).ty(bb);
                ka == kb && self.subty(ctx, ba, &bb2)
            }
            _ => false,
        }
    }

    fn mismatch(&self, v: &Value, expected: &Ty, synth: Result<Ty>) -> LangError {
        match synth {
            Ok(t) => type_err(format!(
                "value has type {:?} but {:?} was expected",
                normalize_ty(&t, self.dialect),
                expected
            )),
            Err(e) => e.in_context(format!("while checking value {v:?}")),
        }
    }

    // ===== operations ====================================================

    /// Synthesizes the type of an operation (`Ψ; ∆; Θ; Φ; Γ ⊢ op : σ`).
    pub fn synth_op(&self, ctx: &Ctx, op: &Op) -> Result<Ty> {
        match op {
            Op::Val(v) => self.synth_value(ctx, v),
            Op::Proj(i, v) => {
                let t = normalize_ty(&self.synth_value(ctx, v)?, self.dialect);
                match t {
                    Ty::Prod(a, b) => Ok(if *i == 1 { (*a).clone() } else { (*b).clone() }),
                    other => Err(type_err(format!(
                        "projection π{i} of non-pair type {other:?}"
                    ))),
                }
            }
            Op::Put(rho, v) => {
                if !ctx.in_delta(rho) {
                    return Err(type_err(format!("put into out-of-scope region {rho}")));
                }
                // paper: reject put[cd] statically so that progress holds;
                // §4.3 keeps cd data-free informally.
                if rho.is_cd() {
                    return Err(type_err("put into the code region".to_string()));
                }
                Ok(self.synth_value(ctx, v)?.at(*rho))
            }
            Op::Get(v) => {
                let t = normalize_ty(&self.synth_value(ctx, v)?, self.dialect);
                match t {
                    Ty::At(inner, _) => Ok((*inner).clone()),
                    other => Err(type_err(format!("get of non-reference type {other:?}"))),
                }
            }
            Op::Strip(v) => {
                self.require_dialect(&[Dialect::Forwarding], "strip")?;
                let t = normalize_ty(&self.synth_value(ctx, v)?, self.dialect);
                match t {
                    Ty::Left(inner) | Ty::Right(inner) => Ok((*inner).clone()),
                    other => Err(type_err(format!("strip of untagged type {other:?}"))),
                }
            }
            Op::Prim(_, a, b) => {
                self.check_value(ctx, a, &Ty::Int)?;
                self.check_value(ctx, b, &Ty::Int)?;
                Ok(Ty::Int)
            }
        }
    }

    // ===== terms =========================================================

    /// The term judgement `Ψ; ∆; Θ; Φ; Γ ⊢ e`.
    pub fn check_term(&self, ctx: &Ctx, e: &Term) -> Result<()> {
        match e {
            Term::App {
                f,
                tags: ts,
                regions,
                args,
            } => self.check_app(ctx, f, ts, regions, args),
            Term::Let { .. } => {
                // Iterative over the let spine (it can be thousands deep).
                let mut inner = ctx.clone();
                let mut cur = e;
                while let Term::Let { x, op, body } = cur {
                    let sigma = self
                        .synth_op(&inner, op)
                        .map_err(|e| e.in_context(format!("let-binding of {x}")))?;
                    inner.gamma.insert(*x, sigma);
                    cur = body;
                }
                self.check_term(&inner, cur)
            }
            Term::Halt(v) => self
                .check_value(ctx, v, &Ty::Int)
                .map_err(|e| e.in_context("halt")),
            Term::IfGc { rho, full, cont } => {
                if !ctx.in_delta(rho) {
                    return Err(type_err(format!("ifgc on out-of-scope region {rho}")));
                }
                self.check_term(ctx, full)?;
                self.check_term(ctx, cont)
            }
            Term::OpenTag { pkg, tvar, x, body } => {
                let t = normalize_ty(&self.synth_value(ctx, pkg)?, self.dialect);
                match t {
                    Ty::ExistTag {
                        tvar: t0,
                        kind,
                        body: bty,
                    } => {
                        let mut inner = ctx.clone();
                        if inner.theta.insert(*tvar, kind).is_some() {
                            return Err(type_err(format!("open shadows tag variable {tvar}")));
                        }
                        let opened = Subst::one_tag(t0, Tag::Var(*tvar)).ty(&bty);
                        inner.gamma.insert(*x, opened);
                        self.check_term(&inner, body)
                    }
                    other => Err(type_err(format!("open(tag) of non-existential {other:?}"))),
                }
            }
            Term::OpenAlpha { pkg, avar, x, body } => {
                let t = normalize_ty(&self.synth_value(ctx, pkg)?, self.dialect);
                match t {
                    Ty::ExistAlpha {
                        avar: a0,
                        regions,
                        body: bty,
                    } => {
                        let mut inner = ctx.clone();
                        if inner.phi.insert(*avar, regions.to_vec()).is_some() {
                            return Err(type_err(format!("open shadows type variable {avar}")));
                        }
                        let opened = Subst::one_alpha(a0, Ty::Alpha(*avar)).ty(&bty);
                        inner.gamma.insert(*x, opened);
                        self.check_term(&inner, body)
                    }
                    other => Err(type_err(format!("open(α) of non-existential {other:?}"))),
                }
            }
            Term::OpenRgn { pkg, rvar, x, body } => {
                self.require_dialect(&[Dialect::Generational], "open(region)")?;
                let t = normalize_ty(&self.synth_value(ctx, pkg)?, self.dialect);
                match t {
                    Ty::ExistRgn {
                        rvar: r0,
                        bound,
                        body: bty,
                    } => {
                        let mut inner = ctx.clone();
                        if !inner.delta.insert(Region::Var(*rvar)) {
                            return Err(type_err(format!("open shadows region variable {rvar}")));
                        }
                        inner.rbounds.insert(*rvar, bound.to_vec());
                        let opened = Subst::one_rgn(r0, Region::Var(*rvar))
                            .ty(&bty)
                            .at(Region::Var(*rvar));
                        inner.gamma.insert(*x, opened);
                        self.check_term(&inner, body)
                    }
                    other => Err(type_err(format!(
                        "open(region) of non-existential {other:?}"
                    ))),
                }
            }
            Term::LetRegion { rvar, body } => {
                let mut inner = ctx.clone();
                if !inner.delta.insert(Region::Var(*rvar)) {
                    // paper: unique binders assumed (Appendix A).
                    return Err(type_err(format!("let region shadows {rvar}")));
                }
                self.check_term(&inner, body)
            }
            Term::Only { regions, body } => {
                for r in regions {
                    if !ctx.in_delta(r) {
                        return Err(type_err(format!("only keeps out-of-scope region {r}")));
                    }
                }
                let keep: BTreeSet<Region> = regions.iter().copied().collect();
                let restricted = self.restrict_psi(&keep);
                let mut inner = Ctx::empty();
                inner.delta = keep.clone();
                inner.theta = ctx.theta.clone();
                // Φ|∆′ and Γ|∆′: keep entries whose regions survive.
                inner.phi = ctx
                    .phi
                    .iter()
                    .filter(|(_, bound)| bound.iter().all(|r| r.is_cd() || keep.contains(r)))
                    .map(|(a, b)| (*a, b.clone()))
                    .collect();
                inner.gamma = ctx
                    .gamma
                    .iter()
                    .filter(|(_, sigma)| {
                        let regions_ok = ty_regions(sigma)
                            .iter()
                            .all(|r| r.is_cd() || keep.contains(r));
                        let mut tv = std::collections::HashSet::new();
                        let mut rv = std::collections::HashSet::new();
                        let mut av = std::collections::HashSet::new();
                        crate::subst::ty_free_vars(sigma, &mut tv, &mut rv, &mut av);
                        regions_ok && av.iter().all(|a| inner.phi.contains_key(a))
                    })
                    .map(|(x, t)| (*x, t.clone()))
                    .collect();
                restricted.check_term(&inner, body)
            }
            Term::Typecase {
                tag,
                int_arm,
                arrow_arm,
                prod_arm,
                exist_arm,
            } => self.check_typecase(ctx, tag, int_arm, arrow_arm, prod_arm, exist_arm),
            Term::IfLeft {
                x,
                scrut,
                left,
                right,
            } => {
                self.require_dialect(&[Dialect::Forwarding], "ifleft")?;
                let t = normalize_ty(&self.synth_value(ctx, scrut)?, self.dialect);
                match t {
                    Ty::Sum(a, b) => {
                        let mut lctx = ctx.clone();
                        lctx.gamma.insert(*x, Ty::Left(a));
                        self.check_term(&lctx, left)?;
                        let mut rctx = ctx.clone();
                        rctx.gamma.insert(*x, Ty::Right(b));
                        self.check_term(&rctx, right)
                    }
                    // A literal `inl v`/`inr v` scrutinee (mid-execution
                    // machine state) synthesizes a bare `left`/`right` type;
                    // by sum subsumption it inhabits σ₁ + σ₂ for any other
                    // side, and only the live branch needs checking — the
                    // analogue of Fig. 10's literal `ifreg (ν₁ = ν₂)` rules.
                    Ty::Left(a) if matches!(scrut, Value::Inl(_)) => {
                        let mut lctx = ctx.clone();
                        lctx.gamma.insert(*x, Ty::Left(a));
                        self.check_term(&lctx, left)
                    }
                    Ty::Right(b) if matches!(scrut, Value::Inr(_)) => {
                        let mut rctx = ctx.clone();
                        rctx.gamma.insert(*x, Ty::Right(b));
                        self.check_term(&rctx, right)
                    }
                    other => Err(type_err(format!("ifleft on non-sum type {other:?}"))),
                }
            }
            Term::Set { dst, src, body } => {
                self.require_dialect(&[Dialect::Forwarding], "set")?;
                let t = normalize_ty(&self.synth_value(ctx, dst)?, self.dialect);
                match t {
                    Ty::At(sigma, _) => {
                        self.check_value(ctx, src, &sigma)
                            .map_err(|e| e.in_context("set source"))?;
                        self.check_term(ctx, body)
                    }
                    other => Err(type_err(format!("set on non-reference type {other:?}"))),
                }
            }
            Term::Widen {
                x,
                from,
                to,
                tag,
                v,
                body,
            } => {
                self.require_dialect(&[Dialect::Forwarding], "widen")?;
                if !ctx.in_delta(from) || !ctx.in_delta(to) {
                    return Err(type_err("widen region not in scope".to_string()));
                }
                tags::check_kind(tag, &ctx.theta, Kind::Omega)?;
                let m_ty = Ty::m(*from, tag.clone());
                self.check_value(ctx, v, &m_ty)
                    .map_err(|e| e.in_context("widen argument"))?;
                // Fig. 8: the body is typed under Ψ|cd; cd, ρ, ρ′; Θ; Φ|ρρ′;
                // Γ = x : Cρ,ρ′(τ) only.
                let restricted = self.restrict_psi(&BTreeSet::new());
                let mut inner = Ctx::empty();
                inner.delta.insert(*from);
                inner.delta.insert(*to);
                inner.theta = ctx.theta.clone();
                inner.phi = ctx
                    .phi
                    .iter()
                    .filter(|(_, bound)| {
                        bound.iter().all(|r| r.is_cd() || *r == *from || *r == *to)
                    })
                    .map(|(a, b)| (*a, b.clone()))
                    .collect();
                inner.gamma.insert(*x, Ty::c(*from, *to, tag.clone()));
                restricted.check_term(&inner, body)
            }
            Term::IfReg { r1, r2, eq, ne } => {
                self.require_dialect(&[Dialect::Generational], "ifreg")?;
                self.check_ifreg(ctx, r1, r2, eq, ne)
            }
            Term::If0 {
                scrut,
                zero,
                nonzero,
            } => {
                self.check_value(ctx, scrut, &Ty::Int)?;
                self.check_term(ctx, zero)?;
                self.check_term(ctx, nonzero)
            }
        }
    }

    fn check_app(
        &self,
        ctx: &Ctx,
        f: &Value,
        ts: &[Tag],
        regions: &[Region],
        args: &[Value],
    ) -> Result<()> {
        for rho in regions {
            if !ctx.in_delta(rho) {
                return Err(type_err(format!("application region {rho} not in scope")));
            }
        }
        let fty = normalize_ty(&self.synth_value(ctx, f)?, self.dialect);
        match fty {
            Ty::At(inner, _) => match &*inner {
                Ty::Code {
                    tvars,
                    rvars,
                    args: params,
                } => {
                    if tvars.len() != ts.len()
                        || rvars.len() != regions.len()
                        || params.len() != args.len()
                    {
                        return Err(type_err(format!(
                            "application arity: expected [{}][{}]({}), got [{}][{}]({})",
                            tvars.len(),
                            rvars.len(),
                            params.len(),
                            ts.len(),
                            regions.len(),
                            args.len()
                        )));
                    }
                    let mut sub = Subst::new();
                    for ((t, k), tau) in tvars.iter().zip(ts.iter()) {
                        tags::check_kind(tau, &ctx.theta, *k)?;
                        sub = sub.with_tag(*t, tau.clone());
                    }
                    for (r, rho) in rvars.iter().zip(regions.iter()) {
                        sub = sub.with_rgn(*r, *rho);
                    }
                    for (i, (param, arg)) in params.iter().zip(args.iter()).enumerate() {
                        let expected = sub.ty(param);
                        self.check_value(ctx, arg, &expected)
                            .map_err(|e| e.in_context(format!("argument {}", i + 1)))?;
                    }
                    Ok(())
                }
                other => Err(type_err(format!("application of non-code type {other:?}"))),
            },
            Ty::Trans {
                tags: rec,
                regions: rec_rgn,
                args: params,
                ..
            } => {
                if rec.len() != ts.len()
                    || rec_rgn.len() != regions.len()
                    || params.len() != args.len()
                {
                    return Err(type_err(
                        "translucent application arity mismatch".to_string(),
                    ));
                }
                for (given, recorded) in ts.iter().zip(rec.iter()) {
                    if !tags::tag_eq(given, recorded) {
                        return Err(type_err(format!(
                            "translucent application tag mismatch: given {given:?}, recorded {recorded:?}"
                        )));
                    }
                }
                for (given, recorded) in regions.iter().zip(rec_rgn.iter()) {
                    if given != recorded {
                        return Err(type_err(format!(
                            "translucent application region mismatch: given {given}, recorded {recorded}"
                        )));
                    }
                }
                for (i, (param, arg)) in params.iter().zip(args.iter()).enumerate() {
                    self.check_value(ctx, arg, param)
                        .map_err(|e| e.in_context(format!("argument {}", i + 1)))?;
                }
                Ok(())
            }
            other => Err(type_err(format!("application of non-code type {other:?}"))),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn check_typecase(
        &self,
        ctx: &Ctx,
        tag: &Tag,
        int_arm: &Term,
        arrow_arm: &Term,
        prod_arm: &(Symbol, Symbol, crate::intern::TermId),
        exist_arm: &(Symbol, crate::intern::TermId),
    ) -> Result<()> {
        tags::check_kind(tag, &ctx.theta, Kind::Omega)?;
        let nf = tags::normalize(tag);
        match nf {
            Tag::Int => self.check_term(ctx, int_arm),
            Tag::Arrow(_) | Tag::AnyArrow(_) => self.check_term(ctx, arrow_arm),
            Tag::Prod(a, b) => {
                let (t1, t2, body) = prod_arm;
                let sub = Subst::new()
                    .with_tag(*t1, (*a).clone())
                    .with_tag(*t2, (*b).clone());
                self.check_term(ctx, &sub.term(body))
            }
            Tag::Exist(t, btag) => {
                let (te, body) = exist_arm;
                let lam = Tag::Lam(t, btag);
                self.check_term(ctx, &Subst::one_tag(*te, lam).term(body))
            }
            Tag::Var(t) => {
                // The refining rule of Fig. 6: each arm is checked with the
                // variable refined in Γ and in the arm itself.
                let refine = |ctx: &Ctx, refined: Tag, arm: &Term| -> Result<()> {
                    let sub = Subst::one_tag(t, refined);
                    let mut inner = ctx.clone();
                    inner.gamma = ctx
                        .gamma
                        .iter()
                        .map(|(x, sigma)| (*x, sub.ty(sigma)))
                        .collect();
                    self.check_term(&inner, &sub.term(arm))
                };
                refine(ctx, Tag::Int, int_arm).map_err(|e| e.in_context("typecase int arm"))?;
                // paper: Fig. 6 checks eλ without refinement; we refine to
                // AnyArrow(t) (see syntax::Tag::AnyArrow) so that Fig. 4's
                // `λ ⇒ x` arm typechecks.
                refine(ctx, Tag::AnyArrow(t), arrow_arm)
                    .map_err(|e| e.in_context("typecase λ arm"))?;
                {
                    let (t1, t2, body) = prod_arm;
                    let mut inner = ctx.clone();
                    inner.theta.insert(*t1, Kind::Omega);
                    inner.theta.insert(*t2, Kind::Omega);
                    let refined = Tag::prod(Tag::Var(*t1), Tag::Var(*t2));
                    let sub = Subst::one_tag(t, refined);
                    inner.gamma = ctx
                        .gamma
                        .iter()
                        .map(|(x, sigma)| (*x, sub.ty(sigma)))
                        .collect();
                    self.check_term(&inner, &sub.term(body))
                        .map_err(|e| e.in_context("typecase × arm"))?;
                }
                {
                    let (te, body) = exist_arm;
                    let mut inner = ctx.clone();
                    inner.theta.insert(*te, Kind::Arrow);
                    let u = Symbol::intern("t!u").fresh();
                    let refined = Tag::exist(u, Tag::app(Tag::Var(*te), Tag::Var(u)));
                    let sub = Subst::one_tag(t, refined);
                    inner.gamma = ctx
                        .gamma
                        .iter()
                        .map(|(x, sigma)| (*x, sub.ty(sigma)))
                        .collect();
                    self.check_term(&inner, &sub.term(body))
                        .map_err(|e| e.in_context("typecase ∃ arm"))?;
                }
                Ok(())
            }
            other => Err(type_err(format!(
                "typecase on neutral tag {other:?} is not supported"
            ))),
        }
    }

    fn check_ifreg(&self, ctx: &Ctx, r1: &Region, r2: &Region, eq: &Term, ne: &Term) -> Result<()> {
        if !ctx.in_delta(r1) || !ctx.in_delta(r2) {
            return Err(type_err("ifreg region not in scope".to_string()));
        }
        // Fig. 10: the equal branch is checked under the unifying
        // substitution; the not-equal branch is checked as-is (and for two
        // equal names, only the equal branch; for two distinct names, only
        // the not-equal branch).
        match (r1, r2) {
            (Region::Name(n1), Region::Name(n2)) => {
                if n1 == n2 {
                    self.check_term(ctx, eq)
                } else {
                    self.check_term(ctx, ne)
                }
            }
            (Region::Var(a), Region::Var(b)) => {
                let fresh = Symbol::intern("r!eq").fresh();
                let sub = Subst::new()
                    .with_rgn(*a, Region::Var(fresh))
                    .with_rgn(*b, Region::Var(fresh));
                self.check_term(
                    &subst_ctx(ctx, &sub, Some(Region::Var(fresh))),
                    &sub.term(eq),
                )?;
                self.check_term(ctx, ne)
            }
            (Region::Var(a), Region::Name(n)) | (Region::Name(n), Region::Var(a)) => {
                let sub = Subst::one_rgn(*a, Region::Name(*n));
                self.check_term(&subst_ctx(ctx, &sub, Some(Region::Name(*n))), &sub.term(eq))?;
                self.check_term(ctx, ne)
            }
        }
    }
}

/// Is region `r` (transitively, through the recorded bounds of opened
/// region variables) within the set `db`?
fn region_within(ctx: &Ctx, r: &Region, db: &[Region], seen: &mut Vec<Symbol>) -> bool {
    if db.contains(r) {
        return true;
    }
    match r {
        Region::Var(v) => {
            if seen.contains(v) {
                return false;
            }
            seen.push(*v);
            ctx.rbounds
                .get(v)
                .is_some_and(|bound| bound.iter().all(|x| region_within(ctx, x, db, seen)))
        }
        Region::Name(_) => false,
    }
}

/// Applies a region substitution to a whole context (`∆[ν/r]`, `Φ[ν/r]`,
/// `Γ[ν/r]` in the ifreg rules of Fig. 10). `add` is inserted into `∆`
/// (the unified region).
fn subst_ctx(ctx: &Ctx, sub: &Subst, add: Option<Region>) -> Ctx {
    let mut delta: BTreeSet<Region> = ctx.delta.iter().map(|r| sub.region(r)).collect();
    if let Some(r) = add {
        delta.insert(r);
    }
    Ctx {
        delta,
        theta: ctx.theta.clone(),
        phi: ctx
            .phi
            .iter()
            .map(|(a, bound)| (*a, bound.iter().map(|r| sub.region(r)).collect()))
            .collect(),
        gamma: ctx.gamma.iter().map(|(x, t)| (*x, sub.ty(t))).collect(),
        rbounds: ctx
            .rbounds
            .iter()
            .map(|(r, bound)| (*r, bound.iter().map(|x| sub.region(x)).collect()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::PrimOp;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    fn basic() -> Checker<'static> {
        Checker::new(Dialect::Basic)
    }

    fn ctx_with_region(r: &str) -> Ctx {
        let mut c = Ctx::empty();
        c.delta.insert(Region::Var(s(r)));
        c
    }

    #[test]
    fn halt_int_checks() {
        basic()
            .check_term(&Ctx::empty(), &Term::Halt(Value::Int(3)))
            .unwrap();
    }

    #[test]
    fn halt_pair_fails() {
        let e = Term::Halt(Value::pair(Value::Int(1), Value::Int(2)));
        assert!(basic().check_term(&Ctx::empty(), &e).is_err());
    }

    #[test]
    fn unbound_variable_fails() {
        assert!(basic()
            .check_term(&Ctx::empty(), &Term::Halt(Value::Var(s("ghost"))))
            .is_err());
    }

    #[test]
    fn let_binds_and_projects() {
        let x = s("p");
        let y = s("y");
        let e = Term::let_(
            x,
            Op::Val(Value::pair(Value::Int(1), Value::Int(2))),
            Term::let_(y, Op::Proj(1, Value::Var(x)), Term::Halt(Value::Var(y))),
        );
        basic().check_term(&Ctx::empty(), &e).unwrap();
    }

    #[test]
    fn put_requires_region_in_scope() {
        let e = Term::let_(
            s("a"),
            Op::Put(Region::Var(s("r")), Value::Int(1)),
            Term::Halt(Value::Int(0)),
        );
        assert!(basic().check_term(&Ctx::empty(), &e).is_err());
        basic().check_term(&ctx_with_region("r"), &e).unwrap();
    }

    #[test]
    fn put_into_cd_rejected() {
        let e = Term::let_(
            s("a"),
            Op::Put(Region::cd(), Value::Int(1)),
            Term::Halt(Value::Int(0)),
        );
        assert!(basic().check_term(&Ctx::empty(), &e).is_err());
    }

    #[test]
    fn let_region_then_put_get() {
        let r = s("r");
        let a = s("a");
        let b = s("b");
        let e = Term::LetRegion {
            rvar: r,
            body: (Term::let_(
                a,
                Op::Put(Region::Var(r), Value::Int(1)),
                Term::let_(b, Op::Get(Value::Var(a)), Term::Halt(Value::Var(b))),
            ))
            .into(),
        };
        basic().check_term(&Ctx::empty(), &e).unwrap();
    }

    #[test]
    fn only_drops_bindings_that_mention_dropped_regions() {
        let r1 = s("r1");
        let r2 = s("r2");
        let a = s("a");
        // After `only {r2}`, a (of type int at r1) is gone.
        let bad = Term::LetRegion {
            rvar: r1,
            body: (Term::LetRegion {
                rvar: r2,
                body: (Term::let_(
                    a,
                    Op::Put(Region::Var(r1), Value::Int(1)),
                    Term::Only {
                        regions: vec![Region::Var(r2)],
                        body: (Term::let_(
                            s("b"),
                            Op::Get(Value::Var(a)),
                            Term::Halt(Value::Var(s("b"))),
                        ))
                        .into(),
                    },
                ))
                .into(),
            })
            .into(),
        };
        assert!(basic().check_term(&Ctx::empty(), &bad).is_err());
        // Keeping r1 instead makes it fine.
        let good = Term::LetRegion {
            rvar: r1,
            body: (Term::LetRegion {
                rvar: r2,
                body: (Term::let_(
                    a,
                    Op::Put(Region::Var(r1), Value::Int(1)),
                    Term::Only {
                        regions: vec![Region::Var(r1)],
                        body: (Term::let_(
                            s("b"),
                            Op::Get(Value::Var(a)),
                            Term::Halt(Value::Var(s("b"))),
                        ))
                        .into(),
                    },
                ))
                .into(),
            })
            .into(),
        };
        basic().check_term(&Ctx::empty(), &good).unwrap();
    }

    #[test]
    fn prim_requires_ints() {
        let e = Term::let_(
            s("x"),
            Op::Prim(
                PrimOp::Add,
                Value::Int(1),
                Value::pair(Value::Int(1), Value::Int(2)),
            ),
            Term::Halt(Value::Int(0)),
        );
        assert!(basic().check_term(&Ctx::empty(), &e).is_err());
    }

    #[test]
    fn code_rule_closes_over_environment() {
        // A code block may not mention an outer value variable.
        let def = CodeDef {
            name: s("leaky"),
            tvars: vec![],
            rvars: vec![],
            params: vec![],
            body: Term::Halt(Value::Var(s("outer"))),
        };
        assert!(basic().check_code(&def).is_err());
    }

    #[test]
    fn code_with_m_typed_param() {
        // λ[t:Ω][r](x : M_r(t)). halt 0 — the shape of every translated
        // function (Fig. 3).
        let t = s("t");
        let r = s("r");
        let def = CodeDef {
            name: s("f"),
            tvars: vec![(t, Kind::Omega)],
            rvars: vec![r],
            params: vec![(s("x"), Ty::m(Region::Var(r), Tag::Var(t)))],
            body: Term::Halt(Value::Int(0)),
        };
        basic().check_code(&def).unwrap();
    }

    #[test]
    fn application_instantiates_tags_and_regions() {
        let t = s("t");
        let r = s("r");
        let def = CodeDef {
            name: s("f"),
            tvars: vec![(t, Kind::Omega)],
            rvars: vec![r],
            params: vec![(s("x"), Ty::m(Region::Var(r), Tag::Var(t)))],
            body: Term::Halt(Value::Int(0)),
        };
        let prog = |arg: Value, tag: Tag| Program {
            dialect: Dialect::Basic,
            code: vec![def.clone()],
            main: Term::LetRegion {
                rvar: s("r0"),
                body: (Term::app(Value::Addr(CD, 0), [tag], [Region::Var(s("r0"))], [arg])).into(),
            },
        };
        // M_r(Int) = int, so an integer argument is fine at tag Int.
        Checker::check_program(&prog(Value::Int(7), Tag::Int)).unwrap();
        // ... but not at tag Int×Int.
        assert!(
            Checker::check_program(&prog(Value::Int(7), Tag::prod(Tag::Int, Tag::Int))).is_err()
        );
    }

    #[test]
    fn application_arity_mismatch() {
        let def = CodeDef {
            name: s("f"),
            tvars: vec![],
            rvars: vec![],
            params: vec![(s("x"), Ty::Int)],
            body: Term::Halt(Value::Int(0)),
        };
        let prog = Program {
            dialect: Dialect::Basic,
            code: vec![def],
            main: Term::app(Value::Addr(CD, 0), [], [], []),
        };
        assert!(Checker::check_program(&prog).is_err());
    }

    #[test]
    fn typecase_on_variable_checks_all_arms() {
        // copy's skeleton: typecase t with x : M_r(t) in Γ; the int arm may
        // treat x as an int, the pair arm as a reference.
        let t = s("t");
        let r = s("r");
        let x = s("x");
        let body = Term::Typecase {
            tag: Tag::Var(t),
            int_arm: (Term::Halt(Value::Var(x))).into(),
            arrow_arm: (Term::Halt(Value::Int(0))).into(),
            prod_arm: (
                s("t1"),
                s("t2"),
                (Term::let_(s("y"), Op::Get(Value::Var(x)), Term::Halt(Value::Int(0)))).into(),
            ),
            exist_arm: (s("te"), (Term::Halt(Value::Int(0))).into()),
        };
        let def = CodeDef {
            name: s("probe"),
            tvars: vec![(t, Kind::Omega)],
            rvars: vec![r],
            params: vec![(x, Ty::m(Region::Var(r), Tag::Var(t)))],
            body,
        };
        basic().check_code(&def).unwrap();
    }

    #[test]
    fn typecase_int_arm_cannot_get() {
        // In the int arm, x : int, so `get x` must fail.
        let t = s("t");
        let r = s("r");
        let x = s("x");
        let body = Term::Typecase {
            tag: Tag::Var(t),
            int_arm: (Term::let_(s("y"), Op::Get(Value::Var(x)), Term::Halt(Value::Int(0)))).into(),
            arrow_arm: (Term::Halt(Value::Int(0))).into(),
            prod_arm: (s("t1"), s("t2"), (Term::Halt(Value::Int(0))).into()),
            exist_arm: (s("te"), (Term::Halt(Value::Int(0))).into()),
        };
        let def = CodeDef {
            name: s("probe"),
            tvars: vec![(t, Kind::Omega)],
            rvars: vec![r],
            params: vec![(x, Ty::m(Region::Var(r), Tag::Var(t)))],
            body,
        };
        assert!(basic().check_code(&def).is_err());
    }

    #[test]
    fn lambda_arm_is_region_independent() {
        // The crux of Fig. 4's λ arm: x : M_{r1}(t) can be returned where
        // M_{r2}(t) is expected once t is known to be an arrow.
        let t = s("t");
        let r1 = s("r1");
        let r2 = s("r2");
        let x = s("x");
        let k = s("k");
        // k : ∀[][r](M_r(t)) → 0 at cd (the Fig. 3 return-continuation
        // shape); call k[][r2](x) in the λ arm even though x : M_{r1}(t).
        let rk = s("rk");
        let k_ty = Ty::code([], [rk], [Ty::m(Region::Var(rk), Tag::Var(t))]).at(Region::cd());
        let body = Term::Typecase {
            tag: Tag::Var(t),
            int_arm: (Term::app(Value::Var(k), [], [Region::Var(r2)], [Value::Var(x)])).into(),
            arrow_arm: (Term::app(Value::Var(k), [], [Region::Var(r2)], [Value::Var(x)])).into(),
            prod_arm: (s("t1"), s("t2"), (Term::Halt(Value::Int(0))).into()),
            exist_arm: (s("te"), (Term::Halt(Value::Int(0))).into()),
        };
        let def = CodeDef {
            name: s("lamarm"),
            tvars: vec![(t, Kind::Omega)],
            rvars: vec![r1, r2],
            params: vec![(x, Ty::m(Region::Var(r1), Tag::Var(t))), (k, k_ty)],
            body,
        };
        basic().check_code(&def).unwrap();
    }

    #[test]
    fn lambda_arm_refinement_is_not_too_strong() {
        // Outside the λ arm (e.g. the pair arm) the same call must fail:
        // M_{r1}(t1×t2) ≠ M_{r2}(t1×t2).
        let t = s("t");
        let r1 = s("r1");
        let r2 = s("r2");
        let x = s("x");
        let k = s("k");
        let rk = s("rk2");
        let k_ty = Ty::code([], [rk], [Ty::m(Region::Var(rk), Tag::Var(t))]).at(Region::cd());
        let body = Term::Typecase {
            tag: Tag::Var(t),
            int_arm: (Term::Halt(Value::Int(0))).into(),
            arrow_arm: (Term::Halt(Value::Int(0))).into(),
            prod_arm: (
                s("t1"),
                s("t2"),
                (Term::app(Value::Var(k), [], [Region::Var(r2)], [Value::Var(x)])).into(),
            ),
            exist_arm: (s("te"), (Term::Halt(Value::Int(0))).into()),
        };
        let def = CodeDef {
            name: s("pairarm"),
            tvars: vec![(t, Kind::Omega)],
            rvars: vec![r1, r2],
            params: vec![(x, Ty::m(Region::Var(r1), Tag::Var(t))), (k, k_ty)],
            body,
        };
        assert!(basic().check_code(&def).is_err());
    }

    #[test]
    fn open_tag_package() {
        // open ⟨t=Int, 5 : M_cd(t)⟩ as ⟨u, x⟩ in halt 0 — x : M_cd(u).
        let t = s("t");
        let u = s("u");
        let x = s("x");
        let pkg = Value::PackTag {
            tvar: t,
            kind: Kind::Omega,
            tag: Tag::Int,
            val: (Value::Int(5)).into(),
            body_ty: Ty::m(Region::cd(), Tag::Var(t)),
        };
        let e = Term::OpenTag {
            pkg,
            tvar: u,
            x,
            body: (Term::Halt(Value::Int(0))).into(),
        };
        basic().check_term(&Ctx::empty(), &e).unwrap();
    }

    #[test]
    fn pack_tag_payload_must_match() {
        let t = s("t");
        let pkg = Value::PackTag {
            tvar: t,
            kind: Kind::Omega,
            tag: Tag::prod(Tag::Int, Tag::Int),
            val: (Value::Int(5)).into(),
            body_ty: Ty::m(Region::cd(), Tag::Var(t)),
        };
        // M_cd(Int×Int) is a reference, not an int.
        assert!(basic().synth_value(&Ctx::empty(), &pkg).is_err());
    }

    #[test]
    fn forwarding_constructs_rejected_in_basic() {
        let e = Term::let_(
            s("x"),
            Op::Strip(Value::inl(Value::Int(1))),
            Term::Halt(Value::Var(s("x"))),
        );
        assert!(basic().check_term(&Ctx::empty(), &e).is_err());
        Checker::new(Dialect::Forwarding)
            .check_term(&Ctx::empty(), &e)
            .unwrap();
    }

    #[test]
    fn sum_subsumption_on_set() {
        // set x := inr z where x : (left a + right b) at r.
        let fw = Checker::new(Dialect::Forwarding);
        let r = s("r");
        let x = s("x");
        let mut ctx = ctx_with_region("r");
        ctx.gamma
            .insert(x, Ty::sum(Ty::Int, Ty::Int).at(Region::Var(r)));
        let e = Term::Set {
            dst: Value::Var(x),
            src: Value::inr(Value::Int(2)),
            body: (Term::Halt(Value::Int(0))).into(),
        };
        fw.check_term(&ctx, &e).unwrap();
        // A bare int is not of sum type.
        let bad = Term::Set {
            dst: Value::Var(x),
            src: Value::Int(2),
            body: (Term::Halt(Value::Int(0))).into(),
        };
        assert!(fw.check_term(&ctx, &bad).is_err());
    }

    #[test]
    fn ifleft_refines_both_arms() {
        let fw = Checker::new(Dialect::Forwarding);
        let x = s("x");
        let y = s("y");
        let mut ctx = Ctx::empty();
        ctx.gamma
            .insert(s("v"), Ty::sum(Ty::Int, Ty::prod(Ty::Int, Ty::Int)));
        let e = Term::IfLeft {
            x,
            scrut: Value::Var(s("v")),
            left: (Term::let_(y, Op::Strip(Value::Var(x)), Term::Halt(Value::Var(y)))).into(),
            right: (Term::let_(
                y,
                Op::Strip(Value::Var(x)),
                // y : Int×Int here, so halting on it must fail...
                Term::Halt(Value::Int(0)),
            ))
            .into(),
        };
        fw.check_term(&ctx, &e).unwrap();
        let bad = Term::IfLeft {
            x,
            scrut: Value::Var(s("v")),
            left: (Term::Halt(Value::Int(0))).into(),
            right: (Term::let_(y, Op::Strip(Value::Var(x)), Term::Halt(Value::Var(y)))).into(),
        };
        assert!(fw.check_term(&ctx, &bad).is_err());
    }

    #[test]
    fn widen_types_body_in_restricted_env() {
        let fw = Checker::new(Dialect::Forwarding);
        let r1 = s("r1");
        let r2 = s("r2");
        let x = s("x");
        // v : M_{r1}(Int) = int.
        let e = Term::LetRegion {
            rvar: r1,
            body: (Term::LetRegion {
                rvar: r2,
                body: (Term::Widen {
                    x,
                    from: Region::Var(r1),
                    to: Region::Var(r2),
                    tag: Tag::Int,
                    v: Value::Int(1),
                    body: (Term::Halt(Value::Var(x))).into(),
                })
                .into(),
            })
            .into(),
        };
        fw.check_term(&Ctx::empty(), &e).unwrap();
        // The body may NOT use outer bindings (Γ is just x).
        let leak = s("leak");
        let mut ctx = Ctx::empty();
        ctx.gamma.insert(leak, Ty::Int);
        let bad = Term::LetRegion {
            rvar: r1,
            body: (Term::LetRegion {
                rvar: r2,
                body: (Term::Widen {
                    x,
                    from: Region::Var(r1),
                    to: Region::Var(r2),
                    tag: Tag::Int,
                    v: Value::Int(1),
                    body: (Term::Halt(Value::Var(leak))).into(),
                })
                .into(),
            })
            .into(),
        };
        assert!(fw.check_term(&ctx, &bad).is_err());
    }

    #[test]
    fn ifreg_substitutes_in_eq_branch() {
        let gen = Checker::new(Dialect::Generational);
        let r1 = s("r1");
        let r2 = s("r2");
        let a = s("a");
        // a : int at r1. In the eq branch (r1 = r2 unified) we can still get
        // it; in the ne branch too. The point is it typechecks at all with
        // the substitution applied.
        let e = Term::LetRegion {
            rvar: r1,
            body: (Term::LetRegion {
                rvar: r2,
                body: (Term::let_(
                    a,
                    Op::Put(Region::Var(r1), Value::Int(1)),
                    Term::IfReg {
                        r1: Region::Var(r1),
                        r2: Region::Var(r2),
                        eq: (Term::let_(
                            s("b"),
                            Op::Get(Value::Var(a)),
                            Term::Halt(Value::Var(s("b"))),
                        ))
                        .into(),
                        ne: (Term::Halt(Value::Int(0))).into(),
                    },
                ))
                .into(),
            })
            .into(),
        };
        gen.check_term(&Ctx::empty(), &e).unwrap();
    }

    #[test]
    fn region_package_roundtrip() {
        let gen = Checker::new(Dialect::Generational);
        let r0 = s("r0");
        let r = s("r");
        let x = s("x");
        let y = s("y");
        let a = s("a");
        let e = Term::LetRegion {
            rvar: r0,
            body: (Term::let_(
                a,
                Op::Put(Region::Var(r0), Value::Int(8)),
                Term::OpenRgn {
                    pkg: Value::PackRgn {
                        rvar: r,
                        bound: (vec![Region::Var(r0)]).into(),
                        witness: Region::Var(r0),
                        val: (Value::Var(a)).into(),
                        body_ty: Ty::Int,
                    },
                    rvar: s("ropen"),
                    x,
                    body: (Term::let_(y, Op::Get(Value::Var(x)), Term::Halt(Value::Var(y)))).into(),
                },
            ))
            .into(),
        };
        gen.check_term(&Ctx::empty(), &e).unwrap();
    }

    #[test]
    fn region_package_witness_must_be_in_bound() {
        let gen = Checker::new(Dialect::Generational);
        let mut ctx = Ctx::empty();
        ctx.delta.insert(Region::Var(s("ra")));
        ctx.delta.insert(Region::Var(s("rb")));
        let pkg = Value::PackRgn {
            rvar: s("r"),
            bound: (vec![Region::Var(s("ra"))]).into(),
            witness: Region::Var(s("rb")),
            val: (Value::Int(0)).into(),
            body_ty: Ty::Int,
        };
        assert!(gen.synth_value(&ctx, &pkg).is_err());
    }

    #[test]
    fn translucent_application_requires_matching_tags() {
        // Build ⟨code⟩Jt=IntK and apply it at Int (ok) and at Int×Int (no).
        let t = s("t");
        let def = CodeDef {
            name: s("k"),
            tvars: vec![(t, Kind::Omega)],
            rvars: vec![],
            params: vec![(s("x"), Ty::m(Region::cd(), Tag::Var(t)))],
            body: Term::Halt(Value::Int(0)),
        };
        let mut psi = PsiTable::new();
        psi.insert(CD, BTreeMap::from([(0u32, def.ty())]));
        let ck = Checker::with_psi(Dialect::Basic, psi);
        let tapp = Value::tag_app(Value::Addr(CD, 0), [Tag::Int], []);
        let ok = Term::app(tapp.clone(), [Tag::Int], [], [Value::Int(1)]);
        ck.check_term(&Ctx::empty(), &ok).unwrap();
        let bad = Term::app(tapp, [Tag::prod(Tag::Int, Tag::Int)], [], [Value::Int(1)]);
        assert!(ck.check_term(&Ctx::empty(), &bad).is_err());
    }

    #[test]
    fn addr_types_come_from_psi() {
        let mut psi = PsiTable::new();
        psi.insert(RegionName(1), BTreeMap::from([(0u32, Ty::Int)]));
        let ck = Checker::with_psi(Dialect::Basic, psi);
        let mut ctx = Ctx::empty();
        ctx.delta.insert(Region::Name(RegionName(1)));
        let t = ck
            .synth_value(&ctx, &Value::Addr(RegionName(1), 0))
            .unwrap();
        assert!(ty_eq(
            &t,
            &Ty::Int.at(Region::Name(RegionName(1))),
            Dialect::Basic
        ));
        assert!(ck
            .synth_value(&ctx, &Value::Addr(RegionName(2), 0))
            .is_err());
    }
}
