//! # A register-based bytecode VM for λGC
//!
//! The third interpreter backend ([`Backend::Bytecode`]): interned
//! [`TermId`] programs are compiled *once* into a flat instruction stream
//! and then executed by a dispatch loop over four register files (values,
//! tags, regions, types). Where [`crate::env_machine`] resolves every
//! variable occurrence through a hash-map environment at run time, the
//! compiler here resolves each occurrence to a **register slot at compile
//! time**, so the hot path is a vector index instead of a lookup.
//!
//! ## Why compile-time slot resolution is sound
//!
//! λGC is CPS: control never returns. Every step either descends into the
//! body/arm of the current term or β-reduces into a *closed* code block.
//! Consequently the set of bindings the environment machine holds at any
//! program point is exactly the **lexical scope chain** of that point:
//! `let`/`open`/`typecase`/… binders on the path from the enclosing unit's
//! root, or the code block's parameters right after a call. The compiler
//! walks each unit once, assigns every binder a fresh slot (shadowing gets
//! a fresh slot; lookups find the innermost), and rewrites each variable
//! occurrence to its slot. A register is written strictly before any
//! instruction that reads it, on every path, by construction.
//!
//! ## Operand classification
//!
//! Using the interner's free-variable fingerprints
//! ([`crate::intern::value_fv`]/[`tag_fv`](crate::intern::tag_fv)), each
//! operand is classified at compile time:
//!
//! * **`Reg`** — a plain variable bound in scope: one vector index.
//! * **`Imm`** — an operand with no in-scope free variables: used as-is
//!   (hash-consed children make the clone O(1)).
//! * **`Build`** — a structured operand with in-scope free variables: at
//!   run time a mini-[`Subst`] binds exactly those variables from the
//!   registers and substitutes. This reuses the *same* substitution
//!   machinery as the environment machine, so resolution is identical by
//!   construction.
//!
//! ## Superinstructions
//!
//! Two fusions target the patterns that dominate the battery (the
//! `ifgc`-guarded `let`-spines emitted by closure conversion):
//!
//! * **`lets` chains** — consecutive `let x = op in …` forms fuse into one
//!   instruction holding a micro-op array: one fetch/dispatch per spine
//!   instead of one per binding. `ifgc` and other control forms bound the
//!   chains, so a chain is exactly an allocation burst between GC checks.
//! * **`put-pair`** — `let x = put[ρ] (v₁, v₂)`, the allocation form that
//!   closure environments and list cells compile to, resolves the two
//!   components directly into a fresh pair without a generic `Build`.
//!
//! Both preserve per-rule observability: each micro-op is still one
//! machine step (`Stats.steps`, `on_step`, audit cadence, fault-injection
//! points are byte-identical to the substitution oracle). The toggle
//! ([`BcMachine::set_superinstructions`], `RunOptions.superinstructions`)
//! exists for A/B measurement.
//!
//! Telemetry hooks, [`Stats`] counters, error messages, and the
//! [resolved control view](BcMachine::resolved_control) all mirror the
//! Fig. 5 machine rule for rule; the lockstep differential suite holds all
//! three backends to that contract.
//!
//! [`Backend::Bytecode`]: crate::machine::Backend::Bytecode

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock};

use ps_ir::{FxBuildHasher, FxHasher, Symbol};

use crate::error::{stuck_err, ErrorKind, LangError, Result};
use crate::faults::FaultPlan;
use crate::intern::{
    intern_term, intern_ty, intern_value, tag_fv, ty_fv, value_fv, TermId, TyId, ValId,
};
use crate::machine::{widen_psi, AuditMode, Machine, Outcome, Program, Stats, StepOutcome};
use crate::memory::{MemConfig, Memory};
use crate::subst::Subst;
use crate::syntax::{
    CodeDef, Dialect, Kind, Op, PrimOp, Region, RegionName, Tag, Term, Ty, Value, CD,
};
use crate::tags;
use crate::telemetry::{SharedObserver, Telemetry};

/// Sentinel scope id for "empty scope chain".
const NO_SCOPE: u32 = u32::MAX;

/// Placeholder branch target, patched after the arm is compiled.
const PATCH: u32 = u32::MAX;

/// The binder namespaces (λGC has four: values, tags, regions, types).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ns {
    Val,
    Tag,
    Rgn,
    Alpha,
}

/// One register to bind when materializing a `Build` operand.
#[derive(Clone, Copy, Debug)]
struct Bind {
    ns: Ns,
    sym: Symbol,
    slot: u32,
}

/// A value operand, resolved at compile time.
/// `Imm`/`Build` are as large as a `Value` node; boxing them would put an
/// indirection on the decode path of the common `Reg` case for no gain —
/// operands live in the compiled stream, not in registers.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
enum ValOp {
    /// A variable bound in scope: read the register.
    Reg(u32),
    /// No in-scope free variables: the operand resolves to itself.
    Imm(Value),
    /// Structured operand with in-scope free variables: instantiate the
    /// precompiled template `tpl` from the registers. `val`/`binds` keep
    /// the source form for the disassembler and for the [`VTpl::Generic`]
    /// fallback (the [`Subst`] path, shared with the environment machine).
    Build {
        val: Value,
        binds: Box<[Bind]>,
        tpl: VTpl,
    },
}

/// A precompiled instantiation template for a [`ValOp::Build`] operand.
///
/// Resolving a structured operand through [`Subst::value`] re-walks the
/// value — and, at every package binder, clones the substitution and
/// re-substitutes the (large, heavily shared) closure types — on every
/// step that executes the operand. The template performs that walk once,
/// at compile time: subtrees whose free variables miss the bound registers
/// collapse to interned immediates ([`VTpl::ImmId`], the compile-time
/// image of the substituter's fingerprint skip), bound variables become
/// register reads, and the remaining spine is rebuilt directly. Type
/// positions ([`TyTpl::Sub`]) memoize per instruction site on the interned
/// identities of the bound registers: tag/region/type bindings are stable
/// across the allocations of one GC cycle, so the expensive [`Subst::ty`]
/// runs once per cycle instead of once per allocation.
///
/// Instantiation is structurally identical to the `Subst` path: runtime
/// ranges are closed, so the substituter never renames binders (entering a
/// binder only removes it from the domain — reproduced here by dropping
/// the binder from each `body_ty`'s bind set), and restricting the domain
/// to the variables that actually occur free leaves the result unchanged.
#[derive(Clone, Debug)]
enum VTpl {
    /// Interned subtree untouched by the bound registers: reuse it as-is.
    ImmId(ValId),
    /// A bound value variable: read the register.
    Reg(u32),
    Pair(Box<VTpl>, Box<VTpl>),
    PackTag {
        tvar: Symbol,
        kind: Kind,
        tag: TagTpl,
        val: Box<VTpl>,
        body_ty: TyTpl,
    },
    PackAlpha {
        avar: Symbol,
        regions: Box<[RgnTpl]>,
        witness: TyTpl,
        val: Box<VTpl>,
        body_ty: TyTpl,
    },
    PackRgn {
        rvar: Symbol,
        bound: Box<[RgnTpl]>,
        witness: RgnTpl,
        val: Box<VTpl>,
        body_ty: TyTpl,
    },
    TagApp(Box<VTpl>, Box<[TagTpl]>, Box<[RgnTpl]>),
    Inl(Box<VTpl>),
    Inr(Box<VTpl>),
    /// Fall back to the generic [`Subst`] path. Used for operands that
    /// contain `Code` literals (substitution descends into the code
    /// definition — far too rare to template). Only ever the *root* of a
    /// template: [`BcMachine::rv`] dispatches it before instantiating.
    Generic,
}

/// A tag position inside a [`VTpl`].
#[derive(Clone, Debug)]
enum TagTpl {
    Imm(Tag),
    /// `Tag::Var(t)` with `t` bound: read the register.
    Reg(u32),
    /// `Tag::AnyArrow(t)` with `t` bound: apply [`Subst::tag`]'s collapse
    /// rule to the register contents.
    AnyArrow(u32),
    /// A structural tag with bound variables inside: substitute.
    Sub {
        tag: Tag,
        binds: Box<[(Symbol, u32)]>,
    },
}

/// A type position inside a [`VTpl`].
#[derive(Clone, Debug)]
enum TyTpl {
    Imm(Ty),
    /// Substitute the bound registers into `ty`, memoized per `site`
    /// (unique within the unit) on the interned identities of the
    /// register contents.
    Sub {
        ty: Ty,
        /// `ty`'s interned identity — the content half of the global
        /// closed-substitution memo key.
        tid: TyId,
        binds: Box<[Bind]>,
        site: u32,
    },
}

/// A region position inside a [`VTpl`].
#[derive(Clone, Debug)]
enum RgnTpl {
    Imm(Region),
    Reg(u32),
}

/// A captured register value keying one [`TyTpl::Sub`] cache entry.
/// Equality is structural — interned children compare by id, so a probe
/// is a handful of integer compares — and equal bind values guarantee
/// equal substitution output (substitution is a pure function of the
/// bindings).
#[derive(Clone, Debug, PartialEq)]
enum BindVal {
    Tag(Tag),
    Rgn(Region),
    Alpha(Ty),
}

/// Process-wide closed-substitution memo — the second level behind each
/// machine's `ty_cache`. Keyed by the interned identity of the template
/// type plus a hash of the binder symbols and captured values; buckets
/// hold the full key for exact structural comparison. Interned ids are
/// global and region names restart per machine, so the working set across
/// a whole benchmark sweep stays small; cleared wholesale at the cap.
type TySubBucket = Vec<(Box<[(Symbol, BindVal)]>, Ty)>;
/// Per-machine bucket: captured register values → substituted type.
type TyCacheBucket = Vec<(Box<[BindVal]>, Ty)>;
#[allow(clippy::type_complexity)]
static TY_SUB_MEMO: RwLock<Option<HashMap<(TyId, u64), TySubBucket, FxBuildHasher>>> =
    RwLock::new(None);

/// Publishes a freshly computed substitution to [`TY_SUB_MEMO`].
fn ty_sub_global_insert(tid: TyId, h: u64, key: Box<[(Symbol, BindVal)]>, out: Ty) {
    let mut guard = TY_SUB_MEMO
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let map = guard.get_or_insert_with(HashMap::default);
    if map.len() >= 1 << 15 {
        map.clear();
    }
    map.entry((tid, h)).or_default().push((key, out));
}

/// A tag operand (tags can only mention tag variables).
#[derive(Clone, Debug)]
enum TagOp {
    Reg(u32),
    Imm(Tag),
    Build {
        tag: Tag,
        binds: Box<[(Symbol, u32)]>,
    },
}

/// A region operand. `Imm(Region::Var(_))` is an *unbound* region variable,
/// kept so use sites report the same "unsubstituted region variable" error
/// as the other backends.
#[derive(Clone, Debug)]
enum RgnOp {
    Reg(u32),
    Imm(Region),
}

/// The operation of one fused `let` binding.
#[derive(Clone, Debug)]
enum MicroOp {
    Val(ValOp),
    Proj(u8, ValOp),
    Put(RgnOp, ValOp),
    /// Superinstruction: `put[ρ] (v₁, v₂)` with the pair built in place.
    PutPair(RgnOp, ValOp, ValOp),
    Get(ValOp),
    Strip(ValOp),
    Prim(PrimOp, ValOp, ValOp),
}

/// One `let` binding inside a [`Instr::Lets`] chain. Carries its own
/// source/scope so mid-chain states resolve to the right control term.
#[derive(Clone, Debug)]
struct Micro {
    dst: u32,
    op: MicroOp,
    src: TermId,
    scope: u32,
}

/// A bytecode instruction. Single-continuation forms fall through to
/// `pc + 1`; branch forms carry explicit targets; `Call`/`Halt` terminate
/// the unit.
/// Variant sizes are dominated by inline [`ValOp`] operands (see there);
/// instructions are decoded in place, never moved, so the size spread is
/// irrelevant.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug)]
enum Instr {
    /// A maximal run of consecutive `let`s (length 1 when
    /// superinstructions are off). Each micro-op is one machine step.
    Lets(Box<[Micro]>),
    Call {
        f: ValOp,
        tags: Box<[TagOp]>,
        rgns: Box<[RgnOp]>,
        args: Box<[ValOp]>,
    },
    Halt(ValOp),
    IfGc {
        r: RgnOp,
        full: u32,
        cont: u32,
    },
    OpenTag {
        pkg: ValOp,
        tdst: u32,
        vdst: u32,
    },
    OpenAlpha {
        pkg: ValOp,
        adst: u32,
        vdst: u32,
    },
    OpenRgn {
        pkg: ValOp,
        rdst: u32,
        vdst: u32,
    },
    LetRegion {
        rdst: u32,
    },
    Only {
        keep: Box<[RgnOp]>,
    },
    Typecase {
        tag: TagOp,
        int_arm: u32,
        arrow_arm: u32,
        t1dst: u32,
        t2dst: u32,
        prod_arm: u32,
        tedst: u32,
        exist_arm: u32,
    },
    IfLeft {
        dst: u32,
        scrut: ValOp,
        left: u32,
        right: u32,
    },
    Set {
        dst: ValOp,
        src: ValOp,
    },
    Widen {
        dst: u32,
        from: RgnOp,
        to: RgnOp,
        tag: TagOp,
        v: ValOp,
    },
    IfReg {
        r1: RgnOp,
        r2: RgnOp,
        eq: u32,
        ne: u32,
    },
    If0 {
        scrut: ValOp,
        zero: u32,
        nonzero: u32,
    },
}

/// Source mapping for one instruction: the term it was compiled from and
/// the scope in force *before* it executes. [`Instr::Lets`] chains use the
/// per-micro fields instead.
#[derive(Clone, Copy, Debug)]
struct InstrMeta {
    src: TermId,
    scope: u32,
}

/// One node of a unit's compile-time scope chain.
#[derive(Clone, Copy, Debug)]
struct ScopeNode {
    parent: u32,
    ns: Ns,
    sym: Symbol,
    slot: u32,
}

/// A compiled unit: the main term or one code block's body.
#[derive(Clone, Debug)]
struct Unit {
    label: String,
    instrs: Vec<Instr>,
    metas: Vec<InstrMeta>,
    scopes: Vec<ScopeNode>,
    val_slots: u32,
    tag_slots: u32,
    rgn_slots: u32,
    alpha_slots: u32,
}

/// All compiled units of a loaded program. Unit 0 is the main term; code
/// blocks are keyed by the identity of their installed `Arc<CodeDef>`.
#[derive(Clone, Debug, Default)]
struct CodeCache {
    units: Vec<Unit>,
    by_def: HashMap<usize, u32, FxBuildHasher>,
}

// ---------------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------------

#[derive(Default)]
struct UnitBuilder {
    instrs: Vec<Instr>,
    metas: Vec<InstrMeta>,
    scopes: Vec<ScopeNode>,
    nval: u32,
    ntag: u32,
    nrgn: u32,
    nalpha: u32,
    superinstructions: bool,
    /// Allocator for [`TyTpl::Sub`] memoization sites.
    ty_sites: u32,
}

impl UnitBuilder {
    fn bind(&mut self, parent: u32, ns: Ns, sym: Symbol) -> (u32, u32) {
        let slot = match ns {
            Ns::Val => {
                self.nval += 1;
                self.nval - 1
            }
            Ns::Tag => {
                self.ntag += 1;
                self.ntag - 1
            }
            Ns::Rgn => {
                self.nrgn += 1;
                self.nrgn - 1
            }
            Ns::Alpha => {
                self.nalpha += 1;
                self.nalpha - 1
            }
        };
        self.scopes.push(ScopeNode {
            parent,
            ns,
            sym,
            slot,
        });
        ((self.scopes.len() - 1) as u32, slot)
    }

    fn lookup(&self, mut scope: u32, ns: Ns, sym: Symbol) -> Option<u32> {
        while scope != NO_SCOPE {
            let n = &self.scopes[scope as usize];
            if n.ns == ns && n.sym == sym {
                return Some(n.slot);
            }
            scope = n.parent;
        }
        None
    }

    fn here(&self) -> u32 {
        self.instrs.len() as u32
    }

    fn push(&mut self, i: Instr, src: TermId, scope: u32) -> u32 {
        let pc = self.here();
        self.instrs.push(i);
        self.metas.push(InstrMeta { src, scope });
        pc
    }

    fn classify_val(&mut self, v: &Value, scope: u32) -> ValOp {
        if let Value::Var(x) = v {
            return match self.lookup(scope, Ns::Val, *x) {
                Some(slot) => ValOp::Reg(slot),
                // A free variable resolves to itself (the environment
                // machine's lookup would miss too).
                None => ValOp::Imm(v.clone()),
            };
        }
        let fv = value_fv(intern_value(v.clone()));
        let mut binds = Vec::new();
        for &x in fv.xvars.iter() {
            if let Some(slot) = self.lookup(scope, Ns::Val, x) {
                binds.push(Bind {
                    ns: Ns::Val,
                    sym: x,
                    slot,
                });
            }
        }
        for &t in fv.tvars.iter() {
            if let Some(slot) = self.lookup(scope, Ns::Tag, t) {
                binds.push(Bind {
                    ns: Ns::Tag,
                    sym: t,
                    slot,
                });
            }
        }
        for &r in fv.rvars.iter() {
            if let Some(slot) = self.lookup(scope, Ns::Rgn, r) {
                binds.push(Bind {
                    ns: Ns::Rgn,
                    sym: r,
                    slot,
                });
            }
        }
        for &a in fv.avars.iter() {
            if let Some(slot) = self.lookup(scope, Ns::Alpha, a) {
                binds.push(Bind {
                    ns: Ns::Alpha,
                    sym: a,
                    slot,
                });
            }
        }
        if binds.is_empty() {
            ValOp::Imm(v.clone())
        } else {
            let tpl = if contains_code(v) {
                VTpl::Generic
            } else {
                self.vtpl_node(v, &binds)
            };
            ValOp::Build {
                val: v.clone(),
                binds: binds.into_boxed_slice(),
                tpl,
            }
        }
    }

    /// Compiles one value subtree of a `Build` operand, mirroring
    /// [`Subst::value_id`]: a subtree whose free-variable fingerprint
    /// misses the bound registers is the interned identity.
    fn vtpl_child(&mut self, id: ValId, binds: &[Bind]) -> VTpl {
        let fv = value_fv(id);
        let hit = binds.iter().any(|b| match b.ns {
            Ns::Val => fv.xvars.binary_search(&b.sym).is_ok(),
            Ns::Tag => fv.tvars.binary_search(&b.sym).is_ok(),
            Ns::Rgn => fv.rvars.binary_search(&b.sym).is_ok(),
            Ns::Alpha => fv.avars.binary_search(&b.sym).is_ok(),
        });
        if hit {
            self.vtpl_node(id.node(), binds)
        } else {
            VTpl::ImmId(id)
        }
    }

    /// Compiles one value node of a `Build` operand, variant by variant
    /// the compile-time image of [`Subst::value`]. Value, tag, witness and
    /// region positions see the full bind set; each package's `body_ty`
    /// drops that package's own binder (entering a binder removes it from
    /// the substitution domain — closed runtime ranges never force a
    /// rename).
    fn vtpl_node(&mut self, v: &Value, binds: &[Bind]) -> VTpl {
        match v {
            Value::Int(_) | Value::Addr(..) => VTpl::ImmId(v.id()),
            Value::Var(x) => binds
                .iter()
                .find(|b| b.ns == Ns::Val && b.sym == *x)
                .map_or_else(|| VTpl::ImmId(v.id()), |b| VTpl::Reg(b.slot)),
            Value::Pair(a, b) => VTpl::Pair(
                self.vtpl_child(*a, binds).into(),
                self.vtpl_child(*b, binds).into(),
            ),
            Value::PackTag {
                tvar,
                kind,
                tag,
                val,
                body_ty,
            } => VTpl::PackTag {
                tvar: *tvar,
                kind: *kind,
                tag: self.tag_tpl(tag, binds),
                val: self.vtpl_child(*val, binds).into(),
                body_ty: self.ty_tpl(body_ty, binds, Some((Ns::Tag, *tvar))),
            },
            Value::PackAlpha {
                avar,
                regions,
                witness,
                val,
                body_ty,
            } => VTpl::PackAlpha {
                avar: *avar,
                regions: regions.iter().map(|r| rgn_tpl(r, binds)).collect(),
                witness: self.ty_tpl(witness, binds, None),
                val: self.vtpl_child(*val, binds).into(),
                body_ty: self.ty_tpl(body_ty, binds, Some((Ns::Alpha, *avar))),
            },
            Value::PackRgn {
                rvar,
                bound,
                witness,
                val,
                body_ty,
            } => VTpl::PackRgn {
                rvar: *rvar,
                bound: bound.iter().map(|r| rgn_tpl(r, binds)).collect(),
                witness: rgn_tpl(witness, binds),
                val: self.vtpl_child(*val, binds).into(),
                body_ty: self.ty_tpl(body_ty, binds, Some((Ns::Rgn, *rvar))),
            },
            Value::TagApp(f, ts, rs) => VTpl::TagApp(
                self.vtpl_child(*f, binds).into(),
                ts.iter().map(|t| self.tag_tpl(t, binds)).collect(),
                rs.iter().map(|r| rgn_tpl(r, binds)).collect(),
            ),
            Value::Inl(x) => VTpl::Inl(self.vtpl_child(*x, binds).into()),
            Value::Inr(x) => VTpl::Inr(self.vtpl_child(*x, binds).into()),
            // Guarded out by `contains_code` before compilation starts.
            Value::Code(_) => VTpl::Generic,
        }
    }

    /// Compiles one tag position, restricted to the tag-namespace binds
    /// that occur free in `tau` (restricting the domain to occurring
    /// variables leaves [`Subst::tag`] unchanged).
    fn tag_tpl(&self, tau: &Tag, binds: &[Bind]) -> TagTpl {
        let fv = tag_fv(tau.id());
        let hits: Vec<(Symbol, u32)> = binds
            .iter()
            .filter(|b| b.ns == Ns::Tag && fv.binary_search(&b.sym).is_ok())
            .map(|b| (b.sym, b.slot))
            .collect();
        match (hits.as_slice(), tau) {
            ([], _) => TagTpl::Imm(tau.clone()),
            ([(_, slot)], Tag::Var(_)) => TagTpl::Reg(*slot),
            ([(_, slot)], Tag::AnyArrow(_)) => TagTpl::AnyArrow(*slot),
            _ => TagTpl::Sub {
                tag: tau.clone(),
                binds: hits.into_boxed_slice(),
            },
        }
    }

    /// Compiles one type position, restricted to the binds that occur free
    /// in `sigma` (types never mention value variables), minus `skip` (the
    /// enclosing package's own binder).
    fn ty_tpl(&mut self, sigma: &Ty, binds: &[Bind], skip: Option<(Ns, Symbol)>) -> TyTpl {
        let tid = intern_ty(sigma.clone());
        let fv = ty_fv(tid);
        let hits: Vec<Bind> = binds
            .iter()
            .filter(|b| {
                skip != Some((b.ns, b.sym))
                    && match b.ns {
                        Ns::Tag => fv.tvars.binary_search(&b.sym).is_ok(),
                        Ns::Rgn => fv.rvars.binary_search(&b.sym).is_ok(),
                        Ns::Alpha => fv.avars.binary_search(&b.sym).is_ok(),
                        Ns::Val => false,
                    }
            })
            .copied()
            .collect();
        if hits.is_empty() {
            TyTpl::Imm(sigma.clone())
        } else {
            let site = self.ty_sites;
            self.ty_sites += 1;
            TyTpl::Sub {
                ty: sigma.clone(),
                tid,
                binds: hits.into_boxed_slice(),
                site,
            }
        }
    }

    fn classify_tag(&self, tau: &Tag, scope: u32) -> TagOp {
        if let Tag::Var(t) = tau {
            return match self.lookup(scope, Ns::Tag, *t) {
                Some(slot) => TagOp::Reg(slot),
                None => TagOp::Imm(tau.clone()),
            };
        }
        let fv = tag_fv(tau.id());
        let binds: Vec<(Symbol, u32)> = fv
            .iter()
            .filter_map(|&t| self.lookup(scope, Ns::Tag, t).map(|slot| (t, slot)))
            .collect();
        if binds.is_empty() {
            TagOp::Imm(tau.clone())
        } else {
            TagOp::Build {
                tag: tau.clone(),
                binds: binds.into_boxed_slice(),
            }
        }
    }

    fn classify_rgn(&self, rho: &Region, scope: u32) -> RgnOp {
        match rho {
            Region::Var(r) => match self.lookup(scope, Ns::Rgn, *r) {
                Some(slot) => RgnOp::Reg(slot),
                None => RgnOp::Imm(*rho),
            },
            Region::Name(_) => RgnOp::Imm(*rho),
        }
    }

    fn classify_op(&mut self, op: &Op, scope: u32) -> MicroOp {
        match op {
            Op::Val(v) => MicroOp::Val(self.classify_val(v, scope)),
            Op::Proj(i, v) => MicroOp::Proj(*i, self.classify_val(v, scope)),
            Op::Put(rho, v) => {
                let r = self.classify_rgn(rho, scope);
                if self.superinstructions {
                    if let Value::Pair(a, b) = v {
                        return MicroOp::PutPair(
                            r,
                            self.classify_val(a.node(), scope),
                            self.classify_val(b.node(), scope),
                        );
                    }
                }
                MicroOp::Put(r, self.classify_val(v, scope))
            }
            Op::Get(v) => MicroOp::Get(self.classify_val(v, scope)),
            Op::Strip(v) => MicroOp::Strip(self.classify_val(v, scope)),
            Op::Prim(p, a, b) => {
                MicroOp::Prim(*p, self.classify_val(a, scope), self.classify_val(b, scope))
            }
        }
    }

    fn compile_term(&mut self, mut t: TermId, mut scope: u32) {
        loop {
            match t.node() {
                Term::Let { .. } => {
                    let (src0, scope0) = (t, scope);
                    let mut micros = Vec::new();
                    while let Term::Let { x, op, body } = t.node() {
                        let mop = self.classify_op(op, scope);
                        let (nsc, slot) = self.bind(scope, Ns::Val, *x);
                        micros.push(Micro {
                            dst: slot,
                            op: mop,
                            src: t,
                            scope,
                        });
                        scope = nsc;
                        t = *body;
                        if !self.superinstructions {
                            break;
                        }
                    }
                    self.push(Instr::Lets(micros.into_boxed_slice()), src0, scope0);
                }
                Term::App {
                    f,
                    tags: ts,
                    regions,
                    args,
                } => {
                    let i = Instr::Call {
                        f: self.classify_val(f, scope),
                        tags: ts.iter().map(|tau| self.classify_tag(tau, scope)).collect(),
                        rgns: regions
                            .iter()
                            .map(|r| self.classify_rgn(r, scope))
                            .collect(),
                        args: args.iter().map(|v| self.classify_val(v, scope)).collect(),
                    };
                    self.push(i, t, scope);
                    return;
                }
                Term::Halt(v) => {
                    let i = Instr::Halt(self.classify_val(v, scope));
                    self.push(i, t, scope);
                    return;
                }
                Term::IfGc { rho, full, cont } => {
                    let r = self.classify_rgn(rho, scope);
                    let pc = self.push(
                        Instr::IfGc {
                            r,
                            full: PATCH,
                            cont: PATCH,
                        },
                        t,
                        scope,
                    );
                    let cont_pc = self.here();
                    self.compile_term(*cont, scope);
                    let full_pc = self.here();
                    self.compile_term(*full, scope);
                    if let Instr::IfGc { full, cont, .. } = &mut self.instrs[pc as usize] {
                        *full = full_pc;
                        *cont = cont_pc;
                    }
                    return;
                }
                Term::OpenTag { pkg, tvar, x, body } => {
                    let p = self.classify_val(pkg, scope);
                    let (sc1, tdst) = self.bind(scope, Ns::Tag, *tvar);
                    let (sc2, vdst) = self.bind(sc1, Ns::Val, *x);
                    self.push(Instr::OpenTag { pkg: p, tdst, vdst }, t, scope);
                    scope = sc2;
                    t = *body;
                }
                Term::OpenAlpha { pkg, avar, x, body } => {
                    let p = self.classify_val(pkg, scope);
                    let (sc1, adst) = self.bind(scope, Ns::Alpha, *avar);
                    let (sc2, vdst) = self.bind(sc1, Ns::Val, *x);
                    self.push(Instr::OpenAlpha { pkg: p, adst, vdst }, t, scope);
                    scope = sc2;
                    t = *body;
                }
                Term::OpenRgn { pkg, rvar, x, body } => {
                    let p = self.classify_val(pkg, scope);
                    let (sc1, rdst) = self.bind(scope, Ns::Rgn, *rvar);
                    let (sc2, vdst) = self.bind(sc1, Ns::Val, *x);
                    self.push(Instr::OpenRgn { pkg: p, rdst, vdst }, t, scope);
                    scope = sc2;
                    t = *body;
                }
                Term::LetRegion { rvar, body } => {
                    let (sc1, rdst) = self.bind(scope, Ns::Rgn, *rvar);
                    self.push(Instr::LetRegion { rdst }, t, scope);
                    scope = sc1;
                    t = *body;
                }
                Term::Only { regions, body } => {
                    let keep: Box<[RgnOp]> = regions
                        .iter()
                        .map(|r| self.classify_rgn(r, scope))
                        .collect();
                    self.push(Instr::Only { keep }, t, scope);
                    t = *body;
                }
                Term::Typecase {
                    tag,
                    int_arm,
                    arrow_arm,
                    prod_arm,
                    exist_arm,
                } => {
                    let tg = self.classify_tag(tag, scope);
                    let (t1, t2, prod_body) = prod_arm;
                    let (te, exist_body) = exist_arm;
                    let (psc1, t1dst) = self.bind(scope, Ns::Tag, *t1);
                    let (psc2, t2dst) = self.bind(psc1, Ns::Tag, *t2);
                    let (esc, tedst) = self.bind(scope, Ns::Tag, *te);
                    let pc = self.push(
                        Instr::Typecase {
                            tag: tg,
                            int_arm: PATCH,
                            arrow_arm: PATCH,
                            t1dst,
                            t2dst,
                            prod_arm: PATCH,
                            tedst,
                            exist_arm: PATCH,
                        },
                        t,
                        scope,
                    );
                    let ia = self.here();
                    self.compile_term(*int_arm, scope);
                    let aa = self.here();
                    self.compile_term(*arrow_arm, scope);
                    let pa = self.here();
                    self.compile_term(*prod_body, psc2);
                    let ea = self.here();
                    self.compile_term(*exist_body, esc);
                    if let Instr::Typecase {
                        int_arm,
                        arrow_arm,
                        prod_arm,
                        exist_arm,
                        ..
                    } = &mut self.instrs[pc as usize]
                    {
                        *int_arm = ia;
                        *arrow_arm = aa;
                        *prod_arm = pa;
                        *exist_arm = ea;
                    }
                    return;
                }
                Term::IfLeft {
                    x,
                    scrut,
                    left,
                    right,
                } => {
                    let s = self.classify_val(scrut, scope);
                    let (sc1, dst) = self.bind(scope, Ns::Val, *x);
                    let pc = self.push(
                        Instr::IfLeft {
                            dst,
                            scrut: s,
                            left: PATCH,
                            right: PATCH,
                        },
                        t,
                        scope,
                    );
                    let la = self.here();
                    self.compile_term(*left, sc1);
                    let ra = self.here();
                    self.compile_term(*right, sc1);
                    if let Instr::IfLeft { left, right, .. } = &mut self.instrs[pc as usize] {
                        *left = la;
                        *right = ra;
                    }
                    return;
                }
                Term::Set { dst, src, body } => {
                    let i = Instr::Set {
                        dst: self.classify_val(dst, scope),
                        src: self.classify_val(src, scope),
                    };
                    self.push(i, t, scope);
                    t = *body;
                }
                Term::Widen {
                    x,
                    from,
                    to,
                    tag,
                    v,
                    body,
                } => {
                    let i_from = self.classify_rgn(from, scope);
                    let i_to = self.classify_rgn(to, scope);
                    let i_tag = self.classify_tag(tag, scope);
                    let i_v = self.classify_val(v, scope);
                    let (sc1, dst) = self.bind(scope, Ns::Val, *x);
                    self.push(
                        Instr::Widen {
                            dst,
                            from: i_from,
                            to: i_to,
                            tag: i_tag,
                            v: i_v,
                        },
                        t,
                        scope,
                    );
                    scope = sc1;
                    t = *body;
                }
                Term::IfReg { r1, r2, eq, ne } => {
                    let i1 = self.classify_rgn(r1, scope);
                    let i2 = self.classify_rgn(r2, scope);
                    let pc = self.push(
                        Instr::IfReg {
                            r1: i1,
                            r2: i2,
                            eq: PATCH,
                            ne: PATCH,
                        },
                        t,
                        scope,
                    );
                    let ea = self.here();
                    self.compile_term(*eq, scope);
                    let na = self.here();
                    self.compile_term(*ne, scope);
                    if let Instr::IfReg { eq, ne, .. } = &mut self.instrs[pc as usize] {
                        *eq = ea;
                        *ne = na;
                    }
                    return;
                }
                Term::If0 {
                    scrut,
                    zero,
                    nonzero,
                } => {
                    let s = self.classify_val(scrut, scope);
                    let pc = self.push(
                        Instr::If0 {
                            scrut: s,
                            zero: PATCH,
                            nonzero: PATCH,
                        },
                        t,
                        scope,
                    );
                    let za = self.here();
                    self.compile_term(*zero, scope);
                    let na = self.here();
                    self.compile_term(*nonzero, scope);
                    if let Instr::If0 { zero, nonzero, .. } = &mut self.instrs[pc as usize] {
                        *zero = za;
                        *nonzero = na;
                    }
                    return;
                }
            }
        }
    }

    fn finish(self, label: String) -> Unit {
        Unit {
            label,
            instrs: self.instrs,
            metas: self.metas,
            scopes: self.scopes,
            val_slots: self.nval,
            tag_slots: self.ntag,
            rgn_slots: self.nrgn,
            alpha_slots: self.nalpha,
        }
    }
}

/// Does the value tree contain a `Code` literal? Substitution descends
/// into code definitions; operands holding one keep the generic path.
fn contains_code(v: &Value) -> bool {
    match v {
        Value::Code(_) => true,
        Value::Int(_) | Value::Var(_) | Value::Addr(..) => false,
        Value::Pair(a, b) => contains_code(a.node()) || contains_code(b.node()),
        Value::PackTag { val, .. } | Value::PackAlpha { val, .. } | Value::PackRgn { val, .. } => {
            contains_code(val.node())
        }
        Value::TagApp(f, ..) => contains_code(f.node()),
        Value::Inl(x) | Value::Inr(x) => contains_code(x.node()),
    }
}

/// Compiles one region position of a `Build` operand.
fn rgn_tpl(rho: &Region, binds: &[Bind]) -> RgnTpl {
    if let Region::Var(r) = rho {
        if let Some(b) = binds.iter().find(|b| b.ns == Ns::Rgn && b.sym == *r) {
            return RgnTpl::Reg(b.slot);
        }
    }
    RgnTpl::Imm(*rho)
}

/// Compiles the main term (empty initial scope).
fn compile_main(main: &Term, superinstructions: bool) -> Unit {
    let mut b = UnitBuilder {
        superinstructions,
        ..UnitBuilder::default()
    };
    b.compile_term(intern_term(main.clone()), NO_SCOPE);
    b.finish("<main>".to_string())
}

/// Compiles one code block. Parameters take the first slots of each file
/// (tags `0..`, regions `0..`, values `0..`, in declaration order), which
/// is what [`BcMachine`]'s call sequence writes.
fn compile_def(def: &CodeDef, superinstructions: bool) -> Unit {
    let mut b = UnitBuilder {
        superinstructions,
        ..UnitBuilder::default()
    };
    let mut sc = NO_SCOPE;
    for (t, _) in &def.tvars {
        sc = b.bind(sc, Ns::Tag, *t).0;
    }
    for r in &def.rvars {
        sc = b.bind(sc, Ns::Rgn, *r).0;
    }
    for (x, _) in &def.params {
        sc = b.bind(sc, Ns::Val, *x).0;
    }
    b.compile_term(intern_term(def.body.clone()), sc);
    b.finish(format!(
        "code {}[{}][{}]({})",
        def.name,
        def.tvars.len(),
        def.rvars.len(),
        def.params.len()
    ))
}

// ---------------------------------------------------------------------------
// VM
// ---------------------------------------------------------------------------

/// The register-based bytecode machine (see the [module docs](self)).
#[derive(Clone, Debug)]
pub struct BcMachine {
    mem: Memory,
    main: Term,
    dialect: Dialect,
    stats: Stats,
    telem: Telemetry,
    halted: Option<i64>,
    verify_every: u64,
    audit_mode: AuditMode,
    fault: Option<FaultPlan>,
    superinstructions: bool,
    cache: Option<Arc<CodeCache>>,
    /// A `TagApp` unfolding materialized last step, to be executed as an
    /// application this step (costs one step, like the other backends).
    /// Kept as parts — the equivalent `Term::App` is only built (and
    /// interned) on the rare [`BcMachine::resolved_control`] query.
    pending: Option<PendingApp>,
    vals: Vec<Value>,
    tag_regs: Vec<Tag>,
    rgn_regs: Vec<Region>,
    alpha_regs: Vec<Ty>,
    unit: u32,
    pc: u32,
    sub: u32,
    /// [`TyTpl::Sub`] memoization: `(unit, site, key hash)` ↦ substituted
    /// types, keyed by the captured values of the bound registers (hashed
    /// straight from the registers, so a probe allocates nothing). Collector
    /// copy sites cycle through one key per scanned tag shape per GC cycle,
    /// so buckets stay near length one.
    ty_cache: HashMap<(u32, u32, u64), TyCacheBucket, FxBuildHasher>,
    /// Scratch buffers for call operand resolution, reused across calls so
    /// the hot β-reduction path does not allocate.
    /// Shadow interned-id file: `val_ids[i]`, when set, is the interned
    /// identity of `vals[i]`. Writers that learn a value's id for free
    /// (projection of an interned pair child, opening a package, a
    /// register-to-register move) record it here so later uses as a child
    /// of a constructed node skip re-interning; writers of fresh values
    /// (puts, gets, primitives) store `None`.
    val_ids: Vec<Option<ValId>>,
    scratch_tags: Vec<Tag>,
    scratch_rgns: Vec<Region>,
    scratch_args: Vec<(Value, Option<ValId>)>,
}

/// A materialized `TagApp` unfolding: `(vJ~τ;~ρK)[~τ′][~ρ′](~v) ⇒
/// v[~τ][~ρ](~v)`, held as parts until the next step executes it.
#[derive(Clone, Debug)]
struct PendingApp {
    f: Value,
    tags: Arc<[Tag]>,
    regions: Arc<[Region]>,
    args: Box<[(Value, Option<ValId>)]>,
}

impl BcMachine {
    /// Loads a program: installs its code blocks in `cd` and schedules the
    /// main term. Compilation to bytecode happens lazily on the first step
    /// (so [`BcMachine::set_superinstructions`] can still take effect).
    pub fn load(program: &Program, config: MemConfig) -> BcMachine {
        let mut mem = Memory::new(config);
        for def in &program.code {
            let ty = def.ty();
            mem.install_code(Value::Code(Arc::new(def.clone())), ty);
        }
        BcMachine {
            mem,
            main: program.main.clone(),
            dialect: program.dialect,
            stats: Stats::default(),
            telem: Telemetry::default(),
            halted: None,
            verify_every: 0,
            audit_mode: AuditMode::default(),
            fault: None,
            superinstructions: true,
            cache: None,
            pending: None,
            vals: Vec::new(),
            tag_regs: Vec::new(),
            rgn_regs: Vec::new(),
            alpha_regs: Vec::new(),
            unit: 0,
            pc: 0,
            sub: 0,
            ty_cache: HashMap::default(),
            val_ids: Vec::new(),
            scratch_tags: Vec::new(),
            scratch_rgns: Vec::new(),
            scratch_args: Vec::new(),
        }
    }

    /// Attaches a telemetry observer; `step_interval > 0` also emits
    /// periodic heap samples.
    pub fn set_observer(&mut self, observer: SharedObserver, step_interval: u64) {
        self.telem.attach(observer, step_interval);
    }

    /// The current memory.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the memory — **fault-injection machinery**.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Audits the heap every `n` steps during [`BcMachine::run`]
    /// (`0` disables auditing, the default).
    pub fn set_verify_every(&mut self, n: u64) {
        self.verify_every = n;
    }

    /// Chooses how periodic audits walk the heap (default: incremental).
    pub fn set_audit_mode(&mut self, mode: AuditMode) {
        self.audit_mode = mode;
    }

    /// Arms a deterministic fault to be injected during [`BcMachine::run`]
    /// once the plan's step is reached (**fault-injection machinery**).
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// Enables or disables superinstruction fusion. Takes effect only
    /// before the first step (the flag is baked into the compiled code);
    /// later calls are ignored.
    pub fn set_superinstructions(&mut self, on: bool) {
        if self.stats.steps == 0 && self.superinstructions != on {
            self.superinstructions = on;
            self.cache = None;
            self.ty_cache.clear();
        }
    }

    /// The dialect this machine runs.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// Statistics so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The halt value, if the machine has halted.
    pub fn halted(&self) -> Option<i64> {
        self.halted
    }

    /// The control term with every register binding substituted in: a
    /// closed term structurally identical to the substitution machine's
    /// state at the same step. Built by walking the current instruction's
    /// compile-time scope chain and substituting register contents —
    /// the inverse of the slot resolution the compiler performed.
    pub fn resolved_control(&self) -> Term {
        if let Some(p) = &self.pending {
            return Term::App {
                f: p.f.clone(),
                tags: p.tags.to_vec(),
                regions: p.regions.to_vec(),
                args: p.args.iter().map(|(v, _)| v.clone()).collect(),
            };
        }
        let Some(cache) = &self.cache else {
            return self.main.clone();
        };
        let unit = &cache.units[self.unit as usize];
        let (src, scope) = match unit.instrs.get(self.pc as usize) {
            Some(Instr::Lets(ms)) => {
                let m = &ms[self.sub as usize];
                (m.src, m.scope)
            }
            _ => {
                let m = &unit.metas[self.pc as usize];
                (m.src, m.scope)
            }
        };
        let sub = self.scope_subst(unit, scope);
        sub.term(&src)
    }

    /// Runs the [`crate::verify`] heap auditor against the current state.
    ///
    /// # Errors
    ///
    /// Returns the first violated Fig. 7 invariant.
    pub fn audit(&self) -> Result<()> {
        let root = self.resolved_control();
        crate::verify::audit_state(&self.mem, self.dialect, &root)
    }

    /// Runs until `halt`, an error, or `fuel` steps — same contract and
    /// same audit/fault-injection cadence as the other backends.
    ///
    /// # Errors
    ///
    /// Returns a stuck-state error if no reduction rule applies, or an
    /// [`ErrorKind::OutOfMemory`] error if an allocation would exceed
    /// [`MemConfig::max_heap_words`].
    pub fn run(&mut self, fuel: u64) -> Result<Outcome> {
        // With no fault plan, no audit cadence, and no observer, nothing
        // can see intermediate per-step state, so the dispatch loop drops
        // the per-step hook checks and executes fused `Lets` chains one
        // whole chain per dispatch (the payoff of superinstruction
        // fusion). Statistics are accounted per counted step either way,
        // so `Stats` stay byte-identical to the substitution oracle.
        if self.fault.is_none() && self.verify_every == 0 && !self.telem.is_enabled() {
            return self.run_fast(fuel);
        }
        for _ in 0..fuel {
            match self.step() {
                Ok(StepOutcome::Continue) => {}
                Ok(StepOutcome::Halted(n)) => return Ok(Outcome::Halted(n)),
                Err(e) => {
                    if e.kind() == ErrorKind::OutOfMemory {
                        let limit = self.mem.config().max_heap_words.unwrap_or(0);
                        self.telem
                            .on_oom(self.stats.steps, self.mem.data_words(), limit);
                    }
                    return Err(e);
                }
            }
            self.try_inject();
            if self.verify_every > 0 && self.stats.steps.is_multiple_of(self.verify_every) {
                let full = self.audit_mode == AuditMode::Full || self.mem.wants_full_audit();
                let res = if full {
                    let r = self.audit();
                    if r.is_ok() {
                        self.mem.note_full_audit();
                    }
                    r
                } else {
                    crate::verify::audit_dirty(&mut self.mem, self.dialect)
                };
                if let Err(e) = res {
                    self.telem
                        .on_invariant_violation(self.stats.steps, &e.to_string());
                    return Ok(Outcome::InvariantViolation(e));
                }
            }
        }
        self.telem.on_fuel_exhausted(self.stats.steps);
        Ok(Outcome::OutOfFuel)
    }

    /// The unobserved dispatch loop: per-step hooks are provably no-ops,
    /// so each iteration is just dispatch + statistics. Fused chains
    /// execute back-to-back micro-ops without re-entering the dispatch
    /// match, one counted step (and one unit of fuel) per micro-op.
    fn run_fast(&mut self, fuel: u64) -> Result<Outcome> {
        if let Some(n) = self.halted {
            return Ok(Outcome::Halted(n));
        }
        self.ensure_compiled();
        let mut cache = match self.cache.take() {
            Some(c) => c,
            None => return Err(self.stuck("bytecode cache missing".into())),
        };
        let mut left = fuel;
        let out = loop {
            if left == 0 {
                self.telem.on_fuel_exhausted(self.stats.steps);
                break Ok(Outcome::OutOfFuel);
            }
            if self.pending.is_none() && self.superinstructions {
                if let Instr::Lets(ms) = &cache.units[self.unit as usize].instrs[self.pc as usize] {
                    let end = (ms.len() as u64).min(u64::from(self.sub) + left) as u32;
                    let mut sub = self.sub;
                    let mut err = None;
                    while sub < end {
                        let m = &ms[sub as usize];
                        self.stats.steps += 1;
                        left -= 1;
                        match self.eval_micro(&m.op) {
                            Ok((v, id)) => self.set_val(m.dst, v, id),
                            Err(e) => {
                                err = Some(e);
                                break;
                            }
                        }
                        self.stats.peak_data_words =
                            self.stats.peak_data_words.max(self.mem.data_words());
                        sub += 1;
                    }
                    if sub == ms.len() as u32 {
                        self.sub = 0;
                        self.pc += 1;
                    } else {
                        self.sub = sub;
                    }
                    if let Some(e) = err {
                        break Err(e);
                    }
                    continue;
                }
            }
            self.stats.steps += 1;
            left -= 1;
            match self.exec_with(&mut cache) {
                Ok(true) => {
                    self.stats.peak_data_words =
                        self.stats.peak_data_words.max(self.mem.data_words());
                }
                Ok(false) => match self.halted {
                    Some(n) => break Ok(Outcome::Halted(n)),
                    None => {
                        break Err(self.stuck("step ended without a term or a halt value".into()))
                    }
                },
                Err(e) => break Err(e),
            }
        };
        self.cache = Some(cache);
        match out {
            Err(e) => {
                if e.kind() == ErrorKind::OutOfMemory {
                    let limit = self.mem.config().max_heap_words.unwrap_or(0);
                    self.telem
                        .on_oom(self.stats.steps, self.mem.data_words(), limit);
                }
                Err(e)
            }
            ok => ok,
        }
    }

    fn try_inject(&mut self) {
        let Some(plan) = self.fault else { return };
        if self.stats.steps < plan.step {
            return;
        }
        let root = self.resolved_control();
        if crate::faults::apply(&plan, &mut self.mem, &root).is_some() {
            self.fault = None;
        }
    }

    /// Takes one machine step (one λGC reduction rule; a fused chain still
    /// steps through its micro-ops one at a time).
    ///
    /// # Errors
    ///
    /// Returns a stuck-state or memory error if no rule applies.
    pub fn step(&mut self) -> Result<StepOutcome> {
        if let Some(n) = self.halted {
            return Ok(StepOutcome::Halted(n));
        }
        self.ensure_compiled();
        self.stats.steps += 1;
        self.telem.on_step(self.stats.steps, &self.mem);
        let continued = self.exec_one()?;
        if continued {
            self.stats.peak_data_words = self.stats.peak_data_words.max(self.mem.data_words());
            Ok(StepOutcome::Continue)
        } else {
            match self.halted {
                Some(n) => Ok(StepOutcome::Halted(n)),
                None => Err(self.stuck("step ended without a term or a halt value".into())),
            }
        }
    }

    fn stuck(&self, msg: String) -> LangError {
        stuck_err(msg).in_context(format!("dialect {}", self.dialect))
    }

    fn ensure_compiled(&mut self) {
        if self.cache.is_some() {
            return;
        }
        let mut cache = CodeCache {
            units: vec![compile_main(&self.main, self.superinstructions)],
            by_def: HashMap::default(),
        };
        if let Some(cd) = self.mem.region(CD) {
            for (_, v) in cd.iter() {
                if let Value::Code(def) = v {
                    let u = cache.units.len() as u32;
                    cache.units.push(compile_def(def, self.superinstructions));
                    cache.by_def.insert(Arc::as_ptr(def) as usize, u);
                }
            }
        }
        let (nv, nt, nr, na) = {
            let u0 = &cache.units[0];
            (u0.val_slots, u0.tag_slots, u0.rgn_slots, u0.alpha_slots)
        };
        self.cache = Some(Arc::new(cache));
        self.unit = 0;
        self.pc = 0;
        self.sub = 0;
        self.grow_regs(nv, nt, nr, na);
    }

    fn grow_regs(&mut self, nv: u32, nt: u32, nr: u32, na: u32) {
        if self.vals.len() < nv as usize {
            self.vals.resize(nv as usize, Value::Int(0));
            self.val_ids.resize(nv as usize, None);
        }
        if self.tag_regs.len() < nt as usize {
            self.tag_regs.resize(nt as usize, Tag::Int);
        }
        if self.rgn_regs.len() < nr as usize {
            self.rgn_regs.resize(nr as usize, Region::Name(CD));
        }
        if self.alpha_regs.len() < na as usize {
            self.alpha_regs.resize(na as usize, Ty::Int);
        }
    }

    /// Resolves a value operand against the registers.
    fn rv(&mut self, op: &ValOp) -> Value {
        match op {
            ValOp::Reg(i) => self.vals[*i as usize].clone(),
            ValOp::Imm(v) => v.clone(),
            ValOp::Build { val, binds, tpl } => {
                if matches!(tpl, VTpl::Generic) {
                    let mut sub = Subst::new();
                    for b in binds.iter() {
                        match b.ns {
                            Ns::Val => sub.bind_val(b.sym, self.vals[b.slot as usize].clone()),
                            Ns::Tag => sub.bind_tag(b.sym, self.tag_regs[b.slot as usize].clone()),
                            Ns::Rgn => sub.bind_rgn(b.sym, self.rgn_regs[b.slot as usize]),
                            Ns::Alpha => {
                                sub.bind_alpha(b.sym, self.alpha_regs[b.slot as usize].clone())
                            }
                        }
                    }
                    sub.value(val)
                } else {
                    self.inst_val(tpl)
                }
            }
        }
    }

    /// Writes a value register together with its shadow id (pass `None`
    /// when the interned identity is unknown).
    fn set_val(&mut self, dst: u32, v: Value, id: Option<ValId>) {
        self.vals[dst as usize] = v;
        self.val_ids[dst as usize] = id;
    }

    /// The interned id of an operand when it is known without interning:
    /// a register whose shadow id is set, or a pre-interned immediate.
    fn rvid_opt(&self, op: &ValOp) -> Option<ValId> {
        match op {
            ValOp::Reg(i) => self.val_ids[*i as usize],
            _ => None,
        }
    }

    /// Resolves an operand to an interned id, interning only when the id
    /// is not already known; a register's freshly computed id is
    /// backfilled into the shadow file.
    fn rvid(&mut self, op: &ValOp) -> ValId {
        if let Some(id) = self.rvid_opt(op) {
            return id;
        }
        let v = self.rv(op);
        let id = intern_value(v);
        if let ValOp::Reg(i) = op {
            self.val_ids[*i as usize] = Some(id);
        }
        id
    }

    /// Instantiates a value template against the registers — the runtime
    /// half of [`UnitBuilder::vtpl_node`].
    fn inst_val(&mut self, t: &VTpl) -> Value {
        match t {
            VTpl::ImmId(id) => id.node().clone(),
            VTpl::Reg(i) => self.vals[*i as usize].clone(),
            VTpl::Pair(a, b) => Value::Pair(self.inst_id(a), self.inst_id(b)),
            VTpl::PackTag {
                tvar,
                kind,
                tag,
                val,
                body_ty,
            } => Value::PackTag {
                tvar: *tvar,
                kind: *kind,
                tag: self.inst_tag(tag),
                val: self.inst_id(val),
                body_ty: self.inst_ty(body_ty),
            },
            VTpl::PackAlpha {
                avar,
                regions,
                witness,
                val,
                body_ty,
            } => Value::PackAlpha {
                avar: *avar,
                regions: regions.iter().map(|r| self.inst_rgn(r)).collect(),
                witness: self.inst_ty(witness),
                val: self.inst_id(val),
                body_ty: self.inst_ty(body_ty),
            },
            VTpl::PackRgn {
                rvar,
                bound,
                witness,
                val,
                body_ty,
            } => Value::PackRgn {
                rvar: *rvar,
                bound: bound.iter().map(|r| self.inst_rgn(r)).collect(),
                witness: self.inst_rgn(witness),
                val: self.inst_id(val),
                body_ty: self.inst_ty(body_ty),
            },
            VTpl::TagApp(f, ts, rs) => Value::TagApp(
                self.inst_id(f),
                ts.iter().map(|tau| self.inst_tag(tau)).collect(),
                rs.iter().map(|r| self.inst_rgn(r)).collect(),
            ),
            VTpl::Inl(x) => Value::Inl(self.inst_id(x)),
            VTpl::Inr(x) => Value::Inr(self.inst_id(x)),
            // Never nested: a tree containing `Code` compiles to `Generic`
            // at the root, and `rv` dispatches root `Generic` to the
            // `Subst` path before instantiating.
            VTpl::Generic => Value::Int(0),
        }
    }

    /// Instantiates a child template to an interned value; the `ImmId`
    /// fast path is the substituter's fingerprint skip.
    fn inst_id(&mut self, t: &VTpl) -> ValId {
        match t {
            VTpl::ImmId(id) => *id,
            VTpl::Reg(i) => {
                if let Some(id) = self.val_ids[*i as usize] {
                    return id;
                }
                let id = intern_value(self.vals[*i as usize].clone());
                self.val_ids[*i as usize] = Some(id);
                id
            }
            _ => intern_value(self.inst_val(t)),
        }
    }

    fn inst_tag(&self, t: &TagTpl) -> Tag {
        match t {
            TagTpl::Imm(tau) => tau.clone(),
            TagTpl::Reg(i) => self.tag_regs[*i as usize].clone(),
            TagTpl::AnyArrow(i) => match &self.tag_regs[*i as usize] {
                // `AnyArrow(t)` follows `t` under renaming; a concrete
                // arrow collapses it (mirrors `Subst::tag`).
                Tag::Var(t2) => Tag::AnyArrow(*t2),
                concrete @ Tag::Arrow(_) => concrete.clone(),
                Tag::AnyArrow(t2) => Tag::AnyArrow(*t2),
                other => other.clone(),
            },
            TagTpl::Sub { tag, binds } => {
                let mut sub = Subst::new();
                for (t2, slot) in binds.iter() {
                    sub.bind_tag(*t2, self.tag_regs[*slot as usize].clone());
                }
                sub.tag(tag)
            }
        }
    }

    fn inst_rgn(&self, t: &RgnTpl) -> Region {
        match t {
            RgnTpl::Imm(r) => *r,
            RgnTpl::Reg(i) => self.rgn_regs[*i as usize],
        }
    }

    /// Instantiates a type position. `Sub` sites memoize on the captured
    /// values of the bound registers, so repeated allocations of the same
    /// closure type (per scanned tag shape, per GC cycle) pay for one
    /// substitution each; everything after is a probe of shallow compares
    /// plus one node clone.
    fn inst_ty(&mut self, t: &TyTpl) -> Ty {
        match t {
            TyTpl::Imm(sigma) => sigma.clone(),
            TyTpl::Sub {
                ty,
                tid,
                binds,
                site,
            } => {
                // Hash the captured register values straight off the
                // register files — a probe allocates nothing. `binds` never
                // contains `Ns::Val` (types have no value variables), so
                // stored keys align with `binds` index-for-index; the full
                // structural compare below makes hash collisions harmless.
                let mut hasher = FxHasher::default();
                for b in binds.iter() {
                    b.sym.hash(&mut hasher);
                    match b.ns {
                        Ns::Tag => self.tag_regs[b.slot as usize].hash(&mut hasher),
                        Ns::Rgn => self.rgn_regs[b.slot as usize].hash(&mut hasher),
                        Ns::Alpha => self.alpha_regs[b.slot as usize].hash(&mut hasher),
                        Ns::Val => {}
                    }
                }
                let h = hasher.finish();
                if let Some(entries) = self.ty_cache.get(&(self.unit, *site, h)) {
                    'entry: for (k, sigma) in entries.iter() {
                        for (kv, b) in k.iter().zip(binds.iter()) {
                            let eq = match kv {
                                BindVal::Tag(t0) => *t0 == self.tag_regs[b.slot as usize],
                                BindVal::Rgn(r0) => *r0 == self.rgn_regs[b.slot as usize],
                                BindVal::Alpha(a0) => *a0 == self.alpha_regs[b.slot as usize],
                            };
                            if !eq {
                                continue 'entry;
                            }
                        }
                        return sigma.clone();
                    }
                }
                // Local miss: consult the process-wide memo. Interned type
                // ids and the captured runtime values recur across machines
                // and runs (the collector image is shared), so a closed
                // substitution computed by one run is a hit for every later
                // one regardless of which machine asks.
                if let Some(out) = self.ty_sub_global(*tid, h, binds) {
                    let key = self.capture_binds(binds);
                    self.ty_cache_insert(*site, h, key, out.clone());
                    return out;
                }
                let mut sub = Subst::new();
                let key = self.capture_binds(binds);
                for (b, kv) in binds.iter().zip(key.iter()) {
                    match kv {
                        BindVal::Tag(v) => sub.bind_tag(b.sym, v.clone()),
                        BindVal::Rgn(v) => sub.bind_rgn(b.sym, *v),
                        BindVal::Alpha(v) => sub.bind_alpha(b.sym, v.clone()),
                    }
                }
                let out = sub.ty(ty);
                let gkey: Box<[(Symbol, BindVal)]> = binds
                    .iter()
                    .map(|b| b.sym)
                    .zip(key.iter().cloned())
                    .collect();
                ty_sub_global_insert(*tid, h, gkey, out.clone());
                self.ty_cache_insert(*site, h, key, out.clone());
                out
            }
        }
    }

    /// Snapshots the register values a `Sub` site binds, in `binds`
    /// order, as the structural half of a substitution-cache key.
    fn capture_binds(&self, binds: &[Bind]) -> Vec<BindVal> {
        binds
            .iter()
            .filter(|b| b.ns != Ns::Val)
            .map(|b| match b.ns {
                Ns::Tag => BindVal::Tag(self.tag_regs[b.slot as usize].clone()),
                Ns::Rgn => BindVal::Rgn(self.rgn_regs[b.slot as usize]),
                _ => BindVal::Alpha(self.alpha_regs[b.slot as usize].clone()),
            })
            .collect()
    }

    /// Inserts into the per-machine substitution cache, clearing it
    /// wholesale at the cap: old entries die with their GC cycle (keys
    /// mention reclaimed regions), so per-site eviction buys nothing.
    fn ty_cache_insert(&mut self, site: u32, h: u64, key: Vec<BindVal>, out: Ty) {
        if self.ty_cache.len() >= 1 << 13 {
            self.ty_cache.clear();
        }
        self.ty_cache
            .entry((self.unit, site, h))
            .or_default()
            .push((key.into_boxed_slice(), out));
    }

    /// Probes the process-wide substitution memo: same interned type, same
    /// binder symbols, same captured values (compared straight off the
    /// register files) — the closed substitution is a pure function of
    /// those, so the cached output is exact.
    fn ty_sub_global(&self, tid: TyId, h: u64, binds: &[Bind]) -> Option<Ty> {
        let guard = TY_SUB_MEMO
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let bucket = guard.as_ref()?.get(&(tid, h))?;
        'entry: for (k, sigma) in bucket.iter() {
            if k.len() != binds.len() {
                continue;
            }
            for ((sym, kv), b) in k.iter().zip(binds.iter()) {
                if *sym != b.sym {
                    continue 'entry;
                }
                let eq = match kv {
                    BindVal::Tag(t0) => *t0 == self.tag_regs[b.slot as usize],
                    BindVal::Rgn(r0) => *r0 == self.rgn_regs[b.slot as usize],
                    BindVal::Alpha(a0) => *a0 == self.alpha_regs[b.slot as usize],
                };
                if !eq {
                    continue 'entry;
                }
            }
            return Some(sigma.clone());
        }
        None
    }

    fn rtag(&self, op: &TagOp) -> Tag {
        match op {
            TagOp::Reg(i) => self.tag_regs[*i as usize].clone(),
            TagOp::Imm(t) => t.clone(),
            TagOp::Build { tag, binds } => {
                let mut sub = Subst::new();
                for (t, slot) in binds.iter() {
                    sub.bind_tag(*t, self.tag_regs[*slot as usize].clone());
                }
                sub.tag(tag)
            }
        }
    }

    /// Resolves a tag operand to *normal form* (what `call`, `typecase`,
    /// and `widen` consume). Tag registers only ever hold normal tags —
    /// every writer normalizes first, and normal forms are closed under the
    /// subterm extraction `typecase` performs — so the `Reg` arm skips
    /// normalization outright; `Imm` and `Build` go through the memoized
    /// normalizer.
    fn rtag_nf(&self, op: &TagOp) -> Tag {
        match op {
            TagOp::Reg(i) => self.tag_regs[*i as usize].clone(),
            _ => tags::normalize(&self.rtag(op)),
        }
    }

    fn rrgn(&self, op: &RgnOp) -> Region {
        match op {
            RgnOp::Reg(i) => self.rgn_regs[*i as usize],
            RgnOp::Imm(r) => *r,
        }
    }

    fn rname(&self, op: &RgnOp) -> Result<RegionName> {
        match self.rrgn(op) {
            Region::Name(nu) => Ok(nu),
            Region::Var(r) => Err(self.stuck(format!("unsubstituted region variable {r}"))),
        }
    }

    /// Reconstructs the environment at `scope` as a substitution, binding
    /// outermost-first so shadowing resolves innermost like the other
    /// backends.
    fn scope_subst(&self, unit: &Unit, scope: u32) -> Subst {
        let mut chain = Vec::new();
        let mut s = scope;
        while s != NO_SCOPE {
            chain.push(s);
            s = unit.scopes[s as usize].parent;
        }
        let mut sub = Subst::new();
        for &s in chain.iter().rev() {
            let n = &unit.scopes[s as usize];
            match n.ns {
                Ns::Val => sub.bind_val(n.sym, self.vals[n.slot as usize].clone()),
                Ns::Tag => sub.bind_tag(n.sym, self.tag_regs[n.slot as usize].clone()),
                Ns::Rgn => sub.bind_rgn(n.sym, self.rgn_regs[n.slot as usize]),
                Ns::Alpha => sub.bind_alpha(n.sym, self.alpha_regs[n.slot as usize].clone()),
            }
        }
        sub
    }

    /// Executes one rule. Returns `Ok(true)` to continue, `Ok(false)` when
    /// the machine halted this step.
    /// Moves the code cache out of `self` for the duration of one step:
    /// the dispatch body borrows instructions from it freely while mutating
    /// registers, and the sole strong reference means a fault-injection
    /// recompile extends it in place instead of deep-cloning.
    fn exec_one(&mut self) -> Result<bool> {
        let mut cache = match self.cache.take() {
            Some(c) => c,
            None => return Err(self.stuck("bytecode cache missing".into())),
        };
        let r = self.exec_with(&mut cache);
        self.cache = Some(cache);
        r
    }

    fn exec_with(&mut self, cache: &mut Arc<CodeCache>) -> Result<bool> {
        if let Some(p) = self.pending.take() {
            return self.exec_pending(cache, p);
        }
        match &cache.units[self.unit as usize].instrs[self.pc as usize] {
            Instr::Lets(ms) => {
                let m = &ms[self.sub as usize];
                let (v, id) = self.eval_micro(&m.op)?;
                self.set_val(m.dst, v, id);
                self.sub += 1;
                if self.sub as usize == ms.len() {
                    self.sub = 0;
                    self.pc += 1;
                }
                Ok(true)
            }
            Instr::Call {
                f,
                tags: ts,
                rgns,
                args,
            } => {
                let fv = self.rv(f);
                match fv {
                    Value::Addr(nu, loc) => {
                        let code = match self.mem.get(nu, loc)? {
                            Value::Code(def) => Arc::clone(def),
                            other => {
                                return Err(
                                    self.stuck(format!("application of non-code value {other:?}"))
                                )
                            }
                        };
                        self.check_arity(&code, ts.len(), rgns.len(), args.len())?;
                        // Operands land in scratch buffers reused across
                        // calls, so the steady-state β-step is allocation
                        // free.
                        let mut rtags = std::mem::take(&mut self.scratch_tags);
                        let mut rrgns = std::mem::take(&mut self.scratch_rgns);
                        let mut rargs = std::mem::take(&mut self.scratch_args);
                        rtags.clear();
                        rrgns.clear();
                        rargs.clear();
                        rtags.extend(ts.iter().map(|tau| self.rtag_nf(tau)));
                        rrgns.extend(rgns.iter().map(|r| self.rrgn(r)));
                        for v in args.iter() {
                            let id = self.rvid_opt(v);
                            let rv = self.rv(v);
                            rargs.push((rv, id));
                        }
                        self.enter_def(cache, &code, &mut rtags, &mut rrgns, &mut rargs);
                        self.scratch_tags = rtags;
                        self.scratch_rgns = rrgns;
                        self.scratch_args = rargs;
                        Ok(true)
                    }
                    Value::TagApp(inner, rec_tags, rec_rgns) => {
                        // (vJ~τ;~ρK)[~τ][~ρ](~v) ⇒ v[~τ][~ρ](~v): spend one
                        // step materializing the unfolded application,
                        // exactly like the other backends.
                        self.pending = Some(PendingApp {
                            f: (*inner).clone(),
                            tags: rec_tags,
                            regions: rec_rgns,
                            args: {
                                let mut out = Vec::with_capacity(args.len());
                                for v in args.iter() {
                                    let id = self.rvid_opt(v);
                                    out.push((self.rv(v), id));
                                }
                                out.into_boxed_slice()
                            },
                        });
                        Ok(true)
                    }
                    other => Err(self.stuck(format!("application of non-code value {other:?}"))),
                }
            }
            Instr::Halt(v) => match self.rv(v) {
                Value::Int(n) => {
                    self.halted = Some(n);
                    self.telem.on_halt(n, self.stats.steps);
                    Ok(false)
                }
                other => Err(self.stuck(format!("halt on non-integer value {other:?}"))),
            },
            Instr::IfGc { r, full, cont } => {
                let nu = self.rname(r)?;
                if self.mem.is_full(nu)? {
                    self.stats.gc_triggers += 1;
                    self.telem.on_gc_trigger(nu, &self.mem, self.stats.steps);
                    self.pc = *full;
                } else {
                    self.pc = *cont;
                }
                Ok(true)
            }
            Instr::OpenTag { pkg, tdst, vdst } => match self.rv(pkg) {
                Value::PackTag { tag, val, .. } => {
                    // Fig. 5 normalizes the witness tag before binding.
                    // Leaf tags are normal by definition, which skips the
                    // intern + memo round-trip for the common case of
                    // opening a scanned leaf object.
                    let nf = match tag {
                        Tag::Var(_) | Tag::Int | Tag::AnyArrow(_) => tag,
                        _ => tags::normalize(&tag),
                    };
                    self.tag_regs[*tdst as usize] = nf;
                    self.set_val(*vdst, val.node().clone(), Some(val));
                    self.pc += 1;
                    Ok(true)
                }
                other => Err(self.stuck(format!("open(tag) on non-package {other:?}"))),
            },
            Instr::OpenAlpha { pkg, adst, vdst } => match self.rv(pkg) {
                Value::PackAlpha { witness, val, .. } => {
                    self.alpha_regs[*adst as usize] = witness;
                    self.set_val(*vdst, val.node().clone(), Some(val));
                    self.pc += 1;
                    Ok(true)
                }
                other => Err(self.stuck(format!("open(α) on non-package {other:?}"))),
            },
            Instr::OpenRgn { pkg, rdst, vdst } => match self.rv(pkg) {
                Value::PackRgn { witness, val, .. } => {
                    let nu = match witness {
                        Region::Name(nu) => nu,
                        Region::Var(r) => {
                            return Err(self.stuck(format!("unsubstituted region variable {r}")))
                        }
                    };
                    self.rgn_regs[*rdst as usize] = Region::Name(nu);
                    self.set_val(*vdst, val.node().clone(), Some(val));
                    self.pc += 1;
                    Ok(true)
                }
                other => Err(self.stuck(format!("open(region) on non-package {other:?}"))),
            },
            Instr::LetRegion { rdst } => {
                let nu = self.mem.alloc_region();
                self.stats.regions_created += 1;
                self.telem.on_region_alloc(nu, &self.mem, self.stats.steps);
                self.rgn_regs[*rdst as usize] = Region::Name(nu);
                self.pc += 1;
                Ok(true)
            }
            Instr::Only { keep } => {
                let mut names = Vec::with_capacity(keep.len());
                for r in keep.iter() {
                    names.push(self.rname(r)?);
                }
                let report = self.mem.only(&names);
                self.telem.on_only(&report, &self.mem, self.stats.steps);
                self.stats.record_reclaim(report);
                self.pc += 1;
                Ok(true)
            }
            Instr::Typecase {
                tag,
                int_arm,
                arrow_arm,
                t1dst,
                t2dst,
                prod_arm,
                tedst,
                exist_arm,
            } => {
                self.stats.typecase_dispatches += 1;
                let nf = self.rtag_nf(tag);
                match nf {
                    Tag::Int => {
                        self.pc = *int_arm;
                        Ok(true)
                    }
                    Tag::Arrow(_) => {
                        self.pc = *arrow_arm;
                        Ok(true)
                    }
                    Tag::Prod(a, b) => {
                        self.tag_regs[*t1dst as usize] = (*a).clone();
                        self.tag_regs[*t2dst as usize] = (*b).clone();
                        self.pc = *prod_arm;
                        Ok(true)
                    }
                    Tag::Exist(t, body_tag) => {
                        self.tag_regs[*tedst as usize] = Tag::Lam(t, body_tag);
                        self.pc = *exist_arm;
                        Ok(true)
                    }
                    other => Err(self.stuck(format!("typecase on non-constructor tag {other:?}"))),
                }
            }
            Instr::IfLeft {
                dst,
                scrut,
                left,
                right,
            } => {
                let id = self.rvid_opt(scrut);
                match self.rv(scrut) {
                    v @ Value::Inl(_) => {
                        self.set_val(*dst, v, id);
                        self.pc = *left;
                        Ok(true)
                    }
                    v @ Value::Inr(_) => {
                        self.set_val(*dst, v, id);
                        self.pc = *right;
                        Ok(true)
                    }
                    other => Err(self.stuck(format!("ifleft on non-sum value {other:?}"))),
                }
            }
            Instr::Set { dst, src } => match self.rv(dst) {
                Value::Addr(nu, loc) => {
                    let v = self.rv(src);
                    self.mem.set(nu, loc, v)?;
                    self.stats.forwarding_installs += 1;
                    self.pc += 1;
                    Ok(true)
                }
                other => Err(self.stuck(format!("set on non-address {other:?}"))),
            },
            Instr::Widen {
                dst,
                from,
                to,
                tag,
                v,
            } => {
                // Operationally a no-op; only the observer memory typing Ψ
                // is rewritten when tracked.
                let id = self.rvid_opt(v);
                let rv = self.rv(v);
                if self.mem.config().track_types {
                    let from = self.rname(from)?;
                    let to = self.rname(to)?;
                    let nf = self.rtag_nf(tag);
                    widen_psi(&mut self.mem, &rv, &nf, from, to)?;
                }
                self.set_val(*dst, rv, id);
                self.pc += 1;
                Ok(true)
            }
            Instr::IfReg { r1, r2, eq, ne } => {
                let n1 = self.rname(r1)?;
                let n2 = self.rname(r2)?;
                self.pc = if n1 == n2 { *eq } else { *ne };
                Ok(true)
            }
            Instr::If0 {
                scrut,
                zero,
                nonzero,
            } => match self.rv(scrut) {
                Value::Int(0) => {
                    self.pc = *zero;
                    Ok(true)
                }
                Value::Int(_) => {
                    self.pc = *nonzero;
                    Ok(true)
                }
                other => Err(self.stuck(format!("if0 on non-integer {other:?}"))),
            },
        }
    }

    /// Executes a materialized `TagApp` unfolding: a closed application,
    /// interpreted directly (no compilation — each unfolding is unique, so
    /// caching it as a unit would never pay off).
    fn exec_pending(&mut self, cache: &mut Arc<CodeCache>, p: PendingApp) -> Result<bool> {
        match p.f {
            Value::Addr(nu, loc) => {
                let code = match self.mem.get(nu, loc)? {
                    Value::Code(def) => Arc::clone(def),
                    other => {
                        return Err(self.stuck(format!("application of non-code value {other:?}")))
                    }
                };
                self.check_arity(&code, p.tags.len(), p.regions.len(), p.args.len())?;
                let mut rtags = std::mem::take(&mut self.scratch_tags);
                let mut rrgns = std::mem::take(&mut self.scratch_rgns);
                rtags.clear();
                rrgns.clear();
                rtags.extend(p.tags.iter().map(tags::normalize));
                rrgns.extend_from_slice(&p.regions);
                let mut rargs: Vec<(Value, Option<ValId>)> = p.args.into_vec();
                self.enter_def(cache, &code, &mut rtags, &mut rrgns, &mut rargs);
                self.scratch_tags = rtags;
                self.scratch_rgns = rrgns;
                Ok(true)
            }
            Value::TagApp(inner, rec_tags, rec_rgns) => {
                self.pending = Some(PendingApp {
                    f: (*inner).clone(),
                    tags: rec_tags,
                    regions: rec_rgns,
                    args: p.args,
                });
                Ok(true)
            }
            other => Err(self.stuck(format!("application of non-code value {other:?}"))),
        }
    }

    fn check_arity(&self, code: &CodeDef, nt: usize, nr: usize, na: usize) -> Result<()> {
        if code.tvars.len() != nt || code.rvars.len() != nr || code.params.len() != na {
            return Err(self.stuck(format!(
                "arity mismatch calling {}: expected [{}][{}]({}), got [{}][{}]({})",
                code.name,
                code.tvars.len(),
                code.rvars.len(),
                code.params.len(),
                nt,
                nr,
                na
            )));
        }
        Ok(())
    }

    /// β-reduction: jump to the code block's unit with parameters written
    /// into the leading register slots. The operands were fully resolved
    /// against the caller's registers first, so self-calls are safe; stale
    /// caller registers are never read again (CPS — control never
    /// returns).
    fn enter_def(
        &mut self,
        cache: &mut Arc<CodeCache>,
        def: &Arc<CodeDef>,
        rtags: &mut Vec<Tag>,
        rrgns: &mut Vec<Region>,
        rargs: &mut Vec<(Value, Option<ValId>)>,
    ) {
        let u = self.unit_for_def(cache, def);
        let (nv, nt, nr, na) = {
            let unit = &cache.units[u as usize];
            (
                unit.val_slots,
                unit.tag_slots,
                unit.rgn_slots,
                unit.alpha_slots,
            )
        };
        self.grow_regs(nv, nt, nr, na);
        for (i, tau) in rtags.drain(..).enumerate() {
            self.tag_regs[i] = tau;
        }
        for (i, rho) in rrgns.drain(..).enumerate() {
            self.rgn_regs[i] = rho;
        }
        for (i, (v, id)) in rargs.drain(..).enumerate() {
            self.vals[i] = v;
            self.val_ids[i] = id;
        }
        self.unit = u;
        self.pc = 0;
        self.sub = 0;
    }

    /// The unit for an installed code block. The loader compiles every
    /// block in `cd` eagerly, so the map lookup only misses when fault
    /// injection rewired the heap to a code value the loader never saw;
    /// compile it on the spot in that case.
    fn unit_for_def(&mut self, cache: &mut Arc<CodeCache>, def: &Arc<CodeDef>) -> u32 {
        let key = Arc::as_ptr(def) as usize;
        if let Some(&u) = cache.by_def.get(&key) {
            return u;
        }
        let unit = compile_def(def, self.superinstructions);
        let c = Arc::make_mut(cache);
        let u = c.units.len() as u32;
        c.units.push(unit);
        c.by_def.insert(key, u);
        u
    }

    fn eval_micro(&mut self, op: &MicroOp) -> Result<(Value, Option<ValId>)> {
        match op {
            MicroOp::Val(v) => {
                let id = self.rvid_opt(v);
                Ok((self.rv(v), id))
            }
            MicroOp::Proj(i, v) => {
                // Projection reads a pair child that is interned by
                // construction, so the result's id is always known.
                if let ValOp::Reg(r) = v {
                    return match &self.vals[*r as usize] {
                        Value::Pair(a, b) => {
                            let id = if *i == 1 { *a } else { *b };
                            Ok((id.node().clone(), Some(id)))
                        }
                        other => Err(self.stuck(format!("projection π{i} of non-pair {other:?}"))),
                    };
                }
                match self.rv(v) {
                    Value::Pair(a, b) => {
                        let id = if *i == 1 { a } else { b };
                        Ok((id.node().clone(), Some(id)))
                    }
                    other => Err(self.stuck(format!("projection π{i} of non-pair {other:?}"))),
                }
            }
            MicroOp::Put(r, v) => {
                let nu = self.rname(r)?;
                let rv = self.rv(v);
                Ok((self.do_put(nu, rv)?, None))
            }
            MicroOp::PutPair(r, a, b) => {
                let nu = self.rname(r)?;
                let aid = self.rvid(a);
                let bid = self.rvid(b);
                let rv = Value::Pair(aid, bid);
                Ok((self.do_put(nu, rv)?, None))
            }
            MicroOp::Get(v) => match self.rv(v) {
                Value::Addr(nu, loc) => Ok((self.mem.get(nu, loc)?.clone(), None)),
                other => Err(self.stuck(format!("get of non-address {other:?}"))),
            },
            MicroOp::Strip(v) => match self.rv(v) {
                Value::Inl(x) | Value::Inr(x) => Ok((x.node().clone(), Some(x))),
                other => Err(self.stuck(format!("strip of untagged value {other:?}"))),
            },
            MicroOp::Prim(p, a, b) => match (self.rv(a), self.rv(b)) {
                (Value::Int(x), Value::Int(y)) => Ok((Value::Int(p.apply(x, y)), None)),
                (a, b) => Err(self.stuck(format!("primitive {p} on non-integers {a:?}, {b:?}"))),
            },
        }
    }

    fn do_put(&mut self, nu: RegionName, rv: Value) -> Result<Value> {
        let rec = self.mem.put_counted(nu, rv)?;
        self.stats.allocations += 1;
        self.stats.words_allocated += rec.words as u64;
        if let Some(alloc) = rec.page {
            self.telem.on_page_alloc(nu, alloc, self.stats.steps);
        }
        self.telem.on_put(nu, rec.words, self.stats.steps);
        Ok(Value::Addr(nu, rec.loc))
    }
}

impl Machine for BcMachine {
    fn set_observer(&mut self, observer: SharedObserver, step_interval: u64) {
        BcMachine::set_observer(self, observer, step_interval);
    }
    fn set_verify_every(&mut self, n: u64) {
        BcMachine::set_verify_every(self, n);
    }
    fn set_audit_mode(&mut self, mode: AuditMode) {
        BcMachine::set_audit_mode(self, mode);
    }
    fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        BcMachine::set_fault_plan(self, plan);
    }
    fn set_superinstructions(&mut self, on: bool) {
        BcMachine::set_superinstructions(self, on);
    }
    fn memory(&self) -> &Memory {
        BcMachine::memory(self)
    }
    fn memory_mut(&mut self) -> &mut Memory {
        BcMachine::memory_mut(self)
    }
    fn dialect(&self) -> Dialect {
        BcMachine::dialect(self)
    }
    fn stats(&self) -> &Stats {
        BcMachine::stats(self)
    }
    fn halted(&self) -> Option<i64> {
        BcMachine::halted(self)
    }
    fn resolved_control(&self) -> Term {
        BcMachine::resolved_control(self)
    }
    fn audit(&self) -> Result<()> {
        BcMachine::audit(self)
    }
    fn step(&mut self) -> Result<StepOutcome> {
        BcMachine::step(self)
    }
    fn run(&mut self, fuel: u64) -> Result<Outcome> {
        BcMachine::run(self, fuel)
    }
}

// ---------------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------------

/// Disassembles a compiled program into a stable textual format: unit 0 is
/// the main term, then one unit per code block in installation order.
/// The output depends only on the program (and the interner's symbol
/// names), not on any heap or machine state.
pub fn disassemble(program: &Program, superinstructions: bool) -> String {
    let mut units = vec![compile_main(&program.main, superinstructions)];
    for def in &program.code {
        units.push(compile_def(def, superinstructions));
    }
    let mut out = String::new();
    out.push_str(&format!(
        ";; λGC bytecode — dialect {}, superinstructions {}\n;; {} unit(s)\n",
        program.dialect,
        if superinstructions { "on" } else { "off" },
        units.len()
    ));
    for (i, u) in units.iter().enumerate() {
        out.push_str(&format!(
            "\nunit {}: {}  [v={} t={} r={} a={}]\n",
            i, u.label, u.val_slots, u.tag_slots, u.rgn_slots, u.alpha_slots
        ));
        for (pc, instr) in u.instrs.iter().enumerate() {
            fmt_instr(&mut out, pc, instr);
        }
    }
    out
}

fn fmt_instr(out: &mut String, pc: usize, instr: &Instr) {
    match instr {
        Instr::Lets(ms) => {
            if let [m] = ms.as_ref() {
                out.push_str(&format!("  {pc:03}  let v{} = {}\n", m.dst, fmt_micro(&m.op)));
            } else {
                out.push_str(&format!("  {pc:03}  lets\n"));
                for m in ms.iter() {
                    out.push_str(&format!("         v{} = {}\n", m.dst, fmt_micro(&m.op)));
                }
            }
        }
        Instr::Call {
            f,
            tags,
            rgns,
            args,
        } => {
            out.push_str(&format!(
                "  {pc:03}  call {} [{}][{}]({})\n",
                fmt_val_op(f),
                join(tags.iter().map(fmt_tag_op)),
                join(rgns.iter().map(fmt_rgn_op)),
                join(args.iter().map(fmt_val_op)),
            ));
        }
        Instr::Halt(v) => out.push_str(&format!("  {pc:03}  halt {}\n", fmt_val_op(v))),
        Instr::IfGc { r, full, cont } => out.push_str(&format!(
            "  {pc:03}  ifgc {} full->{full:03} cont->{cont:03}\n",
            fmt_rgn_op(r)
        )),
        Instr::OpenTag { pkg, tdst, vdst } => out.push_str(&format!(
            "  {pc:03}  open-tag {} -> t{tdst}, v{vdst}\n",
            fmt_val_op(pkg)
        )),
        Instr::OpenAlpha { pkg, adst, vdst } => out.push_str(&format!(
            "  {pc:03}  open-alpha {} -> a{adst}, v{vdst}\n",
            fmt_val_op(pkg)
        )),
        Instr::OpenRgn { pkg, rdst, vdst } => out.push_str(&format!(
            "  {pc:03}  open-region {} -> r{rdst}, v{vdst}\n",
            fmt_val_op(pkg)
        )),
        Instr::LetRegion { rdst } => {
            out.push_str(&format!("  {pc:03}  let-region -> r{rdst}\n"))
        }
        Instr::Only { keep } => out.push_str(&format!(
            "  {pc:03}  only [{}]\n",
            join(keep.iter().map(fmt_rgn_op))
        )),
        Instr::Typecase {
            tag,
            int_arm,
            arrow_arm,
            t1dst,
            t2dst,
            prod_arm,
            tedst,
            exist_arm,
        } => out.push_str(&format!(
            "  {pc:03}  typecase {} int->{int_arm:03} arrow->{arrow_arm:03} prod(t{t1dst},t{t2dst})->{prod_arm:03} exist(t{tedst})->{exist_arm:03}\n",
            fmt_tag_op(tag)
        )),
        Instr::IfLeft {
            dst,
            scrut,
            left,
            right,
        } => out.push_str(&format!(
            "  {pc:03}  ifleft {} -> v{dst} left->{left:03} right->{right:03}\n",
            fmt_val_op(scrut)
        )),
        Instr::Set { dst, src } => out.push_str(&format!(
            "  {pc:03}  set {} := {}\n",
            fmt_val_op(dst),
            fmt_val_op(src)
        )),
        Instr::Widen {
            dst,
            from,
            to,
            tag,
            v,
        } => out.push_str(&format!(
            "  {pc:03}  widen v{dst} = [{}->{}][{}] {}\n",
            fmt_rgn_op(from),
            fmt_rgn_op(to),
            fmt_tag_op(tag),
            fmt_val_op(v)
        )),
        Instr::IfReg { r1, r2, eq, ne } => out.push_str(&format!(
            "  {pc:03}  ifreg {} == {} eq->{eq:03} ne->{ne:03}\n",
            fmt_rgn_op(r1),
            fmt_rgn_op(r2)
        )),
        Instr::If0 {
            scrut,
            zero,
            nonzero,
        } => out.push_str(&format!(
            "  {pc:03}  if0 {} zero->{zero:03} nonzero->{nonzero:03}\n",
            fmt_val_op(scrut)
        )),
    }
}

fn join(items: impl Iterator<Item = String>) -> String {
    items.collect::<Vec<_>>().join(", ")
}

fn fmt_micro(op: &MicroOp) -> String {
    match op {
        MicroOp::Val(v) => fmt_val_op(v),
        MicroOp::Proj(i, v) => format!("π{i} {}", fmt_val_op(v)),
        MicroOp::Put(r, v) => format!("put[{}] {}", fmt_rgn_op(r), fmt_val_op(v)),
        MicroOp::PutPair(r, a, b) => format!(
            "put-pair[{}] {}, {}",
            fmt_rgn_op(r),
            fmt_val_op(a),
            fmt_val_op(b)
        ),
        MicroOp::Get(v) => format!("get {}", fmt_val_op(v)),
        MicroOp::Strip(v) => format!("strip {}", fmt_val_op(v)),
        MicroOp::Prim(p, a, b) => format!("prim {p} {}, {}", fmt_val_op(a), fmt_val_op(b)),
    }
}

fn fmt_val_op(op: &ValOp) -> String {
    match op {
        ValOp::Reg(i) => format!("v{i}"),
        ValOp::Imm(v) => format!("#{}", fmt_value(v)),
        ValOp::Build { val, binds, .. } => format!(
            "build({}; {})",
            fmt_value(val),
            join(binds.iter().map(|b| {
                let file = match b.ns {
                    Ns::Val => "v",
                    Ns::Tag => "t",
                    Ns::Rgn => "r",
                    Ns::Alpha => "a",
                };
                format!("{}={}{}", b.sym, file, b.slot)
            }))
        ),
    }
}

fn fmt_tag_op(op: &TagOp) -> String {
    match op {
        TagOp::Reg(i) => format!("t{i}"),
        TagOp::Imm(t) => format!("#{}", crate::pretty::tag_to_string(t)),
        TagOp::Build { tag, binds } => format!(
            "build({}; {})",
            crate::pretty::tag_to_string(tag),
            join(binds.iter().map(|(t, slot)| format!("{t}=t{slot}")))
        ),
    }
}

fn fmt_rgn_op(op: &RgnOp) -> String {
    match op {
        RgnOp::Reg(i) => format!("r{i}"),
        RgnOp::Imm(r) => format!("{r}"),
    }
}

/// Compact, deterministic value rendering for immediates.
fn fmt_value(v: &Value) -> String {
    match v {
        Value::Int(n) => format!("{n}"),
        Value::Var(x) => format!("{x}"),
        Value::Addr(nu, loc) => format!("{nu}.{loc}"),
        Value::Pair(a, b) => format!("({}, {})", fmt_value(a), fmt_value(b)),
        Value::Inl(x) => format!("inl {}", fmt_value(x)),
        Value::Inr(x) => format!("inr {}", fmt_value(x)),
        Value::PackTag { tag, val, .. } => format!(
            "pack[t={}]({})",
            crate::pretty::tag_to_string(tag),
            fmt_value(val)
        ),
        Value::PackAlpha { witness, val, .. } => format!(
            "pack[α={}]({})",
            crate::pretty::ty_to_string(witness),
            fmt_value(val)
        ),
        Value::PackRgn { witness, val, .. } => {
            format!("pack[r={witness}]({})", fmt_value(val))
        }
        Value::TagApp(f, ts, rs) => format!(
            "{}[[{}; {}]]",
            fmt_value(f),
            join(ts.iter().map(crate::pretty::tag_to_string)),
            join(rs.iter().map(|r| format!("{r}")))
        ),
        Value::Code(def) => format!("code {}", def.name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Backend;
    use crate::memory::GrowthPolicy;
    use crate::syntax::Kind;

    fn sym(s: &str) -> Symbol {
        Symbol::intern(s)
    }

    fn halt_program(n: i64) -> Program {
        Program {
            dialect: Dialect::Basic,
            code: vec![],
            main: Term::Halt(Value::Int(n)),
        }
    }

    #[test]
    fn halts_on_halt() {
        let mut m = BcMachine::load(&halt_program(42), MemConfig::default());
        assert_eq!(m.run(10).expect("runs"), Outcome::Halted(42));
        assert_eq!(m.stats().steps, 1);
    }

    #[test]
    fn halted_machine_stays_halted() {
        let mut m = BcMachine::load(&halt_program(7), MemConfig::default());
        assert_eq!(m.run(10).expect("runs"), Outcome::Halted(7));
        assert_eq!(m.step().expect("still halted"), StepOutcome::Halted(7));
        assert_eq!(m.stats().steps, 1, "halted steps are free");
    }

    #[test]
    fn let_spine_allocates_and_projects() {
        // let p = put[r] (1, 2) in let a = get p in let x = π1 a in
        // let y = π2 a in let s = x + y in halt s
        let (r, p, a, x, y, s) = (sym("r"), sym("p"), sym("a"), sym("x"), sym("y"), sym("s"));
        let body = Term::let_(
            p,
            Op::Put(Region::Var(r), Value::pair(Value::Int(1), Value::Int(2))),
            Term::let_(
                a,
                Op::Get(Value::Var(p)),
                Term::let_(
                    x,
                    Op::Proj(1, Value::Var(a)),
                    Term::let_(
                        y,
                        Op::Proj(2, Value::Var(a)),
                        Term::let_(
                            s,
                            Op::Prim(PrimOp::Add, Value::Var(x), Value::Var(y)),
                            Term::Halt(Value::Var(s)),
                        ),
                    ),
                ),
            ),
        );
        let program = Program {
            dialect: Dialect::Basic,
            code: vec![],
            main: Term::LetRegion {
                rvar: r,
                body: intern_term(body),
            },
        };
        for on in [true, false] {
            let mut m = BcMachine::load(&program, MemConfig::default());
            m.set_superinstructions(on);
            assert_eq!(m.run(100).expect("runs"), Outcome::Halted(3));
            assert_eq!(m.stats().steps, 7, "superinstructions {on}");
            assert_eq!(m.stats().allocations, 1);
        }
    }

    #[test]
    fn calls_bind_parameters_into_registers() {
        // code add[][r](a, b): let s = a + b in halt s
        // main: let region r in add[][r](20, 22)
        let (r, a, b, s) = (sym("r"), sym("a"), sym("b"), sym("s"));
        let def = CodeDef {
            name: sym("add"),
            tvars: vec![],
            rvars: vec![r],
            params: vec![(a, Ty::Int), (b, Ty::Int)],
            body: Term::let_(
                s,
                Op::Prim(PrimOp::Add, Value::Var(a), Value::Var(b)),
                Term::Halt(Value::Var(s)),
            ),
        };
        let main = Term::LetRegion {
            rvar: r,
            body: intern_term(Term::app(
                Value::Addr(CD, 0),
                [],
                [Region::Var(r)],
                [Value::Int(20), Value::Int(22)],
            )),
        };
        let program = Program {
            dialect: Dialect::Basic,
            code: vec![def],
            main,
        };
        let mut m = BcMachine::load(&program, MemConfig::default());
        assert_eq!(m.run(100).expect("runs"), Outcome::Halted(42));
    }

    #[test]
    fn resolved_control_matches_subst_machine_lockstep() {
        use crate::machine::SubstMachine;
        let (r, p, q, x) = (sym("r"), sym("p"), sym("q"), sym("x"));
        let body = Term::let_(
            p,
            Op::Put(Region::Var(r), Value::pair(Value::Int(5), Value::Int(6))),
            Term::let_(
                q,
                Op::Get(Value::Var(p)),
                Term::let_(x, Op::Proj(2, Value::Var(q)), Term::Halt(Value::Var(x))),
            ),
        );
        let program = Program {
            dialect: Dialect::Basic,
            code: vec![],
            main: Term::LetRegion {
                rvar: r,
                body: intern_term(body),
            },
        };
        let config = MemConfig {
            region_budget: 64,
            growth: GrowthPolicy::Fixed,
            ..MemConfig::default()
        };
        let mut oracle = SubstMachine::load(&program, config);
        let mut bc = BcMachine::load(&program, config);
        loop {
            assert_eq!(oracle.term(), &bc.resolved_control());
            let a = oracle.step().expect("oracle steps");
            let b = bc.step().expect("bc steps");
            assert_eq!(a, b);
            assert_eq!(oracle.stats(), bc.stats());
            if a != StepOutcome::Continue {
                break;
            }
        }
        assert_eq!(bc.halted(), Some(6));
    }

    #[test]
    fn superinstruction_toggle_is_ignored_after_first_step() {
        let mut m = BcMachine::load(&halt_program(1), MemConfig::default());
        let _ = m.step().expect("steps");
        m.set_superinstructions(false);
        assert!(m.superinstructions, "toggle after first step is a no-op");
    }

    #[test]
    fn disassembly_is_deterministic_and_mentions_superinstructions() {
        let (r, p, q) = (sym("r"), sym("p"), sym("q"));
        let body = Term::let_(
            p,
            Op::Put(Region::Var(r), Value::pair(Value::Int(1), Value::Int(2))),
            Term::let_(q, Op::Get(Value::Var(p)), Term::Halt(Value::Int(0))),
        );
        let program = Program {
            dialect: Dialect::Basic,
            code: vec![],
            main: Term::LetRegion {
                rvar: r,
                body: intern_term(body),
            },
        };
        let on = disassemble(&program, true);
        assert_eq!(on, disassemble(&program, true));
        assert!(on.contains("superinstructions on"), "{on}");
        assert!(on.contains("put-pair[r0]"), "{on}");
        assert!(on.contains("let-region -> r0"), "{on}");
        let off = disassemble(&program, false);
        assert!(off.contains("superinstructions off"), "{off}");
        assert!(!off.contains("put-pair"), "{off}");
    }

    #[test]
    fn backend_load_returns_a_working_bytecode_machine() {
        let program = halt_program(9);
        let mut m = Backend::Bytecode.load(&program, MemConfig::default());
        assert_eq!(m.run(10).expect("runs"), Outcome::Halted(9));
        assert_eq!(m.halted(), Some(9));
    }

    #[test]
    fn typecase_dispatches_through_registers() {
        // open pkg as <t, x> in typecase t of int => halt 1 | ...
        let (t, x) = (sym("t"), sym("x"));
        let (t1, t2, te) = (sym("t1"), sym("t2"), sym("te"));
        let pkg = Value::PackTag {
            tvar: t,
            kind: Kind::Omega,
            tag: Tag::Int,
            val: Value::Int(0).id(),
            body_ty: Ty::Int,
        };
        let program = Program {
            dialect: Dialect::Basic,
            code: vec![],
            main: Term::OpenTag {
                pkg,
                tvar: t,
                x,
                body: intern_term(Term::Typecase {
                    tag: Tag::Var(t),
                    int_arm: intern_term(Term::Halt(Value::Int(1))),
                    arrow_arm: intern_term(Term::Halt(Value::Int(2))),
                    prod_arm: (t1, t2, intern_term(Term::Halt(Value::Int(3)))),
                    exist_arm: (te, intern_term(Term::Halt(Value::Int(4)))),
                }),
            },
        };
        let mut m = BcMachine::load(&program, MemConfig::default());
        assert_eq!(m.run(100).expect("runs"), Outcome::Halted(1));
        assert_eq!(m.stats().typecase_dispatches, 1);
    }
}
