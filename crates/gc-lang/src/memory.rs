//! Region-based memory: the `M` and `Ψ` of Fig. 5/7.
//!
//! A memory is a map from region names `ν` to regions; a region is an arena
//! of slots addressed by offset `ℓ`. The distinguished code region `cd`
//! holds only code blocks and can never be reclaimed (§4.3/§6.2).
//!
//! Each data region carries a *word budget*; `ifgc ρ` tests fullness against
//! it (the paper's "if ρ is full" condition). Budgets follow a configurable
//! growth policy so that a collection into a fresh region always has room
//! for the live data (a heap-growth policy the paper leaves implicit).
//!
//! When [`MemConfig::track_types`] is on, the memory also maintains the
//! memory type `Ψ` (Fig. 7) incrementally: every `put` records the inferred
//! type of the stored value, `only` restricts `Ψ`, and `widen` (handled by
//! the machine) rewrites the live entries of the from-region with the `T`
//! operator of Appendix C. `Ψ` is observer machinery for the
//! well-formedness checks; it does not affect evaluation.

use std::collections::BTreeMap;

use crate::error::{mem_err, oom_err, Result};
use crate::syntax::{RegionName, Ty, Value, CD};

/// How budgets for freshly allocated regions are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrowthPolicy {
    /// Every region gets [`MemConfig::region_budget`] words.
    Fixed,
    /// A new region gets `max(region_budget, 2 × words(largest live data
    /// region))` — the classic two-space doubling policy, guaranteeing the
    /// to-space of a collection can hold all live data.
    Adaptive,
}

impl std::fmt::Display for GrowthPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GrowthPolicy::Fixed => "fixed",
            GrowthPolicy::Adaptive => "adaptive",
        })
    }
}

impl std::str::FromStr for GrowthPolicy {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<GrowthPolicy, String> {
        match s {
            "fixed" => Ok(GrowthPolicy::Fixed),
            "adaptive" => Ok(GrowthPolicy::Adaptive),
            other => Err(format!(
                "unknown growth policy {other:?} (expected fixed|adaptive)"
            )),
        }
    }
}

/// Memory configuration.
#[derive(Clone, Copy, Debug)]
pub struct MemConfig {
    /// Base budget for fresh regions, in words.
    pub region_budget: usize,
    /// Budget growth policy.
    pub growth: GrowthPolicy,
    /// Maintain `Ψ` incrementally (needed for machine-state
    /// well-formedness checking; costs time, so benchmarks turn it off).
    pub track_types: bool,
    /// Hard cap on total data-region words. `put` fails with a typed
    /// [`crate::error::ErrorKind::OutOfMemory`] error once the cap would be
    /// exceeded; `None` means unbounded.
    pub max_heap_words: Option<usize>,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            region_budget: 256,
            growth: GrowthPolicy::Adaptive,
            track_types: false,
            max_heap_words: None,
        }
    }
}

/// One region `R = {ℓ₁ ↦ v₁, …}`.
#[derive(Clone, Debug, Default)]
pub struct RegionData {
    slots: Vec<Value>,
    words: usize,
    budget: usize,
}

impl RegionData {
    /// Number of words allocated in this region.
    pub fn words(&self) -> usize {
        self.words
    }

    /// This region's word budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of objects in this region.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Is the region empty?
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates over `(offset, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Value)> {
        self.slots.iter().enumerate().map(|(i, v)| (i as u32, v))
    }
}

/// The size in words of a stored value.
///
/// Ints, addresses and code pointers occupy one word; pairs are unboxed
/// aggregates; existential packages carry one extra word for the runtime
/// tag; `inl`/`inr` cost nothing extra (§7: the forwarding discriminator is
/// a single stolen bit, which the paper contrasts with the extra word of
/// Wang–Appel-style paired forwarding).
pub fn value_words(v: &Value) -> usize {
    match v {
        Value::Int(_) | Value::Addr(..) | Value::Var(_) | Value::Code(_) | Value::TagApp(..) => 1,
        Value::Pair(a, b) => value_words(a) + value_words(b),
        Value::PackTag { val, .. } => 1 + value_words(val),
        Value::PackAlpha { val, .. } | Value::PackRgn { val, .. } => value_words(val),
        Value::Inl(x) | Value::Inr(x) => value_words(x),
    }
}

/// The result of an `only ∆` reclamation, recorded for statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReclaimReport {
    /// `(region, words, objects)` for each dropped region.
    pub dropped: Vec<(RegionName, usize, usize)>,
    /// Total live words kept (data regions only).
    pub kept_words: usize,
}

impl ReclaimReport {
    /// Total words reclaimed.
    pub fn words_reclaimed(&self) -> usize {
        self.dropped.iter().map(|(_, w, _)| *w).sum()
    }
}

/// A λGC memory: regions plus (optionally) the memory type `Ψ`.
///
/// # Examples
///
/// ```
/// use ps_gc_lang::memory::{MemConfig, Memory};
/// use ps_gc_lang::syntax::Value;
///
/// let mut mem = Memory::new(MemConfig::default());
/// let nu = mem.alloc_region();
/// let loc = mem.put(nu, Value::pair(Value::Int(1), Value::Int(2))).unwrap();
/// assert_eq!(mem.get(nu, loc).unwrap(), &Value::pair(Value::Int(1), Value::Int(2)));
/// let report = mem.only(&[]); // reclaim everything but cd
/// assert_eq!(report.words_reclaimed(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Memory {
    /// Region table indexed by the (monotonically assigned) region name:
    /// `regions[n]` is `Some` while region `n` is live. Names are dense —
    /// `cd` is 0 and `alloc_region` hands out successors — so a flat table
    /// gives O(1) put/get and iteration in ascending-name order, matching
    /// the ordered-map semantics telemetry and audits rely on.
    regions: Vec<Option<RegionData>>,
    psi: BTreeMap<RegionName, BTreeMap<u32, Ty>>,
    next_region: u32,
    config: MemConfig,
    /// Running total of words in data regions, maintained by `put`/`only`
    /// so [`Memory::data_words`] is O(1). `set` deliberately does not
    /// adjust region word counts (the slot keeps its location's size in
    /// the region type `Υ`), so no adjustment is needed here either.
    data_words: usize,
}

impl Memory {
    /// Creates an empty memory containing only the code region.
    pub fn new(config: MemConfig) -> Memory {
        let regions = vec![Some(RegionData {
            slots: Vec::new(),
            words: 0,
            budget: usize::MAX,
        })];
        let mut psi = BTreeMap::new();
        psi.insert(CD, BTreeMap::new());
        Memory {
            regions,
            psi,
            next_region: 1,
            config,
            data_words: 0,
        }
    }

    /// The configuration this memory was created with.
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Installs a code block in `cd`, returning its offset.
    ///
    /// Only used at load time (§4.3: functions are placed into `cd` when
    /// translating code and never directly appear in λGC terms).
    pub fn install_code(&mut self, code: Value, ty: Ty) -> u32 {
        let cd = self.regions[CD.0 as usize].get_or_insert_with(|| RegionData {
            slots: Vec::new(),
            words: 0,
            budget: usize::MAX,
        });
        let loc = cd.slots.len() as u32;
        cd.words += value_words(&code);
        cd.slots.push(code);
        self.psi.entry(CD).or_default().insert(loc, ty);
        loc
    }

    /// Allocates a fresh region and returns its name.
    pub fn alloc_region(&mut self) -> RegionName {
        let budget = match self.config.growth {
            GrowthPolicy::Fixed => self.config.region_budget,
            GrowthPolicy::Adaptive => {
                let max_live = self
                    .regions
                    .iter()
                    .skip(1) // cd
                    .flatten()
                    .map(|r| r.words)
                    .max()
                    .unwrap_or(0);
                self.config.region_budget.max(max_live * 2)
            }
        };
        let name = RegionName(self.next_region);
        self.next_region += 1;
        let idx = name.0 as usize;
        if self.regions.len() <= idx {
            self.regions.resize_with(idx + 1, || None);
        }
        self.regions[idx] = Some(RegionData {
            slots: Vec::new(),
            words: 0,
            budget,
        });
        if self.config.track_types {
            self.psi.insert(name, BTreeMap::new());
        }
        name
    }

    /// Stores `v` in region `nu` and returns the new offset.
    ///
    /// # Errors
    ///
    /// Fails if the region does not exist or is the code region.
    pub fn put(&mut self, nu: RegionName, v: Value) -> Result<u32> {
        Ok(self.put_counted(nu, v)?.0)
    }

    /// Like [`Memory::put`], but also returns the stored value's size in
    /// words, so callers tallying allocation statistics reuse the walk the
    /// heap-cap check already performed.
    ///
    /// # Errors
    ///
    /// As [`Memory::put`].
    pub fn put_counted(&mut self, nu: RegionName, v: Value) -> Result<(u32, usize)> {
        if nu.is_cd() {
            return Err(mem_err("cannot put into the code region"));
        }
        let inferred = if self.config.track_types {
            Some(self.infer_stored_ty(&v)?)
        } else {
            None
        };
        let region = self
            .regions
            .get_mut(nu.0 as usize)
            .and_then(Option::as_mut)
            .ok_or_else(|| mem_err(format!("put into missing region {nu}")))?;
        let loc = region.slots.len() as u32;
        let words = value_words(&v);
        if let Some(limit) = self.config.max_heap_words {
            if self.data_words + words > limit {
                return Err(oom_err(format!(
                    "put of {words} words would exceed the heap cap \
                     ({} live + {words} > {limit})",
                    self.data_words
                )));
            }
        }
        region.words += words;
        self.data_words += words;
        region.slots.push(v);
        if let Some(ty) = inferred {
            self.psi.entry(nu).or_default().insert(loc, ty);
        }
        Ok((loc, words))
    }

    /// Reads the value at `ν.ℓ`.
    ///
    /// # Errors
    ///
    /// Fails on dangling addresses (reclaimed region or bad offset).
    pub fn get(&self, nu: RegionName, loc: u32) -> Result<&Value> {
        self.region(nu)
            .ok_or_else(|| mem_err(format!("get from reclaimed region {nu}")))?
            .slots
            .get(loc as usize)
            .ok_or_else(|| mem_err(format!("get from bad offset {nu}.{loc}")))
    }

    /// Overwrites the slot at `ν.ℓ` (the `set` of λGCforw). The memory type
    /// entry is unchanged: the region type `Υ` assigns a fixed type to every
    /// location, and `set` is only used at sum type.
    pub fn set(&mut self, nu: RegionName, loc: u32, v: Value) -> Result<()> {
        let region = self
            .region_mut(nu)
            .ok_or_else(|| mem_err(format!("set into missing region {nu}")))?;
        let slot = region
            .slots
            .get_mut(loc as usize)
            .ok_or_else(|| mem_err(format!("set at bad offset {nu}.{loc}")))?;
        *slot = v;
        Ok(())
    }

    /// Is region `nu` full (words ≥ budget)? The code region is never full.
    ///
    /// # Errors
    ///
    /// Fails if the region does not exist.
    pub fn is_full(&self, nu: RegionName) -> Result<bool> {
        let r = self
            .region(nu)
            .ok_or_else(|| mem_err(format!("ifgc on missing region {nu}")))?;
        Ok(!nu.is_cd() && r.words >= r.budget)
    }

    /// Implements `only ∆`: reclaims every data region not in `keep`
    /// (`cd` is always kept). Returns a report of what was dropped.
    pub fn only(&mut self, keep: &[RegionName]) -> ReclaimReport {
        let mut report = ReclaimReport::default();
        for idx in 0..self.regions.len() {
            let nu = RegionName(idx as u32);
            if nu.is_cd() || keep.contains(&nu) {
                if !nu.is_cd() {
                    if let Some(r) = &self.regions[idx] {
                        report.kept_words += r.words;
                    }
                }
                continue;
            }
            let Some(dropped) = self.regions[idx].take() else {
                continue;
            };
            self.psi.remove(&nu);
            self.data_words -= dropped.words;
            report
                .dropped
                .push((nu, dropped.words, dropped.slots.len()));
        }
        report
    }

    /// Drops a single data region unconditionally, bypassing `only`'s
    /// keep-set discipline. This is **fault-injection machinery** (a
    /// simulated double-free for [`crate::faults`]); collectors reclaim
    /// through [`Memory::only`]. Returns whether the region existed.
    pub fn force_free_region(&mut self, nu: RegionName) -> bool {
        if nu.is_cd() {
            return false;
        }
        match self.regions.get_mut(nu.0 as usize).and_then(Option::take) {
            Some(dropped) => {
                self.psi.remove(&nu);
                self.data_words -= dropped.words;
                true
            }
            None => false,
        }
    }

    /// Overwrites a region's budget, ignoring the growth policy. This is
    /// **fault-injection machinery** (a simulated budget underflow for
    /// [`crate::faults`]). Returns whether the region existed.
    pub fn corrupt_budget(&mut self, nu: RegionName, budget: usize) -> bool {
        match self.region_mut(nu) {
            Some(region) => {
                region.budget = budget;
                true
            }
            None => false,
        }
    }

    /// Live region names (including `cd`).
    pub fn region_names(&self) -> impl Iterator<Item = RegionName> + '_ {
        self.regions
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|_| RegionName(i as u32)))
    }

    /// The id the *next* `alloc_region` will use. Telemetry snapshots this
    /// at collection begin: regions with a smaller id predate the
    /// collection, so copies into them are promotions.
    pub fn next_region_id(&self) -> u32 {
        self.next_region
    }

    /// Does region `nu` exist?
    pub fn has_region(&self, nu: RegionName) -> bool {
        self.region(nu).is_some()
    }

    /// Access a region's data.
    pub fn region(&self, nu: RegionName) -> Option<&RegionData> {
        self.regions.get(nu.0 as usize).and_then(Option::as_ref)
    }

    fn region_mut(&mut self, nu: RegionName) -> Option<&mut RegionData> {
        self.regions.get_mut(nu.0 as usize).and_then(Option::as_mut)
    }

    /// Total words in data regions. O(1): the total is maintained
    /// incrementally by `put` and `only`, so the interpreter can take a
    /// peak reading on every step without an O(regions) walk.
    pub fn data_words(&self) -> usize {
        debug_assert_eq!(
            self.data_words,
            self.regions
                .iter()
                .skip(1) // cd
                .flatten()
                .map(|r| r.words)
                .sum::<usize>(),
            "incremental data-word total out of sync"
        );
        self.data_words
    }

    // ----- Ψ maintenance (observer machinery) ---------------------------

    /// The `Ψ` entry at `ν.ℓ`, if tracked.
    pub fn psi_entry(&self, nu: RegionName, loc: u32) -> Option<&Ty> {
        self.psi.get(&nu)?.get(&loc)
    }

    /// All `Ψ` entries of a region, if tracked.
    pub fn psi_region(&self, nu: RegionName) -> Option<&BTreeMap<u32, Ty>> {
        self.psi.get(&nu)
    }

    /// Overwrites the `Ψ` entry at `ν.ℓ` (used by the machine's `widen`
    /// handler to apply the `T` operator of Appendix C).
    pub fn rewrite_psi_entry(&mut self, nu: RegionName, loc: u32, ty: Ty) {
        self.psi.entry(nu).or_default().insert(loc, ty);
    }

    /// Removes a `Ψ` entry (dead garbage discarded by `widen`, Def. 7.1's
    /// `M̄ ⊆ M`).
    pub fn remove_psi_entry(&mut self, nu: RegionName, loc: u32) {
        if let Some(m) = self.psi.get_mut(&nu) {
            m.remove(&loc);
        }
    }

    /// Infers the type of a storable value from its structure, its
    /// annotations, and `Ψ` (for embedded addresses).
    ///
    /// This is syntax-directed: packages carry their body types, code blocks
    /// their signatures, and addresses are looked up in `Ψ`. The
    /// well-formedness checker re-validates all of this against the real
    /// typing rules; inference only *names* the type.
    ///
    /// # Errors
    ///
    /// Fails on open values or addresses missing from `Ψ`.
    pub fn infer_stored_ty(&self, v: &Value) -> Result<Ty> {
        match v {
            Value::Int(_) => Ok(Ty::Int),
            Value::Var(x) => Err(mem_err(format!("open value (free variable {x}) in store"))),
            Value::Addr(nu, loc) => {
                let ty = self
                    .psi_entry(*nu, *loc)
                    .ok_or_else(|| mem_err(format!("no Ψ entry for {nu}.{loc}")))?;
                Ok(ty.clone().at(crate::syntax::Region::Name(*nu)))
            }
            Value::Pair(a, b) => Ok(Ty::prod(self.infer_stored_ty(a)?, self.infer_stored_ty(b)?)),
            Value::PackTag {
                tvar,
                kind,
                body_ty,
                ..
            } => Ok(Ty::exist_tag(*tvar, *kind, body_ty.clone())),
            Value::PackAlpha {
                avar,
                regions,
                body_ty,
                ..
            } => Ok(Ty::exist_alpha(
                *avar,
                regions.iter().copied(),
                body_ty.clone(),
            )),
            Value::PackRgn {
                rvar,
                bound,
                body_ty,
                ..
            } => Ok(Ty::exist_rgn(*rvar, bound.iter().copied(), body_ty.clone())),
            Value::TagApp(f, tags, regions) => {
                let fty = self.infer_stored_ty(f)?;
                match fty {
                    Ty::At(inner, rho) => match &*inner {
                        Ty::Code { tvars, rvars, args } => {
                            if tvars.len() != tags.len() || rvars.len() != regions.len() {
                                return Err(mem_err("translucent application arity mismatch"));
                            }
                            let mut sub = crate::subst::Subst::new();
                            for ((t, _), tau) in tvars.iter().zip(tags.iter()) {
                                sub = sub.with_tag(*t, tau.clone());
                            }
                            for (r, nu) in rvars.iter().zip(regions.iter()) {
                                sub = sub.with_rgn(*r, *nu);
                            }
                            Ok(Ty::Trans {
                                tags: tags.iter().map(|t| t.id()).collect(),
                                regions: regions.iter().copied().collect(),
                                args: args.iter().map(|a| sub.ty_id(*a)).collect(),
                                rho,
                            })
                        }
                        _ => Err(mem_err("tag application of non-code value")),
                    },
                    _ => Err(mem_err("tag application of non-address value")),
                }
            }
            Value::Code(def) => Ok(def.ty()),
            Value::Inl(x) => Ok(Ty::Left(self.infer_stored_ty(x)?.id())),
            Value::Inr(x) => Ok(Ty::Right(self.infer_stored_ty(x)?.id())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::Region;

    fn mem() -> Memory {
        Memory::new(MemConfig {
            region_budget: 8,
            growth: GrowthPolicy::Fixed,
            track_types: true,
            max_heap_words: None,
        })
    }

    #[test]
    fn new_memory_has_only_cd() {
        let m = mem();
        let names: Vec<_> = m.region_names().collect();
        assert_eq!(names, vec![CD]);
    }

    #[test]
    fn alloc_put_get_roundtrip() {
        let mut m = mem();
        let r = m.alloc_region();
        let loc = m.put(r, Value::pair(Value::Int(1), Value::Int(2))).unwrap();
        assert_eq!(
            m.get(r, loc).unwrap(),
            &Value::pair(Value::Int(1), Value::Int(2))
        );
    }

    #[test]
    fn words_accounting() {
        let mut m = mem();
        let r = m.alloc_region();
        m.put(r, Value::pair(Value::Int(1), Value::Int(2))).unwrap();
        assert_eq!(m.region(r).unwrap().words(), 2);
        m.put(r, Value::Int(3)).unwrap();
        assert_eq!(m.region(r).unwrap().words(), 3);
    }

    #[test]
    fn value_words_of_packages_and_sums() {
        let v = Value::PackTag {
            tvar: ps_ir::Symbol::intern("t"),
            kind: crate::syntax::Kind::Omega,
            tag: crate::syntax::Tag::Int,
            val: (Value::Int(1)).into(),
            body_ty: Ty::Int,
        };
        assert_eq!(value_words(&v), 2, "one word for the runtime tag");
        assert_eq!(
            value_words(&Value::inl(Value::pair(Value::Int(1), Value::Int(2)))),
            2
        );
    }

    #[test]
    fn fullness_against_budget() {
        let mut m = mem();
        let r = m.alloc_region();
        assert!(!m.is_full(r).unwrap());
        for i in 0..8 {
            m.put(r, Value::Int(i)).unwrap();
        }
        assert!(m.is_full(r).unwrap());
        assert!(!m.is_full(CD).unwrap(), "cd is never full");
    }

    #[test]
    fn adaptive_budget_doubles() {
        let mut m = Memory::new(MemConfig {
            region_budget: 4,
            growth: GrowthPolicy::Adaptive,
            track_types: false,
            max_heap_words: None,
        });
        let r1 = m.alloc_region();
        assert_eq!(m.region(r1).unwrap().budget(), 4);
        for i in 0..10 {
            m.put(r1, Value::Int(i)).unwrap();
        }
        let r2 = m.alloc_region();
        assert_eq!(m.region(r2).unwrap().budget(), 20);
    }

    #[test]
    fn only_reclaims_unlisted() {
        let mut m = mem();
        let r1 = m.alloc_region();
        let r2 = m.alloc_region();
        m.put(r1, Value::Int(1)).unwrap();
        m.put(r2, Value::Int(2)).unwrap();
        let report = m.only(&[r2]);
        assert!(!m.has_region(r1));
        assert!(m.has_region(r2));
        assert!(m.has_region(CD), "cd is always kept");
        assert_eq!(report.words_reclaimed(), 1);
        assert_eq!(report.kept_words, 1);
        assert_eq!(report.dropped, vec![(r1, 1, 1)]);
    }

    #[test]
    fn get_from_reclaimed_region_fails() {
        let mut m = mem();
        let r1 = m.alloc_region();
        let loc = m.put(r1, Value::Int(1)).unwrap();
        m.only(&[]);
        assert!(m.get(r1, loc).is_err());
    }

    #[test]
    fn put_into_cd_fails() {
        let mut m = mem();
        assert!(m.put(CD, Value::Int(1)).is_err());
    }

    #[test]
    fn set_overwrites() {
        let mut m = mem();
        let r = m.alloc_region();
        let loc = m.put(r, Value::inl(Value::Int(1))).unwrap();
        m.set(r, loc, Value::inr(Value::Int(2))).unwrap();
        assert_eq!(m.get(r, loc).unwrap(), &Value::inr(Value::Int(2)));
    }

    #[test]
    fn psi_tracks_puts() {
        let mut m = mem();
        let r = m.alloc_region();
        let loc = m.put(r, Value::pair(Value::Int(1), Value::Int(2))).unwrap();
        assert_eq!(m.psi_entry(r, loc), Some(&Ty::prod(Ty::Int, Ty::Int)));
    }

    #[test]
    fn psi_follows_addresses() {
        let mut m = mem();
        let r = m.alloc_region();
        let inner = m.put(r, Value::Int(7)).unwrap();
        let loc = m
            .put(r, Value::pair(Value::Addr(r, inner), Value::Int(0)))
            .unwrap();
        assert_eq!(
            m.psi_entry(r, loc),
            Some(&Ty::prod(Ty::Int.at(Region::Name(r)), Ty::Int))
        );
    }

    #[test]
    fn infer_rejects_open_values() {
        let m = mem();
        assert!(m
            .infer_stored_ty(&Value::Var(ps_ir::Symbol::intern("x")))
            .is_err());
    }

    #[test]
    fn data_words_excludes_cd() {
        let mut m = mem();
        let r = m.alloc_region();
        m.put(r, Value::Int(1)).unwrap();
        assert_eq!(m.data_words(), 1);
    }

    #[test]
    fn data_words_tracks_put_set_and_only() {
        let mut m = Memory::new(MemConfig {
            region_budget: 8,
            growth: GrowthPolicy::Fixed,
            track_types: false,
            max_heap_words: None,
        });
        let r1 = m.alloc_region();
        let r2 = m.alloc_region();
        m.put(r1, Value::pair(Value::Int(1), Value::Int(2)))
            .unwrap();
        let loc = m.put(r2, Value::Int(3)).unwrap();
        assert_eq!(m.data_words(), 3);
        // `set` never adjusts word counts (the slot keeps its Υ size).
        m.set(r2, loc, Value::Int(9)).unwrap();
        assert_eq!(m.data_words(), 3);
        m.only(&[r2]);
        assert_eq!(m.data_words(), 1);
        m.only(&[]);
        assert_eq!(m.data_words(), 0);
    }
}
