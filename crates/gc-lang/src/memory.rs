//! Region-based memory: the `M` and `Ψ` of Fig. 5/7, stored BiBOP-style.
//!
//! A memory is a map from region names `ν` to regions; a region is an arena
//! of slots addressed by offset `ℓ`. The distinguished code region `cd`
//! holds only code blocks and can never be reclaimed (§4.3/§6.2).
//!
//! # Big Bag of Pages layout
//!
//! Data regions are not flat vectors: each region owns a list of fixed-size
//! **pages** drawn from a shared [`Memory`]-wide page store. A page's header
//! records its owning region, its block size **class** (a power of two, in
//! words), an occupancy count, and a per-slot **dirty bitmap**. Objects of
//! the same class share a page; objects larger than a page get a dedicated
//! multi-page-footprint "large" page with a single slot. Offsets encode the
//! page directly — `ℓ = ordinal · page_words + slot` — so `put`/`get`/`set`
//! resolve `(ν, ℓ)` in O(1) through the region's page list, and locs still
//! ascend in allocation order within a size class.
//!
//! The page store gives three things the flat representation could not:
//!
//! 1. **Exact heap accounting** — [`MemConfig::max_heap_words`] caps the
//!    *reserved* page footprint, checked at page-allocation time, instead of
//!    a per-value running estimate.
//! 2. **Dirty-page tracking** — every `put`/`set` marks its slot in the
//!    page's dirty bitmap and enrolls the page in a memory-wide dirty set,
//!    so the auditor ([`crate::verify::audit_dirty`]) can re-check only what
//!    changed since the last audit. Region frees raise
//!    [`Memory::wants_full_audit`], forcing the next audit to walk
//!    everything (dangling pointers can hide in clean pages).
//! 3. **Page-level fault surface** — [`Memory::corrupt_page_header`] lets
//!    [`crate::faults`] desync a header from its storage, exercising the
//!    header checks real collectors depend on.
//!
//! The code region is special-cased as a dense vector: it is immortal,
//! bump-allocated once at load time, and read on every `app` step, so paging
//! it would cost indirection for nothing.
//!
//! Each data region carries a *word budget*; `ifgc ρ` tests fullness against
//! it (the paper's "if ρ is full" condition). Budgets follow a configurable
//! growth policy so that a collection into a fresh region always has room
//! for the live data (a heap-growth policy the paper leaves implicit).
//!
//! When [`MemConfig::track_types`] is on, the memory also maintains the
//! memory type `Ψ` (Fig. 7) incrementally: every `put` records the inferred
//! type of the stored value, `only` restricts `Ψ`, and `widen` (handled by
//! the machine) rewrites the live entries of the from-region with the `T`
//! operator of Appendix C. `Ψ` is observer machinery for the
//! well-formedness checks; it does not affect evaluation.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::{mem_err, oom_err, Result};
use crate::syntax::{RegionName, Ty, Value, CD};

/// How budgets for freshly allocated regions are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrowthPolicy {
    /// Every region gets [`MemConfig::region_budget`] words.
    Fixed,
    /// A new region gets `max(region_budget, 2 × words(largest live data
    /// region))` — the classic two-space doubling policy, guaranteeing the
    /// to-space of a collection can hold all live data.
    Adaptive,
}

impl std::fmt::Display for GrowthPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GrowthPolicy::Fixed => "fixed",
            GrowthPolicy::Adaptive => "adaptive",
        })
    }
}

impl std::str::FromStr for GrowthPolicy {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<GrowthPolicy, String> {
        match s {
            "fixed" => Ok(GrowthPolicy::Fixed),
            "adaptive" => Ok(GrowthPolicy::Adaptive),
            other => Err(format!(
                "unknown growth policy {other:?} (expected fixed|adaptive)"
            )),
        }
    }
}

/// Memory configuration.
#[derive(Clone, Copy, Debug)]
pub struct MemConfig {
    /// Base budget for fresh regions, in words.
    pub region_budget: usize,
    /// Budget growth policy.
    pub growth: GrowthPolicy,
    /// Maintain `Ψ` incrementally (needed for machine-state
    /// well-formedness checking; costs time, so benchmarks turn it off).
    pub track_types: bool,
    /// Hard cap on total reserved page words. `put` fails with a typed
    /// [`crate::error::ErrorKind::OutOfMemory`] error once allocating a
    /// fresh page would exceed the cap; `None` means unbounded.
    pub max_heap_words: Option<usize>,
    /// Page size in words. Normalized to a power of two (≥ 1) by
    /// [`Memory::new`]. The default, 512 words × 8 bytes, is a 4KB page.
    pub page_words: usize,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            region_budget: 256,
            growth: GrowthPolicy::Adaptive,
            track_types: false,
            max_heap_words: None,
            page_words: 512,
        }
    }
}

const BITMAP_WORD_BITS: usize = 64;

/// One BiBOP page: a header plus bump-allocated slots of a single size
/// class. `occupancy` deliberately duplicates `slots.len()` — the runtime
/// reads the storage, the auditor cross-checks the header, and the
/// `stale-page-header` fault class desyncs them.
#[derive(Clone, Debug)]
struct Page {
    owner: RegionName,
    /// Index of this page within its owner's page list.
    ordinal: u32,
    /// Slot size in words (power of two ≤ page_words, or the full footprint
    /// for a large single-slot page).
    class: usize,
    /// Maximum number of slots.
    capacity: u32,
    /// Header object count; must equal `slots.len()` in a sound store.
    occupancy: u32,
    /// Sum of `value_words` of the slots *at put time*. `set` never adjusts
    /// word counts (the slot keeps its `Υ`-assigned size), mirroring the
    /// per-region accounting.
    live_words: usize,
    /// Reserved words: `page_words`, or a rounded-up multiple for a large
    /// page. Drives exact `max_heap_words` accounting.
    footprint: usize,
    slots: Vec<Value>,
    /// Per-slot dirty bitmap, cleared when the auditor acknowledges a pass.
    dirty: Vec<u64>,
    /// Is this page currently enrolled in the memory-wide dirty set?
    in_dirty: bool,
}

impl Page {
    fn mark_slot_dirty(&mut self, slot: usize) -> bool {
        if let Some(w) = self.dirty.get_mut(slot / BITMAP_WORD_BITS) {
            *w |= 1u64 << (slot % BITMAP_WORD_BITS);
        }
        if self.in_dirty {
            false
        } else {
            self.in_dirty = true;
            true
        }
    }
}

/// Size-class shape for an object of `words` words: `(class, capacity,
/// footprint)`. Small objects round up to a power-of-two class and share a
/// `page_words` page; larger objects get a single-slot page whose footprint
/// is rounded up to whole pages.
fn class_shape(words: usize, page_words: usize) -> (usize, u32, usize) {
    if words <= page_words {
        let class = words.max(1).next_power_of_two();
        (class, (page_words / class) as u32, page_words)
    } else {
        let footprint = words.div_ceil(page_words) * page_words;
        (footprint, 1, footprint)
    }
}

/// One region `R = {ℓ₁ ↦ v₁, …}`: a list of pages plus accounting.
#[derive(Clone, Debug, Default)]
struct RegionData {
    /// Page ids in allocation order; a page's `ordinal` indexes this list.
    pages: Vec<u32>,
    /// Current allocation page per size class: `(class, ordinal)`. Regions
    /// see a handful of classes, so a linear scan beats a map.
    open: Vec<(usize, u32)>,
    words: usize,
    budget: usize,
    objects: usize,
}

/// A read-only view of one region (the code region or a data region),
/// abstracting over their different representations.
#[derive(Clone, Copy)]
pub struct RegionView<'a> {
    mem: &'a Memory,
    inner: ViewInner<'a>,
}

#[derive(Clone, Copy)]
enum ViewInner<'a> {
    Code,
    Data(&'a RegionData),
}

impl<'a> RegionView<'a> {
    /// Number of words allocated in this region.
    pub fn words(&self) -> usize {
        match self.inner {
            ViewInner::Code => self.mem.code_words,
            ViewInner::Data(r) => r.words,
        }
    }

    /// This region's word budget (the code region is unbounded).
    pub fn budget(&self) -> usize {
        match self.inner {
            ViewInner::Code => usize::MAX,
            ViewInner::Data(r) => r.budget,
        }
    }

    /// Number of objects in this region.
    pub fn len(&self) -> usize {
        match self.inner {
            ViewInner::Code => self.mem.code.len(),
            ViewInner::Data(r) => r.objects,
        }
    }

    /// Is the region empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of pages backing this region (0 for the unpaged code region).
    pub fn page_count(&self) -> usize {
        match self.inner {
            ViewInner::Code => 0,
            ViewInner::Data(r) => r.pages.len(),
        }
    }

    /// Page ids backing this region, in ordinal order (empty for the
    /// unpaged code region).
    pub fn page_ids(&self) -> &'a [u32] {
        match self.inner {
            ViewInner::Code => &[],
            ViewInner::Data(r) => &r.pages,
        }
    }

    /// Iterates over `(offset, value)` pairs in ascending offset order.
    pub fn iter(&self) -> RegionIter<'a> {
        RegionIter {
            inner: match self.inner {
                ViewInner::Code => IterInner::Code(self.mem.code.iter().enumerate()),
                ViewInner::Data(r) => IterInner::Data {
                    mem: self.mem,
                    pages: &r.pages,
                    ordinal: 0,
                    slot: 0,
                },
            },
        }
    }
}

/// Iterator over a region's `(offset, value)` pairs.
pub struct RegionIter<'a> {
    inner: IterInner<'a>,
}

enum IterInner<'a> {
    Code(std::iter::Enumerate<std::slice::Iter<'a, Value>>),
    Data {
        mem: &'a Memory,
        pages: &'a [u32],
        ordinal: usize,
        slot: usize,
    },
}

impl<'a> Iterator for RegionIter<'a> {
    type Item = (u32, &'a Value);

    fn next(&mut self) -> Option<Self::Item> {
        match &mut self.inner {
            IterInner::Code(it) => it.next().map(|(i, v)| (i as u32, v)),
            IterInner::Data {
                mem,
                pages,
                ordinal,
                slot,
            } => loop {
                let &pid = pages.get(*ordinal)?;
                let Some(page) = mem.pages.get(pid as usize).and_then(Option::as_ref) else {
                    *ordinal += 1;
                    *slot = 0;
                    continue;
                };
                if let Some(v) = page.slots.get(*slot) {
                    let loc = ((*ordinal as u32) << mem.slot_bits) | (*slot as u32);
                    *slot += 1;
                    return Some((loc, v));
                }
                *ordinal += 1;
                *slot = 0;
            },
        }
    }
}

/// A read-only view of one page's header and slots.
#[derive(Clone, Copy)]
pub struct PageView<'a> {
    mem: &'a Memory,
    page: &'a Page,
    id: u32,
}

impl<'a> PageView<'a> {
    /// This page's id in the store.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The region that owns this page.
    pub fn owner(&self) -> RegionName {
        self.page.owner
    }

    /// Index of this page within its owner's page list.
    pub fn ordinal(&self) -> u32 {
        self.page.ordinal
    }

    /// Slot size class in words.
    pub fn class(&self) -> usize {
        self.page.class
    }

    /// Maximum number of slots.
    pub fn capacity(&self) -> u32 {
        self.page.capacity
    }

    /// Header occupancy count (equals [`PageView::len`] in a sound store).
    pub fn occupancy(&self) -> u32 {
        self.page.occupancy
    }

    /// Sum of slot sizes recorded at put time.
    pub fn live_words(&self) -> usize {
        self.page.live_words
    }

    /// Reserved words charged against the heap cap.
    pub fn footprint(&self) -> usize {
        self.page.footprint
    }

    /// Number of slots actually stored.
    pub fn len(&self) -> usize {
        self.page.slots.len()
    }

    /// Is the page empty?
    pub fn is_empty(&self) -> bool {
        self.page.slots.is_empty()
    }

    /// The value in slot `i`, if populated.
    pub fn slot(&self, i: usize) -> Option<&'a Value> {
        self.page.slots.get(i)
    }

    /// Iterates over the populated slots.
    pub fn slots(&self) -> impl Iterator<Item = &'a Value> {
        self.page.slots.iter()
    }

    /// Slot indices written since the last acknowledged audit.
    pub fn dirty_slots(&self) -> impl Iterator<Item = usize> + 'a {
        let page = self.page;
        (0..page.slots.len()).filter(move |s| {
            page.dirty
                .get(s / BITMAP_WORD_BITS)
                .is_some_and(|w| (w >> (s % BITMAP_WORD_BITS)) & 1 == 1)
        })
    }

    /// The region offset of slot `i` on this page.
    pub fn loc_of(&self, i: usize) -> u32 {
        (self.page.ordinal << self.mem.slot_bits) | (i as u32)
    }
}

/// Counters describing the page store, for `--stats-pages` and telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PageStats {
    /// Page size in words (normalized).
    pub page_words: usize,
    /// Pages ever allocated.
    pub allocated: u64,
    /// Pages ever freed.
    pub freed: u64,
    /// Pages currently live.
    pub live: usize,
    /// High-water mark of live pages.
    pub peak_live: usize,
    /// Words currently reserved by live pages (what `max_heap_words` caps).
    pub reserved_words: usize,
    /// Live data words within those pages.
    pub live_data_words: usize,
}

/// A fresh page allocation performed by a `put`, reported so callers can
/// emit telemetry without the memory knowing about observers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PageAlloc {
    /// The new page's id.
    pub page: u32,
    /// Its size class in words.
    pub class: usize,
    /// Reserved words charged against the heap cap.
    pub footprint: usize,
}

/// The result of a counted `put`: the new offset, the stored value's size,
/// and the page allocation it triggered (if any).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PutRecord {
    /// Offset of the stored value.
    pub loc: u32,
    /// The stored value's size in words.
    pub words: usize,
    /// `Some` iff this put opened a fresh page.
    pub page: Option<PageAlloc>,
}

/// The size in words of a stored value.
///
/// Ints, addresses and code pointers occupy one word; pairs are unboxed
/// aggregates; existential packages carry one extra word for the runtime
/// tag; `inl`/`inr` cost nothing extra (§7: the forwarding discriminator is
/// a single stolen bit, which the paper contrasts with the extra word of
/// Wang–Appel-style paired forwarding).
pub fn value_words(v: &Value) -> usize {
    match v {
        Value::Int(_) | Value::Addr(..) | Value::Var(_) | Value::Code(_) | Value::TagApp(..) => 1,
        Value::Pair(a, b) => value_words(a) + value_words(b),
        Value::PackTag { val, .. } => 1 + value_words(val),
        Value::PackAlpha { val, .. } | Value::PackRgn { val, .. } => value_words(val),
        Value::Inl(x) | Value::Inr(x) => value_words(x),
    }
}

/// The result of an `only ∆` reclamation, recorded for statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReclaimReport {
    /// `(region, words, objects)` for each dropped region.
    pub dropped: Vec<(RegionName, usize, usize)>,
    /// Total live words kept (data regions only).
    pub kept_words: usize,
    /// `(region, page id, footprint words)` for each page returned to the
    /// store, in free order (grouped by region).
    pub freed_pages: Vec<(RegionName, u32, usize)>,
}

impl ReclaimReport {
    /// Total words reclaimed.
    pub fn words_reclaimed(&self) -> usize {
        self.dropped.iter().map(|(_, w, _)| *w).sum()
    }
}

/// A λGC memory: a BiBOP page store, regions, plus (optionally) the memory
/// type `Ψ`.
///
/// # Examples
///
/// ```
/// use ps_gc_lang::memory::{MemConfig, Memory};
/// use ps_gc_lang::syntax::Value;
///
/// let mut mem = Memory::new(MemConfig::default());
/// let nu = mem.alloc_region();
/// let loc = mem.put(nu, Value::pair(Value::Int(1), Value::Int(2))).unwrap();
/// assert_eq!(mem.get(nu, loc).unwrap(), &Value::pair(Value::Int(1), Value::Int(2)));
/// let report = mem.only(&[]); // reclaim everything but cd
/// assert_eq!(report.words_reclaimed(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Memory {
    /// Region table indexed by the (monotonically assigned) region name:
    /// `regions[n]` is `Some` while data region `n` is live. Names are
    /// dense — `cd` is 0 (kept as a permanent `None` placeholder so indices
    /// align) and `alloc_region` hands out successors — so a flat table
    /// gives O(1) lookup and iteration in ascending-name order, matching
    /// the ordered-map semantics telemetry and audits rely on.
    regions: Vec<Option<RegionData>>,
    /// The code region, dense: immortal, bump-allocated at load time, read
    /// on every `app` step, so it bypasses the page store.
    code: Vec<Value>,
    code_words: usize,
    /// The page store. `pages[id]` is `Some` while page `id` is live; freed
    /// ids are recycled through `free_pages`.
    pages: Vec<Option<Page>>,
    free_pages: Vec<u32>,
    /// Ids of pages written since the last acknowledged audit. A `BTreeSet`
    /// so reused ids dedup (bounding growth even when no audits run) and
    /// iteration is deterministic.
    dirty: BTreeSet<u32>,
    /// Set when regions were freed since the last full audit: dangling
    /// pointers can hide in clean pages, so the next audit must walk
    /// everything.
    full_pending: bool,
    psi: BTreeMap<RegionName, BTreeMap<u32, Ty>>,
    /// Ids of live data regions. Region ids are never reused, so `regions`
    /// grows monotonically; this index keeps `region_names` (and with it
    /// the per-step incremental audit) O(live) instead of O(ever
    /// allocated).
    live_regions: BTreeSet<u32>,
    next_region: u32,
    config: MemConfig,
    /// `page_words.trailing_zeros()`: offsets are `ordinal << slot_bits | slot`.
    slot_bits: u32,
    /// Running total of live value words in data regions, maintained by
    /// `put`/`only` so [`Memory::data_words`] is O(1). `set` deliberately
    /// does not adjust word counts (the slot keeps its location's size in
    /// the region type `Υ`), so no adjustment is needed here either.
    data_words: usize,
    /// Sum of live page footprints; what `max_heap_words` caps.
    reserved_words: usize,
    pages_allocated: u64,
    pages_freed: u64,
    live_pages: usize,
    peak_live_pages: usize,
}

impl Memory {
    /// Creates an empty memory containing only the code region. The
    /// configured `page_words` is normalized to a power of two ≥ 1.
    pub fn new(mut config: MemConfig) -> Memory {
        config.page_words = config.page_words.max(1).next_power_of_two();
        let slot_bits = config.page_words.trailing_zeros();
        let mut psi = BTreeMap::new();
        psi.insert(CD, BTreeMap::new());
        Memory {
            regions: vec![None],
            code: Vec::new(),
            code_words: 0,
            pages: Vec::new(),
            free_pages: Vec::new(),
            dirty: BTreeSet::new(),
            full_pending: false,
            psi,
            live_regions: BTreeSet::new(),
            next_region: 1,
            config,
            slot_bits,
            data_words: 0,
            reserved_words: 0,
            pages_allocated: 0,
            pages_freed: 0,
            live_pages: 0,
            peak_live_pages: 0,
        }
    }

    /// The configuration this memory was created with (with `page_words`
    /// normalized).
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Installs a code block in `cd`, returning its offset.
    ///
    /// Only used at load time (§4.3: functions are placed into `cd` when
    /// translating code and never directly appear in λGC terms).
    pub fn install_code(&mut self, code: Value, ty: Ty) -> u32 {
        let loc = self.code.len() as u32;
        self.code_words += value_words(&code);
        self.code.push(code);
        self.psi.entry(CD).or_default().insert(loc, ty);
        loc
    }

    /// Allocates a fresh region and returns its name.
    pub fn alloc_region(&mut self) -> RegionName {
        let budget = match self.config.growth {
            GrowthPolicy::Fixed => self.config.region_budget,
            GrowthPolicy::Adaptive => {
                let max_live = self
                    .live_regions
                    .iter()
                    .filter_map(|&i| self.regions.get(i as usize).and_then(Option::as_ref))
                    .map(|r| r.words)
                    .max()
                    .unwrap_or(0);
                self.config.region_budget.max(max_live * 2)
            }
        };
        let name = RegionName(self.next_region);
        self.next_region += 1;
        let idx = name.0 as usize;
        if self.regions.len() <= idx {
            self.regions.resize_with(idx + 1, || None);
        }
        self.regions[idx] = Some(RegionData {
            budget,
            ..RegionData::default()
        });
        self.live_regions.insert(name.0);
        if self.config.track_types {
            self.psi.insert(name, BTreeMap::new());
        }
        name
    }

    /// Stores `v` in region `nu` and returns the new offset.
    ///
    /// # Errors
    ///
    /// Fails if the region does not exist or is the code region, or with a
    /// typed out-of-memory error if a fresh page would exceed the heap cap.
    pub fn put(&mut self, nu: RegionName, v: Value) -> Result<u32> {
        Ok(self.put_counted(nu, v)?.loc)
    }

    /// Like [`Memory::put`], but also returns the stored value's size in
    /// words and any fresh page allocation, so callers tallying statistics
    /// and telemetry reuse the walk the size-class computation performed.
    ///
    /// # Errors
    ///
    /// As [`Memory::put`].
    pub fn put_counted(&mut self, nu: RegionName, v: Value) -> Result<PutRecord> {
        if nu.is_cd() {
            return Err(mem_err("cannot put into the code region"));
        }
        let inferred = if self.config.track_types {
            Some(self.infer_stored_ty(&v)?)
        } else {
            None
        };
        let ridx = nu.0 as usize;
        if self.regions.get(ridx).and_then(Option::as_ref).is_none() {
            return Err(mem_err(format!("put into missing region {nu}")));
        }
        let words = value_words(&v);
        let (class, capacity, footprint) = class_shape(words, self.config.page_words);

        // Probe the region's open page for this size class.
        let mut target: Option<(u32, u32)> = None; // (page id, ordinal)
        if let Some(region) = self.regions.get(ridx).and_then(Option::as_ref) {
            if let Some(&(_, ordinal)) = region.open.iter().find(|(c, _)| *c == class) {
                if let Some(&pid) = region.pages.get(ordinal as usize) {
                    if let Some(page) = self.pages.get(pid as usize).and_then(Option::as_ref) {
                        if (page.slots.len() as u32) < page.capacity {
                            target = Some((pid, ordinal));
                        }
                    }
                }
            }
        }

        let mut page_alloc = None;
        let (pid, ordinal) = match target {
            Some(t) => t,
            None => {
                // Fresh page: this is where the heap cap is enforced,
                // exactly and page-granularly.
                if let Some(limit) = self.config.max_heap_words {
                    if self.reserved_words + footprint > limit {
                        return Err(oom_err(format!(
                            "a fresh {footprint}-word page would exceed the heap cap \
                             ({} reserved + {footprint} > {limit})",
                            self.reserved_words
                        )));
                    }
                }
                let ordinal = self
                    .regions
                    .get(ridx)
                    .and_then(Option::as_ref)
                    .map_or(0, |r| r.pages.len() as u32);
                let page = Page {
                    owner: nu,
                    ordinal,
                    class,
                    capacity,
                    occupancy: 0,
                    live_words: 0,
                    footprint,
                    slots: Vec::with_capacity(capacity as usize),
                    dirty: vec![0; (capacity as usize).div_ceil(BITMAP_WORD_BITS)],
                    in_dirty: false,
                };
                let pid = match self.free_pages.pop() {
                    Some(id) => {
                        if let Some(cell) = self.pages.get_mut(id as usize) {
                            *cell = Some(page);
                        }
                        id
                    }
                    None => {
                        self.pages.push(Some(page));
                        (self.pages.len() - 1) as u32
                    }
                };
                if let Some(region) = self.regions.get_mut(ridx).and_then(Option::as_mut) {
                    region.pages.push(pid);
                    match region.open.iter_mut().find(|(c, _)| *c == class) {
                        Some(entry) => entry.1 = ordinal,
                        None => region.open.push((class, ordinal)),
                    }
                }
                self.reserved_words += footprint;
                self.pages_allocated += 1;
                self.live_pages += 1;
                self.peak_live_pages = self.peak_live_pages.max(self.live_pages);
                page_alloc = Some(PageAlloc {
                    page: pid,
                    class,
                    footprint,
                });
                (pid, ordinal)
            }
        };

        let mut slot = 0u32;
        let mut newly_dirty = false;
        if let Some(page) = self.pages.get_mut(pid as usize).and_then(Option::as_mut) {
            slot = page.slots.len() as u32;
            page.slots.push(v);
            page.occupancy = page.occupancy.wrapping_add(1);
            page.live_words += words;
            newly_dirty = page.mark_slot_dirty(slot as usize);
        }
        if newly_dirty {
            self.dirty.insert(pid);
        }
        if let Some(region) = self.regions.get_mut(ridx).and_then(Option::as_mut) {
            region.words += words;
            region.objects += 1;
        }
        self.data_words += words;
        let loc = (ordinal << self.slot_bits) | slot;
        if let Some(ty) = inferred {
            self.psi.entry(nu).or_default().insert(loc, ty);
        }
        Ok(PutRecord {
            loc,
            words,
            page: page_alloc,
        })
    }

    /// Reads the value at `ν.ℓ`, resolving through the page headers in O(1).
    ///
    /// # Errors
    ///
    /// Fails on dangling addresses (reclaimed region or bad offset).
    pub fn get(&self, nu: RegionName, loc: u32) -> Result<&Value> {
        if nu.is_cd() {
            return self
                .code
                .get(loc as usize)
                .ok_or_else(|| mem_err(format!("get from bad offset {nu}.{loc}")));
        }
        let region = self
            .regions
            .get(nu.0 as usize)
            .and_then(Option::as_ref)
            .ok_or_else(|| mem_err(format!("get from reclaimed region {nu}")))?;
        let ordinal = (loc >> self.slot_bits) as usize;
        let slot = (loc as usize) & (self.config.page_words - 1);
        region
            .pages
            .get(ordinal)
            .and_then(|&pid| self.pages.get(pid as usize).and_then(Option::as_ref))
            .and_then(|p| p.slots.get(slot))
            .ok_or_else(|| mem_err(format!("get from bad offset {nu}.{loc}")))
    }

    /// Overwrites the slot at `ν.ℓ` (the `set` of λGCforw), marking the
    /// page dirty. The memory type entry is unchanged: the region type `Υ`
    /// assigns a fixed type to every location, and `set` is only used at
    /// sum type.
    ///
    /// # Errors
    ///
    /// Fails on the code region, reclaimed regions, and bad offsets.
    pub fn set(&mut self, nu: RegionName, loc: u32, v: Value) -> Result<()> {
        if nu.is_cd() {
            return Err(mem_err("cannot set into the code region"));
        }
        let region = self
            .regions
            .get(nu.0 as usize)
            .and_then(Option::as_ref)
            .ok_or_else(|| mem_err(format!("set into missing region {nu}")))?;
        let ordinal = (loc >> self.slot_bits) as usize;
        let slot = (loc as usize) & (self.config.page_words - 1);
        let pid = *region
            .pages
            .get(ordinal)
            .ok_or_else(|| mem_err(format!("set at bad offset {nu}.{loc}")))?;
        let page = self
            .pages
            .get_mut(pid as usize)
            .and_then(Option::as_mut)
            .ok_or_else(|| mem_err(format!("set at bad offset {nu}.{loc}")))?;
        let stored = page
            .slots
            .get_mut(slot)
            .ok_or_else(|| mem_err(format!("set at bad offset {nu}.{loc}")))?;
        *stored = v;
        if page.mark_slot_dirty(slot) {
            self.dirty.insert(pid);
        }
        Ok(())
    }

    /// Is region `nu` full (words ≥ budget)? The code region is never full.
    ///
    /// # Errors
    ///
    /// Fails if the region does not exist.
    pub fn is_full(&self, nu: RegionName) -> Result<bool> {
        if nu.is_cd() {
            return Ok(false);
        }
        let r = self
            .regions
            .get(nu.0 as usize)
            .and_then(Option::as_ref)
            .ok_or_else(|| mem_err(format!("ifgc on missing region {nu}")))?;
        Ok(r.words >= r.budget)
    }

    /// Implements `only ∆`: reclaims every data region not in `keep`
    /// (`cd` is always kept), returning each region's pages to the store.
    /// Returns a report of what was dropped. Any reclamation raises
    /// [`Memory::wants_full_audit`].
    pub fn only(&mut self, keep: &[RegionName]) -> ReclaimReport {
        let mut report = ReclaimReport::default();
        let live: Vec<u32> = self.live_regions.iter().copied().collect();
        for idx in live {
            let nu = RegionName(idx);
            if keep.contains(&nu) {
                if let Some(r) = self.regions.get(idx as usize).and_then(Option::as_ref) {
                    report.kept_words += r.words;
                }
                continue;
            }
            let Some(dropped) = self.regions.get_mut(idx as usize).and_then(Option::take) else {
                continue;
            };
            self.live_regions.remove(&idx);
            for &pid in &dropped.pages {
                let footprint = self.free_page(pid);
                report.freed_pages.push((nu, pid, footprint));
            }
            self.psi.remove(&nu);
            self.data_words -= dropped.words;
            report.dropped.push((nu, dropped.words, dropped.objects));
        }
        if !report.dropped.is_empty() {
            self.full_pending = true;
        }
        report
    }

    /// Returns page `pid` to the store, yielding its footprint (0 if the
    /// page was already gone — an internal invariant violation the auditor
    /// would flag via the owning region's page list).
    fn free_page(&mut self, pid: u32) -> usize {
        let Some(page) = self.pages.get_mut(pid as usize).and_then(Option::take) else {
            return 0;
        };
        self.free_pages.push(pid);
        self.dirty.remove(&pid);
        self.reserved_words -= page.footprint;
        self.live_pages -= 1;
        self.pages_freed += 1;
        page.footprint
    }

    /// Drops a single data region unconditionally, bypassing `only`'s
    /// keep-set discipline. This is **fault-injection machinery** (a
    /// simulated double-free for [`crate::faults`]); collectors reclaim
    /// through [`Memory::only`]. Returns whether the region existed.
    pub fn force_free_region(&mut self, nu: RegionName) -> bool {
        if nu.is_cd() {
            return false;
        }
        let Some(dropped) = self.regions.get_mut(nu.0 as usize).and_then(Option::take) else {
            return false;
        };
        self.live_regions.remove(&nu.0);
        for &pid in &dropped.pages {
            self.free_page(pid);
        }
        self.psi.remove(&nu);
        self.data_words -= dropped.words;
        self.full_pending = true;
        true
    }

    /// Overwrites a region's budget, ignoring the growth policy. This is
    /// **fault-injection machinery** (a simulated budget underflow for
    /// [`crate::faults`]). Returns whether the region existed.
    pub fn corrupt_budget(&mut self, nu: RegionName, budget: usize) -> bool {
        if nu.is_cd() {
            return false;
        }
        match self.regions.get_mut(nu.0 as usize).and_then(Option::as_mut) {
            Some(region) => {
                region.budget = budget;
                true
            }
            None => false,
        }
    }

    /// Bumps page `pid`'s header occupancy without touching its storage,
    /// and enrolls the page in the dirty set. This is **fault-injection
    /// machinery** (the `stale-page-header` class of [`crate::faults`]).
    /// Returns whether the page existed.
    pub fn corrupt_page_header(&mut self, pid: u32) -> bool {
        let Some(page) = self.pages.get_mut(pid as usize).and_then(Option::as_mut) else {
            return false;
        };
        page.occupancy = page.occupancy.wrapping_add(1);
        page.in_dirty = true;
        self.dirty.insert(pid);
        true
    }

    /// Live region names (including `cd`), ascending. O(live regions):
    /// backed by the `live_regions` index, not a scan of the monotonically
    /// growing `regions` vector.
    pub fn region_names(&self) -> impl Iterator<Item = RegionName> + '_ {
        std::iter::once(CD).chain(self.live_regions.iter().map(|&i| RegionName(i)))
    }

    /// The id the *next* `alloc_region` will use. Telemetry snapshots this
    /// at collection begin: regions with a smaller id predate the
    /// collection, so copies into them are promotions.
    pub fn next_region_id(&self) -> u32 {
        self.next_region
    }

    /// Does region `nu` exist?
    pub fn has_region(&self, nu: RegionName) -> bool {
        nu.is_cd()
            || self
                .regions
                .get(nu.0 as usize)
                .and_then(Option::as_ref)
                .is_some()
    }

    /// Access a region's data.
    pub fn region(&self, nu: RegionName) -> Option<RegionView<'_>> {
        if nu.is_cd() {
            return Some(RegionView {
                mem: self,
                inner: ViewInner::Code,
            });
        }
        self.regions
            .get(nu.0 as usize)
            .and_then(Option::as_ref)
            .map(|r| RegionView {
                mem: self,
                inner: ViewInner::Data(r),
            })
    }

    /// Access a page's header and slots.
    pub fn page(&self, pid: u32) -> Option<PageView<'_>> {
        self.pages
            .get(pid as usize)
            .and_then(Option::as_ref)
            .map(|p| PageView {
                mem: self,
                page: p,
                id: pid,
            })
    }

    /// Ids of all live pages, ascending.
    pub fn live_page_ids(&self) -> Vec<u32> {
        self.pages
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.as_ref().map(|_| i as u32))
            .collect()
    }

    /// Ids of pages written since the last acknowledged audit, ascending.
    pub fn dirty_page_ids(&self) -> Vec<u32> {
        self.dirty.iter().copied().collect()
    }

    /// Number of live pages.
    pub fn live_pages(&self) -> usize {
        self.live_pages
    }

    /// Page-store counters.
    pub fn page_stats(&self) -> PageStats {
        PageStats {
            page_words: self.config.page_words,
            allocated: self.pages_allocated,
            freed: self.pages_freed,
            live: self.live_pages,
            peak_live: self.peak_live_pages,
            reserved_words: self.reserved_words,
            live_data_words: self.data_words,
        }
    }

    /// Words currently reserved by live pages (what `max_heap_words` caps).
    pub fn reserved_words(&self) -> usize {
        self.reserved_words
    }

    // ----- audit bookkeeping --------------------------------------------

    /// Must the next audit walk the full heap? Raised by region frees:
    /// dangling pointers can hide in pages that were never re-dirtied.
    pub fn wants_full_audit(&self) -> bool {
        self.full_pending
    }

    /// Acknowledges a dirty-page audit: clears the dirty set and every
    /// enrolled page's bitmap.
    pub fn note_dirty_audit(&mut self) {
        let ids = std::mem::take(&mut self.dirty);
        for pid in ids {
            if let Some(page) = self.pages.get_mut(pid as usize).and_then(Option::as_mut) {
                page.in_dirty = false;
                page.dirty.fill(0);
            }
        }
    }

    /// Acknowledges a full audit: as [`Memory::note_dirty_audit`], and
    /// clears the full-walk request.
    pub fn note_full_audit(&mut self) {
        self.note_dirty_audit();
        self.full_pending = false;
    }

    /// Total words in data regions. O(1): the total is maintained
    /// incrementally by `put` and `only`, so the interpreter can take a
    /// peak reading on every step without an O(regions) walk.
    pub fn data_words(&self) -> usize {
        debug_assert_eq!(
            self.data_words,
            self.regions
                .iter()
                .skip(1) // cd placeholder
                .flatten()
                .map(|r| r.words)
                .sum::<usize>(),
            "incremental data-word total out of sync"
        );
        self.data_words
    }

    // ----- Ψ maintenance (observer machinery) ---------------------------

    /// The `Ψ` entry at `ν.ℓ`, if tracked.
    pub fn psi_entry(&self, nu: RegionName, loc: u32) -> Option<&Ty> {
        self.psi.get(&nu)?.get(&loc)
    }

    /// All `Ψ` entries of a region, if tracked.
    pub fn psi_region(&self, nu: RegionName) -> Option<&BTreeMap<u32, Ty>> {
        self.psi.get(&nu)
    }

    /// The whole `Ψ` table. Regions are removed from it when they are
    /// reclaimed, so this is exactly the live memory typing — the auditor
    /// borrows it wholesale rather than copying it entry by entry.
    pub fn psi_table(&self) -> &BTreeMap<RegionName, BTreeMap<u32, Ty>> {
        &self.psi
    }

    /// Overwrites the `Ψ` entry at `ν.ℓ` (used by the machine's `widen`
    /// handler to apply the `T` operator of Appendix C).
    pub fn rewrite_psi_entry(&mut self, nu: RegionName, loc: u32, ty: Ty) {
        self.psi.entry(nu).or_default().insert(loc, ty);
    }

    /// Removes a `Ψ` entry (dead garbage discarded by `widen`, Def. 7.1's
    /// `M̄ ⊆ M`).
    pub fn remove_psi_entry(&mut self, nu: RegionName, loc: u32) {
        if let Some(m) = self.psi.get_mut(&nu) {
            m.remove(&loc);
        }
    }

    /// Infers the type of a storable value from its structure, its
    /// annotations, and `Ψ` (for embedded addresses).
    ///
    /// This is syntax-directed: packages carry their body types, code blocks
    /// their signatures, and addresses are looked up in `Ψ`. The
    /// well-formedness checker re-validates all of this against the real
    /// typing rules; inference only *names* the type.
    ///
    /// # Errors
    ///
    /// Fails on open values or addresses missing from `Ψ`.
    pub fn infer_stored_ty(&self, v: &Value) -> Result<Ty> {
        match v {
            Value::Int(_) => Ok(Ty::Int),
            Value::Var(x) => Err(mem_err(format!("open value (free variable {x}) in store"))),
            Value::Addr(nu, loc) => {
                let ty = self
                    .psi_entry(*nu, *loc)
                    .ok_or_else(|| mem_err(format!("no Ψ entry for {nu}.{loc}")))?;
                Ok(ty.clone().at(crate::syntax::Region::Name(*nu)))
            }
            Value::Pair(a, b) => Ok(Ty::prod(self.infer_stored_ty(a)?, self.infer_stored_ty(b)?)),
            Value::PackTag {
                tvar,
                kind,
                body_ty,
                ..
            } => Ok(Ty::exist_tag(*tvar, *kind, body_ty.clone())),
            Value::PackAlpha {
                avar,
                regions,
                body_ty,
                ..
            } => Ok(Ty::exist_alpha(
                *avar,
                regions.iter().copied(),
                body_ty.clone(),
            )),
            Value::PackRgn {
                rvar,
                bound,
                body_ty,
                ..
            } => Ok(Ty::exist_rgn(*rvar, bound.iter().copied(), body_ty.clone())),
            Value::TagApp(f, tags, regions) => {
                let fty = self.infer_stored_ty(f)?;
                match fty {
                    Ty::At(inner, rho) => match &*inner {
                        Ty::Code { tvars, rvars, args } => {
                            if tvars.len() != tags.len() || rvars.len() != regions.len() {
                                return Err(mem_err("translucent application arity mismatch"));
                            }
                            let mut sub = crate::subst::Subst::new();
                            for ((t, _), tau) in tvars.iter().zip(tags.iter()) {
                                sub = sub.with_tag(*t, tau.clone());
                            }
                            for (r, nu) in rvars.iter().zip(regions.iter()) {
                                sub = sub.with_rgn(*r, *nu);
                            }
                            Ok(Ty::Trans {
                                tags: tags.iter().map(|t| t.id()).collect(),
                                regions: regions.iter().copied().collect(),
                                args: args.iter().map(|a| sub.ty_id(*a)).collect(),
                                rho,
                            })
                        }
                        _ => Err(mem_err("tag application of non-code value")),
                    },
                    _ => Err(mem_err("tag application of non-address value")),
                }
            }
            Value::Code(def) => Ok(def.ty()),
            Value::Inl(x) => Ok(Ty::Left(self.infer_stored_ty(x)?.id())),
            Value::Inr(x) => Ok(Ty::Right(self.infer_stored_ty(x)?.id())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ErrorKind;
    use crate::syntax::Region;

    fn mem() -> Memory {
        Memory::new(MemConfig {
            region_budget: 8,
            growth: GrowthPolicy::Fixed,
            track_types: true,
            max_heap_words: None,
            page_words: 8,
        })
    }

    fn paged(page_words: usize, cap: Option<usize>) -> Memory {
        Memory::new(MemConfig {
            region_budget: 1024,
            growth: GrowthPolicy::Fixed,
            track_types: false,
            max_heap_words: cap,
            page_words,
        })
    }

    #[test]
    fn new_memory_has_only_cd() {
        let m = mem();
        let names: Vec<_> = m.region_names().collect();
        assert_eq!(names, vec![CD]);
    }

    #[test]
    fn alloc_put_get_roundtrip() {
        let mut m = mem();
        let r = m.alloc_region();
        let loc = m.put(r, Value::pair(Value::Int(1), Value::Int(2))).unwrap();
        assert_eq!(
            m.get(r, loc).unwrap(),
            &Value::pair(Value::Int(1), Value::Int(2))
        );
    }

    #[test]
    fn words_accounting() {
        let mut m = mem();
        let r = m.alloc_region();
        m.put(r, Value::pair(Value::Int(1), Value::Int(2))).unwrap();
        assert_eq!(m.region(r).unwrap().words(), 2);
        m.put(r, Value::Int(3)).unwrap();
        assert_eq!(m.region(r).unwrap().words(), 3);
    }

    #[test]
    fn value_words_of_packages_and_sums() {
        let v = Value::PackTag {
            tvar: ps_ir::Symbol::intern("t"),
            kind: crate::syntax::Kind::Omega,
            tag: crate::syntax::Tag::Int,
            val: (Value::Int(1)).into(),
            body_ty: Ty::Int,
        };
        assert_eq!(value_words(&v), 2, "one word for the runtime tag");
        assert_eq!(
            value_words(&Value::inl(Value::pair(Value::Int(1), Value::Int(2)))),
            2
        );
    }

    #[test]
    fn fullness_against_budget() {
        let mut m = mem();
        let r = m.alloc_region();
        assert!(!m.is_full(r).unwrap());
        for i in 0..8 {
            m.put(r, Value::Int(i)).unwrap();
        }
        assert!(m.is_full(r).unwrap());
        assert!(!m.is_full(CD).unwrap(), "cd is never full");
    }

    #[test]
    fn adaptive_budget_doubles() {
        let mut m = Memory::new(MemConfig {
            region_budget: 4,
            growth: GrowthPolicy::Adaptive,
            track_types: false,
            max_heap_words: None,
            page_words: 8,
        });
        let r1 = m.alloc_region();
        assert_eq!(m.region(r1).unwrap().budget(), 4);
        for i in 0..10 {
            m.put(r1, Value::Int(i)).unwrap();
        }
        let r2 = m.alloc_region();
        assert_eq!(m.region(r2).unwrap().budget(), 20);
    }

    #[test]
    fn only_reclaims_unlisted() {
        let mut m = mem();
        let r1 = m.alloc_region();
        let r2 = m.alloc_region();
        m.put(r1, Value::Int(1)).unwrap();
        m.put(r2, Value::Int(2)).unwrap();
        let report = m.only(&[r2]);
        assert!(!m.has_region(r1));
        assert!(m.has_region(r2));
        assert!(m.has_region(CD), "cd is always kept");
        assert_eq!(report.words_reclaimed(), 1);
        assert_eq!(report.kept_words, 1);
        assert_eq!(report.dropped, vec![(r1, 1, 1)]);
        assert_eq!(report.freed_pages.len(), 1, "r1's one page was returned");
    }

    #[test]
    fn get_from_reclaimed_region_fails() {
        let mut m = mem();
        let r1 = m.alloc_region();
        let loc = m.put(r1, Value::Int(1)).unwrap();
        m.only(&[]);
        assert!(m.get(r1, loc).is_err());
    }

    #[test]
    fn put_into_cd_fails() {
        let mut m = mem();
        assert!(m.put(CD, Value::Int(1)).is_err());
    }

    #[test]
    fn set_into_cd_fails() {
        let mut m = mem();
        assert!(m.set(CD, 0, Value::Int(1)).is_err());
    }

    #[test]
    fn set_overwrites() {
        let mut m = mem();
        let r = m.alloc_region();
        let loc = m.put(r, Value::inl(Value::Int(1))).unwrap();
        m.set(r, loc, Value::inr(Value::Int(2))).unwrap();
        assert_eq!(m.get(r, loc).unwrap(), &Value::inr(Value::Int(2)));
    }

    #[test]
    fn psi_tracks_puts() {
        let mut m = mem();
        let r = m.alloc_region();
        let loc = m.put(r, Value::pair(Value::Int(1), Value::Int(2))).unwrap();
        assert_eq!(m.psi_entry(r, loc), Some(&Ty::prod(Ty::Int, Ty::Int)));
    }

    #[test]
    fn psi_follows_addresses() {
        let mut m = mem();
        let r = m.alloc_region();
        let inner = m.put(r, Value::Int(7)).unwrap();
        let loc = m
            .put(r, Value::pair(Value::Addr(r, inner), Value::Int(0)))
            .unwrap();
        assert_eq!(
            m.psi_entry(r, loc),
            Some(&Ty::prod(Ty::Int.at(Region::Name(r)), Ty::Int))
        );
    }

    #[test]
    fn infer_rejects_open_values() {
        let m = mem();
        assert!(m
            .infer_stored_ty(&Value::Var(ps_ir::Symbol::intern("x")))
            .is_err());
    }

    #[test]
    fn data_words_excludes_cd() {
        let mut m = mem();
        let r = m.alloc_region();
        m.put(r, Value::Int(1)).unwrap();
        assert_eq!(m.data_words(), 1);
    }

    #[test]
    fn data_words_tracks_put_set_and_only() {
        let mut m = Memory::new(MemConfig {
            region_budget: 8,
            growth: GrowthPolicy::Fixed,
            track_types: false,
            max_heap_words: None,
            page_words: 8,
        });
        let r1 = m.alloc_region();
        let r2 = m.alloc_region();
        m.put(r1, Value::pair(Value::Int(1), Value::Int(2)))
            .unwrap();
        let loc = m.put(r2, Value::Int(3)).unwrap();
        assert_eq!(m.data_words(), 3);
        // `set` never adjusts word counts (the slot keeps its Υ size).
        m.set(r2, loc, Value::Int(9)).unwrap();
        assert_eq!(m.data_words(), 3);
        m.only(&[r2]);
        assert_eq!(m.data_words(), 1);
        m.only(&[]);
        assert_eq!(m.data_words(), 0);
    }

    // ----- BiBOP page-store tests ---------------------------------------

    #[test]
    fn page_words_is_normalized_to_a_power_of_two() {
        let m = paged(7, None);
        assert_eq!(m.config().page_words, 8);
        let m = paged(0, None);
        assert_eq!(m.config().page_words, 1);
    }

    #[test]
    fn size_classes_segregate_pages() {
        let mut m = paged(8, None);
        let r = m.alloc_region();
        m.put(r, Value::Int(1)).unwrap(); // class 1
        m.put(r, Value::pair(Value::Int(2), Value::Int(3))).unwrap(); // class 2
        m.put(r, Value::Int(4)).unwrap(); // back on the class-1 page
        assert_eq!(m.region(r).unwrap().page_count(), 2);
        let ids = m.live_page_ids();
        assert_eq!(ids.len(), 2);
        let classes: Vec<_> = ids.iter().map(|&p| m.page(p).unwrap().class()).collect();
        assert_eq!(classes, vec![1, 2]);
    }

    #[test]
    fn loc_resolution_across_pages() {
        let mut m = paged(4, None);
        let r = m.alloc_region();
        let mut locs = Vec::new();
        for i in 0..6 {
            locs.push(m.put(r, Value::Int(i)).unwrap());
        }
        // Class-1 pages hold 4 slots: offsets 0..=3 on page ordinal 0,
        // then (1 << 2) | slot on ordinal 1.
        assert_eq!(locs, vec![0, 1, 2, 3, 4, 5]);
        for (i, &loc) in locs.iter().enumerate() {
            assert_eq!(m.get(r, loc).unwrap(), &Value::Int(i as i64));
        }
        assert_eq!(m.region(r).unwrap().page_count(), 2);
        // Iteration yields ascending offsets.
        let seen: Vec<u32> = m.region(r).unwrap().iter().map(|(l, _)| l).collect();
        assert_eq!(seen, locs);
    }

    #[test]
    fn large_object_gets_a_dedicated_page() {
        let mut m = paged(4, None);
        let r = m.alloc_region();
        // A 5-word object on a 4-word page: footprint rounds to 8 words.
        let big = Value::pair(
            Value::pair(Value::Int(1), Value::Int(2)),
            Value::pair(Value::Int(3), Value::pair(Value::Int(4), Value::Int(5))),
        );
        assert_eq!(value_words(&big), 5);
        let loc = m.put(r, big.clone()).unwrap();
        assert_eq!(m.get(r, loc).unwrap(), &big);
        let pid = m.live_page_ids()[0];
        let page = m.page(pid).unwrap();
        assert_eq!(page.capacity(), 1);
        assert_eq!(page.footprint(), 8);
        assert_eq!(m.reserved_words(), 8);
        // A second large object opens a second page.
        m.put(r, big).unwrap();
        assert_eq!(m.region(r).unwrap().page_count(), 2);
    }

    #[test]
    fn heap_cap_is_page_granular_with_exact_boundary() {
        // One 8-word page fits under a 15-word cap; a second does not.
        let mut m = paged(8, Some(15));
        let r = m.alloc_region();
        m.put(r, Value::Int(1)).unwrap();
        let err = m
            .put(r, Value::pair(Value::Int(2), Value::Int(3)))
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::OutOfMemory);
        assert!(err.to_string().contains("out of memory"), "{err}");

        // The boundary is exact: a 16-word cap admits both pages.
        let mut m = paged(8, Some(16));
        let r = m.alloc_region();
        m.put(r, Value::Int(1)).unwrap();
        m.put(r, Value::pair(Value::Int(2), Value::Int(3))).unwrap();
        assert_eq!(m.reserved_words(), 16);
        // …and a third page is one page too many.
        let err = m
            .put(
                r,
                Value::inl(Value::pair(
                    Value::Int(4),
                    Value::pair(Value::Int(5), Value::Int(6)),
                )),
            )
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::OutOfMemory);
        // Filling an *open* page never trips the cap.
        m.put(r, Value::Int(7)).unwrap();
    }

    #[test]
    fn freed_page_ids_are_reused() {
        let mut m = paged(8, None);
        let r1 = m.alloc_region();
        m.put(r1, Value::Int(1)).unwrap();
        let first = m.live_page_ids();
        m.only(&[]);
        assert!(m.live_page_ids().is_empty());
        assert_eq!(m.reserved_words(), 0);
        let r2 = m.alloc_region();
        m.put(r2, Value::Int(2)).unwrap();
        assert_eq!(m.live_page_ids(), first, "page id recycled");
        let stats = m.page_stats();
        assert_eq!(stats.allocated, 2);
        assert_eq!(stats.freed, 1);
        assert_eq!(stats.live, 1);
        assert_eq!(stats.peak_live, 1);
    }

    #[test]
    fn dirty_tracking_marks_and_clears() {
        let mut m = paged(8, None);
        let r = m.alloc_region();
        let loc = m.put(r, Value::inl(Value::Int(1))).unwrap();
        let pid = m.live_page_ids()[0];
        assert_eq!(m.dirty_page_ids(), vec![pid]);
        assert_eq!(
            m.page(pid).unwrap().dirty_slots().collect::<Vec<_>>(),
            vec![0]
        );
        m.note_dirty_audit();
        assert!(m.dirty_page_ids().is_empty());
        assert!(m.page(pid).unwrap().dirty_slots().next().is_none());
        // A set re-dirties exactly the written slot.
        m.set(r, loc, Value::inr(Value::Int(2))).unwrap();
        assert_eq!(m.dirty_page_ids(), vec![pid]);
        assert_eq!(
            m.page(pid).unwrap().dirty_slots().collect::<Vec<_>>(),
            vec![0]
        );
    }

    #[test]
    fn frees_demand_a_full_audit() {
        let mut m = paged(8, None);
        let r1 = m.alloc_region();
        m.put(r1, Value::Int(1)).unwrap();
        assert!(!m.wants_full_audit());
        m.only(&[]);
        assert!(m.wants_full_audit());
        m.note_dirty_audit();
        assert!(m.wants_full_audit(), "dirty audits don't clear the request");
        m.note_full_audit();
        assert!(!m.wants_full_audit());

        let r2 = m.alloc_region();
        m.put(r2, Value::Int(2)).unwrap();
        assert!(m.force_free_region(r2));
        assert!(m.wants_full_audit());
    }

    #[test]
    fn corrupt_page_header_desyncs_occupancy() {
        let mut m = paged(8, None);
        let r = m.alloc_region();
        m.put(r, Value::Int(1)).unwrap();
        m.put(r, Value::Int(2)).unwrap();
        m.note_dirty_audit();
        let pid = m.live_page_ids()[0];
        assert!(m.corrupt_page_header(pid));
        let page = m.page(pid).unwrap();
        assert_eq!(page.len(), 2);
        assert_eq!(page.occupancy(), 3, "header desynced from storage");
        assert_eq!(m.dirty_page_ids(), vec![pid], "corruption enrolls the page");
        assert!(!m.corrupt_page_header(999), "missing pages report false");
    }

    #[test]
    fn page_view_exposes_header_fields() {
        let mut m = paged(8, None);
        let r = m.alloc_region();
        let loc = m.put(r, Value::pair(Value::Int(1), Value::Int(2))).unwrap();
        let pid = m.live_page_ids()[0];
        let page = m.page(pid).unwrap();
        assert_eq!(page.id(), pid);
        assert_eq!(page.owner(), r);
        assert_eq!(page.ordinal(), 0);
        assert_eq!(page.class(), 2);
        assert_eq!(page.capacity(), 4);
        assert_eq!(page.occupancy(), 1);
        assert_eq!(page.live_words(), 2);
        assert_eq!(page.footprint(), 8);
        assert_eq!(page.loc_of(0), loc);
        assert_eq!(
            page.slot(0),
            Some(&Value::pair(Value::Int(1), Value::Int(2)))
        );
    }
}
