//! The §2.2.1 ablation: asymmetric substitution-based `S` operators versus
//! the symmetric `M` operator.
//!
//! §2.2.1 ("A case for symmetry") explains why the naive Typerec
//! `S_{T,F}(σ)` — substitute region `T` for `F` — cannot work: each
//! collection wraps another `S` around the (abstract) type, and
//! `S_{ρ,T}(S_{T,F}(α))` is a normal form because `α` is abstract, so types
//! grow without bound. The paper's fix is the symmetric contract
//! `copy : ∀F.∀T.∀α.(S_F(α) → S_T(α))`, realized by the hard-wired `M`.
//!
//! This module makes that argument *measurable* (experiment E8): it models
//! both disciplines on an abstract mutator type and reports the type size
//! after `k` collections.

use crate::moper::ty_size;
use crate::syntax::{Region, RegionName, Tag, Ty};

/// A type under the *asymmetric* discipline of §2.2.1: the mutator's data
/// type as seen after some number of collections, with the pending `S`
/// operators that cannot reduce because the underlying type is abstract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SType {
    /// The abstract type `α` hidden in an existential (e.g. a closure
    /// environment) — the reason `S` cannot reduce.
    Abstract,
    /// `S_{to,from}(σ)` — substitute region `to` for `from` in `σ`, stuck
    /// until `σ` is concrete.
    S {
        from: Region,
        to: Region,
        inner: Box<SType>,
    },
}

impl SType {
    /// The size of the pending-operator tower.
    pub fn size(&self) -> usize {
        match self {
            SType::Abstract => 1,
            SType::S { inner, .. } => 1 + inner.size(),
        }
    }
}

/// One collection under the asymmetric discipline: from-space `from` is
/// evacuated to to-space `to`, wrapping another stuck `S`.
pub fn s_collect(ty: SType, from: Region, to: Region) -> SType {
    SType::S {
        from,
        to,
        inner: Box::new(ty),
    }
}

/// Runs `k` collections under the asymmetric discipline and returns the
/// type size after each collection (strictly increasing — the §2.2.1
/// problem).
pub fn s_growth(k: usize) -> Vec<usize> {
    let mut ty = SType::Abstract;
    let mut sizes = Vec::with_capacity(k);
    for i in 0..k {
        let from = Region::Name(RegionName(i as u32 + 1));
        let to = Region::Name(RegionName(i as u32 + 2));
        ty = s_collect(ty, from, to);
        sizes.push(ty.size());
    }
    sizes
}

/// Runs `k` collections under the paper's symmetric discipline — the data's
/// type is `M_ρ(t)` before and after every collection, with only the region
/// index changing — and returns the type size after each collection
/// (constant).
pub fn m_growth(k: usize) -> Vec<usize> {
    let t = ps_ir::Symbol::intern("t!abl");
    let mut sizes = Vec::with_capacity(k);
    for i in 0..k {
        let rho = Region::Name(RegionName(i as u32 + 2));
        let ty = Ty::m(rho, Tag::Var(t));
        sizes.push(ty_size(&ty));
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s_discipline_grows_linearly() {
        let sizes = s_growth(16);
        assert_eq!(sizes.len(), 16);
        for (i, w) in sizes.windows(2).enumerate() {
            assert!(w[1] > w[0], "S tower must grow at step {i}");
        }
        assert_eq!(*sizes.last().unwrap(), 17);
    }

    #[test]
    fn m_discipline_stays_constant() {
        let sizes = m_growth(16);
        assert!(sizes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn s_tower_is_a_normal_form() {
        // S_{ρ,T}(S_{T,F}(α)) does not reduce: both layers persist.
        let f = Region::Name(RegionName(1));
        let t = Region::Name(RegionName(2));
        let rho = Region::Name(RegionName(3));
        let once = s_collect(SType::Abstract, f, t);
        let twice = s_collect(once.clone(), t, rho);
        assert_eq!(twice.size(), 3);
        match twice {
            SType::S { inner, .. } => assert_eq!(*inner, once),
            _ => panic!("expected stuck S"),
        }
    }
}
