//! The tag language: kinding (`Θ ⊢ τ : κ`, Fig. 6) and normalization.
//!
//! Tags form a simply typed λ-calculus over the kinds `Ω` and `Ω → Ω`
//! (Fig. 2), so reduction of well-kinded tags is strongly normalizing and
//! confluent — Propositions 6.1 and 6.2 of the paper. [`normalize`] computes
//! the (unique) normal form by normal-order reduction; the property tests in
//! this module check confluence by comparing against an applicative-order
//! strategy.

use std::collections::HashMap;
use std::sync::Arc;

use ps_ir::Symbol;

use crate::error::{kind_err, Result};
use crate::intern::{self, intern_tag, TagId};
use crate::subst::Subst;
use crate::syntax::{Kind, Tag};

/// The tag kinding judgement `Θ ⊢ τ : κ` (Fig. 6, top-left block).
///
/// # Errors
///
/// Returns a kinding error for unbound variables, ill-kinded applications,
/// or tag functions whose body is not of kind `Ω`.
pub fn kind_of(tau: &Tag, theta: &HashMap<Symbol, Kind>) -> Result<Kind> {
    match tau {
        Tag::Var(t) => theta
            .get(t)
            .copied()
            .ok_or_else(|| kind_err(format!("unbound tag variable {t}"))),
        Tag::AnyArrow(_) => Ok(Kind::Omega),
        Tag::Int => Ok(Kind::Omega),
        Tag::Prod(a, b) => {
            expect_omega(a, theta)?;
            expect_omega(b, theta)?;
            Ok(Kind::Omega)
        }
        Tag::Arrow(args) => {
            for a in args.iter() {
                expect_omega(a, theta)?;
            }
            Ok(Kind::Omega)
        }
        Tag::Exist(t, body) => {
            let mut theta2 = theta.clone();
            theta2.insert(*t, Kind::Omega);
            match kind_of(body, &theta2)? {
                Kind::Omega => Ok(Kind::Omega),
                k => Err(kind_err(format!(
                    "existential body has kind {k}, expected Ω"
                ))),
            }
        }
        Tag::Lam(t, body) => {
            let mut theta2 = theta.clone();
            theta2.insert(*t, Kind::Omega);
            match kind_of(body, &theta2)? {
                Kind::Omega => Ok(Kind::Arrow),
                k => Err(kind_err(format!(
                    "tag function body has kind {k}, expected Ω"
                ))),
            }
        }
        Tag::App(f, a) => {
            match kind_of(f, theta)? {
                Kind::Arrow => {}
                k => return Err(kind_err(format!("applied tag has kind {k}, expected Ω→Ω"))),
            }
            expect_omega(a, theta)?;
            Ok(Kind::Omega)
        }
    }
}

fn expect_omega(tau: &Tag, theta: &HashMap<Symbol, Kind>) -> Result<()> {
    match kind_of(tau, theta)? {
        Kind::Omega => Ok(()),
        k => Err(kind_err(format!("tag has kind {k}, expected Ω"))),
    }
}

/// Checks `Θ ⊢ τ : κ` for an expected kind.
pub fn check_kind(tau: &Tag, theta: &HashMap<Symbol, Kind>, expected: Kind) -> Result<()> {
    let k = kind_of(tau, theta)?;
    if k == expected {
        Ok(())
    } else {
        Err(kind_err(format!("tag has kind {k}, expected {expected}")))
    }
}

/// Normalizes a tag by normal-order β-reduction.
///
/// Well-kinded tags always terminate (Prop. 6.1); ill-kinded self-applications
/// would diverge, so callers must kind-check first — which every judgement in
/// this crate does.
///
/// The result is memoized per interned node ([`normalize_id`]), so repeated
/// normalization of a shared subtree is a table lookup.
pub fn normalize(tau: &Tag) -> Tag {
    normalize_id(tau.id()).0.node().clone()
}

/// Like [`normalize`] but counts β-steps, for the E7 benchmark. The memo
/// stores the per-subtree step count, so counted callers see identical
/// numbers whether or not the work was cached.
pub fn normalize_counted(tau: &Tag, steps: &mut u64) -> Tag {
    let (nf, n) = normalize_id(tau.id());
    *steps += n;
    nf.node().clone()
}

/// Memoized normal-order normalization by id: returns the normal form and
/// the number of β-steps the (uncached) reduction performs.
pub fn normalize_id(id: TagId) -> (TagId, u64) {
    if let Some(hit) = intern::tag_norm_lookup(id) {
        return hit;
    }
    let (nf, steps) = match id.node() {
        Tag::Var(_) | Tag::Int | Tag::AnyArrow(_) => (id, 0),
        Tag::Prod(a, b) => {
            let (na, ca) = normalize_id(*a);
            let (nb, cb) = normalize_id(*b);
            (intern_tag(Tag::Prod(na, nb)), ca + cb)
        }
        Tag::Arrow(args) => {
            let mut count = 0;
            let nargs: Arc<[TagId]> = args
                .iter()
                .map(|a| {
                    let (na, ca) = normalize_id(*a);
                    count += ca;
                    na
                })
                .collect();
            (intern_tag(Tag::Arrow(nargs)), count)
        }
        Tag::Exist(t, body) => {
            let (nb, cb) = normalize_id(*body);
            (intern_tag(Tag::Exist(*t, nb)), cb)
        }
        Tag::Lam(t, body) => {
            let (nb, cb) = normalize_id(*body);
            (intern_tag(Tag::Lam(*t, nb)), cb)
        }
        Tag::App(f, a) => {
            let (nf, cf) = normalize_id(*f);
            match nf.node() {
                Tag::Lam(t, body) => {
                    let reduced = Subst::one_tag(*t, a.node().clone()).tag(body.node());
                    let (nr, cr) = normalize_id(reduced.id());
                    (nr, cf + 1 + cr)
                }
                _ => {
                    let (na, ca) = normalize_id(*a);
                    (intern_tag(Tag::App(nf, na)), cf + ca)
                }
            }
        }
    };
    intern::tag_norm_insert(id, nf, steps);
    (nf, steps)
}

/// Is the tag in *tagnf* (Fig. 2's `τ′` grammar — no β-redexes)?
pub fn is_normal(tau: &Tag) -> bool {
    match tau {
        Tag::Var(_) | Tag::Int | Tag::AnyArrow(_) => true,
        Tag::Prod(a, b) => is_normal(a) && is_normal(b),
        Tag::Arrow(args) => args.iter().all(|a| is_normal(a)),
        Tag::Exist(_, body) | Tag::Lam(_, body) => is_normal(body),
        Tag::App(f, a) => !matches!(**f, Tag::Lam(..)) && is_normal(f) && is_normal(a),
    }
}

/// How [`equiv`] compares two tags.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Equiv {
    /// Compare as written, up to α-renaming of binders. Use when both sides
    /// are already in normal form (or when redexes must be distinguished).
    Syntactic,
    /// β-normalize both sides first — definitional equality. This is what
    /// the typing rules mean by `τ₁ = τ₂`.
    Normalizing,
}

/// The single equality entry point for tags.
///
/// Both modes reduce to an integer compare of α-canonical ids
/// ([`crate::intern::canon_tag`]); `Normalizing` additionally sends each
/// side through the (memoized) normalizer first. [`tag_eq`] and
/// [`alpha_eq`] are thin wrappers fixing the mode.
pub fn equiv(a: &Tag, b: &Tag, mode: Equiv) -> bool {
    equiv_id(a.id(), b.id(), mode)
}

/// [`equiv`] on interned ids.
pub fn equiv_id(a: TagId, b: TagId, mode: Equiv) -> bool {
    let (a, b) = match mode {
        Equiv::Syntactic => (a, b),
        Equiv::Normalizing => (normalize_id(a).0, normalize_id(b).0),
    };
    intern::tag_alpha_eq(a, b)
}

/// α-equivalence of tags (no normalization): `equiv(_, _, Syntactic)`.
pub fn alpha_eq(a: &Tag, b: &Tag) -> bool {
    equiv(a, b, Equiv::Syntactic)
}

/// Tag equality: normalize then compare up to α —
/// `equiv(_, _, Normalizing)`.
pub fn tag_eq(a: &Tag, b: &Tag) -> bool {
    equiv(a, b, Equiv::Normalizing)
}

/// The size of a tag (number of constructors), used for benchmarks and
/// generator bounds.
pub fn tag_size(tau: &Tag) -> usize {
    match tau {
        Tag::Var(_) | Tag::Int | Tag::AnyArrow(_) => 1,
        Tag::Prod(a, b) | Tag::App(a, b) => 1 + tag_size(a) + tag_size(b),
        Tag::Arrow(args) => 1 + args.iter().map(|a| tag_size(a)).sum::<usize>(),
        Tag::Exist(_, body) | Tag::Lam(_, body) => 1 + tag_size(body),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    fn omega_env() -> HashMap<Symbol, Kind> {
        let mut m = HashMap::new();
        m.insert(s("t"), Kind::Omega);
        m.insert(s("te"), Kind::Arrow);
        m
    }

    #[test]
    fn int_has_kind_omega() {
        assert_eq!(kind_of(&Tag::Int, &HashMap::new()).unwrap(), Kind::Omega);
    }

    #[test]
    fn unbound_variable_fails() {
        assert!(kind_of(&Tag::Var(s("nope")), &HashMap::new()).is_err());
    }

    #[test]
    fn lambda_has_arrow_kind() {
        let tau = Tag::lam(s("u"), Tag::prod(Tag::Var(s("u")), Tag::Int));
        assert_eq!(kind_of(&tau, &HashMap::new()).unwrap(), Kind::Arrow);
    }

    #[test]
    fn application_checks_operand() {
        let env = omega_env();
        let good = Tag::app(Tag::Var(s("te")), Tag::Int);
        assert_eq!(kind_of(&good, &env).unwrap(), Kind::Omega);
        let bad = Tag::app(Tag::Var(s("t")), Tag::Int);
        assert!(kind_of(&bad, &env).is_err());
        let bad2 = Tag::app(Tag::Var(s("te")), Tag::Var(s("te")));
        assert!(kind_of(&bad2, &env).is_err());
    }

    #[test]
    fn exist_binds_omega() {
        let tau = Tag::exist(s("u"), Tag::Var(s("u")));
        assert_eq!(kind_of(&tau, &HashMap::new()).unwrap(), Kind::Omega);
    }

    #[test]
    fn no_higher_kinds() {
        // λu. λv. u is not expressible: the inner λ has kind Ω→Ω ≠ Ω.
        let tau = Tag::lam(s("u"), Tag::lam(s("v"), Tag::Var(s("u"))));
        assert!(kind_of(&tau, &HashMap::new()).is_err());
    }

    #[test]
    fn beta_reduction() {
        let id = Tag::id_fn();
        let tau = Tag::app(id, Tag::Int);
        assert_eq!(normalize(&tau), Tag::Int);
    }

    #[test]
    fn reduction_under_constructors() {
        let tau = Tag::prod(Tag::app(Tag::id_fn(), Tag::Int), Tag::Int);
        assert_eq!(normalize(&tau), Tag::prod(Tag::Int, Tag::Int));
    }

    #[test]
    fn neutral_applications_stay() {
        let env = omega_env();
        let tau = Tag::app(Tag::Var(s("te")), Tag::Int);
        check_kind(&tau, &env, Kind::Omega).unwrap();
        assert_eq!(normalize(&tau), tau);
        assert!(is_normal(&tau));
    }

    #[test]
    fn normal_form_detection() {
        assert!(is_normal(&Tag::Int));
        assert!(!is_normal(&Tag::app(Tag::id_fn(), Tag::Int)));
        // A redex under a binder is not normal.
        let tau = Tag::lam(s("u"), Tag::app(Tag::id_fn(), Tag::Var(s("u"))));
        assert!(!is_normal(&tau));
        assert!(is_normal(&normalize(&tau)));
    }

    #[test]
    fn alpha_equivalence() {
        let a = Tag::lam(s("u"), Tag::Var(s("u")));
        let b = Tag::lam(s("v"), Tag::Var(s("v")));
        assert!(alpha_eq(&a, &b));
        let c = Tag::lam(s("u"), Tag::Int);
        assert!(!alpha_eq(&a, &c));
    }

    #[test]
    fn alpha_eq_respects_shadowing() {
        // λu.λ... not expressible; use exist nesting instead.
        let a = Tag::exist(
            s("u"),
            Tag::exist(s("v"), Tag::prod(Tag::Var(s("u")), Tag::Var(s("v")))),
        );
        let b = Tag::exist(
            s("v"),
            Tag::exist(s("u"), Tag::prod(Tag::Var(s("v")), Tag::Var(s("u")))),
        );
        assert!(alpha_eq(&a, &b));
        let c = Tag::exist(
            s("v"),
            Tag::exist(s("u"), Tag::prod(Tag::Var(s("u")), Tag::Var(s("v")))),
        );
        assert!(!alpha_eq(&a, &c));
    }

    #[test]
    fn tag_eq_normalizes() {
        let a = Tag::app(Tag::id_fn(), Tag::prod(Tag::Int, Tag::Int));
        let b = Tag::prod(Tag::Int, Tag::Int);
        assert!(tag_eq(&a, &b));
    }

    #[test]
    fn normalization_counts_steps() {
        let mut steps = 0;
        let tau = Tag::app(Tag::id_fn(), Tag::app(Tag::id_fn(), Tag::Int));
        normalize_counted(&tau, &mut steps);
        assert_eq!(steps, 2);
    }

    #[test]
    fn exist_analysis_shape() {
        // The tag ∃t.τ decomposes in the machine as λt.τ applied to the
        // witness; check the pieces normalize as expected.
        let t = s("w");
        let body = Tag::prod(Tag::Var(t), Tag::Int);
        let lam = Tag::lam(t, body.clone());
        let applied = Tag::app(lam, Tag::Int);
        assert_eq!(normalize(&applied), Tag::prod(Tag::Int, Tag::Int));
    }
}
