//! Capture-avoiding substitution for λGC.
//!
//! λGC has four variable namespaces that can be substituted:
//!
//! * tag variables `t` (bound by `∃t.τ`, `λt.τ`, code blocks, `typecase`
//!   arms and `open`),
//! * region variables `r` (bound by `let region`, code blocks, region
//!   existentials and `open`),
//! * type variables `α` (bound by `∃α:∆.σ` and `open`),
//! * value variables `x` (bound by `let`, `open`, `ifleft`, `widen` and code
//!   parameters).
//!
//! A single [`Subst`] carries all four maps so one traversal implements the
//! simultaneous substitutions of Fig. 5 (e.g.
//! `e[~ρ, ~τ, ~v / ~r, ~t, ~x]` for code application). Binders are renamed
//! on the fly when they would capture a free variable of a substitution
//! range.
//!
//! Tags never mention regions (they are the *region-free* half of the
//! type/tag split of §2.2.2), so region substitution does not descend into
//! tags.

use std::borrow::Cow;
use std::collections::HashSet;
use std::hash::BuildHasher;
use std::sync::Arc;

use ps_ir::symbol::{SymbolMap, SymbolSet};
use ps_ir::Symbol;

use crate::intern::{
    self, intern_tag, intern_term, intern_ty, intern_value, TagId, TermId, TyId, ValId,
};
use crate::syntax::{CodeDef, Op, Region, Tag, Term, Ty, Value};

/// Does the substitution domain `map` touch any of the (sorted) free
/// variables `fv`? Iterates whichever side is smaller.
fn touches<V>(fv: &[Symbol], map: &SymbolMap<V>) -> bool {
    if fv.len() <= map.len() {
        fv.iter().any(|x| map.contains_key(x))
    } else {
        map.keys().any(|x| fv.binary_search(x).is_ok())
    }
}

/// A simultaneous substitution over the four λGC namespaces.
///
/// Besides one-shot application (built with [`Subst::with_val`] etc. and
/// applied by [`Subst::term`]), a `Subst` also serves as the mutable
/// *environment* of the environment machine
/// ([`crate::env_machine::EnvMachine`]): the `insert_*` methods extend the
/// maps in place, and resolution of a value/tag/region against the
/// environment is exactly substitution application. Sharing the
/// implementation guarantees both backends resolve identically.
#[derive(Clone, Debug, Default)]
pub struct Subst {
    tags: SymbolMap<Tag>,
    rgns: SymbolMap<Region>,
    alphas: SymbolMap<Ty>,
    vals: SymbolMap<Value>,
    /// Free tag variables of all ranges (for capture checks).
    range_tvars: SymbolSet,
    /// Free region variables of all ranges.
    range_rvars: SymbolSet,
    /// Free α variables of all ranges.
    range_avars: SymbolSet,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Subst {
        Subst::default()
    }

    /// Is this the identity substitution?
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
            && self.rgns.is_empty()
            && self.alphas.is_empty()
            && self.vals.is_empty()
    }

    /// Extends with `t ↦ τ`.
    pub fn with_tag(mut self, t: Symbol, tau: Tag) -> Subst {
        self.insert_tag(t, tau);
        self
    }

    /// Extends with `r ↦ ρ`.
    pub fn with_rgn(mut self, r: Symbol, rho: Region) -> Subst {
        self.insert_rgn(r, rho);
        self
    }

    /// Extends with `α ↦ σ`.
    ///
    /// Free *region* variables of the witness are deliberately **not**
    /// protected from capture: Fig. 12's continuation type
    /// `∀⟦t̄⟧[r₁,r₂,r₃](…, αc) → 0` names its translucent region binders
    /// after the very regions `αc` is confined to, so that instantiating
    /// `αc` rebinds the environment's regions at the application site.
    /// Renaming the binders (ordinary capture avoidance) would break that
    /// pun — see the `paper:` note on the Trans formation rule in
    /// [`crate::tyck`].
    pub fn with_alpha(mut self, a: Symbol, sigma: Ty) -> Subst {
        self.insert_alpha(a, sigma);
        self
    }

    /// Extends with `x ↦ v`.
    ///
    /// As with [`Self::with_alpha`], free region variables in the value's
    /// type annotations are not protected from capture (at runtime they are
    /// concrete region names anyway, which cannot be captured).
    pub fn with_val(mut self, x: Symbol, v: Value) -> Subst {
        self.insert_val(x, v);
        self
    }

    // ----- in-place extension (environment-machine entry points) --------

    /// Extends with `t ↦ τ` in place.
    pub(crate) fn insert_tag(&mut self, t: Symbol, tau: Tag) {
        free_tag_vars(&tau, &mut self.range_tvars);
        self.tags.insert(t, tau);
    }

    /// Extends with `r ↦ ρ` in place.
    pub(crate) fn insert_rgn(&mut self, r: Symbol, rho: Region) {
        if let Region::Var(v) = rho {
            self.range_rvars.insert(v);
        }
        self.rgns.insert(r, rho);
    }

    /// Extends with `α ↦ σ` in place (capture caveats as [`Self::with_alpha`]).
    pub(crate) fn insert_alpha(&mut self, a: Symbol, sigma: Ty) {
        let mut dropped_rvars = HashSet::new();
        ty_free_vars(
            &sigma,
            &mut self.range_tvars,
            &mut dropped_rvars,
            &mut self.range_avars,
        );
        self.alphas.insert(a, sigma);
    }

    /// Extends with `x ↦ v` in place (capture caveats as [`Self::with_val`]).
    pub(crate) fn insert_val(&mut self, x: Symbol, v: Value) {
        // Values may mention tags (in packages); collect them so binders in
        // terms get renamed when needed.
        let mut dropped_rvars = HashSet::new();
        value_free_vars(
            &v,
            &mut self.range_tvars,
            &mut dropped_rvars,
            &mut self.range_avars,
        );
        self.vals.insert(x, v);
    }

    // ----- closed-range (runtime) extension -----------------------------
    //
    // The Fig. 5 rules only ever substitute *resolved* runtime ranges:
    // normalized tags, concrete regions, and values that both machines
    // have already passed through the current substitution. Such ranges
    // are closed, so they contribute nothing to the capture-check sets and
    // walking them (`value_free_vars` on every `let`, `ty_free_vars` on
    // every closure-environment package) is pure overhead — measurably the
    // dominant per-step cost of the environment machine. The `bind_*`
    // methods skip that bookkeeping. Both machines must use the same
    // binding policy so their rename behavior (and therefore their states)
    // stay bit-identical; the typechecker, whose ranges are genuinely
    // open, keeps using `with_*`.

    /// Extends with `t ↦ τ` in place without capture bookkeeping (`τ` must
    /// be a closed runtime tag).
    pub(crate) fn bind_tag(&mut self, t: Symbol, tau: Tag) {
        self.tags.insert(t, tau);
    }

    /// Extends with `r ↦ ρ` in place without capture bookkeeping (`ρ` must
    /// be a concrete region name).
    pub(crate) fn bind_rgn(&mut self, r: Symbol, rho: Region) {
        self.rgns.insert(r, rho);
    }

    /// Extends with `α ↦ σ` in place without capture bookkeeping (`σ` must
    /// be a closed runtime witness type).
    pub(crate) fn bind_alpha(&mut self, a: Symbol, sigma: Ty) {
        self.alphas.insert(a, sigma);
    }

    /// Extends with `x ↦ v` in place without capture bookkeeping (`v` must
    /// be a closed runtime value).
    pub(crate) fn bind_val(&mut self, x: Symbol, v: Value) {
        self.vals.insert(x, v);
    }

    /// Empties every map, keeping allocated capacity. The environment
    /// machine calls this at each code application: λGC code blocks are
    /// closed, so the caller's bindings can never be referenced again.
    pub(crate) fn clear(&mut self) {
        self.tags.clear();
        self.rgns.clear();
        self.alphas.clear();
        self.vals.clear();
        self.range_tvars.clear();
        self.range_rvars.clear();
        self.range_avars.clear();
    }

    /// Convenience: the single-tag substitution `[τ/t]`.
    pub fn one_tag(t: Symbol, tau: Tag) -> Subst {
        Subst::new().with_tag(t, tau)
    }

    /// Convenience: the single-region substitution `[ρ/r]`.
    pub fn one_rgn(r: Symbol, rho: Region) -> Subst {
        Subst::new().with_rgn(r, rho)
    }

    /// Convenience: the single-α substitution `[σ/α]`.
    pub fn one_alpha(a: Symbol, sigma: Ty) -> Subst {
        Subst::new().with_alpha(a, sigma)
    }

    /// Convenience: the single-value substitution `[v/x]`.
    pub fn one_val(x: Symbol, v: Value) -> Subst {
        Subst::new().with_val(x, v)
    }

    // ----- binder entry -------------------------------------------------
    //
    // Each namespace has an in-place `_mut` variant (for loops over binder
    // lists, which would otherwise clone once per binder) and a
    // copy-on-write wrapper. The wrapper's fast path — the binder is
    // neither in the domain nor capturable — borrows `self` unchanged;
    // since a machine-step substitution's domain is a single closed value,
    // descending under tag/region/α binders then costs nothing, which is
    // measurably the difference between the substitution machine cloning
    // four hash maps per package value and not.

    /// Prepares to descend under a tag binder `t`, in place: removes `t`
    /// from the domain and, if `t` would capture a range variable, renames
    /// it. Returns the (possibly fresh) binder.
    fn enter_tag_binder_mut(&mut self, t: Symbol) -> Symbol {
        self.tags.remove(&t);
        if self.range_tvars.contains(&t) {
            let fresh = t.fresh();
            self.insert_tag(t, Tag::Var(fresh));
            fresh
        } else {
            t
        }
    }

    /// Copy-on-write [`Self::enter_tag_binder_mut`].
    fn enter_tag_binder(&self, t: Symbol) -> (Cow<'_, Subst>, Symbol) {
        if !self.tags.contains_key(&t) && !self.range_tvars.contains(&t) {
            return (Cow::Borrowed(self), t);
        }
        let mut sub = self.clone();
        let t2 = sub.enter_tag_binder_mut(t);
        (Cow::Owned(sub), t2)
    }

    /// Like [`Self::enter_tag_binder_mut`] for region binders.
    fn enter_rgn_binder_mut(&mut self, r: Symbol) -> Symbol {
        self.rgns.remove(&r);
        if self.range_rvars.contains(&r) {
            let fresh = r.fresh();
            self.insert_rgn(r, Region::Var(fresh));
            fresh
        } else {
            r
        }
    }

    /// Copy-on-write [`Self::enter_rgn_binder_mut`].
    fn enter_rgn_binder(&self, r: Symbol) -> (Cow<'_, Subst>, Symbol) {
        if !self.rgns.contains_key(&r) && !self.range_rvars.contains(&r) {
            return (Cow::Borrowed(self), r);
        }
        let mut sub = self.clone();
        let r2 = sub.enter_rgn_binder_mut(r);
        (Cow::Owned(sub), r2)
    }

    /// Like [`Self::enter_tag_binder_mut`] for α binders.
    fn enter_alpha_binder_mut(&mut self, a: Symbol) -> Symbol {
        self.alphas.remove(&a);
        if self.range_avars.contains(&a) {
            let fresh = a.fresh();
            self.insert_alpha(a, Ty::Alpha(fresh));
            fresh
        } else {
            a
        }
    }

    /// Copy-on-write [`Self::enter_alpha_binder_mut`].
    fn enter_alpha_binder(&self, a: Symbol) -> (Cow<'_, Subst>, Symbol) {
        if !self.alphas.contains_key(&a) && !self.range_avars.contains(&a) {
            return (Cow::Borrowed(self), a);
        }
        let mut sub = self.clone();
        let a2 = sub.enter_alpha_binder_mut(a);
        (Cow::Owned(sub), a2)
    }

    /// Value binders never capture (ranges are values whose value variables
    /// are not tracked — runtime substitution ranges are closed), but we
    /// still remove the binder from the domain to respect shadowing.
    fn enter_val_binder(&self, x: Symbol) -> Cow<'_, Subst> {
        if !self.vals.contains_key(&x) {
            return Cow::Borrowed(self);
        }
        let mut sub = self.clone();
        sub.vals.remove(&x);
        Cow::Owned(sub)
    }

    // ----- application --------------------------------------------------

    /// Applies the substitution to a region.
    pub fn region(&self, rho: &Region) -> Region {
        match rho {
            Region::Var(r) => self.rgns.get(r).copied().unwrap_or(*rho),
            Region::Name(_) => *rho,
        }
    }

    /// Applies the substitution to a tag.
    pub fn tag(&self, tau: &Tag) -> Tag {
        if self.tags.is_empty() {
            return tau.clone();
        }
        match tau {
            Tag::Var(t) => self.tags.get(t).cloned().unwrap_or_else(|| tau.clone()),
            Tag::AnyArrow(t) => match self.tags.get(t) {
                // An `AnyArrow(t)` refinement follows `t` under renaming;
                // substituting a concrete arrow for `t` collapses it.
                Some(Tag::Var(t2)) => Tag::AnyArrow(*t2),
                Some(concrete @ Tag::Arrow(_)) => concrete.clone(),
                Some(Tag::AnyArrow(t2)) => Tag::AnyArrow(*t2),
                Some(other) => other.clone(),
                None => tau.clone(),
            },
            Tag::Int => Tag::Int,
            Tag::Prod(a, b) => Tag::Prod(self.tag_id(*a), self.tag_id(*b)),
            Tag::Arrow(args) => Tag::Arrow(args.iter().map(|a| self.tag_id(*a)).collect()),
            Tag::Exist(t, body) => {
                let (sub, t2) = self.enter_tag_binder(*t);
                Tag::Exist(t2, sub.tag_id(*body))
            }
            Tag::Lam(t, body) => {
                let (sub, t2) = self.enter_tag_binder(*t);
                Tag::Lam(t2, sub.tag_id(*body))
            }
            Tag::App(f, a) => Tag::App(self.tag_id(*f), self.tag_id(*a)),
        }
    }

    /// Applies the substitution to an interned tag, skipping subtrees whose
    /// free-variable fingerprint misses the domain: the no-op case returns
    /// the *same* id, preserving sharing (and any memoized results keyed by
    /// it) in O(domain) time.
    pub fn tag_id(&self, id: TagId) -> TagId {
        if self.tags.is_empty() || !touches(intern::tag_fv(id), &self.tags) {
            return id;
        }
        intern_tag(self.tag(id.node()))
    }

    /// Applies the substitution to a type.
    pub fn ty(&self, sigma: &Ty) -> Ty {
        // Types mention tags, regions and αs but never value variables, so
        // a vals-only substitution — every machine `let` step — is the
        // identity on types.
        if self.tags.is_empty() && self.rgns.is_empty() && self.alphas.is_empty() {
            return sigma.clone();
        }
        match sigma {
            Ty::Int => Ty::Int,
            Ty::Prod(a, b) => Ty::Prod(self.ty_id(*a), self.ty_id(*b)),
            Ty::Code { tvars, rvars, args } => {
                let mut sub = self.clone();
                let mut tvs = Vec::with_capacity(tvars.len());
                for (t, k) in tvars.iter() {
                    tvs.push((sub.enter_tag_binder_mut(*t), *k));
                }
                let mut rvs = Vec::with_capacity(rvars.len());
                for r in rvars.iter() {
                    rvs.push(sub.enter_rgn_binder_mut(*r));
                }
                Ty::Code {
                    tvars: tvs.into(),
                    rvars: rvs.into(),
                    args: args.iter().map(|a| sub.ty_id(*a)).collect(),
                }
            }
            Ty::ExistTag { tvar, kind, body } => {
                let (sub, t2) = self.enter_tag_binder(*tvar);
                Ty::ExistTag {
                    tvar: t2,
                    kind: *kind,
                    body: sub.ty_id(*body),
                }
            }
            Ty::At(inner, rho) => Ty::At(self.ty_id(*inner), self.region(rho)),
            Ty::M(rho, tag) => Ty::M(self.region(rho), self.tag_id(*tag)),
            Ty::C(from, to, tag) => Ty::C(self.region(from), self.region(to), self.tag_id(*tag)),
            Ty::MGen(y, o, tag) => Ty::MGen(self.region(y), self.region(o), self.tag_id(*tag)),
            Ty::Alpha(a) => self.alphas.get(a).cloned().unwrap_or_else(|| sigma.clone()),
            Ty::ExistAlpha {
                avar,
                regions,
                body,
            } => {
                let regions = regions.iter().map(|r| self.region(r)).collect();
                let (sub, a2) = self.enter_alpha_binder(*avar);
                Ty::ExistAlpha {
                    avar: a2,
                    regions,
                    body: sub.ty_id(*body),
                }
            }
            Ty::Trans {
                tags,
                regions,
                args,
                rho,
            } => Ty::Trans {
                tags: tags.iter().map(|t| self.tag_id(*t)).collect(),
                regions: regions.iter().map(|r| self.region(r)).collect(),
                args: args.iter().map(|a| self.ty_id(*a)).collect(),
                rho: self.region(rho),
            },
            Ty::Left(t) => Ty::Left(self.ty_id(*t)),
            Ty::Right(t) => Ty::Right(self.ty_id(*t)),
            Ty::Sum(a, b) => Ty::Sum(self.ty_id(*a), self.ty_id(*b)),
            Ty::ExistRgn { rvar, bound, body } => {
                let bound = bound.iter().map(|r| self.region(r)).collect();
                let (sub, r2) = self.enter_rgn_binder(*rvar);
                Ty::ExistRgn {
                    rvar: r2,
                    bound,
                    body: sub.ty_id(*body),
                }
            }
        }
    }

    /// Applies the substitution to an interned type, with the same
    /// fingerprint-based no-op skip as [`Self::tag_id`] — checked per
    /// namespace against the type's [`intern::TyFv`].
    pub fn ty_id(&self, id: TyId) -> TyId {
        let fv = intern::ty_fv(id);
        let miss = (self.tags.is_empty() || !touches(&fv.tvars, &self.tags))
            && (self.rgns.is_empty() || !touches(&fv.rvars, &self.rgns))
            && (self.alphas.is_empty() || !touches(&fv.avars, &self.alphas));
        if miss {
            return id;
        }
        intern_ty(self.ty(id.node()))
    }

    /// Do all four free-variable namespaces of `fv` miss this domain?
    fn misses(&self, fv: &intern::NodeFv) -> bool {
        (self.tags.is_empty() || !touches(&fv.tvars, &self.tags))
            && (self.rgns.is_empty() || !touches(&fv.rvars, &self.rgns))
            && (self.alphas.is_empty() || !touches(&fv.avars, &self.alphas))
            && (self.vals.is_empty() || !touches(&fv.xvars, &self.vals))
    }

    /// Applies the substitution to a value.
    pub fn value(&self, v: &Value) -> Value {
        if self.is_empty() {
            return v.clone();
        }
        match v {
            Value::Int(_) | Value::Addr(..) => v.clone(),
            Value::Var(x) => self.vals.get(x).cloned().unwrap_or_else(|| v.clone()),
            Value::Pair(a, b) => Value::Pair(self.value_id(*a), self.value_id(*b)),
            Value::PackTag {
                tvar,
                kind,
                tag,
                val,
                body_ty,
            } => {
                let tag = self.tag(tag);
                let val = self.value_id(*val);
                let (sub, t2) = self.enter_tag_binder(*tvar);
                Value::PackTag {
                    tvar: t2,
                    kind: *kind,
                    tag,
                    val,
                    body_ty: sub.ty(body_ty),
                }
            }
            Value::PackAlpha {
                avar,
                regions,
                witness,
                val,
                body_ty,
            } => {
                let regions: Arc<[Region]> = regions.iter().map(|r| self.region(r)).collect();
                let witness = self.ty(witness);
                let val = self.value_id(*val);
                let (sub, a2) = self.enter_alpha_binder(*avar);
                Value::PackAlpha {
                    avar: a2,
                    regions,
                    witness,
                    val,
                    body_ty: sub.ty(body_ty),
                }
            }
            Value::PackRgn {
                rvar,
                bound,
                witness,
                val,
                body_ty,
            } => {
                let bound: Arc<[Region]> = bound.iter().map(|r| self.region(r)).collect();
                let witness = self.region(witness);
                let val = self.value_id(*val);
                let (sub, r2) = self.enter_rgn_binder(*rvar);
                Value::PackRgn {
                    rvar: r2,
                    bound,
                    witness,
                    val,
                    body_ty: sub.ty(body_ty),
                }
            }
            Value::TagApp(f, tags, regions) => Value::TagApp(
                self.value_id(*f),
                tags.iter().map(|t| self.tag(t)).collect(),
                regions.iter().map(|r| self.region(r)).collect(),
            ),
            Value::Code(def) => Value::Code(Arc::new(self.code_def(def))),
            Value::Inl(x) => Value::Inl(self.value_id(*x)),
            Value::Inr(x) => Value::Inr(self.value_id(*x)),
        }
    }

    /// Applies the substitution to an interned value, skipping subtrees
    /// whose four-namespace fingerprint misses the domain: the no-op case
    /// returns the *same* id, preserving sharing in O(domain) time.
    pub fn value_id(&self, id: ValId) -> ValId {
        if self.is_empty() {
            return id;
        }
        if self.misses(intern::value_fv(id)) {
            intern::note_val_skip();
            return id;
        }
        intern_value(self.value(id.node()))
    }

    /// Applies the substitution to a code definition (respecting its own
    /// binders).
    pub fn code_def(&self, def: &CodeDef) -> CodeDef {
        let mut sub = self.clone();
        let mut tvs = Vec::with_capacity(def.tvars.len());
        for (t, k) in &def.tvars {
            tvs.push((sub.enter_tag_binder_mut(*t), *k));
        }
        let mut rvs = Vec::with_capacity(def.rvars.len());
        for r in &def.rvars {
            rvs.push(sub.enter_rgn_binder_mut(*r));
        }
        let mut params = Vec::with_capacity(def.params.len());
        for (x, t) in &def.params {
            params.push((*x, sub.ty(t)));
        }
        for (x, _) in &def.params {
            sub.vals.remove(x);
        }
        CodeDef {
            name: def.name,
            tvars: tvs,
            rvars: rvs,
            params,
            body: sub.term(&def.body),
        }
    }

    /// Applies the substitution to an operation.
    pub fn op(&self, op: &Op) -> Op {
        match op {
            Op::Val(v) => Op::Val(self.value(v)),
            Op::Proj(i, v) => Op::Proj(*i, self.value(v)),
            Op::Put(rho, v) => Op::Put(self.region(rho), self.value(v)),
            Op::Get(v) => Op::Get(self.value(v)),
            Op::Strip(v) => Op::Strip(self.value(v)),
            Op::Prim(p, a, b) => Op::Prim(*p, self.value(a), self.value(b)),
        }
    }

    /// Applies the substitution to a term.
    pub fn term(&self, e: &Term) -> Term {
        if self.is_empty() {
            return e.clone();
        }
        match e {
            Term::App {
                f,
                tags,
                regions,
                args,
            } => Term::App {
                f: self.value(f),
                tags: tags.iter().map(|t| self.tag(t)).collect(),
                regions: regions.iter().map(|r| self.region(r)).collect(),
                args: args.iter().map(|v| self.value(v)).collect(),
            },
            Term::Let { x, op, body } => {
                // Let chains are the program spine and can be thousands of
                // bindings deep (tree literals, CPS sequences); walk them
                // iteratively to keep stack use constant. The walk stops as
                // soon as the remaining substitution cannot touch the
                // suffix — shadowing shrinks the domain, and the suffix's
                // free-variable fingerprint is a memoized O(domain) probe —
                // so a machine step `[v/x] body` rebuilds only the prefix
                // up to the last use of `x`, and the (potentially
                // thousands-deep) suffix keeps its shared id untouched.
                let mut sub = Cow::Borrowed(self);
                let x0 = *x;
                let op0 = sub.op(op);
                if sub.vals.contains_key(x) {
                    sub.to_mut().vals.remove(x);
                }
                let mut rest: Vec<(Symbol, Op)> = Vec::new();
                let mut tail = *body;
                let mut out = loop {
                    if sub.is_empty() {
                        break tail;
                    }
                    if sub.misses(intern::term_fv(tail)) {
                        intern::note_term_skip();
                        break tail;
                    }
                    match tail.node() {
                        Term::Let { x, op, body } => {
                            rest.push((*x, sub.op(op)));
                            if sub.vals.contains_key(x) {
                                sub.to_mut().vals.remove(x);
                            }
                            tail = *body;
                        }
                        _ => break sub.term_id(tail),
                    }
                };
                for (x, op) in rest.into_iter().rev() {
                    out = intern_term(Term::Let { x, op, body: out });
                }
                Term::Let {
                    x: x0,
                    op: op0,
                    body: out,
                }
            }
            Term::Halt(v) => Term::Halt(self.value(v)),
            Term::IfGc { rho, full, cont } => Term::IfGc {
                rho: self.region(rho),
                full: self.term_id(*full),
                cont: self.term_id(*cont),
            },
            Term::OpenTag { pkg, tvar, x, body } => {
                let pkg = self.value(pkg);
                let (sub, t2) = self.enter_tag_binder(*tvar);
                let sub = sub.enter_val_binder(*x);
                Term::OpenTag {
                    pkg,
                    tvar: t2,
                    x: *x,
                    body: sub.term_id(*body),
                }
            }
            Term::OpenAlpha { pkg, avar, x, body } => {
                let pkg = self.value(pkg);
                let (sub, a2) = self.enter_alpha_binder(*avar);
                let sub = sub.enter_val_binder(*x);
                Term::OpenAlpha {
                    pkg,
                    avar: a2,
                    x: *x,
                    body: sub.term_id(*body),
                }
            }
            Term::OpenRgn { pkg, rvar, x, body } => {
                let pkg = self.value(pkg);
                let (sub, r2) = self.enter_rgn_binder(*rvar);
                let sub = sub.enter_val_binder(*x);
                Term::OpenRgn {
                    pkg,
                    rvar: r2,
                    x: *x,
                    body: sub.term_id(*body),
                }
            }
            Term::LetRegion { rvar, body } => {
                let (sub, r2) = self.enter_rgn_binder(*rvar);
                Term::LetRegion {
                    rvar: r2,
                    body: sub.term_id(*body),
                }
            }
            Term::Only { regions, body } => Term::Only {
                regions: regions.iter().map(|r| self.region(r)).collect(),
                body: self.term_id(*body),
            },
            Term::Typecase {
                tag,
                int_arm,
                arrow_arm,
                prod_arm,
                exist_arm,
            } => {
                let tag = self.tag(tag);
                let int_arm = self.term_id(*int_arm);
                let arrow_arm = self.term_id(*arrow_arm);
                let (t1, t2, pe) = prod_arm;
                let (s1, t1b) = self.enter_tag_binder(*t1);
                let (s2, t2b) = s1.enter_tag_binder(*t2);
                let prod_arm = (t1b, t2b, s2.term_id(*pe));
                let (te, ee) = exist_arm;
                let (s3, teb) = self.enter_tag_binder(*te);
                let exist_arm = (teb, s3.term_id(*ee));
                Term::Typecase {
                    tag,
                    int_arm,
                    arrow_arm,
                    prod_arm,
                    exist_arm,
                }
            }
            Term::IfLeft {
                x,
                scrut,
                left,
                right,
            } => {
                let scrut = self.value(scrut);
                let sub = self.enter_val_binder(*x);
                Term::IfLeft {
                    x: *x,
                    scrut,
                    left: sub.term_id(*left),
                    right: sub.term_id(*right),
                }
            }
            Term::Set { dst, src, body } => Term::Set {
                dst: self.value(dst),
                src: self.value(src),
                body: self.term_id(*body),
            },
            Term::Widen {
                x,
                from,
                to,
                tag,
                v,
                body,
            } => {
                let from = self.region(from);
                let to = self.region(to);
                let tag = self.tag(tag);
                let v = self.value(v);
                let sub = self.enter_val_binder(*x);
                Term::Widen {
                    x: *x,
                    from,
                    to,
                    tag,
                    v,
                    body: sub.term_id(*body),
                }
            }
            Term::IfReg { r1, r2, eq, ne } => Term::IfReg {
                r1: self.region(r1),
                r2: self.region(r2),
                eq: self.term_id(*eq),
                ne: self.term_id(*ne),
            },
            Term::If0 {
                scrut,
                zero,
                nonzero,
            } => Term::If0 {
                scrut: self.value(scrut),
                zero: self.term_id(*zero),
                nonzero: self.term_id(*nonzero),
            },
        }
    }

    /// Applies the substitution to an interned term, with the same
    /// fingerprint-based no-op skip as [`Self::value_id`]. This is what
    /// makes the Fig. 5 machine's continuation "clones" plain u32 copies:
    /// a runtime substitution whose domain misses a continuation's free
    /// variables hands the same id back untouched.
    pub fn term_id(&self, id: TermId) -> TermId {
        if self.is_empty() {
            return id;
        }
        if self.misses(intern::term_fv(id)) {
            intern::note_term_skip();
            return id;
        }
        intern_term(self.term(id.node()))
    }
}

// ----- free variables ----------------------------------------------------

/// Collects the free tag variables of a tag into `out`.
///
/// Backed by the per-node fingerprint [`intern::tag_fv`], so repeated calls
/// on shared subtrees are O(|fv|) lookups rather than traversals.
pub fn free_tag_vars<S: BuildHasher>(tau: &Tag, out: &mut HashSet<Symbol, S>) {
    out.extend(intern::tag_fv(tau.id()).iter().copied());
}

/// Collects the free tag, region, and α variables of a type.
///
/// Backed by the per-node fingerprint [`intern::ty_fv`].
pub fn ty_free_vars<S1: BuildHasher, S2: BuildHasher, S3: BuildHasher>(
    sigma: &Ty,
    tvars: &mut HashSet<Symbol, S1>,
    rvars: &mut HashSet<Symbol, S2>,
    avars: &mut HashSet<Symbol, S3>,
) {
    let fv = intern::ty_fv(sigma.id());
    tvars.extend(fv.tvars.iter().copied());
    rvars.extend(fv.rvars.iter().copied());
    avars.extend(fv.avars.iter().copied());
}

/// Collects the free tag/region/α variables mentioned inside a value (in its
/// type annotations and embedded tags).
///
/// Backed by the per-node fingerprint [`intern::value_fv`]. Unlike the
/// pre-interning version, code blocks are *not* assumed closed — their
/// (normally empty) free variables through the block's own binders are
/// reported honestly, so the capture-check sets stay sound even on
/// ill-typed inputs.
pub fn value_free_vars<S1: BuildHasher, S2: BuildHasher, S3: BuildHasher>(
    v: &Value,
    tvars: &mut HashSet<Symbol, S1>,
    rvars: &mut HashSet<Symbol, S2>,
    avars: &mut HashSet<Symbol, S3>,
) {
    let fv = intern::value_fv(v.id());
    tvars.extend(fv.tvars.iter().copied());
    rvars.extend(fv.rvars.iter().copied());
    avars.extend(fv.avars.iter().copied());
}

/// Collects every region (variable or name) mentioned free in a type.
/// Used for the `Γ|∆′` restriction of the `only` rule (§6.4).
pub fn ty_regions(sigma: &Ty) -> HashSet<Region> {
    fn go(sigma: &Ty, bound: &mut Vec<Symbol>, out: &mut HashSet<Region>) {
        let add = |rho: &Region, bound: &Vec<Symbol>, out: &mut HashSet<Region>| match rho {
            Region::Var(r) => {
                if !bound.contains(r) {
                    out.insert(*rho);
                }
            }
            Region::Name(_) => {
                out.insert(*rho);
            }
        };
        match sigma {
            Ty::Int | Ty::Alpha(_) => {}
            Ty::Prod(a, b) | Ty::Sum(a, b) => {
                go(a, bound, out);
                go(b, bound, out);
            }
            Ty::Left(a) | Ty::Right(a) => go(a, bound, out),
            Ty::Code { rvars, args, .. } => {
                let n = rvars.len();
                bound.extend(rvars.iter().copied());
                for a in args.iter() {
                    go(a, bound, out);
                }
                bound.truncate(bound.len() - n);
            }
            Ty::ExistTag { body, .. } => go(body, bound, out),
            Ty::At(inner, rho) => {
                go(inner, bound, out);
                add(rho, bound, out);
            }
            Ty::M(rho, _) => add(rho, bound, out),
            Ty::C(a, b, _) | Ty::MGen(a, b, _) => {
                add(a, bound, out);
                add(b, bound, out);
            }
            Ty::ExistAlpha { regions, body, .. } => {
                for r in regions.iter() {
                    add(r, bound, out);
                }
                go(body, bound, out);
            }
            Ty::Trans {
                regions, args, rho, ..
            } => {
                add(rho, bound, out);
                for r in regions.iter() {
                    add(r, bound, out);
                }
                for a in args.iter() {
                    go(a, bound, out);
                }
            }
            Ty::ExistRgn {
                rvar,
                bound: bd,
                body,
            } => {
                for r in bd.iter() {
                    add(r, bound, out);
                }
                bound.push(*rvar);
                go(body, bound, out);
                bound.pop();
            }
        }
    }
    let mut out = HashSet::new();
    go(sigma, &mut Vec::new(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::Kind;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    #[test]
    fn tag_substitution_basic() {
        let t = s("t");
        let tau = Tag::prod(Tag::Var(t), Tag::Int);
        let out = Subst::one_tag(t, Tag::Int).tag(&tau);
        assert_eq!(out, Tag::prod(Tag::Int, Tag::Int));
    }

    #[test]
    fn tag_substitution_respects_shadowing() {
        let t = s("t");
        let tau = Tag::lam(t, Tag::Var(t));
        let out = Subst::one_tag(t, Tag::Int).tag(&tau);
        // The bound t must not be replaced.
        match out {
            Tag::Lam(b, body) => assert_eq!(*body, Tag::Var(b)),
            _ => panic!("expected lambda"),
        }
    }

    #[test]
    fn tag_substitution_avoids_capture() {
        let t = s("t");
        let u = s("u");
        // λu. t   with  [u/t]  must not produce λu.u.
        let tau = Tag::lam(u, Tag::Var(t));
        let out = Subst::one_tag(t, Tag::Var(u)).tag(&tau);
        match out {
            Tag::Lam(b, body) => {
                assert_ne!(b, u, "binder must be renamed");
                assert_eq!(*body, Tag::Var(u));
            }
            _ => panic!("expected lambda"),
        }
    }

    #[test]
    fn region_substitution_in_types() {
        let r = s("r");
        let sigma = Ty::Int.at(Region::Var(r));
        let out = Subst::one_rgn(r, Region::cd()).ty(&sigma);
        assert_eq!(out, Ty::Int.at(Region::cd()));
    }

    #[test]
    fn region_substitution_stops_at_binders() {
        let r = s("r");
        let sigma = Ty::Code {
            tvars: std::sync::Arc::from(vec![]),
            rvars: std::sync::Arc::from(vec![r]),
            args: std::sync::Arc::from(vec![Ty::Int.at(Region::Var(r)).id()]),
        };
        let out = Subst::one_rgn(r, Region::cd()).ty(&sigma);
        assert_eq!(out, sigma, "bound region variables are untouched");
    }

    #[test]
    fn alpha_substitution() {
        let a = s("alpha");
        let sigma = Ty::prod(Ty::Alpha(a), Ty::Int);
        let out = Subst::one_alpha(a, Ty::Int).ty(&sigma);
        assert_eq!(out, Ty::prod(Ty::Int, Ty::Int));
    }

    #[test]
    fn value_substitution_in_terms() {
        let x = s("x");
        let e = Term::Halt(Value::Var(x));
        let out = Subst::one_val(x, Value::Int(7)).term(&e);
        assert_eq!(out, Term::Halt(Value::Int(7)));
    }

    #[test]
    fn value_substitution_respects_let_shadowing() {
        let x = s("x");
        let e = Term::let_(x, Op::Val(Value::Int(1)), Term::Halt(Value::Var(x)));
        let out = Subst::one_val(x, Value::Int(7)).term(&e);
        // Inner x is rebound; the halt must still see the let-bound x.
        match out {
            Term::Let { body, .. } => assert_eq!(*body, Term::Halt(Value::Var(x))),
            _ => panic!("expected let"),
        }
    }

    #[test]
    fn m_type_substitutes_both_parts() {
        let r = s("r");
        let t = s("t");
        let sigma = Ty::m(Region::Var(r), Tag::Var(t));
        let out = Subst::new()
            .with_rgn(r, Region::Name(crate::syntax::RegionName(4)))
            .with_tag(t, Tag::Int)
            .ty(&sigma);
        assert_eq!(
            out,
            Ty::m(Region::Name(crate::syntax::RegionName(4)), Tag::Int)
        );
    }

    #[test]
    fn anyarrow_collapses_to_concrete_arrow() {
        let t = s("t");
        let arrow = Tag::arrow([Tag::Int]);
        let out = Subst::one_tag(t, arrow.clone()).tag(&Tag::AnyArrow(t));
        assert_eq!(out, arrow);
    }

    #[test]
    fn free_tag_vars_of_exist() {
        let t = s("t");
        let u = s("u");
        let tau = Tag::exist(t, Tag::prod(Tag::Var(t), Tag::Var(u)));
        let mut fv = HashSet::new();
        free_tag_vars(&tau, &mut fv);
        assert!(fv.contains(&u));
        assert!(!fv.contains(&t));
    }

    #[test]
    fn ty_regions_finds_names_and_vars() {
        let r = s("r");
        let sigma = Ty::prod(
            Ty::Int.at(Region::Var(r)),
            Ty::Int.at(Region::Name(crate::syntax::RegionName(2))),
        );
        let rs = ty_regions(&sigma);
        assert!(rs.contains(&Region::Var(r)));
        assert!(rs.contains(&Region::Name(crate::syntax::RegionName(2))));
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn ty_regions_skips_bound() {
        let r = s("r");
        let sigma = Ty::exist_rgn(r, [Region::cd()], Ty::Int.at(Region::Var(r)));
        let rs = ty_regions(&sigma);
        assert!(rs.contains(&Region::cd()));
        assert!(!rs.contains(&Region::Var(r)));
    }

    #[test]
    fn typecase_substitution_enters_arms() {
        let t = s("t");
        let t1 = s("t1");
        let t2 = s("t2");
        let te = s("te");
        let e = Term::Typecase {
            tag: Tag::Var(t),
            int_arm: Term::Halt(Value::Int(0)).id(),
            arrow_arm: Term::Halt(Value::Int(1)).id(),
            prod_arm: (t1, t2, Term::Halt(Value::Int(2)).id()),
            exist_arm: (te, Term::Halt(Value::Int(3)).id()),
        };
        let out = Subst::one_tag(t, Tag::Int).term(&e);
        match out {
            Term::Typecase { tag, .. } => assert_eq!(tag, Tag::Int),
            _ => panic!("expected typecase"),
        }
    }

    #[test]
    fn pack_tag_value_substitution() {
        let t = s("t");
        let x = s("x");
        let v = Value::PackTag {
            tvar: t,
            kind: Kind::Omega,
            tag: Tag::Int,
            val: Value::Var(x).id(),
            body_ty: Ty::m(Region::cd(), Tag::Var(t)),
        };
        let out = Subst::one_val(x, Value::Int(9)).value(&v);
        match out {
            Value::PackTag { val, .. } => assert_eq!(*val, Value::Int(9)),
            _ => panic!("expected package"),
        }
    }
}
