//! SubstMachine-state well-formedness: `⊢ (M, e)` (Fig. 7, Definitions 6.3 and
//! 7.1).
//!
//! A state is well formed when some memory typing `Ψ` types the store
//! (`⊢ M : Ψ`) and the current term (`Ψ; Dom(Ψ); ·; ·; · ⊢ e`). The
//! machine maintains a candidate `Ψ` incrementally (see
//! [`crate::memory::Memory`]); this module *re-validates* it against the
//! real typing rules — which is exactly what the paper's type-preservation
//! proofs (Props. 6.4, 7.2, 8.1) guarantee must succeed after every step.
//!
//! For λGCforw, Definition 7.1 weakens `⊢ M : Ψ` to a *sufficient subset*
//! `M̄ ⊆ M`: after a `widen`, dead objects may be ill-typed. We realize
//! this by checking only slots that still have `Ψ` entries (the machine's
//! `widen` handler drops entries for unreachable from-region objects), and
//! optionally only the slots reachable from the current term.

use std::collections::HashSet;

use crate::error::{ErrorKind, LangError, Result};
use crate::machine::SubstMachine;
use crate::syntax::{Dialect, Op, RegionName, Term, Value};
use crate::tyck::{Checker, Ctx};

/// Options for the state checker.
#[derive(Clone, Copy, Debug, Default)]
pub struct WfOptions {
    /// Re-typecheck the bodies of code blocks in `cd`. Checking a whole
    /// program once at load time makes this redundant per step, so
    /// per-step preservation tests usually turn it off.
    pub check_code_bodies: bool,
    /// Check only store slots reachable from the current term (always safe;
    /// required for λGCforw after a `widen` per Def. 7.1).
    pub reachable_only: bool,
}

/// Checks `⊢ (M, e)` for the machine's current state.
///
/// # Examples
///
/// ```
/// use ps_gc_lang::machine::{SubstMachine, Program};
/// use ps_gc_lang::memory::MemConfig;
/// use ps_gc_lang::syntax::{Dialect, Term, Value};
/// use ps_gc_lang::wf::{check_state, WfOptions};
///
/// let program = Program {
///     dialect: Dialect::Basic,
///     code: vec![],
///     main: Term::Halt(Value::Int(0)),
/// };
/// let config = MemConfig { track_types: true, ..MemConfig::default() };
/// let machine = SubstMachine::load(&program, config);
/// check_state(&machine, WfOptions::default()).unwrap();
/// ```
///
/// # Errors
///
/// Returns a well-formedness error describing the first slot or the term
/// judgement that failed. The machine must have been created with
/// `track_types: true`.
pub fn check_state(machine: &SubstMachine, opts: WfOptions) -> Result<()> {
    if !machine.memory().config().track_types {
        return Err(LangError::new(
            ErrorKind::WellFormedness,
            "machine was not created with track_types; Ψ is unavailable",
        ));
    }
    let dialect = machine.dialect();
    let checker = Checker::from_memory(dialect, machine.memory());
    let mut ctx = Ctx::empty();
    ctx.delta = checker.psi_domain();

    // Which slots to validate.
    let reachable = if opts.reachable_only || dialect == Dialect::Forwarding {
        Some(reachable_slots(machine))
    } else {
        None
    };

    // ⊢ M : Ψ — every (selected) stored value checks against its Ψ entry.
    for nu in machine.memory().region_names() {
        if nu.is_cd() && !opts.check_code_bodies {
            continue;
        }
        let Some(region) = machine.memory().region(nu) else {
            continue;
        };
        for (loc, stored) in region.iter() {
            if let Some(set) = &reachable {
                if !set.contains(&(nu, loc)) {
                    continue;
                }
            }
            let Some(entry) = machine.memory().psi_entry(nu, loc) else {
                // No Ψ entry: dead garbage discarded by widen (Def. 7.1) —
                // but only the forwarding dialect may have such slots.
                if dialect == Dialect::Forwarding {
                    continue;
                }
                return Err(LangError::new(
                    ErrorKind::WellFormedness,
                    format!("slot {nu}.{loc} has no Ψ entry"),
                ));
            };
            checker
                .check_value(&ctx, stored, entry)
                .map_err(|e| e.in_context(format!("store slot {nu}.{loc}")))?;
        }
    }

    // Ψ; Dom(Ψ); ·; ·; · ⊢ e.
    checker
        .check_term(&ctx, machine.term())
        .map_err(|e| e.in_context("current term"))
}

/// Computes the set of store slots reachable from the current term.
fn reachable_slots(machine: &SubstMachine) -> HashSet<(RegionName, u32)> {
    reachable_slots_in(machine.memory(), machine.term())
}

/// Computes the set of store slots reachable from `root` through the live
/// store, ignoring addresses into reclaimed regions (shared with
/// [`crate::verify`] and [`crate::faults`]).
pub(crate) fn reachable_slots_in(
    mem: &crate::memory::Memory,
    root: &Term,
) -> HashSet<(RegionName, u32)> {
    let mut roots: Vec<(RegionName, u32)> = Vec::new();
    collect_term_addrs(root, &mut roots);
    let mut seen: HashSet<(RegionName, u32)> = HashSet::new();
    let mut work = roots;
    while let Some((nu, loc)) = work.pop() {
        if !seen.insert((nu, loc)) {
            continue;
        }
        if let Some(region) = mem.region(nu) {
            if let Some((_, v)) = region.iter().find(|(l, _)| *l == loc) {
                collect_value_addrs(v, &mut work);
            }
        }
    }
    seen
}

pub(crate) fn collect_value_addrs(v: &Value, out: &mut Vec<(RegionName, u32)>) {
    match v {
        Value::Int(_) | Value::Var(_) => {}
        Value::Addr(nu, loc) => out.push((*nu, *loc)),
        Value::Pair(a, b) => {
            collect_value_addrs(a, out);
            collect_value_addrs(b, out);
        }
        Value::PackTag { val, .. }
        | Value::PackAlpha { val, .. }
        | Value::PackRgn { val, .. }
        | Value::Inl(val)
        | Value::Inr(val) => collect_value_addrs(val, out),
        Value::TagApp(f, _, _) => collect_value_addrs(f, out),
        Value::Code(def) => collect_term_addrs(&def.body, out),
    }
}

pub(crate) fn collect_op_addrs(op: &Op, out: &mut Vec<(RegionName, u32)>) {
    match op {
        Op::Val(v) | Op::Proj(_, v) | Op::Put(_, v) | Op::Get(v) | Op::Strip(v) => {
            collect_value_addrs(v, out)
        }
        Op::Prim(_, a, b) => {
            collect_value_addrs(a, out);
            collect_value_addrs(b, out);
        }
    }
}

pub(crate) fn collect_term_addrs(e: &Term, out: &mut Vec<(RegionName, u32)>) {
    match e {
        Term::App { f, args, .. } => {
            collect_value_addrs(f, out);
            for a in args {
                collect_value_addrs(a, out);
            }
        }
        Term::Let { .. } => {
            let mut cur = e;
            while let Term::Let { op, body, .. } = cur {
                collect_op_addrs(op, out);
                cur = body;
            }
            collect_term_addrs(cur, out);
        }
        Term::Halt(v) => collect_value_addrs(v, out),
        Term::IfGc { full, cont, .. } => {
            collect_term_addrs(full, out);
            collect_term_addrs(cont, out);
        }
        Term::OpenTag { pkg, body, .. }
        | Term::OpenAlpha { pkg, body, .. }
        | Term::OpenRgn { pkg, body, .. } => {
            collect_value_addrs(pkg, out);
            collect_term_addrs(body, out);
        }
        Term::LetRegion { body, .. } | Term::Only { body, .. } => collect_term_addrs(body, out),
        Term::Typecase {
            int_arm,
            arrow_arm,
            prod_arm,
            exist_arm,
            ..
        } => {
            collect_term_addrs(int_arm, out);
            collect_term_addrs(arrow_arm, out);
            collect_term_addrs(&prod_arm.2, out);
            collect_term_addrs(&exist_arm.1, out);
        }
        Term::IfLeft {
            scrut, left, right, ..
        } => {
            collect_value_addrs(scrut, out);
            collect_term_addrs(left, out);
            collect_term_addrs(right, out);
        }
        Term::Set { dst, src, body } => {
            collect_value_addrs(dst, out);
            collect_value_addrs(src, out);
            collect_term_addrs(body, out);
        }
        Term::Widen { v, body, .. } => {
            collect_value_addrs(v, out);
            collect_term_addrs(body, out);
        }
        Term::IfReg { eq, ne, .. } => {
            collect_term_addrs(eq, out);
            collect_term_addrs(ne, out);
        }
        Term::If0 {
            scrut,
            zero,
            nonzero,
        } => {
            collect_value_addrs(scrut, out);
            collect_term_addrs(zero, out);
            collect_term_addrs(nonzero, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Outcome, Program, StepOutcome, SubstMachine};
    use crate::memory::{GrowthPolicy, MemConfig};
    use crate::syntax::{Region, Term, Value};
    use ps_ir::Symbol;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    fn tracked_config() -> MemConfig {
        MemConfig {
            region_budget: 64,
            growth: GrowthPolicy::Fixed,
            track_types: true,
            max_heap_words: None,
            page_words: 8,
        }
    }

    /// Steps a machine to completion, checking well-formedness at every
    /// step — a miniature of the preservation property tests.
    fn run_checked(p: Program) -> i64 {
        let mut m = SubstMachine::load(&p, tracked_config());
        check_state(&m, WfOptions::default()).expect("initial state well formed");
        for _ in 0..10_000 {
            match m.step().expect("progress") {
                StepOutcome::Halted(n) => return n,
                StepOutcome::Continue => {
                    check_state(&m, WfOptions::default()).expect("preservation");
                }
            }
        }
        panic!("out of fuel");
    }

    #[test]
    fn preservation_through_alloc_and_reclaim() {
        let r1 = s("wr1");
        let r2 = s("wr2");
        let a = s("wa");
        let b = s("wb");
        let c = s("wc");
        let e = Term::LetRegion {
            rvar: r1,
            body: (Term::let_(
                a,
                Op::Put(Region::Var(r1), Value::pair(Value::Int(1), Value::Int(2))),
                Term::LetRegion {
                    rvar: r2,
                    body: (Term::let_(
                        b,
                        Op::Get(Value::Var(a)),
                        Term::let_(
                            c,
                            Op::Proj(2, Value::Var(b)),
                            Term::Only {
                                regions: vec![Region::Var(r2)],
                                body: (Term::Halt(Value::Var(c))).into(),
                            },
                        ),
                    ))
                    .into(),
                },
            ))
            .into(),
        };
        let p = Program {
            dialect: Dialect::Basic,
            code: vec![],
            main: e,
        };
        assert_eq!(run_checked(p), 2);
    }

    #[test]
    fn ill_formed_state_detected() {
        // Manufacture a program whose term holds an address into a region
        // that gets reclaimed: after `only`, the state is ill formed.
        let r1 = s("xr1");
        let a = s("xa");
        let e = Term::LetRegion {
            rvar: r1,
            body: (Term::let_(
                a,
                Op::Put(Region::Var(r1), Value::Int(5)),
                Term::Only {
                    regions: vec![],
                    body: (Term::let_(
                        s("xb"),
                        Op::Get(Value::Var(a)),
                        Term::Halt(Value::Var(s("xb"))),
                    ))
                    .into(),
                },
            ))
            .into(),
        };
        let p = Program {
            dialect: Dialect::Basic,
            code: vec![],
            main: e,
        };
        let mut m = SubstMachine::load(&p, tracked_config());
        // let region; put; only — after the only, the get references a
        // dangling address and the state must be flagged.
        m.step().unwrap();
        m.step().unwrap();
        m.step().unwrap();
        assert!(check_state(&m, WfOptions::default()).is_err());
    }

    #[test]
    fn untracked_machine_is_rejected() {
        let p = Program {
            dialect: Dialect::Basic,
            code: vec![],
            main: Term::Halt(Value::Int(0)),
        };
        let m = SubstMachine::load(
            &p,
            MemConfig {
                track_types: false,
                ..tracked_config()
            },
        );
        assert!(check_state(&m, WfOptions::default()).is_err());
    }

    #[test]
    fn preservation_through_forwarding_set_and_widen() {
        // Manually drive the forwarding primitives: allocate an object in
        // mutator view, widen it, forward it, and re-check at each step.
        let r1 = s("fr1");
        let r2 = s("fr2");
        let w0 = s("fw0");
        let w = s("fw");
        let y = s("fy");
        let z = s("fz");
        let tag = crate::syntax::Tag::prod(crate::syntax::Tag::Int, crate::syntax::Tag::Int);
        let e = Term::LetRegion {
            rvar: r1,
            body: (Term::LetRegion {
                rvar: r2,
                body: (Term::let_(
                    w0,
                    Op::Put(
                        Region::Var(r1),
                        Value::inl(Value::pair(Value::Int(1), Value::Int(2))),
                    ),
                    Term::Widen {
                        x: w,
                        from: Region::Var(r1),
                        to: Region::Var(r2),
                        tag: tag.clone(),
                        v: Value::Var(w0),
                        body: (Term::let_(
                            y,
                            Op::Get(Value::Var(w)),
                            Term::IfLeft {
                                x: s("fyl"),
                                scrut: Value::Var(y),
                                left: (Term::let_(
                                    z,
                                    Op::Put(
                                        Region::Var(r2),
                                        Value::inl(Value::pair(Value::Int(1), Value::Int(2))),
                                    ),
                                    Term::Set {
                                        dst: Value::Var(w),
                                        src: Value::inr(Value::Var(z)),
                                        body: (Term::Only {
                                            regions: vec![Region::Var(r2)],
                                            body: (Term::Halt(Value::Int(0))).into(),
                                        })
                                        .into(),
                                    },
                                ))
                                .into(),
                                right: (Term::Halt(Value::Int(1))).into(),
                            },
                        ))
                        .into(),
                    },
                ))
                .into(),
            })
            .into(),
        };
        let p = Program {
            dialect: Dialect::Forwarding,
            code: vec![],
            main: e,
        };
        // The whole program typechecks statically...
        Checker::check_program(&p).unwrap();
        // ... and stays well formed through execution.
        let mut m = SubstMachine::load(&p, tracked_config());
        check_state(&m, WfOptions::default()).unwrap();
        loop {
            match m.step().unwrap() {
                StepOutcome::Halted(n) => {
                    assert_eq!(n, 0);
                    break;
                }
                StepOutcome::Continue => {
                    check_state(&m, WfOptions::default()).unwrap();
                }
            }
        }
    }

    #[test]
    fn progress_and_preservation_smoke_gen() {
        // A generational-dialect program exercising region packages and
        // ifreg under per-step checking.
        let ro = s("gro");
        let ry = s("gry");
        let a = s("ga");
        let pkgv = s("gp");
        let r = s("gr");
        let x = s("gx");
        let e = Term::LetRegion {
            rvar: ro,
            body: (Term::LetRegion {
                rvar: ry,
                body: (Term::let_(
                    a,
                    Op::Put(Region::Var(ry), Value::Int(3)),
                    Term::let_(
                        pkgv,
                        Op::Val(Value::PackRgn {
                            rvar: r,
                            bound: (vec![Region::Var(ry), Region::Var(ro)]).into(),
                            witness: Region::Var(ry),
                            val: (Value::Var(a)).into(),
                            body_ty: crate::syntax::Ty::Int,
                        }),
                        Term::OpenRgn {
                            pkg: Value::Var(pkgv),
                            rvar: s("gr2"),
                            x,
                            body: (Term::IfReg {
                                r1: Region::Var(s("gr2")),
                                r2: Region::Var(ro),
                                eq: (Term::Halt(Value::Int(1))).into(),
                                ne: (Term::let_(
                                    s("gy"),
                                    Op::Get(Value::Var(x)),
                                    Term::Halt(Value::Var(s("gy"))),
                                ))
                                .into(),
                            })
                            .into(),
                        },
                    ),
                ))
                .into(),
            })
            .into(),
        };
        let p = Program {
            dialect: Dialect::Generational,
            code: vec![],
            main: e,
        };
        Checker::check_program(&p).unwrap();
        let mut m = SubstMachine::load(&p, tracked_config());
        loop {
            check_state(&m, WfOptions::default()).unwrap();
            if let StepOutcome::Halted(n) = m.step().unwrap() {
                assert_eq!(n, 3);
                break;
            }
        }
    }

    #[test]
    fn run_checked_halts() {
        let p = Program {
            dialect: Dialect::Basic,
            code: vec![],
            main: Term::Halt(Value::Int(9)),
        };
        let mut m = SubstMachine::load(&p, tracked_config());
        assert_eq!(m.run(10).unwrap(), Outcome::Halted(9));
    }
}
