//! Seeded, deterministic fault injection: the adversarial counterpart of
//! [`crate::verify`].
//!
//! The paper's certification story (Props. 6.3–6.5) says a well-typed
//! collector cannot corrupt the heap; this module *does* corrupt it, on
//! purpose, with the classic garbage-collection bugs the type system rules
//! out, so that tests can prove the runtime auditor actually fires:
//!
//! * [`FaultKind::RetargetPointer`] — point a live reference at a region
//!   that `only` already reclaimed (a stale from-space pointer);
//! * [`FaultKind::ClobberForward`] — smash a forwarding pointer (`inr a`)
//!   so it dangles;
//! * [`FaultKind::FlipTag`] — flip a sum discriminator (`inl` ↔ `inr`),
//!   the stolen-bit bug of §7;
//! * [`FaultKind::TruncateTuple`] — drop the second component of a stored
//!   pair (a short copy);
//! * [`FaultKind::DoubleFree`] — reclaim a region that live data still
//!   references;
//! * [`FaultKind::UnderflowBudget`] — wreck a region's word budget (the
//!   accounting underflow that makes `ifgc` lie);
//! * [`FaultKind::StalePageHeader`] — desynchronize a page header's
//!   occupancy count from the objects the page actually holds (the BiBOP
//!   store's version of a corrupted size field).
//!
//! A [`FaultPlan`] names the fault, the step at or after which to inject
//! it, and a seed that picks the victim site deterministically (so a
//! failing run is replayable from its spec string alone). Injection only
//! targets sites *reachable from the current term*: corrupting garbage
//! would be indistinguishable from a legal collection, and Def. 7.1
//! explicitly permits dead slots to be ill-typed. When a fault's natural
//! site shape does not exist in the current dialect (e.g. no sums outside
//! λGCforw), injection degrades along a documented fallback chain rather
//! than never firing, so every fault class is injectable — and must be
//! detected — under every collector.

use std::str::FromStr;

use crate::memory::Memory;
use crate::syntax::{RegionName, Term, Value};
use crate::wf;

/// The classes of heap corruption the injector can inflict.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Retarget a reachable pointer into a reclaimed region.
    RetargetPointer,
    /// Replace a forwarding pointer's target with a dangling address.
    ClobberForward,
    /// Flip a sum discriminator in place (`inl` ↔ `inr`).
    FlipTag,
    /// Replace a stored pair with its first component only.
    TruncateTuple,
    /// Free a data region that reachable values still point into.
    DoubleFree,
    /// Drop a region's budget below the configured floor.
    UnderflowBudget,
    /// Desynchronize a page header's occupancy count from its slots.
    StalePageHeader,
}

impl FaultKind {
    /// All fault classes, for test matrices.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::RetargetPointer,
        FaultKind::ClobberForward,
        FaultKind::FlipTag,
        FaultKind::TruncateTuple,
        FaultKind::DoubleFree,
        FaultKind::UnderflowBudget,
        FaultKind::StalePageHeader,
    ];

    /// The spec-string name of this fault class.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::RetargetPointer => "retarget-pointer",
            FaultKind::ClobberForward => "clobber-forward",
            FaultKind::FlipTag => "flip-tag",
            FaultKind::TruncateTuple => "truncate-tuple",
            FaultKind::DoubleFree => "double-free",
            FaultKind::UnderflowBudget => "underflow-budget",
            FaultKind::StalePageHeader => "stale-page-header",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FaultKind {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultKind, String> {
        FaultKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
                format!("unknown fault {s:?} (expected one of {})", names.join("|"))
            })
    }
}

/// A deterministic corruption plan: *what* to inject, *when*, and the seed
/// that picks the victim site.
///
/// The spec-string form is `kind@step[:seed]`, e.g. `flip-tag@500` or
/// `double-free@1000:7`. Injection fires at the first step `≥ step` at
/// which an eligible site exists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The corruption to inflict.
    pub kind: FaultKind,
    /// Earliest machine step at which to inject.
    pub step: u64,
    /// Site-selection seed (`0` if omitted from the spec).
    pub seed: u64,
}

impl FaultPlan {
    /// Parses `kind@step[:seed]`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed specs.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let (kind_s, rest) = spec
            .split_once('@')
            .ok_or_else(|| format!("fault spec {spec:?} must look like kind@step[:seed]"))?;
        let kind = kind_s.parse()?;
        let (step_s, seed_s) = match rest.split_once(':') {
            Some((a, b)) => (a, Some(b)),
            None => (rest, None),
        };
        let step = step_s
            .parse()
            .map_err(|_| format!("bad step {step_s:?} in fault spec {spec:?}"))?;
        let seed = match seed_s {
            Some(s) => s
                .parse()
                .map_err(|_| format!("bad seed {s:?} in fault spec {spec:?}"))?,
            None => 0,
        };
        Ok(FaultPlan { kind, step, seed })
    }

    /// Renders the plan back to its spec string (`parse` ∘ `to_spec` is the
    /// identity).
    pub fn to_spec(&self) -> String {
        if self.seed == 0 {
            format!("{}@{}", self.kind, self.step)
        } else {
            format!("{}@{}:{}", self.kind, self.step, self.seed)
        }
    }
}

impl FromStr for FaultPlan {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultPlan, String> {
        FaultPlan::parse(s)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_spec())
    }
}

/// Attempts to inject `plan`'s fault into `mem`, with `root` (the current
/// term, environment applied) as the reachability root.
///
/// Returns a description of what was corrupted, or `None` if no eligible
/// site exists yet — the caller should retry after the next step. The
/// choice of site is a pure function of `(plan.seed, state)`.
pub fn apply(plan: &FaultPlan, mem: &mut Memory, root: &Term) -> Option<String> {
    let seed = mix(plan.seed);
    match plan.kind {
        FaultKind::RetargetPointer => {
            retarget_pointer(seed, mem, root).or_else(|| smash_slot(seed, mem, root))
        }
        FaultKind::ClobberForward => clobber_forward(seed, mem, root)
            .or_else(|| retarget_pointer(seed, mem, root))
            .or_else(|| smash_slot(seed, mem, root)),
        FaultKind::FlipTag => flip_tag(seed, mem, root).or_else(|| smash_slot(seed, mem, root)),
        FaultKind::TruncateTuple => {
            truncate_tuple(seed, mem, root).or_else(|| smash_slot(seed, mem, root))
        }
        FaultKind::DoubleFree => double_free(seed, mem, root),
        FaultKind::UnderflowBudget => underflow_budget(seed, mem),
        FaultKind::StalePageHeader => stale_page_header(seed, mem),
    }
}

/// splitmix64: one-shot avalanche so consecutive seeds pick unrelated sites.
fn mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Reachable data-region slots with their values, in deterministic order.
fn reachable_sites(mem: &Memory, root: &Term) -> Vec<(RegionName, u32)> {
    let mut sites: Vec<(RegionName, u32)> = wf::reachable_slots_in(mem, root)
        .into_iter()
        .filter(|(nu, _)| !nu.is_cd())
        .collect();
    sites.sort_unstable();
    sites
}

fn pick<T: Copy>(sites: &[T], seed: u64) -> Option<T> {
    if sites.is_empty() {
        None
    } else {
        sites.get((seed % sites.len() as u64) as usize).copied()
    }
}

/// A region name that is *not* live: a previously reclaimed id when one
/// exists (the true "pointer into from-space after `only`"), otherwise an
/// id far past anything the machine will allocate.
fn dead_region(mem: &Memory) -> RegionName {
    (1..mem.next_region_id())
        .map(RegionName)
        .find(|nu| !mem.has_region(*nu))
        .unwrap_or(RegionName(u32::MAX))
}

/// Number of addresses [`retarget`] can reach in `v` (stored values only —
/// code bodies are not descended, matching `retarget`).
fn count_addrs(v: &Value) -> u64 {
    match v {
        Value::Addr(..) => 1,
        Value::Pair(a, b) => count_addrs(a) + count_addrs(b),
        Value::PackTag { val, .. }
        | Value::PackAlpha { val, .. }
        | Value::PackRgn { val, .. }
        | Value::Inl(val)
        | Value::Inr(val)
        | Value::TagApp(val, _, _) => count_addrs(val),
        Value::Int(_) | Value::Var(_) | Value::Code(_) => 0,
    }
}

/// Clones `v` with its `k`-th address (pre-order) retargeted to `dead.0`.
fn retarget(v: &Value, k: &mut i64, dead: RegionName) -> Value {
    match v {
        Value::Addr(..) => {
            let hit = *k == 0;
            *k -= 1;
            if hit {
                Value::Addr(dead, 0)
            } else {
                v.clone()
            }
        }
        Value::Pair(a, b) => Value::Pair(retarget(a, k, dead).id(), retarget(b, k, dead).id()),
        Value::PackTag {
            tvar,
            kind,
            tag,
            val,
            body_ty,
        } => Value::PackTag {
            tvar: *tvar,
            kind: *kind,
            tag: tag.clone(),
            val: retarget(val, k, dead).id(),
            body_ty: body_ty.clone(),
        },
        Value::PackAlpha {
            avar,
            regions,
            witness,
            val,
            body_ty,
        } => Value::PackAlpha {
            avar: *avar,
            regions: regions.clone(),
            witness: witness.clone(),
            val: retarget(val, k, dead).id(),
            body_ty: body_ty.clone(),
        },
        Value::PackRgn {
            rvar,
            bound,
            witness,
            val,
            body_ty,
        } => Value::PackRgn {
            rvar: *rvar,
            bound: bound.clone(),
            witness: *witness,
            val: retarget(val, k, dead).id(),
            body_ty: body_ty.clone(),
        },
        Value::Inl(x) => Value::Inl(retarget(x, k, dead).id()),
        Value::Inr(x) => Value::Inr(retarget(x, k, dead).id()),
        Value::TagApp(f, tags, regions) => {
            Value::TagApp(retarget(f, k, dead).id(), tags.clone(), regions.clone())
        }
        Value::Int(_) | Value::Var(_) | Value::Code(_) => v.clone(),
    }
}

fn retarget_pointer(seed: u64, mem: &mut Memory, root: &Term) -> Option<String> {
    let sites: Vec<(RegionName, u32, u64)> = reachable_sites(mem, root)
        .into_iter()
        .filter_map(|(nu, loc)| {
            let n = count_addrs(mem.get(nu, loc).ok()?);
            (n > 0).then_some((nu, loc, n))
        })
        .collect();
    let (nu, loc, n) = pick(&sites, seed)?;
    let dead = dead_region(mem);
    let mut k = (mix(seed ^ 0x517c) % n) as i64;
    let corrupted = retarget(mem.get(nu, loc).ok()?, &mut k, dead);
    mem.set(nu, loc, corrupted).ok()?;
    Some(format!(
        "retargeted a pointer inside {nu}.{loc} to reclaimed region {dead}"
    ))
}

fn clobber_forward(seed: u64, mem: &mut Memory, root: &Term) -> Option<String> {
    let sites: Vec<(RegionName, u32)> = reachable_sites(mem, root)
        .into_iter()
        .filter(|&(nu, loc)| matches!(mem.get(nu, loc), Ok(Value::Inr(x)) if count_addrs(x) > 0))
        .collect();
    let (nu, loc) = pick(&sites, seed)?;
    let dead = dead_region(mem);
    mem.set(nu, loc, Value::Inr(Value::Addr(dead, 0).id()))
        .ok()?;
    Some(format!(
        "clobbered the forwarding pointer at {nu}.{loc} to point into {dead}"
    ))
}

fn flip_tag(seed: u64, mem: &mut Memory, root: &Term) -> Option<String> {
    let sites: Vec<(RegionName, u32)> = reachable_sites(mem, root)
        .into_iter()
        .filter(|&(nu, loc)| matches!(mem.get(nu, loc), Ok(Value::Inl(_) | Value::Inr(_))))
        .collect();
    let (nu, loc) = pick(&sites, seed)?;
    let flipped = match mem.get(nu, loc).ok()? {
        Value::Inl(x) => Value::Inr(*x),
        Value::Inr(x) => Value::Inl(*x),
        _ => return None,
    };
    mem.set(nu, loc, flipped).ok()?;
    Some(format!("flipped the sum tag at {nu}.{loc}"))
}

fn truncate_tuple(seed: u64, mem: &mut Memory, root: &Term) -> Option<String> {
    let sites: Vec<(RegionName, u32)> = reachable_sites(mem, root)
        .into_iter()
        .filter(|&(nu, loc)| matches!(mem.get(nu, loc), Ok(Value::Pair(..))))
        .collect();
    let (nu, loc) = pick(&sites, seed)?;
    let Ok(Value::Pair(a, _)) = mem.get(nu, loc) else {
        return None;
    };
    let first = (**a).clone();
    mem.set(nu, loc, first).ok()?;
    Some(format!(
        "truncated the pair at {nu}.{loc} to its first component"
    ))
}

fn double_free(seed: u64, mem: &mut Memory, root: &Term) -> Option<String> {
    let mut regions: Vec<RegionName> = reachable_sites(mem, root)
        .into_iter()
        .map(|(nu, _)| nu)
        .collect();
    regions.dedup();
    let nu = pick(&regions, seed)?;
    mem.force_free_region(nu)
        .then(|| format!("freed region {nu} while reachable values still point into it"))
}

fn underflow_budget(seed: u64, mem: &mut Memory) -> Option<String> {
    if mem.config().region_budget == 0 {
        return None;
    }
    let regions: Vec<RegionName> = mem.region_names().filter(|nu| !nu.is_cd()).collect();
    let nu = pick(&regions, seed)?;
    mem.corrupt_budget(nu, 0)
        .then(|| format!("underflowed the budget of region {nu} to 0"))
}

fn stale_page_header(seed: u64, mem: &mut Memory) -> Option<String> {
    let pages = mem.live_page_ids();
    let pid = pick(&pages, seed)?;
    mem.corrupt_page_header(pid)
        .then(|| format!("bumped the occupancy header of page {pid} past its slot count"))
}

/// The universal fallback: overwrite a reachable non-int slot with a bare
/// int. Under Ψ tracking this always mismatches the recorded type; in the
/// exact-accounting dialects it also breaks the word count whenever the
/// victim was wider than one word.
fn smash_slot(seed: u64, mem: &mut Memory, root: &Term) -> Option<String> {
    let sites: Vec<(RegionName, u32)> = reachable_sites(mem, root)
        .into_iter()
        .filter(|&(nu, loc)| !matches!(mem.get(nu, loc), Ok(Value::Int(_)) | Err(_)))
        .collect();
    let (nu, loc) = pick(&sites, seed)?;
    mem.set(nu, loc, Value::Int(seed as i64)).ok()?;
    Some(format!(
        "no site with the requested shape; smashed {nu}.{loc} to a bare int instead"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemConfig;
    use crate::syntax::Dialect;
    use crate::verify::audit_state;

    #[test]
    fn spec_round_trips() {
        for kind in FaultKind::ALL {
            for (step, seed) in [(0, 0), (100, 0), (7, 42)] {
                let plan = FaultPlan { kind, step, seed };
                let spec = plan.to_spec();
                assert_eq!(FaultPlan::parse(&spec), Ok(plan), "{spec}");
            }
        }
    }

    #[test]
    fn malformed_specs_are_rejected_with_context() {
        for bad in [
            "",
            "flip-tag",
            "flip-tag@",
            "flip-tag@abc",
            "flip-tag@1:xyz",
            "mark-sweep@1",
        ] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "{bad:?}");
        }
    }

    #[test]
    fn display_matches_to_spec() {
        let plan = FaultPlan {
            kind: FaultKind::DoubleFree,
            step: 9,
            seed: 3,
        };
        assert_eq!(plan.to_string(), "double-free@9:3");
        assert_eq!("double-free@9:3".parse(), Ok(plan));
    }

    /// Build a store whose single data region holds one of everything the
    /// injectors target, all reachable from the root. Ψ tracking is on so
    /// the audit catches shape-preserving faults (e.g. a flipped tag, which
    /// is invisible to the structural checks under λGCforw's relaxed word
    /// accounting).
    fn rich_store() -> (Memory, Term) {
        let mut mem = Memory::new(MemConfig {
            region_budget: 64,
            track_types: true,
            ..MemConfig::default()
        });
        let nu = mem.alloc_region();
        let pair = mem
            .put(nu, Value::pair(Value::Int(1), Value::Int(2)))
            .unwrap();
        let sum = mem.put(nu, Value::inl(Value::Int(5))).unwrap();
        let fwd = mem.put(nu, Value::inr(Value::Addr(nu, pair))).unwrap();
        let root = Term::Halt(Value::pair(
            Value::pair(Value::Addr(nu, pair), Value::Addr(nu, sum)),
            Value::Addr(nu, fwd),
        ));
        (mem, root)
    }

    #[test]
    fn every_fault_applies_and_is_caught_on_a_rich_store() {
        for kind in FaultKind::ALL {
            for seed in 0..4 {
                let (mut mem, root) = rich_store();
                audit_state(&mem, Dialect::Forwarding, &root).unwrap();
                let plan = FaultPlan {
                    kind,
                    step: 0,
                    seed,
                };
                let desc =
                    apply(&plan, &mut mem, &root).unwrap_or_else(|| panic!("{kind} found no site"));
                let err = audit_state(&mem, Dialect::Forwarding, &root);
                assert!(err.is_err(), "{kind} seed {seed} undetected after: {desc}");
            }
        }
    }

    #[test]
    fn injection_is_deterministic_in_the_seed() {
        for kind in FaultKind::ALL {
            let plan = FaultPlan {
                kind,
                step: 0,
                seed: 11,
            };
            let (mut m1, root) = rich_store();
            let (mut m2, _) = rich_store();
            let d1 = apply(&plan, &mut m1, &root);
            let d2 = apply(&plan, &mut m2, &root);
            assert_eq!(d1, d2, "{kind}");
        }
    }

    #[test]
    fn stale_page_header_is_caught_by_the_incremental_audit() {
        let (mut mem, root) = rich_store();
        audit_state(&mem, Dialect::Forwarding, &root).unwrap();
        let plan = FaultPlan {
            kind: FaultKind::StalePageHeader,
            step: 0,
            seed: 0,
        };
        apply(&plan, &mut mem, &root).expect("a live page exists");
        let err = crate::verify::audit_dirty(&mut mem, Dialect::Forwarding)
            .expect_err("the dirty-page audit sees the corrupted header");
        assert!(
            err.to_string().contains("occupancy"),
            "unexpected detail: {err}"
        );
    }

    #[test]
    fn no_site_means_no_injection() {
        // An empty store (just cd) offers nothing to corrupt except a
        // budget — and there is no data region for that either.
        let mut mem = Memory::new(MemConfig::default());
        let root = Term::Halt(Value::Int(0));
        for kind in FaultKind::ALL {
            let plan = FaultPlan {
                kind,
                step: 0,
                seed: 0,
            };
            assert_eq!(apply(&plan, &mut mem, &root), None, "{kind}");
        }
    }
}
