//! The λGC abstract machine: the operational semantics of Fig. 5, extended
//! with the λGCforw rules of §7 and the λGCgen rules of §8.
//!
//! A machine state is a pair `(M, e)` of a memory and a closed term. The
//! machine implements every reduction rule of the paper literally; the only
//! additions are the integer primitives (`if0`, arithmetic) documented in
//! [`crate::syntax`].
//!
//! One figure-5 typo is corrected: the published rule for
//! `ifleft x = (inr v) eₗ eᵣ` steps to `eₗ[inr v/x]`, which contradicts the
//! typing rule of Fig. 8 and the use in Fig. 9; we step to `eᵣ[inr v/x]`.

use std::collections::HashSet;

use crate::error::{stuck_err, ErrorKind, LangError, Result};
use crate::faults::FaultPlan;
use crate::memory::{MemConfig, Memory, ReclaimReport};
use crate::subst::Subst;
use crate::syntax::{Dialect, Op, Region, RegionName, Tag, Term, Ty, Value};
use crate::tags;
use crate::telemetry::{SharedObserver, Telemetry};

/// A closed λGC program: code blocks to install in `cd` plus the main term.
///
/// The main term refers to code via `Value::Addr(CD, i)` where `i` is the
/// index of the block in `code`.
#[derive(Clone, Debug)]
pub struct Program {
    pub dialect: Dialect,
    pub code: Vec<crate::syntax::CodeDef>,
    pub main: Term,
}

/// Most detailed [`ReclaimReport`]s kept in [`Stats::reclaim_events`].
///
/// The aggregate counters (`collections`, `words_reclaimed`,
/// `kept_words_total`) always cover every collection; only the per-event
/// log is bounded, so long-running programs do not grow memory without
/// bound. The *first* events are kept (rather than the last) because the
/// per-event consumers — warm-up analyses, the E4 benchmark, examples —
/// all look at the beginning of the run.
pub const MAX_RECLAIM_EVENTS: usize = 1024;

/// Statistics collected while running.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Stats {
    /// SubstMachine steps taken.
    pub steps: u64,
    /// Number of `put` allocations.
    pub allocations: u64,
    /// Words allocated by `put`.
    pub words_allocated: u64,
    /// Regions created by `let region`.
    pub regions_created: u64,
    /// `only` executions that actually dropped data (i.e. collections).
    pub collections: u64,
    /// Words reclaimed by `only`.
    pub words_reclaimed: u64,
    /// Total live words kept across all collections (the sum of every
    /// report's `kept_words`, i.e. total copy work in copying collectors).
    pub kept_words_total: u64,
    /// Peak total words in data regions.
    pub peak_data_words: usize,
    /// `typecase` dispatches taken.
    pub typecase_dispatches: u64,
    /// `ifgc` checks that came back "full".
    pub gc_triggers: u64,
    /// `set` writes (forwarding-pointer installs).
    pub forwarding_installs: u64,
    /// Reports from each `only` that dropped something, capped at the
    /// first [`MAX_RECLAIM_EVENTS`] collections.
    pub reclaim_events: Vec<ReclaimReport>,
}

impl Stats {
    /// Folds an `only` report into the statistics: counts it as a
    /// collection if it dropped anything, updates the aggregate counters,
    /// and appends to the bounded event log. Shared by both interpreter
    /// backends so their `Stats` stay bit-for-bit identical.
    pub(crate) fn record_reclaim(&mut self, report: ReclaimReport) {
        if report.dropped.is_empty() {
            return;
        }
        self.collections += 1;
        self.words_reclaimed += report.words_reclaimed() as u64;
        self.kept_words_total += report.kept_words as u64;
        if self.reclaim_events.len() < MAX_RECLAIM_EVENTS {
            self.reclaim_events.push(report);
        }
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} steps, {} allocations ({} words), {} collections ({} words reclaimed), peak {} live words",
            self.steps,
            self.allocations,
            self.words_allocated,
            self.collections,
            self.words_reclaimed,
            self.peak_data_words
        )
    }
}

/// Which interpreter backend evaluates λGC terms.
///
/// Every backend implements the same operational semantics and produces
/// identical results *and identical [`Stats`] and telemetry* on every
/// program (checked by the differential test suite). They differ only in
/// how β-reduction is realised:
///
/// * [`Backend::Subst`] — the literal Fig. 5 machine ([`SubstMachine`]): each
///   step textually substitutes into the continuation. O(|term|) per
///   step, but the state is always a closed term, which is what the
///   well-formedness judgement `⊢ (M, e)` of `crate::wf` consumes. This
///   is the paper-faithful oracle.
/// * [`Backend::Env`] — the environment machine
///   ([`crate::env_machine::EnvMachine`]): terms run against a
///   value/tag/region environment, continuations are shared via `Rc`,
///   and variables are resolved lazily at use sites. O(1) per step
///   modulo value size.
/// * [`Backend::Bytecode`] — the register-based bytecode VM
///   ([`crate::bytecode::BcMachine`]): terms are compiled once to a flat
///   instruction stream with variable occurrences resolved to register
///   slots at compile time, then executed by a dispatch loop. The fastest
///   backend; the default for plain runs and benchmarks is still chosen
///   by [`Backend::default_for`].
///
/// New code should not `match` on `Backend` outside this module: construct
/// machines through [`Backend::load`] and drive test matrices and CLI
/// parsing from [`Backend::ALL`], so a future fourth backend is a
/// one-module change.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Fig. 5 substitution semantics (the reference/oracle).
    Subst,
    /// Environment-based interpreter.
    Env,
    /// Register-based bytecode VM (fast path).
    Bytecode,
}

impl Backend {
    /// Every backend, in canonical order (drives CLI metavars and the
    /// exhaustive collector × backend test matrices).
    pub const ALL: [Backend; 3] = [Backend::Subst, Backend::Env, Backend::Bytecode];

    /// The canonical name, as accepted by [`FromStr`] and printed by
    /// [`Display`](std::fmt::Display).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Subst => "subst",
            Backend::Env => "env",
            Backend::Bytecode => "bytecode",
        }
    }

    /// The backend picked when the caller expresses no preference: the
    /// substitution machine when the memory typing `Ψ` is being tracked
    /// (its closed-term states feed the `⊢ (M, e)` checker), the
    /// environment fast path otherwise.
    pub fn default_for(track_types: bool) -> Backend {
        if track_types {
            Backend::Subst
        } else {
            Backend::Env
        }
    }

    /// Loads `program` on this backend, returning it behind the [`Machine`]
    /// trait. This is the single construction point for all backends —
    /// callers that used to `match` on `Backend` go through here instead.
    pub fn load(self, program: &Program, config: MemConfig) -> Box<dyn Machine> {
        match self {
            Backend::Subst => Box::new(SubstMachine::load(program, config)),
            Backend::Env => Box::new(crate::env_machine::EnvMachine::load(program, config)),
            Backend::Bytecode => Box::new(crate::bytecode::BcMachine::load(program, config)),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Backend {
    type Err = String;
    fn from_str(s: &str) -> std::result::Result<Backend, String> {
        match s {
            "subst" | "substitution" => Ok(Backend::Subst),
            "env" | "environment" => Ok(Backend::Env),
            "bytecode" | "bc" => Ok(Backend::Bytecode),
            other => Err(format!(
                "unknown backend {other:?} (expected subst|env|bytecode)"
            )),
        }
    }
}

/// How the periodic heap audit (`verify_every`) walks the store.
///
/// Incremental audits re-check only pages dirtied since the last audit
/// ([`crate::verify::audit_dirty`]), escalating to a full walk whenever the
/// memory demands one ([`Memory::wants_full_audit`], raised by region
/// frees). This keeps per-step auditing within a small constant factor of
/// an unaudited run while detecting every injected fault at the same step
/// as the full walk — so it is the default. `Full` forces the exhaustive
/// [`crate::verify::audit_state`] walk on every audit, as a cross-check.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AuditMode {
    /// Dirty-page audits, with full walks at reclamation boundaries.
    #[default]
    Incremental,
    /// Exhaustive full-heap walk on every audit.
    Full,
}

impl std::fmt::Display for AuditMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AuditMode::Incremental => "incremental",
            AuditMode::Full => "full",
        })
    }
}

impl std::str::FromStr for AuditMode {
    type Err = String;
    fn from_str(s: &str) -> std::result::Result<AuditMode, String> {
        match s {
            "incremental" => Ok(AuditMode::Incremental),
            "full" => Ok(AuditMode::Full),
            other => Err(format!(
                "unknown audit mode {other:?} (expected incremental|full)"
            )),
        }
    }
}

/// The result of running a machine to completion (or out of fuel).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// `halt v` was reached with the given integer.
    Halted(i64),
    /// Fuel ran out before halting.
    OutOfFuel,
    /// A periodic heap audit ([`crate::verify`]) found a violated
    /// invariant. The machine state is left as-is for post-mortems.
    InvariantViolation(LangError),
}

/// One machine step's result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The machine took a step.
    Continue,
    /// `halt v` was reached.
    Halted(i64),
}

/// The uniform execution interface every interpreter backend implements.
///
/// A `Machine` is a loaded λGC program plus a heap: it can be stepped or
/// run, observed through telemetry, audited against the heap invariants,
/// and subjected to fault injection. The contract — enforced by the
/// lockstep differential suite — is that all implementations are
/// *observationally identical*: byte-identical [`Stats`], byte-identical
/// telemetry event streams, identical error messages, and the same
/// [resolved control term](Machine::resolved_control) before every step.
///
/// Obtain one with [`Backend::load`]; the concrete types
/// ([`SubstMachine`], [`crate::env_machine::EnvMachine`],
/// [`crate::bytecode::BcMachine`]) remain available for code that needs
/// backend-specific views (e.g. `crate::wf` consumes the substitution
/// machine's closed term directly).
pub trait Machine {
    /// Attaches a telemetry observer; `step_interval > 0` also emits
    /// periodic heap samples.
    fn set_observer(&mut self, observer: SharedObserver, step_interval: u64);

    /// Audits the heap every `n` steps during [`Machine::run`] (0 = never).
    fn set_verify_every(&mut self, n: u64);

    /// Chooses how those periodic audits walk the heap (default:
    /// [`AuditMode::Incremental`]).
    fn set_audit_mode(&mut self, mode: AuditMode);

    /// Arms a fault plan; the next [`Machine::run`] injects it as soon as
    /// the step counter and heap shape allow.
    fn set_fault_plan(&mut self, plan: Option<FaultPlan>);

    /// Toggles superinstruction fusion (bytecode backend only; the other
    /// backends ignore this). Must be called before the first step.
    fn set_superinstructions(&mut self, _on: bool) {}

    /// The machine's memory.
    fn memory(&self) -> &Memory;

    /// Mutable access to the memory (used by fault-injection tests).
    fn memory_mut(&mut self) -> &mut Memory;

    /// The dialect the loaded program was compiled for.
    fn dialect(&self) -> Dialect;

    /// Execution statistics so far.
    fn stats(&self) -> &Stats;

    /// The halt value, if the machine has halted.
    fn halted(&self) -> Option<i64>;

    /// The current control term with every environment/register binding
    /// substituted in — a closed term structurally identical to the
    /// substitution oracle's state at the same step. This is the view the
    /// heap auditor and fault injector consume.
    fn resolved_control(&self) -> Term;

    /// Audits the current state against the heap invariants.
    fn audit(&self) -> Result<()> {
        crate::verify::audit_state(self.memory(), self.dialect(), &self.resolved_control())
    }

    /// Takes a single machine step.
    fn step(&mut self) -> Result<StepOutcome>;

    /// Runs for at most `fuel` steps, honouring the audit cadence and any
    /// armed fault plan.
    fn run(&mut self, fuel: u64) -> Result<Outcome>;
}

/// A λGC machine state `(M, e)` plus bookkeeping.
#[derive(Clone, Debug)]
pub struct SubstMachine {
    mem: Memory,
    term: Term,
    dialect: Dialect,
    stats: Stats,
    telem: Telemetry,
    halted: Option<i64>,
    verify_every: u64,
    audit_mode: AuditMode,
    fault: Option<FaultPlan>,
}

impl SubstMachine {
    /// Loads a program: installs its code blocks in `cd` and sets the main
    /// term as the current redex.
    pub fn load(program: &Program, config: MemConfig) -> SubstMachine {
        let mut mem = Memory::new(config);
        for def in &program.code {
            let ty = def.ty();
            mem.install_code(Value::Code(std::sync::Arc::new(def.clone())), ty);
        }
        SubstMachine {
            mem,
            term: program.main.clone(),
            dialect: program.dialect,
            stats: Stats::default(),
            telem: Telemetry::default(),
            halted: None,
            verify_every: 0,
            audit_mode: AuditMode::default(),
            fault: None,
        }
    }

    /// Attaches a telemetry observer; `step_interval > 0` also emits
    /// periodic heap samples. Without an observer every telemetry hook is
    /// a single `Option` check.
    pub fn set_observer(&mut self, observer: SharedObserver, step_interval: u64) {
        self.telem.attach(observer, step_interval);
    }

    /// The current memory.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the memory — **fault-injection machinery**. The
    /// interpreter itself never needs this; it exists so [`crate::faults`]
    /// and adversarial tests can corrupt a live state.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Audits the current state every `n` steps during [`SubstMachine::run`]
    /// (`0` disables auditing, the default).
    pub fn set_verify_every(&mut self, n: u64) {
        self.verify_every = n;
    }

    /// Chooses how periodic audits walk the heap (default: incremental).
    pub fn set_audit_mode(&mut self, mode: AuditMode) {
        self.audit_mode = mode;
    }

    /// Arms a deterministic fault to be injected during [`SubstMachine::run`]
    /// once the plan's step is reached (**fault-injection machinery**).
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// Runs the [`crate::verify`] heap auditor against the current state.
    ///
    /// # Errors
    ///
    /// Returns the first violated Fig. 7 invariant.
    pub fn audit(&self) -> Result<()> {
        crate::verify::audit_state(&self.mem, self.dialect, &self.term)
    }

    /// The current term.
    pub fn term(&self) -> &Term {
        &self.term
    }

    /// The dialect this machine runs.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// Statistics so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The halt value, if the machine has halted.
    pub fn halted(&self) -> Option<i64> {
        self.halted
    }

    /// Runs until `halt`, an error, or `fuel` steps. If armed (see
    /// [`SubstMachine::set_fault_plan`]) a fault is injected at its step, and if
    /// `verify_every > 0` the state is audited every that many steps; an
    /// audit failure ends the run with [`Outcome::InvariantViolation`].
    ///
    /// # Errors
    ///
    /// Returns a stuck-state error if no reduction rule applies — a progress
    /// violation for well-typed programs (Prop. 6.5) — or an
    /// [`ErrorKind::OutOfMemory`] error if an allocation would exceed
    /// [`MemConfig::max_heap_words`].
    pub fn run(&mut self, fuel: u64) -> Result<Outcome> {
        for _ in 0..fuel {
            match self.step() {
                Ok(StepOutcome::Continue) => {}
                Ok(StepOutcome::Halted(n)) => return Ok(Outcome::Halted(n)),
                Err(e) => {
                    if e.kind() == ErrorKind::OutOfMemory {
                        let limit = self.mem.config().max_heap_words.unwrap_or(0);
                        self.telem
                            .on_oom(self.stats.steps, self.mem.data_words(), limit);
                    }
                    return Err(e);
                }
            }
            self.try_inject();
            if self.verify_every > 0 && self.stats.steps.is_multiple_of(self.verify_every) {
                let full = self.audit_mode == AuditMode::Full || self.mem.wants_full_audit();
                let res = if full {
                    let r = self.audit();
                    if r.is_ok() {
                        self.mem.note_full_audit();
                    }
                    r
                } else {
                    crate::verify::audit_dirty(&mut self.mem, self.dialect)
                };
                if let Err(e) = res {
                    self.telem
                        .on_invariant_violation(self.stats.steps, &e.to_string());
                    return Ok(Outcome::InvariantViolation(e));
                }
            }
        }
        self.telem.on_fuel_exhausted(self.stats.steps);
        Ok(Outcome::OutOfFuel)
    }

    /// Applies the armed fault plan if its step has been reached. Keeps the
    /// plan armed until an application actually lands (a plan may find no
    /// target at its nominal step, e.g. before the first allocation).
    fn try_inject(&mut self) {
        let Some(plan) = self.fault else { return };
        if self.stats.steps < plan.step {
            return;
        }
        if crate::faults::apply(&plan, &mut self.mem, &self.term).is_some() {
            self.fault = None;
        }
    }

    /// Takes one machine step.
    ///
    /// # Errors
    ///
    /// Returns a stuck-state or memory error if no rule applies.
    pub fn step(&mut self) -> Result<StepOutcome> {
        if let Some(n) = self.halted {
            return Ok(StepOutcome::Halted(n));
        }
        self.stats.steps += 1;
        self.telem.on_step(self.stats.steps, &self.mem);
        let term = std::mem::replace(&mut self.term, Term::Halt(Value::Int(0)));
        let next = self.step_term(term)?;
        match next {
            Some(t) => {
                self.term = t;
                self.stats.peak_data_words = self.stats.peak_data_words.max(self.mem.data_words());
                Ok(StepOutcome::Continue)
            }
            None => match self.halted {
                Some(n) => Ok(StepOutcome::Halted(n)),
                None => Err(self.stuck("step ended without a term or a halt value".into())),
            },
        }
    }

    fn stuck(&self, msg: String) -> LangError {
        stuck_err(msg).in_context(format!("dialect {}", self.dialect))
    }

    fn step_term(&mut self, term: Term) -> Result<Option<Term>> {
        match term {
            Term::App {
                f,
                tags: ts,
                regions,
                args,
            } => self.step_app(f, ts, regions, args).map(Some),
            Term::Let { x, op, body } => {
                let v = self.eval_op(op)?;
                let mut sub = Subst::new();
                sub.bind_val(x, v);
                Ok(Some(sub.term(&body)))
            }
            Term::Halt(v) => match v {
                Value::Int(n) => {
                    self.halted = Some(n);
                    self.telem.on_halt(n, self.stats.steps);
                    Ok(None)
                }
                other => Err(self.stuck(format!("halt on non-integer value {other:?}"))),
            },
            Term::IfGc { rho, full, cont } => {
                let nu = self.expect_name(&rho)?;
                if self.mem.is_full(nu)? {
                    self.stats.gc_triggers += 1;
                    self.telem.on_gc_trigger(nu, &self.mem, self.stats.steps);
                    Ok(Some((*full).clone()))
                } else {
                    Ok(Some((*cont).clone()))
                }
            }
            Term::OpenTag { pkg, tvar, x, body } => match pkg {
                Value::PackTag {
                    tvar: _, tag, val, ..
                } => {
                    // Fig. 5 normalizes the witness tag before substituting.
                    let nf = tags::normalize(&tag);
                    let mut sub = Subst::new();
                    sub.bind_tag(tvar, nf);
                    sub.bind_val(x, (*val).clone());
                    Ok(Some(sub.term(&body)))
                }
                other => Err(self.stuck(format!("open(tag) on non-package {other:?}"))),
            },
            Term::OpenAlpha { pkg, avar, x, body } => match pkg {
                Value::PackAlpha { witness, val, .. } => {
                    let mut sub = Subst::new();
                    sub.bind_alpha(avar, witness);
                    sub.bind_val(x, (*val).clone());
                    Ok(Some(sub.term(&body)))
                }
                other => Err(self.stuck(format!("open(α) on non-package {other:?}"))),
            },
            Term::OpenRgn { pkg, rvar, x, body } => match pkg {
                Value::PackRgn { witness, val, .. } => {
                    let nu = self.expect_name(&witness)?;
                    let mut sub = Subst::new();
                    sub.bind_rgn(rvar, Region::Name(nu));
                    sub.bind_val(x, (*val).clone());
                    Ok(Some(sub.term(&body)))
                }
                other => Err(self.stuck(format!("open(region) on non-package {other:?}"))),
            },
            Term::LetRegion { rvar, body } => {
                let nu = self.mem.alloc_region();
                self.stats.regions_created += 1;
                self.telem.on_region_alloc(nu, &self.mem, self.stats.steps);
                let mut sub = Subst::new();
                sub.bind_rgn(rvar, Region::Name(nu));
                Ok(Some(sub.term(&body)))
            }
            Term::Only { regions, body } => {
                let mut keep = Vec::with_capacity(regions.len());
                for r in &regions {
                    keep.push(self.expect_name(r)?);
                }
                let report = self.mem.only(&keep);
                self.telem.on_only(&report, &self.mem, self.stats.steps);
                self.stats.record_reclaim(report);
                Ok(Some((*body).clone()))
            }
            Term::Typecase {
                tag,
                int_arm,
                arrow_arm,
                prod_arm,
                exist_arm,
            } => {
                self.stats.typecase_dispatches += 1;
                let nf = tags::normalize(&tag);
                match nf {
                    Tag::Int => Ok(Some((*int_arm).clone())),
                    Tag::Arrow(_) => Ok(Some((*arrow_arm).clone())),
                    Tag::Prod(a, b) => {
                        let (t1, t2, body) = prod_arm;
                        let mut sub = Subst::new();
                        sub.bind_tag(t1, (*a).clone());
                        sub.bind_tag(t2, (*b).clone());
                        Ok(Some(sub.term(&body)))
                    }
                    Tag::Exist(t, body_tag) => {
                        let (te, body) = exist_arm;
                        let mut sub = Subst::new();
                        sub.bind_tag(te, Tag::Lam(t, body_tag));
                        Ok(Some(sub.term(&body)))
                    }
                    other => Err(self.stuck(format!("typecase on non-constructor tag {other:?}"))),
                }
            }
            Term::IfLeft {
                x,
                scrut,
                left,
                right,
            } => match scrut {
                v @ (Value::Inl(_) | Value::Inr(_)) => {
                    let arm = if matches!(v, Value::Inl(_)) {
                        left
                    } else {
                        right
                    };
                    let mut sub = Subst::new();
                    sub.bind_val(x, v);
                    Ok(Some(sub.term(&arm)))
                }
                other => Err(self.stuck(format!("ifleft on non-sum value {other:?}"))),
            },
            Term::Set { dst, src, body } => match dst {
                Value::Addr(nu, loc) => {
                    self.mem.set(nu, loc, src)?;
                    self.stats.forwarding_installs += 1;
                    Ok(Some((*body).clone()))
                }
                other => Err(self.stuck(format!("set on non-address {other:?}"))),
            },
            Term::Widen {
                x,
                from,
                to,
                tag,
                v,
                body,
            } => {
                // Operationally a no-op: `widen` is the cast whose soundness
                // §7.1 establishes; only the (observer) memory typing Ψ is
                // rewritten by the T operator of Appendix C.
                if self.mem.config().track_types {
                    let from = self.expect_name(&from)?;
                    let to = self.expect_name(&to)?;
                    widen_psi(&mut self.mem, &v, &tags::normalize(&tag), from, to)?;
                }
                let mut sub = Subst::new();
                sub.bind_val(x, v);
                Ok(Some(sub.term(&body)))
            }
            Term::IfReg { r1, r2, eq, ne } => {
                let n1 = self.expect_name(&r1)?;
                let n2 = self.expect_name(&r2)?;
                if n1 == n2 {
                    Ok(Some((*eq).clone()))
                } else {
                    Ok(Some((*ne).clone()))
                }
            }
            Term::If0 {
                scrut,
                zero,
                nonzero,
            } => match scrut {
                Value::Int(0) => Ok(Some((*zero).clone())),
                Value::Int(_) => Ok(Some((*nonzero).clone())),
                other => Err(self.stuck(format!("if0 on non-integer {other:?}"))),
            },
        }
    }

    fn step_app(
        &mut self,
        f: Value,
        ts: Vec<Tag>,
        regions: Vec<Region>,
        args: Vec<Value>,
    ) -> Result<Term> {
        match f {
            Value::Addr(nu, loc) => {
                let code = match self.mem.get(nu, loc)? {
                    Value::Code(def) => def.clone(),
                    other => {
                        return Err(self.stuck(format!("application of non-code value {other:?}")))
                    }
                };
                if code.tvars.len() != ts.len()
                    || code.rvars.len() != regions.len()
                    || code.params.len() != args.len()
                {
                    return Err(self.stuck(format!(
                        "arity mismatch calling {}: expected [{}][{}]({}), got [{}][{}]({})",
                        code.name,
                        code.tvars.len(),
                        code.rvars.len(),
                        code.params.len(),
                        ts.len(),
                        regions.len(),
                        args.len()
                    )));
                }
                // Fig. 5's first rule normalizes the tag arguments before the
                // β step.
                let mut sub = Subst::new();
                for ((t, _), tau) in code.tvars.iter().zip(ts.iter()) {
                    sub.bind_tag(*t, tags::normalize(tau));
                }
                for (r, rho) in code.rvars.iter().zip(regions.iter()) {
                    sub.bind_rgn(*r, *rho);
                }
                for ((x, _), v) in code.params.iter().zip(args.iter()) {
                    sub.bind_val(*x, v.clone());
                }
                Ok(sub.term(&code.body))
            }
            Value::TagApp(inner, rec_tags, rec_rgns) => {
                // (vJ~τ;~ρK)[~τ][~ρ](~v) ⇒ v[~τ][~ρ](~v). The recorded tags
                // and regions are authoritative; the supplied ones must
                // agree (checked statically).
                let _ = regions;
                Ok(Term::App {
                    f: (*inner).clone(),
                    tags: rec_tags.iter().cloned().collect(),
                    regions: rec_rgns.iter().copied().collect(),
                    args,
                })
            }
            other => Err(self.stuck(format!("application of non-code value {other:?}"))),
        }
    }

    fn eval_op(&mut self, op: Op) -> Result<Value> {
        match op {
            Op::Val(v) => Ok(v),
            Op::Proj(i, v) => match v {
                Value::Pair(a, b) => Ok(if i == 1 { (*a).clone() } else { (*b).clone() }),
                other => Err(self.stuck(format!("projection π{i} of non-pair {other:?}"))),
            },
            Op::Put(rho, v) => {
                let nu = self.expect_name(&rho)?;
                let rec = self.mem.put_counted(nu, v)?;
                self.stats.allocations += 1;
                self.stats.words_allocated += rec.words as u64;
                if let Some(alloc) = rec.page {
                    self.telem.on_page_alloc(nu, alloc, self.stats.steps);
                }
                self.telem.on_put(nu, rec.words, self.stats.steps);
                Ok(Value::Addr(nu, rec.loc))
            }
            Op::Get(v) => match v {
                Value::Addr(nu, loc) => Ok(self.mem.get(nu, loc)?.clone()),
                other => Err(self.stuck(format!("get of non-address {other:?}"))),
            },
            Op::Strip(v) => match v {
                Value::Inl(x) | Value::Inr(x) => Ok((*x).clone()),
                other => Err(self.stuck(format!("strip of untagged value {other:?}"))),
            },
            Op::Prim(p, a, b) => match (a, b) {
                (Value::Int(x), Value::Int(y)) => Ok(Value::Int(p.apply(x, y))),
                (a, b) => Err(self.stuck(format!("primitive {p} on non-integers {a:?}, {b:?}"))),
            },
        }
    }

    fn expect_name(&self, rho: &Region) -> Result<RegionName> {
        match rho {
            Region::Name(nu) => Ok(*nu),
            Region::Var(r) => Err(self.stuck(format!("unsubstituted region variable {r}"))),
        }
    }
}

impl Machine for SubstMachine {
    fn set_observer(&mut self, observer: SharedObserver, step_interval: u64) {
        SubstMachine::set_observer(self, observer, step_interval);
    }
    fn set_verify_every(&mut self, n: u64) {
        SubstMachine::set_verify_every(self, n);
    }
    fn set_audit_mode(&mut self, mode: AuditMode) {
        SubstMachine::set_audit_mode(self, mode);
    }
    fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        SubstMachine::set_fault_plan(self, plan);
    }
    fn memory(&self) -> &Memory {
        SubstMachine::memory(self)
    }
    fn memory_mut(&mut self) -> &mut Memory {
        SubstMachine::memory_mut(self)
    }
    fn dialect(&self) -> Dialect {
        SubstMachine::dialect(self)
    }
    fn stats(&self) -> &Stats {
        SubstMachine::stats(self)
    }
    fn halted(&self) -> Option<i64> {
        SubstMachine::halted(self)
    }
    fn resolved_control(&self) -> Term {
        // The state *is* the closed control term.
        self.term.clone()
    }
    fn audit(&self) -> Result<()> {
        SubstMachine::audit(self)
    }
    fn step(&mut self) -> Result<StepOutcome> {
        SubstMachine::step(self)
    }
    fn run(&mut self, fuel: u64) -> Result<Outcome> {
        SubstMachine::run(self, fuel)
    }
}

/// Rewrites `Ψ` for a `widen` by walking the live graph from `v` guided
/// by the tag, applying the `T` operator of Appendix C: every reachable
/// entry of the from-region changes from its `M`-form to the
/// corresponding `C`-form. Unreached entries of the from-region are
/// dropped from `Ψ` (they are garbage; Def. 7.1's `M̄ ⊆ M`).
///
/// A free function over the memory so both interpreter backends share it.
pub(crate) fn widen_psi(
    mem: &mut Memory,
    v: &Value,
    tag: &Tag,
    from: RegionName,
    to: RegionName,
) -> Result<()> {
    let mut visited: HashSet<(RegionName, u32)> = HashSet::new();
    widen_visit(mem, v, tag, from, to, &mut visited)?;
    // Drop unreached from-region entries.
    if let Some(entries) = mem.psi_region(from) {
        let dead: Vec<u32> = entries
            .keys()
            .copied()
            .filter(|loc| !visited.contains(&(from, *loc)))
            .collect();
        for loc in dead {
            mem.remove_psi_entry(from, loc);
        }
    }
    Ok(())
}

fn widen_visit(
    mem: &mut Memory,
    v: &Value,
    tag: &Tag,
    from: RegionName,
    to: RegionName,
    visited: &mut HashSet<(RegionName, u32)>,
) -> Result<()> {
    match tag {
        Tag::Int | Tag::Arrow(_) | Tag::AnyArrow(_) => Ok(()),
        Tag::Prod(t1, t2) => {
            let (nu, loc) = match v {
                Value::Addr(nu, loc) => (*nu, *loc),
                other => {
                    return Err(stuck_err(format!(
                        "widen walk: expected address for product tag, got {other:?}"
                    )))
                }
            };
            if !visited.insert((nu, loc)) {
                return Ok(());
            }
            let c_ty = c_stored_ty(tag, from, to);
            mem.rewrite_psi_entry(nu, loc, c_ty);
            let stored = mem.get(nu, loc)?.clone();
            match stored {
                Value::Inl(inner) => match &*inner {
                    Value::Pair(a, b) => {
                        widen_visit(mem, a, t1, from, to, visited)?;
                        widen_visit(mem, b, t2, from, to, visited)
                    }
                    other => Err(stuck_err(format!(
                        "widen walk: expected pair under inl, got {other:?}"
                    ))),
                },
                other => Err(stuck_err(format!(
                    "widen walk: expected inl-tagged object, got {other:?}"
                ))),
            }
        }
        Tag::Exist(t, body) => {
            let (nu, loc) = match v {
                Value::Addr(nu, loc) => (*nu, *loc),
                other => {
                    return Err(stuck_err(format!(
                        "widen walk: expected address for existential tag, got {other:?}"
                    )))
                }
            };
            if !visited.insert((nu, loc)) {
                return Ok(());
            }
            let c_ty = c_stored_ty(tag, from, to);
            mem.rewrite_psi_entry(nu, loc, c_ty);
            let stored = mem.get(nu, loc)?.clone();
            match stored {
                Value::Inl(inner) => match &*inner {
                    Value::PackTag {
                        tvar,
                        kind,
                        tag: witness,
                        val,
                        ..
                    } => {
                        // §7.1's cast is "consistently applied over the
                        // whole heap": the stored package's (erasable)
                        // type annotation switches from the mutator view
                        // M to the collector view C together with Ψ —
                        // the step Lemma C.8's existential case performs
                        // implicitly.
                        let new_body = Ty::c(
                            Region::Name(from),
                            Region::Name(to),
                            Subst::one_tag(*t, Tag::Var(*tvar)).tag(body),
                        );
                        let recast = Value::Inl(crate::intern::intern_value(Value::PackTag {
                            tvar: *tvar,
                            kind: *kind,
                            tag: witness.clone(),
                            val: *val,
                            body_ty: new_body,
                        }));
                        mem.set(nu, loc, recast)?;
                        let child_tag =
                            tags::normalize(&Subst::one_tag(*t, witness.clone()).tag(body));
                        widen_visit(mem, val, &child_tag, from, to, visited)
                    }
                    other => Err(stuck_err(format!(
                        "widen walk: expected package under inl, got {other:?}"
                    ))),
                },
                other => Err(stuck_err(format!(
                    "widen walk: expected inl-tagged object, got {other:?}"
                ))),
            }
        }
        other => Err(stuck_err(format!(
            "widen walk: open tag {other:?} at runtime"
        ))),
    }
}

/// The stored-value part (i.e. without the outer `at`) of
/// `C_{from,to}(τ)` for a heap object.
fn c_stored_ty(tag: &Tag, from: RegionName, to: RegionName) -> Ty {
    let c = Ty::c(Region::Name(from), Region::Name(to), tag.clone());
    match crate::moper::normalize_ty(&c, Dialect::Forwarding) {
        Ty::At(inner, _) => (*inner).clone(),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::GrowthPolicy;
    use crate::syntax::{CodeDef, Kind, Op, PrimOp};
    use ps_ir::Symbol;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    fn config() -> MemConfig {
        MemConfig {
            region_budget: 16,
            growth: GrowthPolicy::Fixed,
            track_types: false,
            max_heap_words: None,
            page_words: 8,
        }
    }

    fn run_main(main: Term) -> i64 {
        run_program(Program {
            dialect: Dialect::Basic,
            code: vec![],
            main,
        })
    }

    fn run_program(p: Program) -> i64 {
        let mut m = SubstMachine::load(&p, config());
        match m.run(100_000).unwrap() {
            Outcome::Halted(n) => n,
            other => panic!("abnormal outcome: {other:?}"),
        }
    }

    #[test]
    fn halt_returns_value() {
        assert_eq!(run_main(Term::Halt(Value::Int(42))), 42);
    }

    #[test]
    fn let_val_substitutes() {
        let x = s("x");
        let e = Term::let_(x, Op::Val(Value::Int(7)), Term::Halt(Value::Var(x)));
        assert_eq!(run_main(e), 7);
    }

    #[test]
    fn projections() {
        let x = s("x");
        let e = Term::let_(
            x,
            Op::Proj(2, Value::pair(Value::Int(1), Value::Int(2))),
            Term::Halt(Value::Var(x)),
        );
        assert_eq!(run_main(e), 2);
    }

    #[test]
    fn put_get_roundtrip() {
        let r = s("r");
        let a = s("a");
        let b = s("b");
        let c = s("c");
        let e = Term::LetRegion {
            rvar: r,
            body: crate::intern::intern_term(Term::let_(
                a,
                Op::Put(Region::Var(r), Value::pair(Value::Int(3), Value::Int(4))),
                Term::let_(
                    b,
                    Op::Get(Value::Var(a)),
                    Term::let_(c, Op::Proj(1, Value::Var(b)), Term::Halt(Value::Var(c))),
                ),
            )),
        };
        assert_eq!(run_main(e), 3);
    }

    #[test]
    fn prim_and_if0() {
        let x = s("x");
        let e = Term::let_(
            x,
            Op::Prim(PrimOp::Sub, Value::Int(5), Value::Int(5)),
            Term::If0 {
                scrut: Value::Var(x),
                zero: Term::Halt(Value::Int(1)).id(),
                nonzero: Term::Halt(Value::Int(0)).id(),
            },
        );
        assert_eq!(run_main(e), 1);
    }

    #[test]
    fn code_application() {
        let x = s("x");
        let r = s("r");
        let double = CodeDef {
            name: s("double"),
            tvars: vec![],
            rvars: vec![r],
            params: vec![(x, Ty::Int)],
            body: Term::let_(
                s("y"),
                Op::Prim(PrimOp::Add, Value::Var(x), Value::Var(x)),
                Term::Halt(Value::Var(s("y"))),
            ),
        };
        let main = Term::LetRegion {
            rvar: s("r0"),
            body: crate::intern::intern_term(Term::app(
                Value::Addr(crate::syntax::CD, 0),
                [],
                [Region::Var(s("r0"))],
                [Value::Int(21)],
            )),
        };
        let p = Program {
            dialect: Dialect::Basic,
            code: vec![double],
            main,
        };
        assert_eq!(run_program(p), 42);
    }

    #[test]
    fn typecase_dispatch() {
        let t1 = s("t1");
        let t2 = s("t2");
        let te = s("te");
        let mk = |tag: Tag| Term::Typecase {
            tag,
            int_arm: Term::Halt(Value::Int(0)).id(),
            arrow_arm: Term::Halt(Value::Int(1)).id(),
            prod_arm: (t1, t2, Term::Halt(Value::Int(2)).id()),
            exist_arm: (te, Term::Halt(Value::Int(3)).id()),
        };
        assert_eq!(run_main(mk(Tag::Int)), 0);
        assert_eq!(run_main(mk(Tag::arrow([Tag::Int]))), 1);
        assert_eq!(run_main(mk(Tag::prod(Tag::Int, Tag::Int))), 2);
        assert_eq!(run_main(mk(Tag::exist(s("u"), Tag::Int))), 3);
        // A β-redex tag is normalized before dispatch.
        assert_eq!(run_main(mk(Tag::app(Tag::id_fn(), Tag::Int))), 0);
    }

    #[test]
    fn typecase_refines_components() {
        let t1 = s("t1");
        let t2 = s("t2");
        let te = s("te");
        // Dispatch on Int×(Int→0), then typecase on the second component.
        let inner = Term::Typecase {
            tag: Tag::Var(t2),
            int_arm: Term::Halt(Value::Int(10)).id(),
            arrow_arm: Term::Halt(Value::Int(11)).id(),
            prod_arm: (s("u1"), s("u2"), Term::Halt(Value::Int(12)).id()),
            exist_arm: (s("ue"), Term::Halt(Value::Int(13)).id()),
        };
        let e = Term::Typecase {
            tag: Tag::prod(Tag::Int, Tag::arrow([Tag::Int])),
            int_arm: Term::Halt(Value::Int(0)).id(),
            arrow_arm: Term::Halt(Value::Int(1)).id(),
            prod_arm: (t1, t2, inner.id()),
            exist_arm: (te, Term::Halt(Value::Int(3)).id()),
        };
        assert_eq!(run_main(e), 11);
    }

    #[test]
    fn exist_arm_receives_tag_function() {
        // typecase ∃t.(t × Int) binds te := λt.(t × Int); applying te to Int
        // and typecasing again must dispatch to the product arm.
        let te = s("te");
        let inner = Term::Typecase {
            tag: Tag::app(Tag::Var(te), Tag::Int),
            int_arm: Term::Halt(Value::Int(0)).id(),
            arrow_arm: Term::Halt(Value::Int(1)).id(),
            prod_arm: (s("p1"), s("p2"), Term::Halt(Value::Int(2)).id()),
            exist_arm: (s("pe"), Term::Halt(Value::Int(3)).id()),
        };
        let e = Term::Typecase {
            tag: Tag::exist(s("u"), Tag::prod(Tag::Var(s("u")), Tag::Int)),
            int_arm: Term::Halt(Value::Int(0)).id(),
            arrow_arm: Term::Halt(Value::Int(1)).id(),
            prod_arm: (s("q1"), s("q2"), Term::Halt(Value::Int(2)).id()),
            exist_arm: (te, inner.id()),
        };
        assert_eq!(run_main(e), 2);
    }

    #[test]
    fn open_tag_package() {
        let t = s("t");
        let x = s("x");
        let pkg = Value::PackTag {
            tvar: t,
            kind: Kind::Omega,
            tag: Tag::Int,
            val: Value::Int(9).id(),
            body_ty: Ty::Int,
        };
        let e = Term::OpenTag {
            pkg,
            tvar: t,
            x,
            body: Term::Halt(Value::Var(x)).id(),
        };
        assert_eq!(run_main(e), 9);
    }

    #[test]
    fn only_reclaims_and_counts() {
        let r1 = s("r1");
        let r2 = s("r2");
        let a = s("a");
        let e = Term::LetRegion {
            rvar: r1,
            body: crate::intern::intern_term(Term::let_(
                a,
                Op::Put(Region::Var(r1), Value::Int(5)),
                Term::LetRegion {
                    rvar: r2,
                    body: crate::intern::intern_term(Term::Only {
                        regions: vec![Region::Var(r2)],
                        body: Term::Halt(Value::Int(0)).id(),
                    }),
                },
            )),
        };
        let p = Program {
            dialect: Dialect::Basic,
            code: vec![],
            main: e,
        };
        let mut m = SubstMachine::load(&p, config());
        assert_eq!(m.run(1000).unwrap(), Outcome::Halted(0));
        assert_eq!(m.stats().collections, 1);
        assert_eq!(m.stats().words_reclaimed, 1);
        assert_eq!(m.stats().regions_created, 2);
    }

    #[test]
    fn get_after_only_is_a_dynamic_error() {
        // An ill-typed term: keep an address into a reclaimed region.
        let r1 = s("r1");
        let a = s("a");
        let b = s("b");
        let e = Term::LetRegion {
            rvar: r1,
            body: crate::intern::intern_term(Term::let_(
                a,
                Op::Put(Region::Var(r1), Value::Int(5)),
                Term::Only {
                    regions: vec![],
                    body: crate::intern::intern_term(Term::let_(
                        b,
                        Op::Get(Value::Var(a)),
                        Term::Halt(Value::Var(b)),
                    )),
                },
            )),
        };
        let p = Program {
            dialect: Dialect::Basic,
            code: vec![],
            main: e,
        };
        let mut m = SubstMachine::load(&p, config());
        assert!(m.run(1000).is_err());
    }

    #[test]
    fn ifgc_triggers_on_full_region() {
        let r = s("r");
        let mut body = Term::IfGc {
            rho: Region::Var(r),
            full: Term::Halt(Value::Int(1)).id(),
            cont: Term::Halt(Value::Int(0)).id(),
        };
        // Fill the region past its budget first.
        for i in 0..20 {
            body = Term::let_(
                s(&format!("fill{i}")),
                Op::Put(Region::Var(r), Value::Int(0)),
                body,
            );
        }
        let e = Term::LetRegion {
            rvar: r,
            body: body.id(),
        };
        assert_eq!(run_main(e), 1);
    }

    #[test]
    fn ifleft_branches() {
        let x = s("x");
        let y = s("y");
        let mk = |v: Value| Term::IfLeft {
            x,
            scrut: v,
            left: crate::intern::intern_term(Term::let_(
                y,
                Op::Strip(Value::Var(x)),
                Term::Halt(Value::Var(y)),
            )),
            right: crate::intern::intern_term(Term::let_(
                y,
                Op::Strip(Value::Var(x)),
                Term::Halt(Value::Var(y)),
            )),
        };
        let pl = Program {
            dialect: Dialect::Forwarding,
            code: vec![],
            main: mk(Value::inl(Value::Int(1))),
        };
        let pr = Program {
            dialect: Dialect::Forwarding,
            code: vec![],
            main: mk(Value::inr(Value::Int(2))),
        };
        assert_eq!(run_program(pl), 1);
        assert_eq!(run_program(pr), 2);
    }

    #[test]
    fn set_overwrites_heap() {
        let r = s("r");
        let a = s("a");
        let b = s("b");
        let c = s("c");
        let e = Term::LetRegion {
            rvar: r,
            body: crate::intern::intern_term(Term::let_(
                a,
                Op::Put(Region::Var(r), Value::inl(Value::Int(1))),
                Term::Set {
                    dst: Value::Var(a),
                    src: Value::inr(Value::Int(2)),
                    body: crate::intern::intern_term(Term::let_(
                        b,
                        Op::Get(Value::Var(a)),
                        Term::let_(c, Op::Strip(Value::Var(b)), Term::Halt(Value::Var(c))),
                    )),
                },
            )),
        };
        let p = Program {
            dialect: Dialect::Forwarding,
            code: vec![],
            main: e,
        };
        assert_eq!(run_program(p), 2);
    }

    #[test]
    fn ifreg_compares_names() {
        let r1 = s("r1");
        let r2 = s("r2");
        let e = Term::LetRegion {
            rvar: r1,
            body: crate::intern::intern_term(Term::LetRegion {
                rvar: r2,
                body: crate::intern::intern_term(Term::IfReg {
                    r1: Region::Var(r1),
                    r2: Region::Var(r2),
                    eq: Term::Halt(Value::Int(1)).id(),
                    ne: crate::intern::intern_term(Term::IfReg {
                        r1: Region::Var(r1),
                        r2: Region::Var(r1),
                        eq: Term::Halt(Value::Int(2)).id(),
                        ne: Term::Halt(Value::Int(3)).id(),
                    }),
                }),
            }),
        };
        let p = Program {
            dialect: Dialect::Generational,
            code: vec![],
            main: e,
        };
        assert_eq!(run_program(p), 2);
    }

    #[test]
    fn open_region_package() {
        let r0 = s("r0");
        let r = s("r");
        let x = s("x");
        let y = s("y");
        let a = s("a");
        let e = Term::LetRegion {
            rvar: r0,
            body: crate::intern::intern_term(Term::let_(
                a,
                Op::Put(Region::Var(r0), Value::Int(8)),
                Term::OpenRgn {
                    pkg: Value::PackRgn {
                        rvar: r,
                        bound: std::sync::Arc::from(vec![Region::Var(r0)]),
                        witness: Region::Var(r0),
                        val: Value::Var(a).id(),
                        body_ty: Ty::Int,
                    },
                    rvar: r,
                    x,
                    body: crate::intern::intern_term(Term::let_(
                        y,
                        Op::Get(Value::Var(x)),
                        Term::Halt(Value::Var(y)),
                    )),
                },
            )),
        };
        let p = Program {
            dialect: Dialect::Generational,
            code: vec![],
            main: e,
        };
        assert_eq!(run_program(p), 8);
    }

    #[test]
    fn widen_is_operationally_a_nop() {
        let x = s("x");
        let e = Term::Widen {
            x,
            from: Region::cd(), // irrelevant: not tracking types
            to: Region::cd(),
            tag: Tag::Int,
            v: Value::Int(5),
            body: Term::Halt(Value::Var(x)).id(),
        };
        let p = Program {
            dialect: Dialect::Forwarding,
            code: vec![],
            main: e,
        };
        assert_eq!(run_program(p), 5);
    }

    #[test]
    fn stuck_states_are_reported() {
        assert!(SubstMachine::load(
            &Program {
                dialect: Dialect::Basic,
                code: vec![],
                main: Term::Halt(Value::pair(Value::Int(1), Value::Int(2))),
            },
            config()
        )
        .run(10)
        .is_err());
    }

    #[test]
    fn fuel_exhaustion_is_not_an_error() {
        // An infinite loop via self-application.
        let f = CodeDef {
            name: s("loop"),
            tvars: vec![],
            rvars: vec![],
            params: vec![],
            body: Term::app(Value::Addr(crate::syntax::CD, 0), [], [], []),
        };
        let p = Program {
            dialect: Dialect::Basic,
            code: vec![f],
            main: Term::app(Value::Addr(crate::syntax::CD, 0), [], [], []),
        };
        let mut m = SubstMachine::load(&p, config());
        assert_eq!(m.run(100).unwrap(), Outcome::OutOfFuel);
        assert_eq!(m.stats().steps, 100);
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use crate::syntax::{Term, Value};

    #[test]
    fn stats_display_is_informative() {
        let p = Program {
            dialect: Dialect::Basic,
            code: vec![],
            main: Term::Halt(Value::Int(1)),
        };
        let mut m = SubstMachine::load(&p, MemConfig::default());
        m.run(10).unwrap();
        let text = m.stats().to_string();
        assert!(text.contains("steps"));
        assert!(text.contains("collections"));
    }

    #[test]
    fn halted_machine_stays_halted() {
        let p = Program {
            dialect: Dialect::Basic,
            code: vec![],
            main: Term::Halt(Value::Int(7)),
        };
        let mut m = SubstMachine::load(&p, MemConfig::default());
        assert_eq!(m.run(10).unwrap(), Outcome::Halted(7));
        assert_eq!(m.halted(), Some(7));
        // Further steps are no-ops reporting the same halt value.
        assert_eq!(m.step().unwrap(), StepOutcome::Halted(7));
        assert_eq!(m.run(5).unwrap(), Outcome::Halted(7));
    }
}
