//! Abstract syntax of λGC (Fig. 2 of the paper) and of its two dialect
//! extensions λGCforw (§7) and λGCgen (§8).
//!
//! The three calculi of the paper share a spine; we keep a single AST and a
//! [`Dialect`] marker that the typechecker and the machine use to reject
//! constructs outside the calculus under consideration (e.g. `widen` in the
//! basic dialect).
//!
//! Naming follows the paper:
//!
//! * regions `ρ` ([`Region`]) are either region variables `r` or region names
//!   `ν` ([`RegionName`]); the code region `cd` is the distinguished name
//!   [`CD`];
//! * kinds `κ` ([`Kind`]) are `Ω` and `Ω → Ω` (Fig. 2 allows nothing else);
//! * tags `τ` ([`Tag`]) are the runtime type descriptors — the source-level
//!   types of λCLOS plus tag functions and applications;
//! * types `σ` ([`Ty`]) classify terms and include the hard-wired Typerec
//!   operators `Mρ(τ)` (§4.2), `Cρ,ρ′(τ)` (§7) and `Mρy,ρo(τ)` (§8).
//!
//! ## Extensions relative to the paper, all marked `paper:` where used
//!
//! * Integer primitives (`+`, `-`, `*`) and `if0` exist at the term level so
//!   mutators can compute. They introduce no type constructors, so tags and
//!   the collectors are untouched.
//! * `widen` carries its *from* region explicitly (the paper leaves it to be
//!   inferred from the type of the widened value).

use std::fmt;
use std::sync::Arc;

use ps_ir::Symbol;

use crate::intern::{intern_tag, intern_term, intern_ty, intern_value, TagId, TermId, TyId, ValId};

/// Which calculus a program lives in.
///
/// * `Basic` — λGC of §4–6 (Fig. 2/5/6).
/// * `Forwarding` — λGCforw of §7 (Fig. 8): sums, tag bits, `set`, `widen`.
/// * `Generational` — λGCgen of §8 (Fig. 10): region existentials, `ifreg`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dialect {
    Basic,
    Forwarding,
    Generational,
}

impl fmt::Display for Dialect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dialect::Basic => write!(f, "λGC"),
            Dialect::Forwarding => write!(f, "λGCforw"),
            Dialect::Generational => write!(f, "λGCgen"),
        }
    }
}

/// A runtime region name `ν`.
///
/// Region name 0 is reserved for the code region `cd` (see [`CD`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionName(pub u32);

/// The distinguished code region `cd` (§4.3).
pub const CD: RegionName = RegionName(0);

impl RegionName {
    /// Is this the code region?
    pub fn is_cd(self) -> bool {
        self == CD
    }
}

impl fmt::Display for RegionName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_cd() {
            write!(f, "cd")
        } else {
            write!(f, "ν{}", self.0)
        }
    }
}

/// A region `ρ ::= ν | r` (Fig. 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Region {
    /// A region variable `r`, bound by `let region`, code blocks, region
    /// existentials, or `widen`.
    Var(Symbol),
    /// A concrete region name `ν` (only appears at runtime or in memory
    /// types).
    Name(RegionName),
}

impl Region {
    /// The code region `cd` as a region.
    pub fn cd() -> Region {
        Region::Name(CD)
    }

    /// Is this the code region?
    pub fn is_cd(&self) -> bool {
        matches!(self, Region::Name(n) if n.is_cd())
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Region::Var(s) => write!(f, "{s}"),
            Region::Name(n) => write!(f, "{n}"),
        }
    }
}

/// A kind `κ ::= Ω | Ω → Ω` (Fig. 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kind {
    /// `Ω`, the kind of complete tags.
    Omega,
    /// `Ω → Ω`, the kind of tag functions (needed for analysing
    /// existentials, §4.2).
    Arrow,
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kind::Omega => write!(f, "Ω"),
            Kind::Arrow => write!(f, "Ω→Ω"),
        }
    }
}

/// A tag `τ` — the runtime type descriptor language (Fig. 2).
///
/// Tags mirror the λCLOS type grammar plus tag-level functions and
/// applications. They form a simply typed λ-calculus, so reduction is
/// strongly normalizing and confluent (Prop. 6.1/6.2); see
/// [`crate::tags::normalize`].
///
/// Nodes are *shallow*: children are [`TagId`] handles into the global
/// hash-consing arena ([`crate::intern`]), so the derived `PartialEq`
/// compares whole subtrees by integer id and cloning a node is O(1). A
/// `TagId` dereferences to its `&'static Tag`, so pattern matching through
/// children works as it would with owned boxes.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Tag {
    /// A tag variable `t`.
    Var(Symbol),
    /// `Int`.
    Int,
    /// `τ₁ × τ₂`.
    Prod(TagId, TagId),
    /// `~τ → 0` — the tag of a CPS function. The paper's λCLOS functions are
    /// unary but λGC's internal code is n-ary, hence the vector.
    Arrow(Arc<[TagId]>),
    /// `∃t.τ` with `t : Ω`.
    Exist(Symbol, TagId),
    /// A tag function `λt.τ` (kind `Ω → Ω`).
    Lam(Symbol, TagId),
    /// A tag application `τ₁ τ₂`.
    App(TagId, TagId),
    /// Internal-only: a tag known to be *some* arrow, introduced by the
    /// typechecker when refining the `λ` arm of a `typecase` on a tag
    /// variable.
    ///
    /// paper: Fig. 6's typecase rule leaves Γ unrefined in the `eλ` branch,
    /// which is too weak to typecheck Fig. 4's own `λ ⇒ x` arm (it needs
    /// `Mρ(t)` to be ρ-independent once `t` is known to be an arrow). We
    /// strengthen the rule soundly by substituting `AnyArrow(t)` for `t`: a
    /// neutral tag whose `M`-image is canonically placed at `cd`, exactly
    /// capturing "`t` is an arrow so its data lives in the code region".
    /// `AnyArrow` never appears in programs or at runtime.
    AnyArrow(Symbol),
}

impl Tag {
    /// Interns this node, returning its arena id.
    pub fn id(&self) -> TagId {
        intern_tag(self.clone())
    }

    /// Convenience constructor for `τ₁ × τ₂`.
    pub fn prod(a: Tag, b: Tag) -> Tag {
        Tag::Prod(intern_tag(a), intern_tag(b))
    }

    /// Convenience constructor for `~τ → 0`.
    pub fn arrow(args: impl IntoIterator<Item = Tag>) -> Tag {
        Tag::Arrow(args.into_iter().map(intern_tag).collect())
    }

    /// Convenience constructor for `∃t.τ`.
    pub fn exist(t: Symbol, body: Tag) -> Tag {
        Tag::Exist(t, intern_tag(body))
    }

    /// Convenience constructor for `λt.τ`.
    pub fn lam(t: Symbol, body: Tag) -> Tag {
        Tag::Lam(t, intern_tag(body))
    }

    /// Convenience constructor for `τ₁ τ₂`.
    pub fn app(f: Tag, a: Tag) -> Tag {
        Tag::App(intern_tag(f), intern_tag(a))
    }

    /// The identity tag function `λt.t`, used pervasively in Fig. 12.
    pub fn id_fn() -> Tag {
        let t = Symbol::intern("t_id");
        Tag::lam(t, Tag::Var(t))
    }
}

/// A type `σ` (Fig. 2, extended per Figs. 8 and 10).
///
/// Like [`Tag`], nodes are shallow: children are interned [`TyId`]/[`TagId`]
/// handles, so equality is an id compare and clones are O(1).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Ty {
    /// `int`.
    Int,
    /// `σ₁ × σ₂`.
    Prod(TyId, TyId),
    /// `∀[t̄:κ̄][r̄](σ̄) → 0` — the type of a fully closed code block.
    Code {
        tvars: Arc<[(Symbol, Kind)]>,
        rvars: Arc<[Symbol]>,
        args: Arc<[TyId]>,
    },
    /// `∃t:κ.σ`.
    ExistTag {
        tvar: Symbol,
        kind: Kind,
        body: TyId,
    },
    /// `σ at ρ` — a reference to a `σ` stored in region `ρ` (§4.1).
    At(TyId, Region),
    /// `Mρ(τ)` — in the basic dialect the operator of §4.2; in the
    /// forwarding dialect the mutator-view operator of §7.
    M(Region, TagId),
    /// `Cρ,ρ′(τ)` — the collector-view operator of §7 (forwarding dialect
    /// only).
    C(Region, Region, TagId),
    /// `Mρy,ρo(τ)` — the two-index operator of §8 (generational dialect
    /// only).
    MGen(Region, Region, TagId),
    /// A type variable `α` ranging over types confined to a region set `∆`
    /// (kind environment Φ).
    Alpha(Symbol),
    /// `∃α:∆.σ` — existential over types confined to `∆` (§4, used for
    /// typed closure conversion of `copy`, §6.1).
    ExistAlpha {
        avar: Symbol,
        regions: Arc<[Region]>,
        body: TyId,
    },
    /// `∀J~τKJ~ρK(σ̄) →ρ 0` — the translucent type of a code block already
    /// specialized to tags `~τ` and regions `~ρ`, residing at `ρ` (§6.1,
    /// Fig. 12).
    ///
    /// paper: Fig. 12's translucent type `∀J~τK[~r](σ̄) →ρ 0` quantifies
    /// over regions, but its continuation environments (`αc`) are confined
    /// to the very regions the quantifier rebinds — a name pun that breaks
    /// type preservation once the machine substitutes concrete region names
    /// (the quantified and free occurrences diverge). Every use in Fig. 12
    /// applies the continuation at the current `[r₁,r₂,r₃]`, so we record
    /// that instantiation in the type instead of quantifying; `args` are
    /// stored already instantiated.
    Trans {
        tags: Arc<[TagId]>,
        regions: Arc<[Region]>,
        args: Arc<[TyId]>,
        rho: Region,
    },
    /// `left σ` (λGCforw, Fig. 8).
    Left(TyId),
    /// `right σ` (λGCforw, Fig. 8).
    Right(TyId),
    /// `left σ₁ + right σ₂` (λGCforw, Fig. 8). The components are stored
    /// *without* their `left`/`right` wrappers.
    Sum(TyId, TyId),
    /// `∃r ∈ ∆.(σ at r)` (λGCgen, Fig. 10); `body` is the `σ` under the
    /// binder.
    ExistRgn {
        rvar: Symbol,
        bound: Arc<[Region]>,
        body: TyId,
    },
}

impl Ty {
    /// Interns this node, returning its arena id.
    pub fn id(&self) -> TyId {
        intern_ty(self.clone())
    }

    /// Convenience constructor for `σ₁ × σ₂`.
    pub fn prod(a: Ty, b: Ty) -> Ty {
        Ty::Prod(intern_ty(a), intern_ty(b))
    }

    /// Convenience constructor for `σ at ρ`.
    pub fn at(self, rho: Region) -> Ty {
        Ty::At(intern_ty(self), rho)
    }

    /// Convenience constructor for `Mρ(τ)`.
    pub fn m(rho: Region, tag: Tag) -> Ty {
        Ty::M(rho, intern_tag(tag))
    }

    /// Convenience constructor for `Cρ,ρ′(τ)`.
    pub fn c(from: Region, to: Region, tag: Tag) -> Ty {
        Ty::C(from, to, intern_tag(tag))
    }

    /// Convenience constructor for `Mρy,ρo(τ)`.
    pub fn mgen(young: Region, old: Region, tag: Tag) -> Ty {
        Ty::MGen(young, old, intern_tag(tag))
    }

    /// Convenience constructor for `∀[t̄:κ̄][r̄](σ̄) → 0`.
    pub fn code(
        tvars: impl IntoIterator<Item = (Symbol, Kind)>,
        rvars: impl IntoIterator<Item = Symbol>,
        args: impl IntoIterator<Item = Ty>,
    ) -> Ty {
        Ty::Code {
            tvars: tvars.into_iter().collect(),
            rvars: rvars.into_iter().collect(),
            args: args.into_iter().map(intern_ty).collect(),
        }
    }

    /// Convenience constructor for `∃t:κ.σ`.
    pub fn exist_tag(tvar: Symbol, kind: Kind, body: Ty) -> Ty {
        Ty::ExistTag {
            tvar,
            kind,
            body: intern_ty(body),
        }
    }

    /// Convenience constructor for `∃α:∆.σ`.
    pub fn exist_alpha(avar: Symbol, regions: impl IntoIterator<Item = Region>, body: Ty) -> Ty {
        Ty::ExistAlpha {
            avar,
            regions: regions.into_iter().collect(),
            body: intern_ty(body),
        }
    }

    /// Convenience constructor for `∃r∈∆.(σ at r)`.
    pub fn exist_rgn(rvar: Symbol, bound: impl IntoIterator<Item = Region>, body: Ty) -> Ty {
        Ty::ExistRgn {
            rvar,
            bound: bound.into_iter().collect(),
            body: intern_ty(body),
        }
    }

    /// Convenience constructor for `left σ₁ + right σ₂`.
    pub fn sum(l: Ty, r: Ty) -> Ty {
        Ty::Sum(intern_ty(l), intern_ty(r))
    }
}

/// Integer primitive operators (extension; see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrimOp {
    Add,
    Sub,
    Mul,
}

impl PrimOp {
    /// Applies the primitive (wrapping on overflow, like machine
    /// arithmetic).
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            PrimOp::Add => a.wrapping_add(b),
            PrimOp::Sub => a.wrapping_sub(b),
            PrimOp::Mul => a.wrapping_mul(b),
        }
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimOp::Add => write!(f, "+"),
            PrimOp::Sub => write!(f, "-"),
            PrimOp::Mul => write!(f, "*"),
        }
    }
}

/// A code block `λ[t̄:κ̄][r̄](x̄:σ̄).e` (a value of type
/// `∀[t̄:κ̄][r̄](σ̄) → 0`).
///
/// `name` is a debugging label only; it has no semantic significance.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CodeDef {
    pub name: Symbol,
    pub tvars: Vec<(Symbol, Kind)>,
    pub rvars: Vec<Symbol>,
    pub params: Vec<(Symbol, Ty)>,
    pub body: Term,
}

impl CodeDef {
    /// The type `∀[t̄:κ̄][r̄](σ̄) → 0` of this code block.
    pub fn ty(&self) -> Ty {
        Ty::Code {
            tvars: self.tvars.iter().cloned().collect(),
            rvars: self.rvars.iter().cloned().collect(),
            args: self.params.iter().map(|(_, t)| t.id()).collect(),
        }
    }
}

/// A value `v` (Fig. 2, extended per Figs. 8 and 10).
///
/// Like [`Tag`] and [`Ty`], nodes are *shallow*: value children are interned
/// [`ValId`] handles into the global arena, so structurally equal subtrees
/// are stored once, equality is an id compare, and clones are O(1).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Value {
    /// An integer literal `n`.
    Int(i64),
    /// A value variable `x`.
    Var(Symbol),
    /// A memory address `ν.ℓ`.
    Addr(RegionName, u32),
    /// A pair `(v₁, v₂)`.
    Pair(ValId, ValId),
    /// A tag existential package `⟨t = τ, v : σ⟩ : ∃t:κ.σ`.
    PackTag {
        tvar: Symbol,
        kind: Kind,
        tag: Tag,
        val: ValId,
        body_ty: Ty,
    },
    /// A type existential package `⟨α : ∆ = σ₁, v : σ₂⟩ : ∃α:∆.σ₂`.
    PackAlpha {
        avar: Symbol,
        regions: Arc<[Region]>,
        witness: Ty,
        val: ValId,
        body_ty: Ty,
    },
    /// A region existential package `⟨r ∈ ∆ = ρ, v : σ⟩ : ∃r∈∆.(σ at r)`
    /// (λGCgen).
    PackRgn {
        rvar: Symbol,
        bound: Arc<[Region]>,
        witness: Region,
        val: ValId,
        body_ty: Ty,
    },
    /// A translucent partial application `vJ~τ; ~ρK` (§6.1): a code pointer
    /// specialized to tags and regions, awaiting only its value arguments
    /// (see the `paper:` note on [`Ty::Trans`]).
    TagApp(ValId, Arc<[Tag]>, Arc<[Region]>),
    /// A code block literal (only placed in `cd` at load time; never
    /// constructed by running programs, §4.3).
    Code(Arc<CodeDef>),
    /// `inl v` (λGCforw).
    Inl(ValId),
    /// `inr v` (λGCforw).
    Inr(ValId),
}

impl Value {
    /// Interns this node, returning its arena id.
    pub fn id(&self) -> ValId {
        intern_value(self.clone())
    }

    /// Convenience constructor for `(v₁, v₂)`.
    pub fn pair(a: Value, b: Value) -> Value {
        Value::Pair(intern_value(a), intern_value(b))
    }

    /// Convenience constructor for `inl v`.
    pub fn inl(v: Value) -> Value {
        Value::Inl(intern_value(v))
    }

    /// Convenience constructor for `inr v`.
    pub fn inr(v: Value) -> Value {
        Value::Inr(intern_value(v))
    }

    /// Convenience constructor for `vJ~τ; ~ρK`.
    pub fn tag_app(
        v: Value,
        tags: impl IntoIterator<Item = Tag>,
        regions: impl IntoIterator<Item = Region>,
    ) -> Value {
        Value::TagApp(
            intern_value(v),
            tags.into_iter().collect(),
            regions.into_iter().collect(),
        )
    }

    /// Is this a closed runtime value (no free value variables)? Used by the
    /// machine's sanity checks.
    pub fn is_runtime(&self) -> bool {
        match self {
            Value::Int(_) | Value::Addr(..) => true,
            Value::Var(_) => false,
            Value::Pair(a, b) => a.is_runtime() && b.is_runtime(),
            Value::PackTag { val, .. }
            | Value::PackAlpha { val, .. }
            | Value::PackRgn { val, .. }
            | Value::Inl(val)
            | Value::Inr(val) => val.is_runtime(),
            Value::TagApp(v, _, _) => v.is_runtime(),
            Value::Code(_) => true,
        }
    }
}

/// An operation `op ::= v | πᵢ v | put[ρ]v | get v | …` (Fig. 2, plus
/// `strip` from Fig. 8 and integer primitives).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Op {
    /// `v`.
    Val(Value),
    /// `πᵢ v` (`i ∈ {1, 2}`).
    Proj(u8, Value),
    /// `put[ρ]v`.
    Put(Region, Value),
    /// `get v`.
    Get(Value),
    /// `strip v` (λGCforw).
    Strip(Value),
    /// `v₁ ⊕ v₂` (extension).
    Prim(PrimOp, Value, Value),
}

/// A term `e` (Fig. 2, extended per Figs. 8 and 10 and the primitives
/// extension).
///
/// Term children are interned [`TermId`] handles: continuation "clones" in
/// the Fig. 5 machine are plain `u32` copies, and [`crate::subst::Subst`]
/// can skip untouched subtrees by fingerprint, returning the same id back.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// `v[~τ][~ρ](~v)` — application of code or of a translucent value.
    App {
        f: Value,
        tags: Vec<Tag>,
        regions: Vec<Region>,
        args: Vec<Value>,
    },
    /// `let x = op in e`.
    Let { x: Symbol, op: Op, body: TermId },
    /// `halt v` with `v : int`.
    Halt(Value),
    /// `ifgc ρ e₁ e₂` — take `e₁` when region `ρ` is full.
    IfGc {
        rho: Region,
        full: TermId,
        cont: TermId,
    },
    /// `open v as ⟨t, x⟩ in e` for tag existentials.
    OpenTag {
        pkg: Value,
        tvar: Symbol,
        x: Symbol,
        body: TermId,
    },
    /// `open v as ⟨α, x⟩ in e` for type existentials.
    OpenAlpha {
        pkg: Value,
        avar: Symbol,
        x: Symbol,
        body: TermId,
    },
    /// `open v as ⟨r, x⟩ in e` for region existentials (λGCgen).
    OpenRgn {
        pkg: Value,
        rvar: Symbol,
        x: Symbol,
        body: TermId,
    },
    /// `let region r in e`.
    LetRegion { rvar: Symbol, body: TermId },
    /// `only ∆ in e` — reclaim every region not in `∆` (plus `cd`, which is
    /// always kept).
    Only { regions: Vec<Region>, body: TermId },
    /// `typecase τ of (eᵢ; eλ; t₁t₂.e×; tₑ.e∃)`.
    Typecase {
        tag: Tag,
        int_arm: TermId,
        arrow_arm: TermId,
        prod_arm: (Symbol, Symbol, TermId),
        exist_arm: (Symbol, TermId),
    },
    /// `ifleft x = v eₗ eᵣ` (λGCforw).
    IfLeft {
        x: Symbol,
        scrut: Value,
        left: TermId,
        right: TermId,
    },
    /// `set v₁ := v₂ ; e` (λGCforw).
    Set {
        dst: Value,
        src: Value,
        body: TermId,
    },
    /// `let x = widen[ρ′][τ](v) in e` (λGCforw, Fig. 8).
    ///
    /// paper: we additionally record the *from* region `ρ` explicitly; the
    /// paper infers it from `v : Mρ(τ)`.
    Widen {
        x: Symbol,
        from: Region,
        to: Region,
        tag: Tag,
        v: Value,
        body: TermId,
    },
    /// `ifreg (ρ₁ = ρ₂) e₁ e₂` (λGCgen).
    IfReg {
        r1: Region,
        r2: Region,
        eq: TermId,
        ne: TermId,
    },
    /// `if0 v e₁ e₂` (extension).
    If0 {
        scrut: Value,
        zero: TermId,
        nonzero: TermId,
    },
}

impl Term {
    /// Interns this node, returning its arena id.
    pub fn id(&self) -> TermId {
        intern_term(self.clone())
    }

    /// Convenience constructor for `let x = op in e`.
    pub fn let_(x: Symbol, op: Op, body: Term) -> Term {
        Term::Let {
            x,
            op,
            body: intern_term(body),
        }
    }

    /// Convenience constructor for `v[~τ][~ρ](~v)`.
    pub fn app(
        f: Value,
        tags: impl IntoIterator<Item = Tag>,
        regions: impl IntoIterator<Item = Region>,
        args: impl IntoIterator<Item = Value>,
    ) -> Term {
        Term::App {
            f,
            tags: tags.into_iter().collect(),
            regions: regions.into_iter().collect(),
            args: args.into_iter().collect(),
        }
    }

    /// Approximate size of the term (number of AST nodes), used by
    /// diagnostics and benchmarks.
    pub fn size(&self) -> usize {
        match self {
            Term::App { .. } | Term::Halt(_) => 1,
            Term::Let { body, .. }
            | Term::OpenTag { body, .. }
            | Term::OpenAlpha { body, .. }
            | Term::OpenRgn { body, .. }
            | Term::LetRegion { body, .. }
            | Term::Only { body, .. }
            | Term::Set { body, .. }
            | Term::Widen { body, .. } => 1 + body.size(),
            Term::IfGc { full, cont, .. } => 1 + full.size() + cont.size(),
            Term::Typecase {
                int_arm,
                arrow_arm,
                prod_arm,
                exist_arm,
                ..
            } => 1 + int_arm.size() + arrow_arm.size() + prod_arm.2.size() + exist_arm.1.size(),
            Term::IfLeft { left, right, .. } => 1 + left.size() + right.size(),
            Term::IfReg { eq, ne, .. } => 1 + eq.size() + ne.size(),
            Term::If0 { zero, nonzero, .. } => 1 + zero.size() + nonzero.size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    #[test]
    fn cd_is_region_zero() {
        assert!(CD.is_cd());
        assert!(Region::cd().is_cd());
        assert!(!RegionName(1).is_cd());
        assert!(!Region::Var(s("r")).is_cd());
    }

    #[test]
    fn display_regions() {
        assert_eq!(Region::cd().to_string(), "cd");
        assert_eq!(Region::Name(RegionName(3)).to_string(), "ν3");
        assert_eq!(Region::Var(s("r1")).to_string(), "r1");
    }

    #[test]
    fn tag_constructors() {
        let t = Tag::prod(Tag::Int, Tag::arrow([Tag::Int]));
        match &t {
            Tag::Prod(a, b) => {
                assert_eq!(**a, Tag::Int);
                assert!(matches!(**b, Tag::Arrow(_)));
            }
            _ => panic!("expected product"),
        }
    }

    #[test]
    fn id_fn_is_a_lambda() {
        assert!(matches!(Tag::id_fn(), Tag::Lam(..)));
    }

    #[test]
    fn code_def_type() {
        let def = CodeDef {
            name: s("f"),
            tvars: vec![(s("t"), Kind::Omega)],
            rvars: vec![s("r")],
            params: vec![(s("x"), Ty::Int)],
            body: Term::Halt(Value::Int(0)),
        };
        match def.ty() {
            Ty::Code { tvars, rvars, args } => {
                assert_eq!(tvars.len(), 1);
                assert_eq!(rvars.len(), 1);
                assert_eq!(args.len(), 1);
                assert_eq!(args[0], Ty::Int.id());
            }
            _ => panic!("expected code type"),
        }
    }

    #[test]
    fn runtime_values() {
        assert!(Value::Int(5).is_runtime());
        assert!(!Value::Var(s("x")).is_runtime());
        assert!(Value::pair(Value::Int(1), Value::Addr(RegionName(1), 0)).is_runtime());
        assert!(!Value::pair(Value::Int(1), Value::Var(s("y"))).is_runtime());
        assert!(Value::inl(Value::Int(3)).is_runtime());
    }

    #[test]
    fn term_size_counts_nodes() {
        let t = Term::let_(
            s("x"),
            Op::Val(Value::Int(1)),
            Term::let_(
                s("y"),
                Op::Val(Value::Int(2)),
                Term::Halt(Value::Var(s("y"))),
            ),
        );
        assert_eq!(t.size(), 3);
    }

    #[test]
    fn prim_ops_wrap() {
        assert_eq!(PrimOp::Add.apply(2, 3), 5);
        assert_eq!(PrimOp::Sub.apply(2, 3), -1);
        assert_eq!(PrimOp::Mul.apply(4, 5), 20);
        assert_eq!(PrimOp::Add.apply(i64::MAX, 1), i64::MIN);
    }

    #[test]
    fn dialect_display() {
        assert_eq!(Dialect::Basic.to_string(), "λGC");
        assert_eq!(Dialect::Forwarding.to_string(), "λGCforw");
        assert_eq!(Dialect::Generational.to_string(), "λGCgen");
    }
}
