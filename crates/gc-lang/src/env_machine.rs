//! An environment-based (CEK-style) fast path for the λGC machine.
//!
//! [`crate::machine::SubstMachine`] implements Fig. 5 literally: every step
//! performs a textual substitution, deep-cloning the entire continuation
//! term, so one step costs O(|term|). [`EnvMachine`] runs the *same*
//! operational semantics without ever rewriting the continuation:
//!
//! * the control is an interned [`TermId`] handle — stepping into a
//!   `let` body or a branch arm is a u32 copy, never a deep clone;
//! * binders extend a mutable environment ([`Subst`]) instead of
//!   substituting, and `Value::Var` / `Region::Var` / `Tag::Var` are
//!   resolved lazily at their use sites.
//!
//! # Why a flat environment is sound
//!
//! λGC is a CPS calculus: control never *returns* — each step replaces the
//! whole control with exactly one continuation, so evaluation descends
//! through each binder at most once per code-block activation, and the
//! only re-entry point is `App`, whose target is a closed code block
//! (λGC's typing rules close code over its `tvars`/`rvars`/`params`).
//! A single mutable map with overwrite-on-shadow therefore implements
//! lexical scope exactly, and it can be wholesale cleared at every `App`.
//!
//! # Why the two backends agree exactly
//!
//! Resolution against the environment *is* substitution application — the
//! environment is literally a [`Subst`], so both backends share one
//! resolution code path. At runtime every substitution range is closed
//! (values/tags/regions that reach the environment are fully resolved
//! first), so [`Subst`]'s capture-avoidance never renames a binder and
//! simultaneous application coincides with the substitution machine's
//! sequential application. Consequently both backends produce identical
//! heap contents, identical results, and identical [`Stats`] — checked
//! program-by-program by the differential test suite and step-for-step by
//! the lockstep property test.
//!
//! The substitution machine remains the oracle for `track_types`/wf
//! checking: the well-formedness judgement `⊢ (M, e)` of [`crate::wf`]
//! consumes a *closed* term, which only the substitution machine
//! maintains.

use std::sync::Arc;

use crate::error::{stuck_err, ErrorKind, LangError, Result};
use crate::faults::FaultPlan;
use crate::intern::{intern_term, TermId};
use crate::machine::{widen_psi, AuditMode, Outcome, Program, Stats, StepOutcome};
use crate::memory::{MemConfig, Memory};
use crate::subst::Subst;
use crate::syntax::{CodeDef, Dialect, Op, Region, RegionName, Tag, Term, Value};
use crate::tags;
use crate::telemetry::{SharedObserver, Telemetry};

/// The control of the machine: a shared handle to the term being reduced.
///
/// Code bodies are owned by their [`CodeDef`], so jumping to a block keeps
/// the whole definition alive rather than cloning the body out of it.
#[derive(Clone, Debug)]
enum Ctrl {
    Term(TermId),
    Body(Arc<CodeDef>),
}

impl Ctrl {
    fn term(&self) -> &Term {
        match self {
            Ctrl::Term(t) => t.node(),
            Ctrl::Body(def) => &def.body,
        }
    }
}

/// The environment-machine state: `(M, e, E)` where `E` maps the free
/// variables of `e` to closed values/tags/regions/types.
#[derive(Clone, Debug)]
pub struct EnvMachine {
    mem: Memory,
    control: Ctrl,
    env: Subst,
    dialect: Dialect,
    stats: Stats,
    telem: Telemetry,
    halted: Option<i64>,
    verify_every: u64,
    audit_mode: AuditMode,
    fault: Option<FaultPlan>,
}

impl EnvMachine {
    /// Loads a program: installs its code blocks in `cd` and sets the main
    /// term as the current control.
    pub fn load(program: &Program, config: MemConfig) -> EnvMachine {
        let mut mem = Memory::new(config);
        for def in &program.code {
            let ty = def.ty();
            mem.install_code(Value::Code(Arc::new(def.clone())), ty);
        }
        EnvMachine {
            mem,
            control: Ctrl::Term(program.main.id()),
            env: Subst::new(),
            dialect: program.dialect,
            stats: Stats::default(),
            telem: Telemetry::default(),
            halted: None,
            verify_every: 0,
            audit_mode: AuditMode::default(),
            fault: None,
        }
    }

    /// Attaches a telemetry observer; `step_interval > 0` also emits
    /// periodic heap samples. Without an observer every telemetry hook is
    /// a single `Option` check — the hooks sit at the same rule sites as
    /// the substitution machine's, so both backends emit identical event
    /// sequences on identical programs.
    pub fn set_observer(&mut self, observer: SharedObserver, step_interval: u64) {
        self.telem.attach(observer, step_interval);
    }

    /// The current memory.
    pub fn memory(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to the memory — **fault-injection machinery**. The
    /// interpreter itself never needs this; it exists so [`crate::faults`]
    /// and adversarial tests can corrupt a live state.
    pub fn memory_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Audits the current state every `n` steps during [`EnvMachine::run`]
    /// (`0` disables auditing, the default).
    pub fn set_verify_every(&mut self, n: u64) {
        self.verify_every = n;
    }

    /// Chooses how periodic audits walk the heap (default: incremental).
    pub fn set_audit_mode(&mut self, mode: AuditMode) {
        self.audit_mode = mode;
    }

    /// Arms a deterministic fault to be injected during [`EnvMachine::run`]
    /// once the plan's step is reached (**fault-injection machinery**).
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// Runs the [`crate::verify`] heap auditor against the current state.
    /// The reachability root is [`EnvMachine::resolved_control`] — the same
    /// closed term the substitution machine holds at this step — so the
    /// audit's verdict is backend-independent.
    ///
    /// # Errors
    ///
    /// Returns the first violated Fig. 7 invariant.
    pub fn audit(&self) -> Result<()> {
        let root = self.resolved_control();
        crate::verify::audit_state(&self.mem, self.dialect, &root)
    }

    /// The term currently in control position (with its free variables
    /// still unresolved — resolve against the environment to compare with
    /// the substitution machine's closed term).
    pub fn control(&self) -> &Term {
        self.control.term()
    }

    /// The control term with the environment applied — the closed term the
    /// substitution machine holds at the same step. Used by the lockstep
    /// differential tests; costs a full term copy, so not on the fast path.
    pub fn resolved_control(&self) -> Term {
        self.env.term(self.control.term())
    }

    /// The dialect this machine runs.
    pub fn dialect(&self) -> Dialect {
        self.dialect
    }

    /// Statistics so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The halt value, if the machine has halted.
    pub fn halted(&self) -> Option<i64> {
        self.halted
    }

    /// Runs until `halt`, an error, or `fuel` steps. If armed (see
    /// [`EnvMachine::set_fault_plan`]) a fault is injected at its step, and
    /// if `verify_every > 0` the state is audited every that many steps; an
    /// audit failure ends the run with [`Outcome::InvariantViolation`].
    ///
    /// # Errors
    ///
    /// Returns a stuck-state error if no reduction rule applies — a
    /// progress violation for well-typed programs (Prop. 6.5) — or an
    /// [`ErrorKind::OutOfMemory`] error if an allocation would exceed
    /// [`MemConfig::max_heap_words`].
    pub fn run(&mut self, fuel: u64) -> Result<Outcome> {
        for _ in 0..fuel {
            match self.step() {
                Ok(StepOutcome::Continue) => {}
                Ok(StepOutcome::Halted(n)) => return Ok(Outcome::Halted(n)),
                Err(e) => {
                    if e.kind() == ErrorKind::OutOfMemory {
                        let limit = self.mem.config().max_heap_words.unwrap_or(0);
                        self.telem
                            .on_oom(self.stats.steps, self.mem.data_words(), limit);
                    }
                    return Err(e);
                }
            }
            self.try_inject();
            if self.verify_every > 0 && self.stats.steps.is_multiple_of(self.verify_every) {
                let full = self.audit_mode == AuditMode::Full || self.mem.wants_full_audit();
                let res = if full {
                    let r = self.audit();
                    if r.is_ok() {
                        self.mem.note_full_audit();
                    }
                    r
                } else {
                    crate::verify::audit_dirty(&mut self.mem, self.dialect)
                };
                if let Err(e) = res {
                    self.telem
                        .on_invariant_violation(self.stats.steps, &e.to_string());
                    return Ok(Outcome::InvariantViolation(e));
                }
            }
        }
        self.telem.on_fuel_exhausted(self.stats.steps);
        Ok(Outcome::OutOfFuel)
    }

    /// Applies the armed fault plan if its step has been reached. Keeps the
    /// plan armed until an application actually lands (a plan may find no
    /// target at its nominal step, e.g. before the first allocation). The
    /// injection root is the resolved control, matching the substitution
    /// machine's term so both backends pick identical sites.
    fn try_inject(&mut self) {
        let Some(plan) = self.fault else { return };
        if self.stats.steps < plan.step {
            return;
        }
        let root = self.resolved_control();
        if crate::faults::apply(&plan, &mut self.mem, &root).is_some() {
            self.fault = None;
        }
    }

    /// Takes one machine step.
    ///
    /// # Errors
    ///
    /// Returns a stuck-state or memory error if no rule applies.
    pub fn step(&mut self) -> Result<StepOutcome> {
        if let Some(n) = self.halted {
            return Ok(StepOutcome::Halted(n));
        }
        self.stats.steps += 1;
        self.telem.on_step(self.stats.steps, &self.mem);
        // Cheap handle clone so `self` stays free for mutation while the
        // current term is being matched.
        let ctrl = self.control.clone();
        match self.step_term(ctrl.term())? {
            Some(next) => {
                self.control = next;
                self.stats.peak_data_words = self.stats.peak_data_words.max(self.mem.data_words());
                Ok(StepOutcome::Continue)
            }
            None => match self.halted {
                Some(n) => Ok(StepOutcome::Halted(n)),
                None => Err(self.stuck("step ended without a term or a halt value".into())),
            },
        }
    }

    fn stuck(&self, msg: String) -> LangError {
        stuck_err(msg).in_context(format!("dialect {}", self.dialect))
    }

    /// Resolves a region against the environment down to a concrete name.
    fn resolve_name(&self, rho: &Region) -> Result<RegionName> {
        match self.env.region(rho) {
            Region::Name(nu) => Ok(nu),
            Region::Var(r) => Err(self.stuck(format!("unsubstituted region variable {r}"))),
        }
    }

    fn step_term(&mut self, term: &Term) -> Result<Option<Ctrl>> {
        match term {
            Term::App {
                f,
                tags: ts,
                regions,
                args,
            } => self.step_app(f, ts, regions, args).map(Some),
            Term::Let { x, op, body } => {
                let v = self.eval_op(op)?;
                self.env.bind_val(*x, v);
                Ok(Some(Ctrl::Term(*body)))
            }
            Term::Halt(v) => match self.env.value(v) {
                Value::Int(n) => {
                    self.halted = Some(n);
                    self.telem.on_halt(n, self.stats.steps);
                    Ok(None)
                }
                other => Err(self.stuck(format!("halt on non-integer value {other:?}"))),
            },
            Term::IfGc { rho, full, cont } => {
                let nu = self.resolve_name(rho)?;
                if self.mem.is_full(nu)? {
                    self.stats.gc_triggers += 1;
                    self.telem.on_gc_trigger(nu, &self.mem, self.stats.steps);
                    Ok(Some(Ctrl::Term(*full)))
                } else {
                    Ok(Some(Ctrl::Term(*cont)))
                }
            }
            Term::OpenTag { pkg, tvar, x, body } => match self.env.value(pkg) {
                Value::PackTag { tag, val, .. } => {
                    // Fig. 5 normalizes the witness tag before binding.
                    let nf = tags::normalize(&tag);
                    self.env.bind_tag(*tvar, nf);
                    self.env.bind_val(*x, (*val).clone());
                    Ok(Some(Ctrl::Term(*body)))
                }
                other => Err(self.stuck(format!("open(tag) on non-package {other:?}"))),
            },
            Term::OpenAlpha { pkg, avar, x, body } => match self.env.value(pkg) {
                Value::PackAlpha { witness, val, .. } => {
                    self.env.bind_alpha(*avar, witness);
                    self.env.bind_val(*x, (*val).clone());
                    Ok(Some(Ctrl::Term(*body)))
                }
                other => Err(self.stuck(format!("open(α) on non-package {other:?}"))),
            },
            Term::OpenRgn { pkg, rvar, x, body } => match self.env.value(pkg) {
                Value::PackRgn { witness, val, .. } => {
                    let nu = match witness {
                        Region::Name(nu) => nu,
                        Region::Var(r) => {
                            return Err(self.stuck(format!("unsubstituted region variable {r}")))
                        }
                    };
                    self.env.bind_rgn(*rvar, Region::Name(nu));
                    self.env.bind_val(*x, (*val).clone());
                    Ok(Some(Ctrl::Term(*body)))
                }
                other => Err(self.stuck(format!("open(region) on non-package {other:?}"))),
            },
            Term::LetRegion { rvar, body } => {
                let nu = self.mem.alloc_region();
                self.stats.regions_created += 1;
                self.telem.on_region_alloc(nu, &self.mem, self.stats.steps);
                self.env.bind_rgn(*rvar, Region::Name(nu));
                Ok(Some(Ctrl::Term(*body)))
            }
            Term::Only { regions, body } => {
                let mut keep = Vec::with_capacity(regions.len());
                for r in regions {
                    keep.push(self.resolve_name(r)?);
                }
                let report = self.mem.only(&keep);
                self.telem.on_only(&report, &self.mem, self.stats.steps);
                self.stats.record_reclaim(report);
                Ok(Some(Ctrl::Term(*body)))
            }
            Term::Typecase {
                tag,
                int_arm,
                arrow_arm,
                prod_arm,
                exist_arm,
            } => {
                self.stats.typecase_dispatches += 1;
                let nf = tags::normalize(&self.env.tag(tag));
                match nf {
                    Tag::Int => Ok(Some(Ctrl::Term(*int_arm))),
                    Tag::Arrow(_) => Ok(Some(Ctrl::Term(*arrow_arm))),
                    Tag::Prod(a, b) => {
                        let (t1, t2, body) = prod_arm;
                        self.env.bind_tag(*t1, (*a).clone());
                        self.env.bind_tag(*t2, (*b).clone());
                        Ok(Some(Ctrl::Term(*body)))
                    }
                    Tag::Exist(t, body_tag) => {
                        let (te, body) = exist_arm;
                        self.env.bind_tag(*te, Tag::Lam(t, body_tag));
                        Ok(Some(Ctrl::Term(*body)))
                    }
                    other => Err(self.stuck(format!("typecase on non-constructor tag {other:?}"))),
                }
            }
            Term::IfLeft {
                x,
                scrut,
                left,
                right,
            } => match self.env.value(scrut) {
                v @ Value::Inl(_) => {
                    self.env.bind_val(*x, v);
                    Ok(Some(Ctrl::Term(*left)))
                }
                v @ Value::Inr(_) => {
                    self.env.bind_val(*x, v);
                    Ok(Some(Ctrl::Term(*right)))
                }
                other => Err(self.stuck(format!("ifleft on non-sum value {other:?}"))),
            },
            Term::Set { dst, src, body } => match self.env.value(dst) {
                Value::Addr(nu, loc) => {
                    let v = self.env.value(src);
                    self.mem.set(nu, loc, v)?;
                    self.stats.forwarding_installs += 1;
                    Ok(Some(Ctrl::Term(*body)))
                }
                other => Err(self.stuck(format!("set on non-address {other:?}"))),
            },
            Term::Widen {
                x,
                from,
                to,
                tag,
                v,
                body,
            } => {
                // Operationally a no-op (see the substitution machine); only
                // the observer memory typing Ψ is rewritten when tracked.
                let rv = self.env.value(v);
                if self.mem.config().track_types {
                    let from = self.resolve_name(from)?;
                    let to = self.resolve_name(to)?;
                    let nf = tags::normalize(&self.env.tag(tag));
                    widen_psi(&mut self.mem, &rv, &nf, from, to)?;
                }
                self.env.bind_val(*x, rv);
                Ok(Some(Ctrl::Term(*body)))
            }
            Term::IfReg { r1, r2, eq, ne } => {
                let n1 = self.resolve_name(r1)?;
                let n2 = self.resolve_name(r2)?;
                if n1 == n2 {
                    Ok(Some(Ctrl::Term(*eq)))
                } else {
                    Ok(Some(Ctrl::Term(*ne)))
                }
            }
            Term::If0 {
                scrut,
                zero,
                nonzero,
            } => match self.env.value(scrut) {
                Value::Int(0) => Ok(Some(Ctrl::Term(*zero))),
                Value::Int(_) => Ok(Some(Ctrl::Term(*nonzero))),
                other => Err(self.stuck(format!("if0 on non-integer {other:?}"))),
            },
        }
    }

    fn step_app(
        &mut self,
        f: &Value,
        ts: &[Tag],
        regions: &[Region],
        args: &[Value],
    ) -> Result<Ctrl> {
        match self.env.value(f) {
            Value::Addr(nu, loc) => {
                let code = match self.mem.get(nu, loc)? {
                    Value::Code(def) => Arc::clone(def),
                    other => {
                        return Err(self.stuck(format!("application of non-code value {other:?}")))
                    }
                };
                if code.tvars.len() != ts.len()
                    || code.rvars.len() != regions.len()
                    || code.params.len() != args.len()
                {
                    return Err(self.stuck(format!(
                        "arity mismatch calling {}: expected [{}][{}]({}), got [{}][{}]({})",
                        code.name,
                        code.tvars.len(),
                        code.rvars.len(),
                        code.params.len(),
                        ts.len(),
                        regions.len(),
                        args.len()
                    )));
                }
                // Resolve every argument against the caller's environment
                // *before* clearing it — the callee's frame starts from the
                // empty environment because code blocks are closed.
                // Fig. 5's first rule normalizes tag arguments at the β step.
                let rtags: Vec<Tag> = ts
                    .iter()
                    .map(|tau| tags::normalize(&self.env.tag(tau)))
                    .collect();
                let rrgns: Vec<Region> = regions.iter().map(|r| self.env.region(r)).collect();
                let rargs: Vec<Value> = args.iter().map(|v| self.env.value(v)).collect();
                self.env.clear();
                for ((t, _), tau) in code.tvars.iter().zip(rtags) {
                    self.env.bind_tag(*t, tau);
                }
                for (r, rho) in code.rvars.iter().zip(rrgns) {
                    self.env.bind_rgn(*r, rho);
                }
                for ((x, _), v) in code.params.iter().zip(rargs) {
                    self.env.bind_val(*x, v);
                }
                Ok(Ctrl::Body(code))
            }
            Value::TagApp(inner, rec_tags, rec_rgns) => {
                // (vJ~τ;~ρK)[~τ][~ρ](~v) ⇒ v[~τ][~ρ](~v), one step, exactly
                // like the substitution machine (which also spends a step
                // materializing the unfolded application). The recorded
                // tags/regions are already resolved — they were part of a
                // resolved value — and the args are resolved here, so the
                // materialized term is closed and re-resolution on the next
                // step is the identity.
                let _ = regions;
                Ok(Ctrl::Term(intern_term(Term::App {
                    f: (*inner).clone(),
                    tags: rec_tags.iter().cloned().collect(),
                    regions: rec_rgns.to_vec(),
                    args: args.iter().map(|v| self.env.value(v)).collect(),
                })))
            }
            other => Err(self.stuck(format!("application of non-code value {other:?}"))),
        }
    }

    fn eval_op(&mut self, op: &Op) -> Result<Value> {
        match op {
            Op::Val(v) => Ok(self.env.value(v)),
            Op::Proj(i, v) => match self.env.value(v) {
                Value::Pair(a, b) => Ok(if *i == 1 { (*a).clone() } else { (*b).clone() }),
                other => Err(self.stuck(format!("projection π{i} of non-pair {other:?}"))),
            },
            Op::Put(rho, v) => {
                let nu = self.resolve_name(rho)?;
                let rv = self.env.value(v);
                let rec = self.mem.put_counted(nu, rv)?;
                self.stats.allocations += 1;
                self.stats.words_allocated += rec.words as u64;
                if let Some(alloc) = rec.page {
                    self.telem.on_page_alloc(nu, alloc, self.stats.steps);
                }
                self.telem.on_put(nu, rec.words, self.stats.steps);
                Ok(Value::Addr(nu, rec.loc))
            }
            Op::Get(v) => match self.env.value(v) {
                Value::Addr(nu, loc) => Ok(self.mem.get(nu, loc)?.clone()),
                other => Err(self.stuck(format!("get of non-address {other:?}"))),
            },
            Op::Strip(v) => match self.env.value(v) {
                Value::Inl(x) | Value::Inr(x) => Ok((*x).clone()),
                other => Err(self.stuck(format!("strip of untagged value {other:?}"))),
            },
            Op::Prim(p, a, b) => match (self.env.value(a), self.env.value(b)) {
                (Value::Int(x), Value::Int(y)) => Ok(Value::Int(p.apply(x, y))),
                (a, b) => Err(self.stuck(format!("primitive {p} on non-integers {a:?}, {b:?}"))),
            },
        }
    }
}

impl crate::machine::Machine for EnvMachine {
    fn set_observer(&mut self, observer: SharedObserver, step_interval: u64) {
        EnvMachine::set_observer(self, observer, step_interval);
    }
    fn set_verify_every(&mut self, n: u64) {
        EnvMachine::set_verify_every(self, n);
    }
    fn set_audit_mode(&mut self, mode: AuditMode) {
        EnvMachine::set_audit_mode(self, mode);
    }
    fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        EnvMachine::set_fault_plan(self, plan);
    }
    fn memory(&self) -> &Memory {
        EnvMachine::memory(self)
    }
    fn memory_mut(&mut self) -> &mut Memory {
        EnvMachine::memory_mut(self)
    }
    fn dialect(&self) -> Dialect {
        EnvMachine::dialect(self)
    }
    fn stats(&self) -> &Stats {
        EnvMachine::stats(self)
    }
    fn halted(&self) -> Option<i64> {
        EnvMachine::halted(self)
    }
    fn resolved_control(&self) -> Term {
        EnvMachine::resolved_control(self)
    }
    fn audit(&self) -> Result<()> {
        EnvMachine::audit(self)
    }
    fn step(&mut self) -> Result<StepOutcome> {
        EnvMachine::step(self)
    }
    fn run(&mut self, fuel: u64) -> Result<Outcome> {
        EnvMachine::run(self, fuel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::SubstMachine;
    use crate::memory::GrowthPolicy;
    use crate::syntax::{Op, PrimOp, CD};
    use ps_ir::Symbol;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    fn config() -> MemConfig {
        MemConfig {
            region_budget: 16,
            growth: GrowthPolicy::Fixed,
            track_types: false,
            max_heap_words: None,
            page_words: 8,
        }
    }

    /// Runs a program on both backends and asserts identical outcome and
    /// identical statistics.
    fn run_both(p: &Program) -> Outcome {
        let mut subst = SubstMachine::load(p, config());
        let mut env = EnvMachine::load(p, config());
        let a = subst.run(100_000).expect("subst backend");
        let b = env.run(100_000).expect("env backend");
        assert_eq!(a, b, "backends disagree on the outcome");
        assert_eq!(subst.stats(), env.stats(), "backends disagree on stats");
        a
    }

    fn run_main(main: Term) -> i64 {
        let p = Program {
            dialect: Dialect::Basic,
            code: vec![],
            main,
        };
        match run_both(&p) {
            Outcome::Halted(n) => n,
            other => panic!("abnormal outcome: {other:?}"),
        }
    }

    #[test]
    fn halt_and_let_resolve_variables() {
        let x = s("exm_x");
        let y = s("exm_y");
        let e = Term::let_(
            x,
            Op::Val(Value::Int(5)),
            Term::let_(
                y,
                Op::Prim(PrimOp::Add, Value::Var(x), Value::Var(x)),
                Term::Halt(Value::Var(y)),
            ),
        );
        assert_eq!(run_main(e), 10);
    }

    #[test]
    fn shadowing_overwrites() {
        let x = s("exm_shadow");
        let e = Term::let_(
            x,
            Op::Val(Value::Int(1)),
            Term::let_(
                x,
                Op::Prim(PrimOp::Add, Value::Var(x), Value::Int(1)),
                Term::Halt(Value::Var(x)),
            ),
        );
        assert_eq!(run_main(e), 2);
    }

    #[test]
    fn heap_roundtrip_through_regions() {
        let r = s("exm_r");
        let a = s("exm_a");
        let b = s("exm_b");
        let c = s("exm_c");
        let e = Term::LetRegion {
            rvar: r,
            body: intern_term(Term::let_(
                a,
                Op::Put(Region::Var(r), Value::pair(Value::Int(3), Value::Int(4))),
                Term::let_(
                    b,
                    Op::Get(Value::Var(a)),
                    Term::let_(c, Op::Proj(2, Value::Var(b)), Term::Halt(Value::Var(c))),
                ),
            )),
        };
        assert_eq!(run_main(e), 4);
    }

    #[test]
    fn application_clears_the_frame() {
        // After jumping to code, only the parameters are in scope; the
        // argument is resolved in the caller's frame first.
        let x = s("exm_p");
        let y = s("exm_q");
        let id = CodeDef {
            name: s("exm_id"),
            tvars: vec![],
            rvars: vec![],
            params: vec![(x, Ty::Int)],
            body: Term::Halt(Value::Var(x)),
        };
        let main = Term::let_(
            y,
            Op::Val(Value::Int(33)),
            Term::app(Value::Addr(CD, 0), [], [], [Value::Var(y)]),
        );
        let p = Program {
            dialect: Dialect::Basic,
            code: vec![id],
            main,
        };
        assert_eq!(run_both(&p), Outcome::Halted(33));
    }

    #[test]
    fn tag_arguments_flow_through_typecase() {
        let t = s("exm_t");
        let body = Term::Typecase {
            tag: Tag::Var(t),
            int_arm: Term::Halt(Value::Int(0)).id(),
            arrow_arm: Term::Halt(Value::Int(1)).id(),
            prod_arm: (s("exm_t1"), s("exm_t2"), Term::Halt(Value::Int(2)).id()),
            exist_arm: (s("exm_te"), Term::Halt(Value::Int(3)).id()),
        };
        let dispatch = CodeDef {
            name: s("exm_dispatch"),
            tvars: vec![(t, crate::syntax::Kind::Omega)],
            rvars: vec![],
            params: vec![],
            body,
        };
        let main = Term::app(Value::Addr(CD, 0), [Tag::prod(Tag::Int, Tag::Int)], [], []);
        let p = Program {
            dialect: Dialect::Basic,
            code: vec![dispatch],
            main,
        };
        assert_eq!(run_both(&p), Outcome::Halted(2));
    }

    #[test]
    fn collection_stats_agree() {
        let r1 = s("exm_r1");
        let r2 = s("exm_r2");
        let a = s("exm_only_a");
        let e = Term::LetRegion {
            rvar: r1,
            body: intern_term(Term::let_(
                a,
                Op::Put(Region::Var(r1), Value::Int(5)),
                Term::LetRegion {
                    rvar: r2,
                    body: intern_term(Term::Only {
                        regions: vec![Region::Var(r2)],
                        body: Term::Halt(Value::Int(0)).id(),
                    }),
                },
            )),
        };
        let p = Program {
            dialect: Dialect::Basic,
            code: vec![],
            main: e,
        };
        let mut env = EnvMachine::load(&p, config());
        assert_eq!(env.run(1000).unwrap(), Outcome::Halted(0));
        assert_eq!(env.stats().collections, 1);
        assert_eq!(env.stats().words_reclaimed, 1);
        assert_eq!(env.stats().regions_created, 2);
        run_both(&p);
    }

    #[test]
    fn stuck_states_match_the_oracle() {
        let p = Program {
            dialect: Dialect::Basic,
            code: vec![],
            main: Term::Halt(Value::pair(Value::Int(1), Value::Int(2))),
        };
        assert!(EnvMachine::load(&p, config()).run(10).is_err());
        assert!(SubstMachine::load(&p, config()).run(10).is_err());
    }

    #[test]
    fn halted_machine_stays_halted() {
        let p = Program {
            dialect: Dialect::Basic,
            code: vec![],
            main: Term::Halt(Value::Int(7)),
        };
        let mut m = EnvMachine::load(&p, MemConfig::default());
        assert_eq!(m.run(10).unwrap(), Outcome::Halted(7));
        assert_eq!(m.halted(), Some(7));
        assert_eq!(m.step().unwrap(), StepOutcome::Halted(7));
        assert_eq!(m.run(5).unwrap(), Outcome::Halted(7));
    }

    #[test]
    fn out_of_fuel_counts_steps() {
        let f = CodeDef {
            name: s("exm_loop"),
            tvars: vec![],
            rvars: vec![],
            params: vec![],
            body: Term::app(Value::Addr(CD, 0), [], [], []),
        };
        let p = Program {
            dialect: Dialect::Basic,
            code: vec![f],
            main: Term::app(Value::Addr(CD, 0), [], [], []),
        };
        let mut m = EnvMachine::load(&p, config());
        assert_eq!(m.run(100).unwrap(), Outcome::OutOfFuel);
        assert_eq!(m.stats().steps, 100);
    }

    use crate::syntax::Ty;
}
