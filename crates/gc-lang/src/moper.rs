//! The hard-wired Typerec operators and type normalization.
//!
//! `Mρ(τ)` (§4.2) maps a tag to the type of its runtime representation with
//! every object confined to region `ρ`; it is "a Typerec that has been
//! hard-wired into the language" (§6.3). The forwarding dialect replaces it
//! with the mutator-view `M` and collector-view `Cρ,ρ′` of §7; the
//! generational dialect uses the two-index `Mρy,ρo` of §8.
//!
//! [`normalize_ty`] expands these operators wherever the underlying tag has
//! reduced to a constructor, and leaves them stuck on neutral tags (`Mρ(t)`
//! cannot reduce until `t` is instantiated — the crux of §2.2.1).
//! [`ty_eq`] compares types by normalizing and then testing α-equivalence.
//!
//! Binder names introduced by expansion contain `!`, which no surface syntax
//! can produce, so fixed names are safe (substitution still renames them if
//! a capture would otherwise occur).

use std::rc::Rc;

use ps_ir::Symbol;

use crate::syntax::{Dialect, Kind, Region, Tag, Ty};
use crate::tags;

fn r_m() -> Symbol {
    Symbol::intern("r!m")
}
fn ry_m() -> Symbol {
    Symbol::intern("ry!m")
}
fn ro_m() -> Symbol {
    Symbol::intern("ro!m")
}
fn t_m() -> Symbol {
    Symbol::intern("t!m")
}

/// Expands one layer of `Mρ(τ)` for the given dialect, assuming `tag` is
/// already in normal form. Returns `None` when the tag is neutral (variable
/// or neutral application), i.e. the operator is stuck.
fn expand_m(dialect: Dialect, rho: Region, tag: &Tag) -> Option<Ty> {
    match tag {
        Tag::Int => Some(Ty::Int),
        // `AnyArrow` is handled (canonicalized) by `normalize_ty` directly.
        Tag::AnyArrow(_) => None,
        Tag::Arrow(args) => Some(code_rep(dialect, args)),
        Tag::Prod(a, b) => {
            let inner = Ty::prod(
                Ty::M(rho, a.clone()),
                Ty::M(rho, b.clone()),
            );
            Some(match dialect {
                // Mρ(τ₁×τ₂) ⇒ (Mρ(τ₁) × Mρ(τ₂)) at ρ
                Dialect::Basic => inner.at(rho),
                // §7: the mutator must provide the forwarding tag bit.
                Dialect::Forwarding => Ty::Left(Rc::new(inner)).at(rho),
                // §8: ∃r ∈ {ρy,ρo}.((M_{r,ρo}(τ₁) × M_{r,ρo}(τ₂)) at r) —
                // handled by expand_mgen; plain M is not part of λGCgen.
                Dialect::Generational => inner.at(rho),
            })
        }
        Tag::Exist(t, body) => {
            let inner = Ty::ExistTag {
                tvar: *t,
                kind: Kind::Omega,
                body: Rc::new(Ty::M(rho, body.clone())),
            };
            Some(match dialect {
                Dialect::Basic | Dialect::Generational => inner.at(rho),
                Dialect::Forwarding => Ty::Left(Rc::new(inner)).at(rho),
            })
        }
        Tag::Var(_) | Tag::App(..) => None,
        // Ill-kinded at Ω; leave stuck (the kind checker rejects it first).
        Tag::Lam(..) => None,
    }
}

/// The code-type representation `∀[][r](M_r(~τ)) → 0 at cd`
/// (or the two-region variant in the generational dialect).
fn code_rep(dialect: Dialect, args: &[Tag]) -> Ty {
    match dialect {
        Dialect::Basic | Dialect::Forwarding => {
            let r = r_m();
            Ty::Code {
                tvars: Rc::from(vec![]),
                rvars: Rc::from(vec![r]),
                args: args
                    .iter()
                    .map(|a| Ty::M(Region::Var(r), Rc::new(a.clone())))
                    .collect(),
            }
            .at(Region::cd())
        }
        Dialect::Generational => {
            let ry = ry_m();
            let ro = ro_m();
            Ty::Code {
                tvars: Rc::from(vec![]),
                rvars: Rc::from(vec![ry, ro]),
                args: args
                    .iter()
                    .map(|a| Ty::MGen(Region::Var(ry), Region::Var(ro), Rc::new(a.clone())))
                    .collect(),
            }
            .at(Region::cd())
        }
    }
}

/// Expands one layer of `Cρ,ρ′(τ)` (§7), assuming normal-form `tag`.
fn expand_c(from: Region, to: Region, tag: &Tag) -> Option<Ty> {
    match tag {
        Tag::Int => Some(Ty::Int),
        Tag::AnyArrow(_) => None,
        // Cρ,ρ′(τ→0) ⇒ Mρ(τ→0): code is shared, not forwarded.
        Tag::Arrow(args) => Some(code_rep(Dialect::Forwarding, args)),
        Tag::Prod(a, b) => {
            let left = Ty::prod(
                Ty::C(from, to, a.clone()),
                Ty::C(from, to, b.clone()),
            );
            let right = Ty::M(to, Rc::new(tag.clone()));
            Some(Ty::sum(left, right).at(from))
        }
        Tag::Exist(t, body) => {
            let left = Ty::ExistTag {
                tvar: *t,
                kind: Kind::Omega,
                body: Rc::new(Ty::C(from, to, body.clone())),
            };
            let right = Ty::M(to, Rc::new(tag.clone()));
            Some(Ty::sum(left, right).at(from))
        }
        Tag::Var(_) | Tag::App(..) | Tag::Lam(..) => None,
    }
}

/// Expands one layer of `Mρy,ρo(τ)` (§8), assuming normal-form `tag`.
fn expand_mgen(young: Region, old: Region, tag: &Tag) -> Option<Ty> {
    match tag {
        Tag::Int => Some(Ty::Int),
        Tag::AnyArrow(_) => None,
        Tag::Arrow(args) => Some(code_rep(Dialect::Generational, args)),
        Tag::Prod(a, b) => {
            let r = r_m();
            // By using the set {r, ρo} for the children we make sure that if
            // r is the old generation, pointers underneath cannot point back
            // to the new generation (§8).
            let body = Ty::prod(
                Ty::MGen(Region::Var(r), old, a.clone()),
                Ty::MGen(Region::Var(r), old, b.clone()),
            );
            Some(Ty::ExistRgn {
                rvar: r,
                bound: region_set(&[young, old]),
                body: Rc::new(body),
            })
        }
        Tag::Exist(t, body) => {
            let r = r_m();
            let inner = Ty::ExistTag {
                tvar: *t,
                kind: Kind::Omega,
                body: Rc::new(Ty::MGen(Region::Var(r), old, body.clone())),
            };
            Some(Ty::ExistRgn {
                rvar: r,
                bound: region_set(&[young, old]),
                body: Rc::new(inner),
            })
        }
        Tag::Var(_) | Tag::App(..) | Tag::Lam(..) => None,
    }
}

/// Deduplicated region set, preserving first-occurrence order.
pub fn region_set(rs: &[Region]) -> Rc<[Region]> {
    let mut out: Vec<Region> = Vec::with_capacity(rs.len());
    for r in rs {
        if !out.contains(r) {
            out.push(*r);
        }
    }
    out.into()
}

/// Deeply normalizes a type: normalizes embedded tags and expands the
/// M/C/M_gen operators wherever their tag argument is a constructor.
pub fn normalize_ty(sigma: &Ty, dialect: Dialect) -> Ty {
    match sigma {
        Ty::Int | Ty::Alpha(_) => sigma.clone(),
        Ty::Prod(a, b) => Ty::Prod(
            Rc::new(normalize_ty(a, dialect)),
            Rc::new(normalize_ty(b, dialect)),
        ),
        Ty::Sum(a, b) => Ty::Sum(
            Rc::new(normalize_ty(a, dialect)),
            Rc::new(normalize_ty(b, dialect)),
        ),
        Ty::Left(a) => Ty::Left(Rc::new(normalize_ty(a, dialect))),
        Ty::Right(a) => Ty::Right(Rc::new(normalize_ty(a, dialect))),
        Ty::Code { tvars, rvars, args } => Ty::Code {
            tvars: tvars.clone(),
            rvars: rvars.clone(),
            args: args.iter().map(|a| normalize_ty(a, dialect)).collect(),
        },
        Ty::ExistTag { tvar, kind, body } => Ty::ExistTag {
            tvar: *tvar,
            kind: *kind,
            body: Rc::new(normalize_ty(body, dialect)),
        },
        Ty::At(inner, rho) => Ty::At(Rc::new(normalize_ty(inner, dialect)), *rho),
        Ty::M(rho, tag) => {
            let nf = tags::normalize(tag);
            // paper: `AnyArrow` canonicalizes to `M_cd` — the M-image of any
            // arrow lives at cd and is independent of the region index, so
            // making that independence syntactic lets Fig. 4's `λ ⇒ x` arm
            // typecheck (see the `Tag::AnyArrow` docs).
            if let Tag::AnyArrow(_) = nf {
                return Ty::M(Region::cd(), Rc::new(nf));
            }
            match expand_m(dialect, *rho, &nf) {
                Some(t) => normalize_ty(&t, dialect),
                None => Ty::M(*rho, Rc::new(nf)),
            }
        }
        Ty::C(from, to, tag) => {
            let nf = tags::normalize(tag);
            if let Tag::AnyArrow(_) = nf {
                return Ty::M(Region::cd(), Rc::new(nf));
            }
            match expand_c(*from, *to, &nf) {
                Some(t) => normalize_ty(&t, dialect),
                None => Ty::C(*from, *to, Rc::new(nf)),
            }
        }
        Ty::MGen(y, o, tag) => {
            let nf = tags::normalize(tag);
            if let Tag::AnyArrow(_) = nf {
                return Ty::M(Region::cd(), Rc::new(nf));
            }
            match expand_mgen(*y, *o, &nf) {
                Some(t) => normalize_ty(&t, dialect),
                None => Ty::MGen(*y, *o, Rc::new(nf)),
            }
        }
        Ty::ExistAlpha { avar, regions, body } => Ty::ExistAlpha {
            avar: *avar,
            regions: region_set(regions),
            body: Rc::new(normalize_ty(body, dialect)),
        },
        Ty::Trans { tags: ts, regions, args, rho } => Ty::Trans {
            tags: ts.iter().map(tags::normalize).collect(),
            regions: regions.clone(),
            args: args.iter().map(|a| normalize_ty(a, dialect)).collect(),
            rho: *rho,
        },
        Ty::ExistRgn { rvar, bound, body } => Ty::ExistRgn {
            rvar: *rvar,
            bound: region_set(bound),
            body: Rc::new(normalize_ty(body, dialect)),
        },
    }
}

/// Environment of corresponding binders for α-comparison.
#[derive(Default)]
struct AlphaEnv {
    tags: Vec<(Symbol, Symbol)>,
    rgns: Vec<(Symbol, Symbol)>,
    alphas: Vec<(Symbol, Symbol)>,
}

fn pair_eq(x: Symbol, y: Symbol, env: &[(Symbol, Symbol)]) -> bool {
    for &(a, b) in env.iter().rev() {
        if a == x || b == y {
            return a == x && b == y;
        }
    }
    x == y
}

fn region_eq(a: &Region, b: &Region, env: &AlphaEnv) -> bool {
    match (a, b) {
        (Region::Var(x), Region::Var(y)) => pair_eq(*x, *y, &env.rgns),
        (Region::Name(x), Region::Name(y)) => x == y,
        _ => false,
    }
}

/// Compares two region sets as sets under the α-environment.
fn region_set_eq(a: &[Region], b: &[Region], env: &AlphaEnv) -> bool {
    a.iter().all(|x| b.iter().any(|y| region_eq(x, y, env)))
        && b.iter().all(|y| a.iter().any(|x| region_eq(x, y, env)))
}

fn tag_alpha_eq(a: &Tag, b: &Tag, env: &mut AlphaEnv) -> bool {
    match (a, b) {
        (Tag::Var(x), Tag::Var(y)) | (Tag::AnyArrow(x), Tag::AnyArrow(y)) => {
            pair_eq(*x, *y, &env.tags)
        }
        (Tag::Int, Tag::Int) => true,
        (Tag::Prod(a1, a2), Tag::Prod(b1, b2)) | (Tag::App(a1, a2), Tag::App(b1, b2)) => {
            tag_alpha_eq(a1, b1, env) && tag_alpha_eq(a2, b2, env)
        }
        (Tag::Arrow(xs), Tag::Arrow(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys.iter()).all(|(x, y)| tag_alpha_eq(x, y, env))
        }
        (Tag::Exist(x, bx), Tag::Exist(y, by)) | (Tag::Lam(x, bx), Tag::Lam(y, by)) => {
            env.tags.push((*x, *y));
            let r = tag_alpha_eq(bx, by, env);
            env.tags.pop();
            r
        }
        _ => false,
    }
}

fn ty_alpha_eq(a: &Ty, b: &Ty, env: &mut AlphaEnv) -> bool {
    match (a, b) {
        (Ty::Int, Ty::Int) => true,
        (Ty::Prod(a1, a2), Ty::Prod(b1, b2)) | (Ty::Sum(a1, a2), Ty::Sum(b1, b2)) => {
            ty_alpha_eq(a1, b1, env) && ty_alpha_eq(a2, b2, env)
        }
        (Ty::Left(x), Ty::Left(y)) | (Ty::Right(x), Ty::Right(y)) => ty_alpha_eq(x, y, env),
        (
            Ty::Code { tvars: tv1, rvars: rv1, args: a1 },
            Ty::Code { tvars: tv2, rvars: rv2, args: a2 },
        ) => {
            if tv1.len() != tv2.len() || rv1.len() != rv2.len() || a1.len() != a2.len() {
                return false;
            }
            if tv1.iter().zip(tv2.iter()).any(|((_, k1), (_, k2))| k1 != k2) {
                return false;
            }
            let nt = tv1.len();
            let nr = rv1.len();
            for ((t1, _), (t2, _)) in tv1.iter().zip(tv2.iter()) {
                env.tags.push((*t1, *t2));
            }
            for (r1, r2) in rv1.iter().zip(rv2.iter()) {
                env.rgns.push((*r1, *r2));
            }
            let r = a1.iter().zip(a2.iter()).all(|(x, y)| ty_alpha_eq(x, y, env));
            env.tags.truncate(env.tags.len() - nt);
            env.rgns.truncate(env.rgns.len() - nr);
            r
        }
        (
            Ty::ExistTag { tvar: t1, kind: k1, body: b1 },
            Ty::ExistTag { tvar: t2, kind: k2, body: b2 },
        ) => {
            if k1 != k2 {
                return false;
            }
            env.tags.push((*t1, *t2));
            let r = ty_alpha_eq(b1, b2, env);
            env.tags.pop();
            r
        }
        (Ty::At(x, rx), Ty::At(y, ry)) => region_eq(rx, ry, env) && ty_alpha_eq(x, y, env),
        (Ty::M(r1, t1), Ty::M(r2, t2)) => region_eq(r1, r2, env) && tag_alpha_eq(t1, t2, env),
        (Ty::C(f1, o1, t1), Ty::C(f2, o2, t2)) => {
            region_eq(f1, f2, env) && region_eq(o1, o2, env) && tag_alpha_eq(t1, t2, env)
        }
        (Ty::MGen(y1, o1, t1), Ty::MGen(y2, o2, t2)) => {
            region_eq(y1, y2, env) && region_eq(o1, o2, env) && tag_alpha_eq(t1, t2, env)
        }
        (Ty::Alpha(x), Ty::Alpha(y)) => pair_eq(*x, *y, &env.alphas),
        (
            Ty::ExistAlpha { avar: a1, regions: d1, body: b1 },
            Ty::ExistAlpha { avar: a2, regions: d2, body: b2 },
        ) => {
            if !region_set_eq(d1, d2, env) {
                return false;
            }
            env.alphas.push((*a1, *a2));
            let r = ty_alpha_eq(b1, b2, env);
            env.alphas.pop();
            r
        }
        (
            Ty::Trans { tags: ts1, regions: rs1, args: a1, rho: rho1 },
            Ty::Trans { tags: ts2, regions: rs2, args: a2, rho: rho2 },
        ) => {
            ts1.len() == ts2.len()
                && rs1.len() == rs2.len()
                && a1.len() == a2.len()
                && region_eq(rho1, rho2, env)
                && ts1.iter().zip(ts2.iter()).all(|(x, y)| tag_alpha_eq(x, y, env))
                && rs1.iter().zip(rs2.iter()).all(|(x, y)| region_eq(x, y, env))
                && a1.iter().zip(a2.iter()).all(|(x, y)| ty_alpha_eq(x, y, env))
        }
        (
            Ty::ExistRgn { rvar: r1, bound: d1, body: b1 },
            Ty::ExistRgn { rvar: r2, bound: d2, body: b2 },
        ) => {
            if !region_set_eq(d1, d2, env) {
                return false;
            }
            env.rgns.push((*r1, *r2));
            let r = ty_alpha_eq(b1, b2, env);
            env.rgns.pop();
            r
        }
        _ => false,
    }
}

/// α-equivalence of types (no normalization).
pub fn alpha_eq_ty(a: &Ty, b: &Ty) -> bool {
    ty_alpha_eq(a, b, &mut AlphaEnv::default())
}

/// Type equality: normalize, then compare up to α.
pub fn ty_eq(a: &Ty, b: &Ty, dialect: Dialect) -> bool {
    if a == b {
        return true;
    }
    alpha_eq_ty(&normalize_ty(a, dialect), &normalize_ty(b, dialect))
}

/// The size of a type (number of constructors).
pub fn ty_size(sigma: &Ty) -> usize {
    match sigma {
        Ty::Int | Ty::Alpha(_) => 1,
        Ty::Prod(a, b) | Ty::Sum(a, b) => 1 + ty_size(a) + ty_size(b),
        Ty::Left(a) | Ty::Right(a) | Ty::At(a, _) => 1 + ty_size(a),
        Ty::Code { args, .. } => 1 + args.iter().map(ty_size).sum::<usize>(),
        Ty::ExistTag { body, .. } | Ty::ExistAlpha { body, .. } | Ty::ExistRgn { body, .. } => {
            1 + ty_size(body)
        }
        Ty::M(_, t) => 1 + tags::tag_size(t),
        Ty::C(_, _, t) | Ty::MGen(_, _, t) => 1 + tags::tag_size(t),
        Ty::Trans { tags: ts, args, .. } => {
            1 + ts.iter().map(tags::tag_size).sum::<usize>()
                + args.iter().map(ty_size).sum::<usize>()
        }
    }
}

/// Fresh-binder helper exposed for the typechecker's expansion of
/// `M`-operator results: returns the fixed tag binder used in expansions.
pub fn m_tag_binder() -> Symbol {
    t_m()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    #[test]
    fn m_int_is_int() {
        let t = Ty::m(Region::cd(), Tag::Int);
        assert_eq!(normalize_ty(&t, Dialect::Basic), Ty::Int);
    }

    #[test]
    fn m_pair_expands_to_at() {
        let rho = Region::Var(s("r1"));
        let t = Ty::m(rho, Tag::prod(Tag::Int, Tag::Int));
        match normalize_ty(&t, Dialect::Basic) {
            Ty::At(inner, r) => {
                assert_eq!(r, rho);
                assert_eq!(*inner, Ty::prod(Ty::Int, Ty::Int));
            }
            other => panic!("expected at-type, got {other:?}"),
        }
    }

    #[test]
    fn m_arrow_lives_at_cd() {
        let rho = Region::Var(s("r1"));
        let t = Ty::m(rho, Tag::arrow([Tag::Int]));
        match normalize_ty(&t, Dialect::Basic) {
            Ty::At(inner, r) => {
                assert!(r.is_cd());
                assert!(matches!(*inner, Ty::Code { .. }));
            }
            other => panic!("expected code at cd, got {other:?}"),
        }
    }

    #[test]
    fn m_is_rho_independent_on_arrows() {
        let a = Ty::m(Region::Var(s("r1")), Tag::arrow([Tag::Int]));
        let b = Ty::m(Region::Var(s("r2")), Tag::arrow([Tag::Int]));
        assert!(ty_eq(&a, &b, Dialect::Basic));
    }

    #[test]
    fn m_stuck_on_variables() {
        let t = Ty::m(Region::cd(), Tag::Var(s("t")));
        assert_eq!(normalize_ty(&t, Dialect::Basic), t);
        // §2.2.1: Mρ(t) with different ρ must NOT be equal.
        let a = Ty::m(Region::Var(s("r1")), Tag::Var(s("t")));
        let b = Ty::m(Region::Var(s("r2")), Tag::Var(s("t")));
        assert!(!ty_eq(&a, &b, Dialect::Basic));
    }

    #[test]
    fn anyarrow_is_rho_independent() {
        let a = Ty::m(Region::Var(s("r1")), Tag::AnyArrow(s("t")));
        let b = Ty::m(Region::Var(s("r2")), Tag::AnyArrow(s("t")));
        assert!(ty_eq(&a, &b, Dialect::Basic));
        // ... and across M and C in the forwarding dialect.
        let c = Ty::c(Region::Var(s("r1")), Region::Var(s("r2")), Tag::AnyArrow(s("t")));
        assert!(ty_eq(&a, &c, Dialect::Forwarding));
    }

    #[test]
    fn forwarding_m_adds_left() {
        let rho = Region::Var(s("r1"));
        let t = Ty::m(rho, Tag::prod(Tag::Int, Tag::Int));
        match normalize_ty(&t, Dialect::Forwarding) {
            Ty::At(inner, _) => assert!(matches!(*inner, Ty::Left(_))),
            other => panic!("expected left at ρ, got {other:?}"),
        }
    }

    #[test]
    fn c_pair_is_a_sum() {
        let from = Region::Var(s("r1"));
        let to = Region::Var(s("r2"));
        let t = Ty::c(from, to, Tag::prod(Tag::Int, Tag::Int));
        match normalize_ty(&t, Dialect::Forwarding) {
            Ty::At(inner, r) => {
                assert_eq!(r, from);
                match &*inner {
                    Ty::Sum(l, rgt) => {
                        assert_eq!(**l, Ty::prod(Ty::Int, Ty::Int));
                        // right component is M_{to}(τ₁×τ₂), itself expanded.
                        assert!(matches!(**rgt, Ty::At(..)));
                    }
                    other => panic!("expected sum, got {other:?}"),
                }
            }
            other => panic!("expected at-type, got {other:?}"),
        }
    }

    #[test]
    fn c_arrow_is_m_arrow() {
        let from = Region::Var(s("r1"));
        let to = Region::Var(s("r2"));
        let c = Ty::c(from, to, Tag::arrow([Tag::Int]));
        let m = Ty::m(from, Tag::arrow([Tag::Int]));
        assert!(ty_eq(&c, &m, Dialect::Forwarding));
    }

    #[test]
    fn mgen_pair_is_region_existential() {
        let y = Region::Var(s("ry"));
        let o = Region::Var(s("ro"));
        let t = Ty::mgen(y, o, Tag::prod(Tag::Int, Tag::Int));
        match normalize_ty(&t, Dialect::Generational) {
            Ty::ExistRgn { bound, .. } => {
                assert_eq!(bound.len(), 2);
            }
            other => panic!("expected region existential, got {other:?}"),
        }
    }

    #[test]
    fn mgen_collapsed_indices_singleton_bound() {
        let o = Region::Var(s("ro"));
        let t = Ty::mgen(o, o, Tag::prod(Tag::Int, Tag::Int));
        match normalize_ty(&t, Dialect::Generational) {
            Ty::ExistRgn { bound, .. } => assert_eq!(bound.len(), 1),
            other => panic!("expected region existential, got {other:?}"),
        }
    }

    #[test]
    fn ty_eq_alpha_renames_binders() {
        let a = Ty::exist_tag(s("u"), Kind::Omega, Ty::m(Region::cd(), Tag::Var(s("u"))));
        let b = Ty::exist_tag(s("v"), Kind::Omega, Ty::m(Region::cd(), Tag::Var(s("v"))));
        assert!(ty_eq(&a, &b, Dialect::Basic));
    }

    #[test]
    fn ty_eq_region_sets_as_sets() {
        let r1 = Region::Var(s("ra"));
        let r2 = Region::Var(s("rb"));
        let a = Ty::exist_rgn(s("r"), [r1, r2], Ty::Int);
        let b = Ty::exist_rgn(s("r"), [r2, r1], Ty::Int);
        assert!(ty_eq(&a, &b, Dialect::Generational));
        let c = Ty::exist_rgn(s("r"), [r1], Ty::Int);
        assert!(!ty_eq(&a, &c, Dialect::Generational));
    }

    #[test]
    fn m_exist_expands_under_binder() {
        let rho = Region::Var(s("r1"));
        let u = s("u");
        let t = Ty::m(rho, Tag::exist(u, Tag::prod(Tag::Var(u), Tag::Int)));
        match normalize_ty(&t, Dialect::Basic) {
            Ty::At(inner, _) => match &*inner {
                Ty::ExistTag { body, .. } => {
                    // Body is M_ρ(u × Int), expanded one more level with the
                    // stuck M_ρ(u) inside.
                    assert!(matches!(**body, Ty::At(..)));
                }
                other => panic!("expected ∃t, got {other:?}"),
            },
            other => panic!("expected at, got {other:?}"),
        }
    }

    #[test]
    fn normalization_reduces_tag_redexes_first() {
        let rho = Region::cd();
        let t = Ty::m(rho, Tag::app(Tag::id_fn(), Tag::Int));
        assert_eq!(normalize_ty(&t, Dialect::Basic), Ty::Int);
    }

    #[test]
    fn ty_size_counts() {
        assert_eq!(ty_size(&Ty::Int), 1);
        assert_eq!(ty_size(&Ty::prod(Ty::Int, Ty::Int)), 3);
    }
}
