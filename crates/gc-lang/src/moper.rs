//! The hard-wired Typerec operators and type normalization.
//!
//! `Mρ(τ)` (§4.2) maps a tag to the type of its runtime representation with
//! every object confined to region `ρ`; it is "a Typerec that has been
//! hard-wired into the language" (§6.3). The forwarding dialect replaces it
//! with the mutator-view `M` and collector-view `Cρ,ρ′` of §7; the
//! generational dialect uses the two-index `Mρy,ρo` of §8.
//!
//! [`normalize_ty`] expands these operators wherever the underlying tag has
//! reduced to a constructor, and leaves them stuck on neutral tags (`Mρ(t)`
//! cannot reduce until `t` is instantiated — the crux of §2.2.1).
//! [`ty_eq`] compares types by normalizing and then testing α-equivalence.
//!
//! Binder names introduced by expansion contain `!`, which no surface syntax
//! can produce, so fixed names are safe (substitution still renames them if
//! a capture would otherwise occur).

use std::sync::Arc;

use ps_ir::Symbol;

use crate::intern::{self, intern_ty, TagId, TyId};
use crate::syntax::{Dialect, Kind, Region, Tag, Ty};
use crate::tags;

fn r_m() -> Symbol {
    Symbol::intern("r!m")
}
fn ry_m() -> Symbol {
    Symbol::intern("ry!m")
}
fn ro_m() -> Symbol {
    Symbol::intern("ro!m")
}
fn t_m() -> Symbol {
    Symbol::intern("t!m")
}

/// Expands one layer of `Mρ(τ)` for the given dialect, assuming `tag` is
/// already in normal form. Returns `None` when the tag is neutral (variable
/// or neutral application), i.e. the operator is stuck.
fn expand_m(dialect: Dialect, rho: Region, tag: &Tag) -> Option<Ty> {
    match tag {
        Tag::Int => Some(Ty::Int),
        // `AnyArrow` is handled (canonicalized) by `normalize_ty` directly.
        Tag::AnyArrow(_) => None,
        Tag::Arrow(args) => Some(code_rep(dialect, args)),
        Tag::Prod(a, b) => {
            let inner = Ty::Prod(intern_ty(Ty::M(rho, *a)), intern_ty(Ty::M(rho, *b)));
            Some(match dialect {
                // Mρ(τ₁×τ₂) ⇒ (Mρ(τ₁) × Mρ(τ₂)) at ρ
                Dialect::Basic => inner.at(rho),
                // §7: the mutator must provide the forwarding tag bit.
                Dialect::Forwarding => Ty::Left(intern_ty(inner)).at(rho),
                // §8: ∃r ∈ {ρy,ρo}.((M_{r,ρo}(τ₁) × M_{r,ρo}(τ₂)) at r) —
                // handled by expand_mgen; plain M is not part of λGCgen.
                Dialect::Generational => inner.at(rho),
            })
        }
        Tag::Exist(t, body) => {
            let inner = Ty::ExistTag {
                tvar: *t,
                kind: Kind::Omega,
                body: intern_ty(Ty::M(rho, *body)),
            };
            Some(match dialect {
                Dialect::Basic | Dialect::Generational => inner.at(rho),
                Dialect::Forwarding => Ty::Left(intern_ty(inner)).at(rho),
            })
        }
        Tag::Var(_) | Tag::App(..) => None,
        // Ill-kinded at Ω; leave stuck (the kind checker rejects it first).
        Tag::Lam(..) => None,
    }
}

/// The code-type representation `∀[][r](M_r(~τ)) → 0 at cd`
/// (or the two-region variant in the generational dialect).
fn code_rep(dialect: Dialect, args: &[TagId]) -> Ty {
    match dialect {
        Dialect::Basic | Dialect::Forwarding => {
            let r = r_m();
            Ty::Code {
                tvars: Arc::from(vec![]),
                rvars: Arc::from(vec![r]),
                args: args
                    .iter()
                    .map(|a| intern_ty(Ty::M(Region::Var(r), *a)))
                    .collect(),
            }
            .at(Region::cd())
        }
        Dialect::Generational => {
            let ry = ry_m();
            let ro = ro_m();
            Ty::Code {
                tvars: Arc::from(vec![]),
                rvars: Arc::from(vec![ry, ro]),
                args: args
                    .iter()
                    .map(|a| intern_ty(Ty::MGen(Region::Var(ry), Region::Var(ro), *a)))
                    .collect(),
            }
            .at(Region::cd())
        }
    }
}

/// Expands one layer of `Cρ,ρ′(τ)` (§7), assuming normal-form `tag`.
fn expand_c(from: Region, to: Region, tag: &Tag) -> Option<Ty> {
    match tag {
        Tag::Int => Some(Ty::Int),
        Tag::AnyArrow(_) => None,
        // Cρ,ρ′(τ→0) ⇒ Mρ(τ→0): code is shared, not forwarded.
        Tag::Arrow(args) => Some(code_rep(Dialect::Forwarding, args)),
        Tag::Prod(a, b) => {
            let left = Ty::Prod(
                intern_ty(Ty::C(from, to, *a)),
                intern_ty(Ty::C(from, to, *b)),
            );
            let right = Ty::M(to, tag.id());
            Some(Ty::sum(left, right).at(from))
        }
        Tag::Exist(t, body) => {
            let left = Ty::ExistTag {
                tvar: *t,
                kind: Kind::Omega,
                body: intern_ty(Ty::C(from, to, *body)),
            };
            let right = Ty::M(to, tag.id());
            Some(Ty::sum(left, right).at(from))
        }
        Tag::Var(_) | Tag::App(..) | Tag::Lam(..) => None,
    }
}

/// Expands one layer of `Mρy,ρo(τ)` (§8), assuming normal-form `tag`.
fn expand_mgen(young: Region, old: Region, tag: &Tag) -> Option<Ty> {
    match tag {
        Tag::Int => Some(Ty::Int),
        Tag::AnyArrow(_) => None,
        Tag::Arrow(args) => Some(code_rep(Dialect::Generational, args)),
        Tag::Prod(a, b) => {
            let r = r_m();
            // By using the set {r, ρo} for the children we make sure that if
            // r is the old generation, pointers underneath cannot point back
            // to the new generation (§8).
            let body = Ty::Prod(
                intern_ty(Ty::MGen(Region::Var(r), old, *a)),
                intern_ty(Ty::MGen(Region::Var(r), old, *b)),
            );
            Some(Ty::ExistRgn {
                rvar: r,
                bound: region_set(&[young, old]),
                body: intern_ty(body),
            })
        }
        Tag::Exist(t, body) => {
            let r = r_m();
            let inner = Ty::ExistTag {
                tvar: *t,
                kind: Kind::Omega,
                body: intern_ty(Ty::MGen(Region::Var(r), old, *body)),
            };
            Some(Ty::ExistRgn {
                rvar: r,
                bound: region_set(&[young, old]),
                body: intern_ty(inner),
            })
        }
        Tag::Var(_) | Tag::App(..) | Tag::Lam(..) => None,
    }
}

/// Deduplicated region set, preserving first-occurrence order.
pub fn region_set(rs: &[Region]) -> Arc<[Region]> {
    let mut out: Vec<Region> = Vec::with_capacity(rs.len());
    for r in rs {
        if !out.contains(r) {
            out.push(*r);
        }
    }
    out.into()
}

/// Deeply normalizes a type: normalizes embedded tags and expands the
/// M/C/M_gen operators wherever their tag argument is a constructor.
///
/// Memoized per `(node, dialect)` ([`normalize_ty_id`]): shared subtrees —
/// and, under `track_types`, the Ψ entries re-normalized on every machine
/// step — are normalized exactly once.
pub fn normalize_ty(sigma: &Ty, dialect: Dialect) -> Ty {
    normalize_ty_id(sigma.id(), dialect).node().clone()
}

/// Memoized [`normalize_ty`] by id.
pub fn normalize_ty_id(id: TyId, dialect: Dialect) -> TyId {
    if let Some(hit) = intern::ty_norm_lookup(id, dialect) {
        return hit;
    }
    let nf = match id.node() {
        Ty::Int | Ty::Alpha(_) => id,
        Ty::Prod(a, b) => intern_ty(Ty::Prod(
            normalize_ty_id(*a, dialect),
            normalize_ty_id(*b, dialect),
        )),
        Ty::Sum(a, b) => intern_ty(Ty::Sum(
            normalize_ty_id(*a, dialect),
            normalize_ty_id(*b, dialect),
        )),
        Ty::Left(a) => intern_ty(Ty::Left(normalize_ty_id(*a, dialect))),
        Ty::Right(a) => intern_ty(Ty::Right(normalize_ty_id(*a, dialect))),
        Ty::Code { tvars, rvars, args } => intern_ty(Ty::Code {
            tvars: tvars.clone(),
            rvars: rvars.clone(),
            args: args.iter().map(|a| normalize_ty_id(*a, dialect)).collect(),
        }),
        Ty::ExistTag { tvar, kind, body } => intern_ty(Ty::ExistTag {
            tvar: *tvar,
            kind: *kind,
            body: normalize_ty_id(*body, dialect),
        }),
        Ty::At(inner, rho) => intern_ty(Ty::At(normalize_ty_id(*inner, dialect), *rho)),
        Ty::M(rho, tag) => {
            let nf = tags::normalize_id(*tag).0;
            // paper: `AnyArrow` canonicalizes to `M_cd` — the M-image of any
            // arrow lives at cd and is independent of the region index, so
            // making that independence syntactic lets Fig. 4's `λ ⇒ x` arm
            // typecheck (see the `Tag::AnyArrow` docs).
            if let Tag::AnyArrow(_) = nf.node() {
                intern_ty(Ty::M(Region::cd(), nf))
            } else {
                match expand_m(dialect, *rho, nf.node()) {
                    Some(t) => normalize_ty_id(t.id(), dialect),
                    None => intern_ty(Ty::M(*rho, nf)),
                }
            }
        }
        Ty::C(from, to, tag) => {
            let nf = tags::normalize_id(*tag).0;
            if let Tag::AnyArrow(_) = nf.node() {
                intern_ty(Ty::M(Region::cd(), nf))
            } else {
                match expand_c(*from, *to, nf.node()) {
                    Some(t) => normalize_ty_id(t.id(), dialect),
                    None => intern_ty(Ty::C(*from, *to, nf)),
                }
            }
        }
        Ty::MGen(y, o, tag) => {
            let nf = tags::normalize_id(*tag).0;
            if let Tag::AnyArrow(_) = nf.node() {
                intern_ty(Ty::M(Region::cd(), nf))
            } else {
                match expand_mgen(*y, *o, nf.node()) {
                    Some(t) => normalize_ty_id(t.id(), dialect),
                    None => intern_ty(Ty::MGen(*y, *o, nf)),
                }
            }
        }
        Ty::ExistAlpha {
            avar,
            regions,
            body,
        } => intern_ty(Ty::ExistAlpha {
            avar: *avar,
            regions: region_set(regions),
            body: normalize_ty_id(*body, dialect),
        }),
        Ty::Trans {
            tags: ts,
            regions,
            args,
            rho,
        } => intern_ty(Ty::Trans {
            tags: ts.iter().map(|t| tags::normalize_id(*t).0).collect(),
            regions: regions.clone(),
            args: args.iter().map(|a| normalize_ty_id(*a, dialect)).collect(),
            rho: *rho,
        }),
        Ty::ExistRgn { rvar, bound, body } => intern_ty(Ty::ExistRgn {
            rvar: *rvar,
            bound: region_set(bound),
            body: normalize_ty_id(*body, dialect),
        }),
    };
    intern::ty_norm_insert(id, dialect, nf);
    nf
}

/// α-equivalence of types (no normalization): an id compare of
/// α-canonical forms ([`crate::intern::canon_ty`]). Region sets
/// (`∃α:∆` / `∃r∈∆` bounds) compare as sets, binders up to renaming.
pub fn alpha_eq_ty(a: &Ty, b: &Ty) -> bool {
    intern::ty_alpha_eq(a.id(), b.id())
}

/// Type equality: normalize, then compare up to α.
pub fn ty_eq(a: &Ty, b: &Ty, dialect: Dialect) -> bool {
    ty_eq_id(a.id(), b.id(), dialect)
}

/// [`ty_eq`] on interned ids: two memoized normalizations and an id
/// compare of canonical forms.
pub fn ty_eq_id(a: TyId, b: TyId, dialect: Dialect) -> bool {
    if a == b {
        return true;
    }
    intern::ty_alpha_eq(normalize_ty_id(a, dialect), normalize_ty_id(b, dialect))
}

/// The size of a type (number of constructors).
pub fn ty_size(sigma: &Ty) -> usize {
    match sigma {
        Ty::Int | Ty::Alpha(_) => 1,
        Ty::Prod(a, b) | Ty::Sum(a, b) => 1 + ty_size(a) + ty_size(b),
        Ty::Left(a) | Ty::Right(a) | Ty::At(a, _) => 1 + ty_size(a),
        Ty::Code { args, .. } => 1 + args.iter().map(|a| ty_size(a)).sum::<usize>(),
        Ty::ExistTag { body, .. } | Ty::ExistAlpha { body, .. } | Ty::ExistRgn { body, .. } => {
            1 + ty_size(body)
        }
        Ty::M(_, t) => 1 + tags::tag_size(t),
        Ty::C(_, _, t) | Ty::MGen(_, _, t) => 1 + tags::tag_size(t),
        Ty::Trans { tags: ts, args, .. } => {
            1 + ts.iter().map(|t| tags::tag_size(t)).sum::<usize>()
                + args.iter().map(|a| ty_size(a)).sum::<usize>()
        }
    }
}

/// Fresh-binder helper exposed for the typechecker's expansion of
/// `M`-operator results: returns the fixed tag binder used in expansions.
pub fn m_tag_binder() -> Symbol {
    t_m()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    #[test]
    fn m_int_is_int() {
        let t = Ty::m(Region::cd(), Tag::Int);
        assert_eq!(normalize_ty(&t, Dialect::Basic), Ty::Int);
    }

    #[test]
    fn m_pair_expands_to_at() {
        let rho = Region::Var(s("r1"));
        let t = Ty::m(rho, Tag::prod(Tag::Int, Tag::Int));
        match normalize_ty(&t, Dialect::Basic) {
            Ty::At(inner, r) => {
                assert_eq!(r, rho);
                assert_eq!(*inner, Ty::prod(Ty::Int, Ty::Int));
            }
            other => panic!("expected at-type, got {other:?}"),
        }
    }

    #[test]
    fn m_arrow_lives_at_cd() {
        let rho = Region::Var(s("r1"));
        let t = Ty::m(rho, Tag::arrow([Tag::Int]));
        match normalize_ty(&t, Dialect::Basic) {
            Ty::At(inner, r) => {
                assert!(r.is_cd());
                assert!(matches!(*inner, Ty::Code { .. }));
            }
            other => panic!("expected code at cd, got {other:?}"),
        }
    }

    #[test]
    fn m_is_rho_independent_on_arrows() {
        let a = Ty::m(Region::Var(s("r1")), Tag::arrow([Tag::Int]));
        let b = Ty::m(Region::Var(s("r2")), Tag::arrow([Tag::Int]));
        assert!(ty_eq(&a, &b, Dialect::Basic));
    }

    #[test]
    fn m_stuck_on_variables() {
        let t = Ty::m(Region::cd(), Tag::Var(s("t")));
        assert_eq!(normalize_ty(&t, Dialect::Basic), t);
        // §2.2.1: Mρ(t) with different ρ must NOT be equal.
        let a = Ty::m(Region::Var(s("r1")), Tag::Var(s("t")));
        let b = Ty::m(Region::Var(s("r2")), Tag::Var(s("t")));
        assert!(!ty_eq(&a, &b, Dialect::Basic));
    }

    #[test]
    fn anyarrow_is_rho_independent() {
        let a = Ty::m(Region::Var(s("r1")), Tag::AnyArrow(s("t")));
        let b = Ty::m(Region::Var(s("r2")), Tag::AnyArrow(s("t")));
        assert!(ty_eq(&a, &b, Dialect::Basic));
        // ... and across M and C in the forwarding dialect.
        let c = Ty::c(
            Region::Var(s("r1")),
            Region::Var(s("r2")),
            Tag::AnyArrow(s("t")),
        );
        assert!(ty_eq(&a, &c, Dialect::Forwarding));
    }

    #[test]
    fn forwarding_m_adds_left() {
        let rho = Region::Var(s("r1"));
        let t = Ty::m(rho, Tag::prod(Tag::Int, Tag::Int));
        match normalize_ty(&t, Dialect::Forwarding) {
            Ty::At(inner, _) => assert!(matches!(*inner, Ty::Left(_))),
            other => panic!("expected left at ρ, got {other:?}"),
        }
    }

    #[test]
    fn c_pair_is_a_sum() {
        let from = Region::Var(s("r1"));
        let to = Region::Var(s("r2"));
        let t = Ty::c(from, to, Tag::prod(Tag::Int, Tag::Int));
        match normalize_ty(&t, Dialect::Forwarding) {
            Ty::At(inner, r) => {
                assert_eq!(r, from);
                match &*inner {
                    Ty::Sum(l, rgt) => {
                        assert_eq!(**l, Ty::prod(Ty::Int, Ty::Int));
                        // right component is M_{to}(τ₁×τ₂), itself expanded.
                        assert!(matches!(**rgt, Ty::At(..)));
                    }
                    other => panic!("expected sum, got {other:?}"),
                }
            }
            other => panic!("expected at-type, got {other:?}"),
        }
    }

    #[test]
    fn c_arrow_is_m_arrow() {
        let from = Region::Var(s("r1"));
        let to = Region::Var(s("r2"));
        let c = Ty::c(from, to, Tag::arrow([Tag::Int]));
        let m = Ty::m(from, Tag::arrow([Tag::Int]));
        assert!(ty_eq(&c, &m, Dialect::Forwarding));
    }

    #[test]
    fn mgen_pair_is_region_existential() {
        let y = Region::Var(s("ry"));
        let o = Region::Var(s("ro"));
        let t = Ty::mgen(y, o, Tag::prod(Tag::Int, Tag::Int));
        match normalize_ty(&t, Dialect::Generational) {
            Ty::ExistRgn { bound, .. } => {
                assert_eq!(bound.len(), 2);
            }
            other => panic!("expected region existential, got {other:?}"),
        }
    }

    #[test]
    fn mgen_collapsed_indices_singleton_bound() {
        let o = Region::Var(s("ro"));
        let t = Ty::mgen(o, o, Tag::prod(Tag::Int, Tag::Int));
        match normalize_ty(&t, Dialect::Generational) {
            Ty::ExistRgn { bound, .. } => assert_eq!(bound.len(), 1),
            other => panic!("expected region existential, got {other:?}"),
        }
    }

    #[test]
    fn ty_eq_alpha_renames_binders() {
        let a = Ty::exist_tag(s("u"), Kind::Omega, Ty::m(Region::cd(), Tag::Var(s("u"))));
        let b = Ty::exist_tag(s("v"), Kind::Omega, Ty::m(Region::cd(), Tag::Var(s("v"))));
        assert!(ty_eq(&a, &b, Dialect::Basic));
    }

    #[test]
    fn ty_eq_region_sets_as_sets() {
        let r1 = Region::Var(s("ra"));
        let r2 = Region::Var(s("rb"));
        let a = Ty::exist_rgn(s("r"), [r1, r2], Ty::Int);
        let b = Ty::exist_rgn(s("r"), [r2, r1], Ty::Int);
        assert!(ty_eq(&a, &b, Dialect::Generational));
        let c = Ty::exist_rgn(s("r"), [r1], Ty::Int);
        assert!(!ty_eq(&a, &c, Dialect::Generational));
    }

    #[test]
    fn m_exist_expands_under_binder() {
        let rho = Region::Var(s("r1"));
        let u = s("u");
        let t = Ty::m(rho, Tag::exist(u, Tag::prod(Tag::Var(u), Tag::Int)));
        match normalize_ty(&t, Dialect::Basic) {
            Ty::At(inner, _) => match &*inner {
                Ty::ExistTag { body, .. } => {
                    // Body is M_ρ(u × Int), expanded one more level with the
                    // stuck M_ρ(u) inside.
                    assert!(matches!(**body, Ty::At(..)));
                }
                other => panic!("expected ∃t, got {other:?}"),
            },
            other => panic!("expected at, got {other:?}"),
        }
    }

    #[test]
    fn normalization_reduces_tag_redexes_first() {
        let rho = Region::cd();
        let t = Ty::m(rho, Tag::app(Tag::id_fn(), Tag::Int));
        assert_eq!(normalize_ty(&t, Dialect::Basic), Ty::Int);
    }

    #[test]
    fn ty_size_counts() {
        assert_eq!(ty_size(&Ty::Int), 1);
        assert_eq!(ty_size(&Ty::prod(Ty::Int, Ty::Int)), 3);
    }
}
