//! Runtime heap-invariant auditor: the dynamic half of Fig. 7's
//! `⊢ M : Ψ` judgement, checkable on a *live* machine state.
//!
//! The paper certifies collectors statically (Props. 6.3–6.5: the
//! typechecker proves type preservation and progress before the program
//! runs). This module re-validates the invariants those propositions
//! guarantee, against the actual store, while the machine runs:
//!
//! 1. **CD intact** — the code region exists and holds only code blocks
//!    (§4.3: `cd` is never reclaimed and never mutated after load).
//! 2. **Budget floor** — every data region's budget is at least the
//!    configured base budget. Budgets are `usize`, so an arithmetic
//!    underflow (the classic accounting bug) surfaces as a huge or a
//!    below-floor value; both growth policies guarantee the floor.
//! 3. **Word accounting** — each region's recorded word count matches the
//!    sizes of its slots: exactly for λGC/λGCgen, and as an upper bound for
//!    λGCforw, whose `set` may shrink a slot in place without adjusting the
//!    count (the slot keeps its `Υ`-assigned size).
//! 4. **Pointer validity** — no address reachable from the current term
//!    points into a reclaimed region or past a region's end (the dynamic
//!    face of `Ψ; Dom(Ψ) ⊢ v` and Def. 7.1's reachability restriction).
//! 5. **Ψ conformance** (when [`crate::memory::MemConfig::track_types`] is
//!    on) — every stored value checks against its recorded `Ψ` type, with
//!    Def. 7.1's sufficient-subset weakening for λGCforw.
//!
//! Checks 1–4 need no type tracking, so the auditor runs on production
//! configurations; check 5 upgrades it to the full Fig. 7 judgement. The
//! auditor is purely observational: it never touches statistics or
//! telemetry, so an audited clean run is bit-identical to an unaudited one.
//!
//! Both interpreter backends expose it as `audit()` and can run it every N
//! steps (`verify_every`); see [`crate::machine::SubstMachine::audit`] and
//! [`crate::env_machine::EnvMachine::audit`]. [`crate::faults`] provides the
//! adversarial counterpart that these checks must catch.

use std::collections::HashSet;

use crate::error::{wf_err, Result};
use crate::memory::{value_words, Memory, PageView};
use crate::syntax::{Dialect, RegionName, Term, Value, CD};
use crate::tyck::{Checker, Ctx};
use crate::wf;

/// Audits a memory against the invariants of Fig. 7, with `root` as the
/// reachability root (the machine's current term, with any environment
/// already applied).
///
/// # Errors
///
/// Returns a [`crate::error::ErrorKind::WellFormedness`] error describing
/// the first violated invariant.
pub fn audit_state(mem: &Memory, dialect: Dialect, root: &Term) -> Result<()> {
    audit_cd(mem)?;
    audit_budgets(mem)?;
    audit_pages(mem)?;
    audit_words(mem, dialect)?;
    audit_pointers(mem, root)?;
    if mem.config().track_types {
        audit_psi(mem, dialect, root)?;
    }
    Ok(())
}

/// Incremental audit: re-checks only the pages dirtied since the last
/// acknowledged audit, then clears the dirty set. Region budgets are always
/// checked (they live outside pages); header consistency, word accounting,
/// pointer validity, and `Ψ` conformance are checked per dirty page/slot.
///
/// Soundness relies on [`Memory::wants_full_audit`]: region frees raise it,
/// and callers must run [`audit_state`] (a full walk) before resuming
/// incremental audits — between full audits no region dies, so a dangling
/// pointer can only have been *written*, i.e. it sits in a dirty slot.
///
/// Unlike the full walk, no reachability root is needed: every dirty slot is
/// checked unconditionally (a superset of the reachable dirty slots), which
/// is sound because the C-form `Ψ` types accept forwarding installs.
///
/// # Errors
///
/// Returns a [`crate::error::ErrorKind::WellFormedness`] error describing
/// the first violated invariant. On error the dirty set is left intact so
/// diagnostics can inspect it.
pub fn audit_dirty(mem: &mut Memory, dialect: Dialect) -> Result<()> {
    audit_dirty_inner(mem, dialect)?;
    mem.note_dirty_audit();
    Ok(())
}

fn audit_dirty_inner(mem: &Memory, dialect: Dialect) -> Result<()> {
    audit_budgets(mem)?;
    let mut typing: Option<(Checker, Ctx)> = None;
    let mut work: Vec<(RegionName, u32)> = Vec::new();
    for pid in mem.dirty_page_ids() {
        let Some(page) = mem.page(pid) else {
            // Freed since it was dirtied; the pending full audit covers it.
            continue;
        };
        page_header_check(mem, pid, &page)?;
        page_word_check(pid, &page, dialect)?;
        let nu = page.owner();
        for slot in page.dirty_slots() {
            let Some(stored) = page.slot(slot) else {
                continue;
            };
            let loc = page.loc_of(slot);
            // Pointer validity: everything a dirty slot references must
            // resolve to a live slot.
            work.clear();
            wf::collect_value_addrs(stored, &mut work);
            for &(tnu, tloc) in &work {
                if let Err(e) = mem.get(tnu, tloc) {
                    return Err(wf_err(format!(
                        "pointer {tnu}.{tloc} stored in dirty slot {nu}.{loc} \
                         is dangling: {e}"
                    )));
                }
            }
            if mem.config().track_types {
                let (checker, ctx) = typing.get_or_insert_with(|| {
                    let checker = Checker::from_memory(dialect, mem);
                    let mut ctx = Ctx::empty();
                    ctx.delta = checker.psi_domain();
                    (checker, ctx)
                });
                let Some(entry) = mem.psi_entry(nu, loc) else {
                    // Dead garbage discarded by widen (Def. 7.1) — only the
                    // forwarding dialect may have Ψ-less slots.
                    if dialect == Dialect::Forwarding {
                        continue;
                    }
                    return Err(wf_err(format!("slot {nu}.{loc} has no Ψ entry")));
                };
                checker.check_value(ctx, stored, entry).map_err(|e| {
                    wf_err(format!("slot {nu}.{loc} does not match its Ψ type: {e}"))
                })?;
            }
        }
    }
    Ok(())
}

/// Header consistency over every live page (part of the full walk).
fn audit_pages(mem: &Memory) -> Result<()> {
    for pid in mem.live_page_ids() {
        let Some(page) = mem.page(pid) else {
            continue;
        };
        page_header_check(mem, pid, &page)?;
    }
    Ok(())
}

/// One page's header against its storage and its owner's page list.
fn page_header_check(mem: &Memory, pid: u32, page: &PageView<'_>) -> Result<()> {
    let nu = page.owner();
    let Some(region) = mem.region(nu) else {
        return Err(wf_err(format!(
            "page {pid} is owned by reclaimed region {nu}"
        )));
    };
    if region.page_ids().get(page.ordinal() as usize) != Some(&pid) {
        return Err(wf_err(format!(
            "page {pid} claims ordinal {} of region {nu}, which does not \
             point back at it",
            page.ordinal()
        )));
    }
    if page.len() > page.capacity() as usize {
        return Err(wf_err(format!(
            "page {pid} holds {} objects but has capacity {}",
            page.len(),
            page.capacity()
        )));
    }
    if page.occupancy() as usize != page.len() {
        return Err(wf_err(format!(
            "page {pid} header records occupancy {} but it holds {} objects",
            page.occupancy(),
            page.len()
        )));
    }
    Ok(())
}

/// One page's recorded live words against its slots (the per-page face of
/// check 3; λGCforw's in-place shrinking `set` makes it an upper bound).
fn page_word_check(pid: u32, page: &PageView<'_>, dialect: Dialect) -> Result<()> {
    let recomputed: usize = page.slots().map(value_words).sum();
    let recorded = page.live_words();
    let bad = match dialect {
        Dialect::Forwarding => recomputed > recorded,
        Dialect::Basic | Dialect::Generational => recomputed != recorded,
    };
    if bad {
        return Err(wf_err(format!(
            "page {pid} records {recorded} words but its slots hold {recomputed}"
        )));
    }
    Ok(())
}

/// Check 1: the code region exists and holds only code blocks.
fn audit_cd(mem: &Memory) -> Result<()> {
    let Some(cd) = mem.region(CD) else {
        return Err(wf_err("code region cd has been reclaimed"));
    };
    for (loc, v) in cd.iter() {
        if !matches!(v, Value::Code(_)) {
            return Err(wf_err(format!("cd.{loc} holds a non-code value: {v:?}")));
        }
    }
    Ok(())
}

/// Check 2: no data region's budget dropped below the configured base
/// budget (both growth policies allocate at least that much).
fn audit_budgets(mem: &Memory) -> Result<()> {
    let floor = mem.config().region_budget;
    for nu in mem.region_names() {
        if nu.is_cd() {
            continue;
        }
        let Some(region) = mem.region(nu) else {
            continue;
        };
        if region.budget() < floor {
            return Err(wf_err(format!(
                "region {nu} budget {} underflowed the floor {floor}",
                region.budget()
            )));
        }
    }
    Ok(())
}

/// Check 3: recorded per-region word counts agree with the slots. λGCforw's
/// `set` legitimately shrinks slots in place, so there the recomputed total
/// is only bounded above by the record.
fn audit_words(mem: &Memory, dialect: Dialect) -> Result<()> {
    for nu in mem.region_names() {
        if nu.is_cd() {
            continue;
        }
        let Some(region) = mem.region(nu) else {
            continue;
        };
        let recomputed: usize = region.iter().map(|(_, v)| value_words(v)).sum();
        let recorded = region.words();
        let bad = match dialect {
            Dialect::Forwarding => recomputed > recorded,
            Dialect::Basic | Dialect::Generational => recomputed != recorded,
        };
        if bad {
            return Err(wf_err(format!(
                "region {nu} records {recorded} words but its slots hold {recomputed}"
            )));
        }
    }
    Ok(())
}

/// Check 4: every address reachable from `root` hits a live slot.
fn audit_pointers(mem: &Memory, root: &Term) -> Result<()> {
    let mut work: Vec<(RegionName, u32)> = Vec::new();
    wf::collect_term_addrs(root, &mut work);
    let mut seen: HashSet<(RegionName, u32)> = HashSet::new();
    while let Some((nu, loc)) = work.pop() {
        if !seen.insert((nu, loc)) {
            continue;
        }
        match mem.get(nu, loc) {
            Ok(v) => wf::collect_value_addrs(v, &mut work),
            Err(e) => {
                return Err(wf_err(format!(
                    "reachable pointer {nu}.{loc} is dangling: {e}"
                )))
            }
        }
    }
    Ok(())
}

/// Check 5: `⊢ M : Ψ` proper — every (for λGCforw: reachable) stored value
/// checks against its `Ψ` entry. The current term is *not* re-typechecked
/// here: the heap side is what corruption perturbs, and skipping the term
/// keeps the audit identical across the substitution and environment
/// backends (whose in-flight terms differ only by pending substitutions).
fn audit_psi(mem: &Memory, dialect: Dialect, root: &Term) -> Result<()> {
    let checker = Checker::from_memory(dialect, mem);
    let mut ctx = Ctx::empty();
    ctx.delta = checker.psi_domain();
    let reachable = if dialect == Dialect::Forwarding {
        Some(wf::reachable_slots_in(mem, root))
    } else {
        None
    };
    for nu in mem.region_names() {
        if nu.is_cd() {
            continue;
        }
        let Some(region) = mem.region(nu) else {
            continue;
        };
        for (loc, stored) in region.iter() {
            if let Some(set) = &reachable {
                if !set.contains(&(nu, loc)) {
                    continue;
                }
            }
            let Some(entry) = mem.psi_entry(nu, loc) else {
                // Dead garbage discarded by widen (Def. 7.1) — only the
                // forwarding dialect may have Ψ-less slots.
                if dialect == Dialect::Forwarding {
                    continue;
                }
                return Err(wf_err(format!("slot {nu}.{loc} has no Ψ entry")));
            };
            checker
                .check_value(&ctx, stored, entry)
                .map_err(|e| wf_err(format!("slot {nu}.{loc} does not match its Ψ type: {e}")))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Program, SubstMachine};
    use crate::memory::{GrowthPolicy, MemConfig};
    use crate::syntax::{Region, Term, Value};
    use ps_ir::Symbol;

    fn config(track: bool) -> MemConfig {
        MemConfig {
            region_budget: 16,
            growth: GrowthPolicy::Fixed,
            track_types: track,
            max_heap_words: None,
            page_words: 8,
        }
    }

    /// A machine paused right after allocating a region and a pair, with
    /// the pair's address still live in the term.
    fn paused_machine(track: bool) -> SubstMachine {
        let r = Symbol::intern("vr");
        let x = Symbol::intern("vx");
        let y = Symbol::intern("vy");
        let p = Program {
            dialect: Dialect::Basic,
            code: vec![],
            main: Term::LetRegion {
                rvar: r,
                body: (Term::let_(
                    x,
                    crate::syntax::Op::Put(
                        Region::Var(r),
                        Value::pair(Value::Int(1), Value::Int(2)),
                    ),
                    Term::let_(
                        y,
                        crate::syntax::Op::Get(Value::Var(x)),
                        Term::Halt(Value::Int(0)),
                    ),
                ))
                .into(),
            },
        };
        let mut m = SubstMachine::load(&p, config(track));
        m.step().unwrap(); // let region
        m.step().unwrap(); // put
        m
    }

    #[test]
    fn clean_state_passes_tracked_and_untracked() {
        for track in [false, true] {
            let m = paused_machine(track);
            audit_state(m.memory(), Dialect::Basic, m.term()).unwrap();
        }
    }

    #[test]
    fn double_free_is_detected() {
        let mut m = paused_machine(false);
        let nu = m
            .memory()
            .region_names()
            .find(|n| !n.is_cd())
            .expect("data region");
        assert!(m.memory_mut().force_free_region(nu));
        let err = audit_state(m.memory(), Dialect::Basic, m.term()).unwrap_err();
        assert!(err.to_string().contains("dangling"), "{err}");
    }

    #[test]
    fn budget_underflow_is_detected() {
        let mut m = paused_machine(false);
        let nu = m
            .memory()
            .region_names()
            .find(|n| !n.is_cd())
            .expect("data region");
        assert!(m.memory_mut().corrupt_budget(nu, 0));
        let err = audit_state(m.memory(), Dialect::Basic, m.term()).unwrap_err();
        assert!(err.to_string().contains("underflowed"), "{err}");
    }

    #[test]
    fn truncation_is_detected_by_word_accounting() {
        let mut m = paused_machine(false);
        let nu = m
            .memory()
            .region_names()
            .find(|n| !n.is_cd())
            .expect("data region");
        // Shrink the pair to a single int; the recorded count still says 2.
        m.memory_mut().set(nu, 0, Value::Int(7)).unwrap();
        let err = audit_state(m.memory(), Dialect::Basic, m.term()).unwrap_err();
        assert!(err.to_string().contains("words"), "{err}");
    }

    #[test]
    fn tag_flip_is_detected_under_psi_tracking() {
        // Build a forwarding-dialect store with an `inl` object and flip it.
        let mut mem = Memory::new(config(true));
        let nu = mem.alloc_region();
        mem.put(nu, Value::inl(Value::Int(3))).unwrap();
        let root = Term::Halt(Value::Addr(nu, 0));
        audit_state(&mem, Dialect::Forwarding, &root).unwrap();
        mem.set(nu, 0, Value::inr(Value::Int(3))).unwrap();
        let err = audit_state(&mem, Dialect::Forwarding, &root).unwrap_err();
        assert!(err.to_string().contains("Ψ"), "{err}");
    }

    #[test]
    fn audit_needs_no_type_tracking_for_structural_checks() {
        let mut mem = Memory::new(config(false));
        let nu = mem.alloc_region();
        mem.put(nu, Value::Int(1)).unwrap();
        let root = Term::Halt(Value::Addr(nu, 5)); // past the end
        let err = audit_state(&mem, Dialect::Basic, &root).unwrap_err();
        assert!(err.to_string().contains("dangling"), "{err}");
    }

    #[test]
    fn forwarding_word_check_is_an_upper_bound() {
        let mut mem = Memory::new(config(false));
        let nu = mem.alloc_region();
        mem.put(nu, Value::inl(Value::pair(Value::Int(1), Value::Int(2))))
            .unwrap();
        // A legitimate forwarding install shrinks the slot in place.
        mem.set(nu, 0, Value::inr(Value::Addr(nu, 0))).unwrap();
        audit_words(&mem, Dialect::Forwarding).unwrap();
        assert!(audit_words(&mem, Dialect::Basic).is_err());
    }

    #[test]
    fn stale_page_header_is_detected_by_full_audit() {
        let mut mem = Memory::new(config(false));
        let nu = mem.alloc_region();
        mem.put(nu, Value::Int(1)).unwrap();
        let root = Term::Halt(Value::Int(0));
        audit_state(&mem, Dialect::Basic, &root).unwrap();
        let pid = mem.live_page_ids()[0];
        assert!(mem.corrupt_page_header(pid));
        let err = audit_state(&mem, Dialect::Basic, &root).unwrap_err();
        assert!(err.to_string().contains("occupancy"), "{err}");
    }

    #[test]
    fn dirty_audit_passes_clean_and_detects_stale_header() {
        let mut mem = Memory::new(config(false));
        let nu = mem.alloc_region();
        mem.put(nu, Value::Int(1)).unwrap();
        audit_dirty(&mut mem, Dialect::Basic).unwrap();
        assert!(
            mem.dirty_page_ids().is_empty(),
            "a passing audit acknowledges"
        );
        let pid = mem.live_page_ids()[0];
        assert!(mem.corrupt_page_header(pid));
        let err = audit_dirty(&mut mem, Dialect::Basic).unwrap_err();
        assert!(err.to_string().contains("occupancy"), "{err}");
        assert_eq!(
            mem.dirty_page_ids(),
            vec![pid],
            "a failing audit leaves the dirty set for diagnostics"
        );
    }

    #[test]
    fn dirty_audit_detects_truncation_in_a_dirty_slot() {
        let mut mem = Memory::new(config(false));
        let nu = mem.alloc_region();
        mem.put(nu, Value::pair(Value::Int(1), Value::Int(2)))
            .unwrap();
        audit_dirty(&mut mem, Dialect::Basic).unwrap();
        mem.set(nu, 0, Value::Int(7)).unwrap();
        let err = audit_dirty(&mut mem, Dialect::Basic).unwrap_err();
        assert!(err.to_string().contains("words"), "{err}");
    }

    #[test]
    fn dirty_audit_detects_dangling_pointer_written_into_a_slot() {
        let mut mem = Memory::new(config(false));
        let nu = mem.alloc_region();
        mem.put(nu, Value::Int(1)).unwrap();
        audit_dirty(&mut mem, Dialect::Basic).unwrap();
        // Write a pointer past the end of the region (word counts stay
        // right: both values are one word).
        mem.set(nu, 0, Value::Addr(nu, 77)).unwrap();
        let err = audit_dirty(&mut mem, Dialect::Basic).unwrap_err();
        assert!(err.to_string().contains("dangling"), "{err}");
    }

    #[test]
    fn dirty_audit_detects_tag_flip_under_psi_tracking() {
        let mut mem = Memory::new(config(true));
        let nu = mem.alloc_region();
        mem.put(nu, Value::inl(Value::Int(3))).unwrap();
        audit_dirty(&mut mem, Dialect::Forwarding).unwrap();
        mem.set(nu, 0, Value::inr(Value::Int(3))).unwrap();
        let err = audit_dirty(&mut mem, Dialect::Forwarding).unwrap_err();
        assert!(err.to_string().contains("Ψ"), "{err}");
    }

    #[test]
    fn dirty_audit_skips_clean_slots() {
        let mut mem = Memory::new(config(false));
        let nu = mem.alloc_region();
        mem.put(nu, Value::pair(Value::Int(1), Value::Int(2)))
            .unwrap();
        let loc2 = mem
            .put(nu, Value::pair(Value::Int(3), Value::Int(4)))
            .unwrap();
        audit_dirty(&mut mem, Dialect::Basic).unwrap();
        // Corrupt slot 0 *without* dirtying it is impossible through the
        // public API; instead verify that dirtying only slot 2 audits only
        // slot 2 (the truncation there is found, proving the walk ran).
        mem.set(nu, loc2, Value::Int(9)).unwrap();
        let err = audit_dirty(&mut mem, Dialect::Basic).unwrap_err();
        assert!(err.to_string().contains("words"), "{err}");
    }

    #[test]
    fn frees_route_to_the_full_walk() {
        let mut m = paused_machine(false);
        let nu = m
            .memory()
            .region_names()
            .find(|n| !n.is_cd())
            .expect("data region");
        assert!(m.memory_mut().force_free_region(nu));
        assert!(m.memory().wants_full_audit());
        // The full walk sees the dangling address still live in the term.
        let err = audit_state(m.memory(), Dialect::Basic, m.term()).unwrap_err();
        assert!(err.to_string().contains("dangling"), "{err}");
    }
}
