//! Pretty-printing of λGC in a notation close to the paper's figures.
//!
//! # Examples
//!
//! ```
//! use ps_gc_lang::pretty;
//! use ps_gc_lang::syntax::{Region, Tag, Ty};
//! let sigma = Ty::m(Region::cd(), Tag::prod(Tag::Int, Tag::Int));
//! assert_eq!(pretty::ty_to_string(&sigma), "M[cd](Int × Int)");
//! ```

use ps_ir::Doc;

use crate::syntax::{CodeDef, Op, Region, Tag, Term, Ty, Value};

fn rgn(r: &Region) -> Doc {
    Doc::text(r.to_string())
}

fn rgns(rs: &[Region]) -> Doc {
    Doc::join(rs.iter().map(rgn), Doc::text(", "))
}

/// Renders a tag.
pub fn tag(t: &Tag) -> Doc {
    tag_prec(t, 0)
}

fn tag_prec(t: &Tag, prec: u8) -> Doc {
    let d = match t {
        Tag::Var(x) => Doc::text(x.to_string()),
        Tag::AnyArrow(x) => Doc::text(format!("arrow({x})")),
        Tag::Int => Doc::text("Int"),
        Tag::Prod(a, b) => tag_prec(a, 2)
            .append(Doc::text(" × "))
            .append(tag_prec(b, 2)),
        Tag::Arrow(args) => Doc::text("(")
            .append(Doc::join(
                args.iter().map(|a| tag_prec(a, 0)),
                Doc::text(", "),
            ))
            .append(Doc::text(") → 0")),
        Tag::Exist(x, body) => Doc::text(format!("∃{x}.")).append(tag_prec(body, 1)),
        Tag::Lam(x, body) => Doc::text(format!("λ{x}.")).append(tag_prec(body, 1)),
        Tag::App(f, a) => tag_prec(f, 2).append(Doc::text(" ")).append(tag_prec(a, 3)),
    };
    let needs = match t {
        Tag::Prod(..) => prec >= 2,
        Tag::Exist(..) | Tag::Lam(..) => prec >= 1,
        Tag::App(..) => prec >= 3,
        _ => false,
    };
    if needs {
        Doc::text("(").append(d).append(Doc::text(")"))
    } else {
        d
    }
}

/// Renders a type.
pub fn ty(t: &Ty) -> Doc {
    ty_prec(t, 0)
}

fn ty_prec(t: &Ty, prec: u8) -> Doc {
    let d = match t {
        Ty::Int => Doc::text("int"),
        Ty::Prod(a, b) => ty_prec(a, 2).append(Doc::text(" × ")).append(ty_prec(b, 2)),
        Ty::Code { tvars, rvars, args } => {
            let tv = Doc::join(
                tvars.iter().map(|(t, k)| Doc::text(format!("{t}:{k}"))),
                Doc::text(", "),
            );
            let rv = Doc::join(
                rvars.iter().map(|r| Doc::text(r.to_string())),
                Doc::text(", "),
            );
            let ar = Doc::join(args.iter().map(|a| ty_prec(a, 0)), Doc::text(", "));
            Doc::text("∀[")
                .append(tv)
                .append(Doc::text("]["))
                .append(rv)
                .append(Doc::text("]("))
                .append(ar)
                .append(Doc::text(") → 0"))
        }
        Ty::ExistTag { tvar, kind, body } => {
            Doc::text(format!("∃{tvar}:{kind}.")).append(ty_prec(body, 1))
        }
        Ty::At(inner, r) => ty_prec(inner, 2).append(Doc::text(" at ")).append(rgn(r)),
        Ty::M(r, t) => Doc::text("M[")
            .append(rgn(r))
            .append(Doc::text("]("))
            .append(tag(t))
            .append(Doc::text(")")),
        Ty::C(f, o, t) => Doc::text("C[")
            .append(rgn(f))
            .append(Doc::text(", "))
            .append(rgn(o))
            .append(Doc::text("]("))
            .append(tag(t))
            .append(Doc::text(")")),
        Ty::MGen(y, o, t) => Doc::text("M[")
            .append(rgn(y))
            .append(Doc::text(", "))
            .append(rgn(o))
            .append(Doc::text("]("))
            .append(tag(t))
            .append(Doc::text(")")),
        Ty::Alpha(a) => Doc::text(a.to_string()),
        Ty::ExistAlpha {
            avar,
            regions,
            body,
        } => Doc::text(format!("∃{avar}:{{"))
            .append(rgns(regions))
            .append(Doc::text("}."))
            .append(ty_prec(body, 1)),
        Ty::Trans {
            tags,
            regions,
            args,
            rho,
        } => {
            let ts = Doc::join(tags.iter().map(|t| tag(t)), Doc::text(", "));
            let rv = Doc::join(
                regions.iter().map(|r| Doc::text(r.to_string())),
                Doc::text(", "),
            );
            let ar = Doc::join(args.iter().map(|a| ty_prec(a, 0)), Doc::text(", "));
            Doc::text("∀⟦")
                .append(ts)
                .append(Doc::text("⟧["))
                .append(rv)
                .append(Doc::text("]("))
                .append(ar)
                .append(Doc::text(") →"))
                .append(rgn(rho))
                .append(Doc::text(" 0"))
        }
        Ty::Left(a) => Doc::text("left ").append(ty_prec(a, 3)),
        Ty::Right(a) => Doc::text("right ").append(ty_prec(a, 3)),
        Ty::Sum(a, b) => Doc::text("left ")
            .append(ty_prec(a, 3))
            .append(Doc::text(" + right "))
            .append(ty_prec(b, 3)),
        Ty::ExistRgn { rvar, bound, body } => Doc::text(format!("∃{rvar}∈{{"))
            .append(rgns(bound))
            .append(Doc::text("}.("))
            .append(ty_prec(body, 0))
            .append(Doc::text(format!(" at {rvar})"))),
    };
    let needs = match t {
        Ty::Prod(..) | Ty::At(..) | Ty::Sum(..) | Ty::Left(..) | Ty::Right(..) => prec >= 2,
        Ty::ExistTag { .. } | Ty::ExistAlpha { .. } | Ty::Code { .. } | Ty::Trans { .. } => {
            prec >= 1
        }
        _ => false,
    };
    if needs {
        Doc::text("(").append(d).append(Doc::text(")"))
    } else {
        d
    }
}

/// Renders a value.
pub fn value(v: &Value) -> Doc {
    match v {
        Value::Int(n) => Doc::text(n.to_string()),
        Value::Var(x) => Doc::text(x.to_string()),
        Value::Addr(nu, l) => Doc::text(format!("{nu}.{l}")),
        Value::Pair(a, b) => Doc::text("(")
            .append(value(a))
            .append(Doc::text(", "))
            .append(value(b))
            .append(Doc::text(")")),
        Value::PackTag {
            tvar,
            kind,
            tag: t,
            val,
            body_ty,
        } => Doc::text(format!("⟨{tvar}:{kind} = "))
            .append(tag(t))
            .append(Doc::text(", "))
            .append(value(val))
            .append(Doc::text(" : "))
            .append(ty(body_ty))
            .append(Doc::text("⟩")),
        Value::PackAlpha {
            avar,
            regions,
            witness,
            val,
            body_ty,
        } => Doc::text(format!("⟨{avar}:{{"))
            .append(rgns(regions))
            .append(Doc::text("} = "))
            .append(ty(witness))
            .append(Doc::text(", "))
            .append(value(val))
            .append(Doc::text(" : "))
            .append(ty(body_ty))
            .append(Doc::text("⟩")),
        Value::PackRgn {
            rvar,
            witness,
            val,
            bound,
            body_ty,
        } => Doc::text(format!("⟨{rvar}∈{{"))
            .append(rgns(bound))
            .append(Doc::text("} = "))
            .append(rgn(witness))
            .append(Doc::text(", "))
            .append(value(val))
            .append(Doc::text(" : "))
            .append(ty(body_ty))
            .append(Doc::text("⟩")),
        Value::TagApp(f, ts, rs) => value(f)
            .append(Doc::text("⟦"))
            .append(Doc::join(ts.iter().map(tag), Doc::text(", ")))
            .append(Doc::text("; "))
            .append(rgns(rs))
            .append(Doc::text("⟧")),
        Value::Code(def) => Doc::text(format!("<code {}>", def.name)),
        Value::Inl(x) => Doc::text("inl ").append(value(x)),
        Value::Inr(x) => Doc::text("inr ").append(value(x)),
    }
}

/// Renders an operation.
pub fn op(o: &Op) -> Doc {
    match o {
        Op::Val(v) => value(v),
        Op::Proj(i, v) => Doc::text(format!("π{i} ")).append(value(v)),
        Op::Put(r, v) => Doc::text("put[")
            .append(rgn(r))
            .append(Doc::text("]"))
            .append(value(v)),
        Op::Get(v) => Doc::text("get ").append(value(v)),
        Op::Strip(v) => Doc::text("strip ").append(value(v)),
        Op::Prim(p, a, b) => value(a)
            .append(Doc::text(format!(" {p} ")))
            .append(value(b)),
    }
}

/// Renders a term.
pub fn term(e: &Term) -> Doc {
    match e {
        Term::App {
            f,
            tags,
            regions,
            args,
        } => value(f)
            .append(Doc::text("["))
            .append(Doc::join(tags.iter().map(tag), Doc::text(", ")))
            .append(Doc::text("]["))
            .append(rgns(regions))
            .append(Doc::text("]("))
            .append(Doc::join(args.iter().map(value), Doc::text(", ")))
            .append(Doc::text(")")),
        Term::Let { .. } => {
            let mut doc = Doc::nil();
            let mut cur = e;
            while let Term::Let { x, op: o, body } = cur {
                doc = doc
                    .append(Doc::group(
                        Doc::text(format!("let {x} = "))
                            .append(op(o))
                            .append(Doc::text(" in")),
                    ))
                    .append(Doc::hardline());
                cur = body;
            }
            doc.append(term(cur))
        }
        Term::Halt(v) => Doc::text("halt ").append(value(v)),
        Term::IfGc { rho, full, cont } => Doc::text("ifgc ")
            .append(rgn(rho))
            .append(Doc::text(" ("))
            .append(Doc::hardline().append(term(full)).nest(2))
            .append(Doc::hardline())
            .append(Doc::text(")"))
            .append(Doc::hardline())
            .append(term(cont)),
        Term::OpenTag { pkg, tvar, x, body } => Doc::text("open ")
            .append(value(pkg))
            .append(Doc::text(format!(" as ⟨{tvar}, {x}⟩ in")))
            .append(Doc::hardline())
            .append(term(body)),
        Term::OpenAlpha { pkg, avar, x, body } => Doc::text("openα ")
            .append(value(pkg))
            .append(Doc::text(format!(" as ⟨{avar}, {x}⟩ in")))
            .append(Doc::hardline())
            .append(term(body)),
        Term::OpenRgn { pkg, rvar, x, body } => Doc::text("openρ ")
            .append(value(pkg))
            .append(Doc::text(format!(" as ⟨{rvar}, {x}⟩ in")))
            .append(Doc::hardline())
            .append(term(body)),
        Term::LetRegion { rvar, body } => Doc::text(format!("let region {rvar} in"))
            .append(Doc::hardline())
            .append(term(body)),
        Term::Only { regions, body } => Doc::text("only {")
            .append(rgns(regions))
            .append(Doc::text("} in"))
            .append(Doc::hardline())
            .append(term(body)),
        Term::Typecase {
            tag: t,
            int_arm,
            arrow_arm,
            prod_arm,
            exist_arm,
        } => Doc::text("typecase ")
            .append(tag(t))
            .append(Doc::text(" of"))
            .append(
                Doc::hardline()
                    .append(Doc::text("int ⇒ ").append(term(int_arm)))
                    .append(Doc::hardline())
                    .append(Doc::text("λ ⇒ ").append(term(arrow_arm)))
                    .append(Doc::hardline())
                    .append(
                        Doc::text(format!("{} × {} ⇒ ", prod_arm.0, prod_arm.1))
                            .append(term(&prod_arm.2)),
                    )
                    .append(Doc::hardline())
                    .append(Doc::text(format!("∃{} ⇒ ", exist_arm.0)).append(term(&exist_arm.1)))
                    .nest(2),
            ),
        Term::IfLeft {
            x,
            scrut,
            left,
            right,
        } => Doc::text(format!("ifleft {x} = "))
            .append(value(scrut))
            .append(Doc::text(" then"))
            .append(Doc::hardline().append(term(left)).nest(2))
            .append(Doc::hardline())
            .append(Doc::text("else"))
            .append(Doc::hardline().append(term(right)).nest(2)),
        Term::Set { dst, src, body } => Doc::text("set ")
            .append(value(dst))
            .append(Doc::text(" := "))
            .append(value(src))
            .append(Doc::text(" ;"))
            .append(Doc::hardline())
            .append(term(body)),
        Term::Widen {
            x,
            from,
            to,
            tag: t,
            v,
            body,
        } => Doc::text(format!("let {x} = widen["))
            .append(rgn(from))
            .append(Doc::text(" → "))
            .append(rgn(to))
            .append(Doc::text("]["))
            .append(tag(t))
            .append(Doc::text("]("))
            .append(value(v))
            .append(Doc::text(") in"))
            .append(Doc::hardline())
            .append(term(body)),
        Term::IfReg { r1, r2, eq, ne } => Doc::text("ifreg (")
            .append(rgn(r1))
            .append(Doc::text(" = "))
            .append(rgn(r2))
            .append(Doc::text(") then"))
            .append(Doc::hardline().append(term(eq)).nest(2))
            .append(Doc::hardline())
            .append(Doc::text("else"))
            .append(Doc::hardline().append(term(ne)).nest(2)),
        Term::If0 {
            scrut,
            zero,
            nonzero,
        } => Doc::text("if0 ")
            .append(value(scrut))
            .append(Doc::text(" then"))
            .append(Doc::hardline().append(term(zero)).nest(2))
            .append(Doc::hardline())
            .append(Doc::text("else"))
            .append(Doc::hardline().append(term(nonzero)).nest(2)),
    }
}

/// Renders a code definition in `fix f[...][...](...)` style (Fig. 4/12).
pub fn code_def(def: &CodeDef) -> Doc {
    let tv = Doc::join(
        def.tvars.iter().map(|(t, k)| Doc::text(format!("{t}:{k}"))),
        Doc::text(", "),
    );
    let rv = Doc::join(
        def.rvars.iter().map(|r| Doc::text(r.to_string())),
        Doc::text(", "),
    );
    let ps = Doc::join(
        def.params
            .iter()
            .map(|(x, t)| Doc::text(format!("{x} : ")).append(ty(t))),
        Doc::text(", "),
    );
    Doc::text(format!("fix {}[", def.name))
        .append(tv)
        .append(Doc::text("]["))
        .append(rv)
        .append(Doc::text("]("))
        .append(ps)
        .append(Doc::text(")."))
        .append(Doc::hardline().append(term(&def.body)).nest(2))
}

/// Convenience: a tag rendered to a string at width 100.
pub fn tag_to_string(t: &Tag) -> String {
    tag(t).render(100)
}

/// Convenience: a type rendered to a string at width 100.
pub fn ty_to_string(t: &Ty) -> String {
    ty(t).render(100)
}

/// Convenience: a term rendered to a string at width 100.
pub fn term_to_string(e: &Term) -> String {
    term(e).render(100)
}

/// Convenience: a code definition rendered to a string at width 100.
pub fn code_def_to_string(d: &CodeDef) -> String {
    code_def(d).render(100)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ps_ir::Symbol;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    #[test]
    fn tags_render() {
        assert_eq!(tag_to_string(&Tag::Int), "Int");
        assert_eq!(tag_to_string(&Tag::prod(Tag::Int, Tag::Int)), "Int × Int");
        assert_eq!(
            tag_to_string(&Tag::exist(s("t"), Tag::prod(Tag::Var(s("t")), Tag::Int))),
            "∃t.t × Int"
        );
        assert_eq!(tag_to_string(&Tag::arrow([Tag::Int])), "(Int) → 0");
    }

    #[test]
    fn types_render() {
        assert_eq!(ty_to_string(&Ty::Int.at(Region::cd())), "int at cd");
        assert_eq!(
            ty_to_string(&Ty::m(Region::Var(s("r1")), Tag::Var(s("t")))),
            "M[r1](t)"
        );
        assert_eq!(
            ty_to_string(&Ty::sum(Ty::Int, Ty::Int)),
            "left int + right int"
        );
    }

    #[test]
    fn terms_render() {
        let e = Term::let_(
            s("x"),
            Op::Val(Value::Int(1)),
            Term::Halt(Value::Var(s("x"))),
        );
        let out = term_to_string(&e);
        assert!(out.contains("let x = 1 in"));
        assert!(out.contains("halt x"));
    }

    #[test]
    fn code_defs_render_like_fig4() {
        let def = CodeDef {
            name: s("gc"),
            tvars: vec![(s("t"), crate::syntax::Kind::Omega)],
            rvars: vec![s("r1")],
            params: vec![(s("x"), Ty::m(Region::Var(s("r1")), Tag::Var(s("t"))))],
            body: Term::Halt(Value::Int(0)),
        };
        let out = code_def_to_string(&def);
        assert!(out.starts_with("fix gc[t:Ω][r1](x : M[r1](t))."));
    }

    #[test]
    fn values_render() {
        assert_eq!(value(&Value::inl(Value::Int(1))).render(80), "inl 1");
        assert_eq!(
            value(&Value::pair(Value::Int(1), Value::Int(2))).render(80),
            "(1, 2)"
        );
    }
}
