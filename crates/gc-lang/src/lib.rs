//! # ps-gc-lang — the λGC family of calculi
//!
//! This crate implements the target language of *Principled Scavenging*
//! (Monnier, Saha, Shao; PLDI 2001) and its two extensions:
//!
//! * **λGC** (§4–6): a closed CPS language with regions (`let region`,
//!   `put`/`get`, `only`) and intensional type analysis (`typecase` over a
//!   tag language), plus the hard-wired Typerec `Mρ(τ)` that states the
//!   mutator–collector contract.
//! * **λGCforw** (§7): sums, tag bits, `set` and the `widen` cast, enabling
//!   efficient forwarding pointers.
//! * **λGCgen** (§8): region existentials and `ifreg`, enabling
//!   generational collection.
//!
//! The pieces:
//!
//! * [`syntax`] — ASTs (Fig. 2 + extensions) with a [`syntax::Dialect`]
//!   marker selecting the calculus;
//! * [`intern`] — the hash-consed representation behind tags, types,
//!   terms and values: global lock-free-on-read arenas, id handles,
//!   free-variable fingerprints, memoized normalization and
//!   α-canonicalization;
//! * [`tags`] — tag kinding and normalization (Props. 6.1/6.2);
//! * [`moper`] — the `M`/`C`/`M_gen` operators and type equality;
//! * [`subst`] — capture-avoiding simultaneous substitution;
//! * [`tyck`] — the static semantics (Figs. 6, 8, 10);
//! * [`memory`]/[`machine`] — the allocation semantics (Fig. 5) on real
//!   region-backed stores, with statistics;
//! * [`env_machine`] — an environment-based (CEK-style) fast path for the
//!   same semantics: no per-step substitution, continuations shared as
//!   interned [`intern::TermId`]s; observationally identical to
//!   [`machine`] (including statistics), selected via
//!   [`machine::Backend`];
//! * [`bytecode`] — a register-based bytecode VM for the same semantics:
//!   interned programs compiled once to a flat instruction stream with
//!   compile-time slot resolution and optional superinstructions; the
//!   third [`machine::Backend`], observationally identical to the other
//!   two;
//! * [`wf`] — machine-state well-formedness (`⊢ (M,e)`, Fig. 7), the
//!   engine behind the preservation/progress property tests;
//! * [`verify`] — the runtime heap-invariant auditor: Fig. 7's `⊢ M : Ψ`
//!   checks (plus structural invariants that need no type tracking) on a
//!   live machine state, runnable on demand or every N steps;
//! * [`faults`] — seeded, deterministic injection of classic GC bugs, the
//!   adversarial harness proving the auditor fires;
//! * [`pretty`] — rendering in the paper's notation;
//! * [`ablation`] — the measurable version of §2.2.1's S-vs-M argument.
//!
//! # Examples
//!
//! Run a tiny λGC program:
//!
//! ```
//! use ps_gc_lang::machine::{SubstMachine, Outcome, Program};
//! use ps_gc_lang::memory::MemConfig;
//! use ps_gc_lang::syntax::{Dialect, Term, Value};
//!
//! let program = Program {
//!     dialect: Dialect::Basic,
//!     code: vec![],
//!     main: Term::Halt(Value::Int(42)),
//! };
//! let mut m = SubstMachine::load(&program, MemConfig::default());
//! assert_eq!(m.run(10).unwrap(), Outcome::Halted(42));
//! ```

pub mod ablation;
pub mod bytecode;
pub mod env_machine;
pub mod error;
pub mod faults;
pub mod intern;
pub mod machine;
pub mod memory;
pub mod moper;
pub mod parse;
pub mod pretty;
pub mod reference;
pub mod subst;
pub mod syntax;
pub mod tags;
pub mod telemetry;
pub mod tyck;
pub mod verify;
pub mod wf;
