//! Hash-consed tag and type nodes: ids, memo tables, free-variable
//! fingerprints, and α-canonicalization.
//!
//! Every [`Tag`] and [`Ty`] node in the crate stores its children as
//! [`TagId`]/[`TyId`] handles into two global [`ps_ir::Interner`] arenas, so
//! structurally equal subtrees are stored exactly once and *structural
//! equality of whole trees is equality of `u32` ids* (the derived
//! `PartialEq` on nodes compares children by id). On top of the arenas this
//! module keeps side tables, all keyed by id:
//!
//! * **normalization memos** — [`crate::tags::normalize`] and
//!   [`crate::moper::normalize_ty`] record their result (and, for tags, the
//!   β-step count, so counting callers see identical numbers on memo hits)
//!   once per node;
//! * **free-variable fingerprints** ([`tag_fv`], [`ty_fv`]) — the sorted
//!   free variables of a node, computed once and leaked, which lets
//!   [`crate::subst::Subst`] skip no-op substitutions in O(domain) without
//!   walking the tree (generalizing the closed-range fast path of the
//!   environment machine to *every* substitution);
//! * **α-canonical forms** ([`canon_tag`], [`canon_ty`]) — each binder is
//!   renamed to a fixed placeholder and each bound variable to its
//!   per-namespace de Bruijn index (spelled `!i` / `!ri` / `!ai`; `!` is
//!   unproducible by surface syntax, and `gensym` uses `%`, so the names
//!   are collision-free). Region *sets* (`∃α:∆` and `∃r∈∆` bounds) are
//!   sorted and deduplicated, matching the set semantics of the paper's
//!   `∆`s. Two nodes are α-equivalent iff their canonical ids are equal,
//!   which makes `alpha_eq` an integer compare after the first call.
//!
//! Locks are never held across recursive work: every table is probed under
//! a read lock, computed unlocked, and inserted under a short write lock.
//! Interned nodes are leaked (`&'static`), so a [`TagId`] can be
//! dereferenced — it implements `Deref<Target = Tag>` — for the lifetime of
//! the process.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::ops::Deref;
use std::sync::{OnceLock, RwLock};

use ps_ir::{Interner, Symbol};

use crate::syntax::{Dialect, Region, Tag, Ty};

// ----- arenas -------------------------------------------------------------

static TAGS: RwLock<Option<Interner<Tag>>> = RwLock::new(None);
static TYS: RwLock<Option<Interner<Ty>>> = RwLock::new(None);

/// Acquires a read lock even if a writer panicked mid-update. The arenas
/// and memo tables are append-only caches, so a poisoned value is still
/// internally consistent — at worst it misses the entry the panicking
/// thread was about to add.
fn read_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Write-lock counterpart of [`read_lock`].
fn write_lock<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn arena_intern<T: Eq + Hash>(lock: &'static RwLock<Option<Interner<T>>>, node: T) -> u32 {
    if let Some(id) = read_lock(lock).as_ref().and_then(|a| a.lookup(&node)) {
        return id;
    }
    let mut guard = write_lock(lock);
    guard.get_or_insert_with(Interner::new).insert(node)
}

// Ids are minted only by `arena_intern`, so the arena necessarily exists
// when one is dereferenced; an empty arena here is unreachable.
#[allow(clippy::expect_used)]
fn arena_get<T: Eq + Hash>(lock: &'static RwLock<Option<Interner<T>>>, id: u32) -> &'static T {
    read_lock(lock)
        .as_ref()
        .expect("id minted by this arena")
        .get(id)
}

/// Interns a tag node, returning its id.
pub fn intern_tag(node: Tag) -> TagId {
    TagId(arena_intern(&TAGS, node))
}

/// Interns a type node, returning its id.
pub fn intern_ty(node: Ty) -> TyId {
    TyId(arena_intern(&TYS, node))
}

/// Handle to an interned [`Tag`] node: `Copy`, compared and hashed as a
/// `u32`. Dereferences to the `&'static` node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagId(u32);

/// Handle to an interned [`Ty`] node: `Copy`, compared and hashed as a
/// `u32`. Dereferences to the `&'static` node.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TyId(u32);

impl TagId {
    /// The interned node.
    pub fn node(self) -> &'static Tag {
        arena_get(&TAGS, self.0)
    }

    /// The raw arena index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl TyId {
    /// The interned node.
    pub fn node(self) -> &'static Ty {
        arena_get(&TYS, self.0)
    }

    /// The raw arena index.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl Deref for TagId {
    type Target = Tag;
    fn deref(&self) -> &Tag {
        self.node()
    }
}

impl Deref for TyId {
    type Target = Ty;
    fn deref(&self) -> &Ty {
        self.node()
    }
}

impl fmt::Debug for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.node().fmt(f)
    }
}

impl fmt::Debug for TyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.node().fmt(f)
    }
}

impl From<Tag> for TagId {
    fn from(node: Tag) -> TagId {
        intern_tag(node)
    }
}

impl From<Ty> for TyId {
    fn from(node: Ty) -> TyId {
        intern_ty(node)
    }
}

// ----- memo tables --------------------------------------------------------

/// A small mixing hasher for id-keyed memo tables. Unlike
/// `ps_ir::symbol::SymbolHasher` (which *replaces* its state and is only
/// sound for single-field keys), this folds every write into the state, so
/// composite keys like `(TyId, Dialect)` hash correctly.
#[derive(Default)]
struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }
    fn write_u32(&mut self, n: u32) {
        self.0 = (self.0 ^ u64::from(n)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
}

type Memo<K, V> = RwLock<Option<HashMap<K, V, BuildHasherDefault<IdHasher>>>>;

static TAG_NORM: Memo<TagId, (TagId, u64)> = RwLock::new(None);
static TY_NORM: Memo<(TyId, Dialect), TyId> = RwLock::new(None);
static TAG_CANON: Memo<TagId, TagId> = RwLock::new(None);
static TY_CANON: Memo<TyId, TyId> = RwLock::new(None);
static TAG_FV: Memo<TagId, &'static [Symbol]> = RwLock::new(None);
static TY_FV: Memo<TyId, &'static TyFv> = RwLock::new(None);

fn memo_get<K: Eq + Hash, V: Copy>(memo: &Memo<K, V>, key: &K) -> Option<V> {
    read_lock(memo).as_ref().and_then(|t| t.get(key).copied())
}

fn memo_put<K: Eq + Hash, V>(memo: &Memo<K, V>, key: K, value: V) {
    write_lock(memo)
        .get_or_insert_with(HashMap::default)
        .insert(key, value);
}

fn memo_len<K, V>(memo: &Memo<K, V>) -> usize {
    read_lock(memo).as_ref().map_or(0, HashMap::len)
}

/// Memoized result of [`crate::tags::normalize`]: normal form and β-step
/// count for the subtree.
pub(crate) fn tag_norm_lookup(id: TagId) -> Option<(TagId, u64)> {
    memo_get(&TAG_NORM, &id)
}

pub(crate) fn tag_norm_insert(id: TagId, nf: TagId, steps: u64) {
    memo_put(&TAG_NORM, id, (nf, steps));
}

/// Memoized result of [`crate::moper::normalize_ty`] for one dialect.
pub(crate) fn ty_norm_lookup(id: TyId, dialect: Dialect) -> Option<TyId> {
    memo_get(&TY_NORM, &(id, dialect))
}

pub(crate) fn ty_norm_insert(id: TyId, dialect: Dialect, nf: TyId) {
    memo_put(&TY_NORM, (id, dialect), nf);
}

// ----- free-variable fingerprints -----------------------------------------

/// The free variables of a type node, split by namespace. Each slice is
/// sorted and deduplicated; membership is a binary search.
#[derive(Debug)]
pub struct TyFv {
    /// Free tag variables (`t`, including `AnyArrow` refinements).
    pub tvars: Box<[Symbol]>,
    /// Free region variables (`r`).
    pub rvars: Box<[Symbol]>,
    /// Free type variables (`α`).
    pub avars: Box<[Symbol]>,
}

impl TyFv {
    /// No free variables in any namespace?
    pub fn is_closed(&self) -> bool {
        self.tvars.is_empty() && self.rvars.is_empty() && self.avars.is_empty()
    }
}

fn sorted(mut v: Vec<Symbol>) -> Vec<Symbol> {
    v.sort_unstable();
    v.dedup();
    v
}

/// The sorted free tag variables of a tag, computed once per node.
pub fn tag_fv(id: TagId) -> &'static [Symbol] {
    if let Some(fv) = memo_get(&TAG_FV, &id) {
        return fv;
    }
    let mut out: Vec<Symbol> = Vec::new();
    match id.node() {
        Tag::Var(t) | Tag::AnyArrow(t) => out.push(*t),
        Tag::Int => {}
        Tag::Prod(a, b) | Tag::App(a, b) => {
            out.extend_from_slice(tag_fv(*a));
            out.extend_from_slice(tag_fv(*b));
        }
        Tag::Arrow(args) => {
            for a in args.iter() {
                out.extend_from_slice(tag_fv(*a));
            }
        }
        Tag::Exist(t, body) | Tag::Lam(t, body) => {
            out.extend(tag_fv(*body).iter().copied().filter(|x| x != t));
        }
    }
    let leaked: &'static [Symbol] = Box::leak(sorted(out).into_boxed_slice());
    memo_put(&TAG_FV, id, leaked);
    leaked
}

/// The free variables of a type (all three namespaces), computed once per
/// node.
pub fn ty_fv(id: TyId) -> &'static TyFv {
    if let Some(fv) = memo_get(&TY_FV, &id) {
        return fv;
    }
    let mut tvars: Vec<Symbol> = Vec::new();
    let mut rvars: Vec<Symbol> = Vec::new();
    let mut avars: Vec<Symbol> = Vec::new();
    {
        fn add_child(
            child: TyId,
            tvars: &mut Vec<Symbol>,
            rvars: &mut Vec<Symbol>,
            avars: &mut Vec<Symbol>,
        ) {
            let fv = ty_fv(child);
            tvars.extend_from_slice(&fv.tvars);
            rvars.extend_from_slice(&fv.rvars);
            avars.extend_from_slice(&fv.avars);
        }
        fn add_rgn(rvars: &mut Vec<Symbol>, rho: &Region) {
            if let Region::Var(r) = rho {
                rvars.push(*r);
            }
        }
        match id.node() {
            Ty::Int => {}
            Ty::Alpha(a) => avars.push(*a),
            Ty::Prod(a, b) | Ty::Sum(a, b) => {
                add_child(*a, &mut tvars, &mut rvars, &mut avars);
                add_child(*b, &mut tvars, &mut rvars, &mut avars);
            }
            Ty::Left(a) | Ty::Right(a) => add_child(*a, &mut tvars, &mut rvars, &mut avars),
            Ty::At(inner, rho) => {
                add_child(*inner, &mut tvars, &mut rvars, &mut avars);
                add_rgn(&mut rvars, rho);
            }
            Ty::M(rho, tag) => {
                add_rgn(&mut rvars, rho);
                tvars.extend_from_slice(tag_fv(*tag));
            }
            Ty::C(r1, r2, tag) | Ty::MGen(r1, r2, tag) => {
                add_rgn(&mut rvars, r1);
                add_rgn(&mut rvars, r2);
                tvars.extend_from_slice(tag_fv(*tag));
            }
            Ty::Code {
                tvars: tv,
                rvars: rv,
                args,
            } => {
                for a in args.iter() {
                    let fv = ty_fv(*a);
                    tvars.extend(
                        fv.tvars
                            .iter()
                            .copied()
                            .filter(|t| !tv.iter().any(|(b, _)| b == t)),
                    );
                    rvars.extend(fv.rvars.iter().copied().filter(|r| !rv.contains(r)));
                    avars.extend_from_slice(&fv.avars);
                }
            }
            Ty::ExistTag { tvar, body, .. } => {
                let fv = ty_fv(*body);
                tvars.extend(fv.tvars.iter().copied().filter(|t| t != tvar));
                rvars.extend_from_slice(&fv.rvars);
                avars.extend_from_slice(&fv.avars);
            }
            Ty::ExistAlpha {
                avar,
                regions,
                body,
            } => {
                for r in regions.iter() {
                    add_rgn(&mut rvars, r);
                }
                let fv = ty_fv(*body);
                tvars.extend_from_slice(&fv.tvars);
                rvars.extend_from_slice(&fv.rvars);
                avars.extend(fv.avars.iter().copied().filter(|a| a != avar));
            }
            Ty::ExistRgn { rvar, bound, body } => {
                for r in bound.iter() {
                    add_rgn(&mut rvars, r);
                }
                let fv = ty_fv(*body);
                tvars.extend_from_slice(&fv.tvars);
                rvars.extend(fv.rvars.iter().copied().filter(|r| r != rvar));
                avars.extend_from_slice(&fv.avars);
            }
            Ty::Trans {
                tags,
                regions,
                args,
                rho,
            } => {
                for t in tags.iter() {
                    tvars.extend_from_slice(tag_fv(*t));
                }
                add_rgn(&mut rvars, rho);
                for r in regions.iter() {
                    add_rgn(&mut rvars, r);
                }
                for a in args.iter() {
                    add_child(*a, &mut tvars, &mut rvars, &mut avars);
                }
            }
        }
    }
    let leaked: &'static TyFv = Box::leak(Box::new(TyFv {
        tvars: sorted(tvars).into_boxed_slice(),
        rvars: sorted(rvars).into_boxed_slice(),
        avars: sorted(avars).into_boxed_slice(),
    }));
    memo_put(&TY_FV, id, leaked);
    leaked
}

// ----- α-canonicalization -------------------------------------------------

static DB_TAG: RwLock<Vec<Symbol>> = RwLock::new(Vec::new());
static DB_RGN: RwLock<Vec<Symbol>> = RwLock::new(Vec::new());
static DB_ALPHA: RwLock<Vec<Symbol>> = RwLock::new(Vec::new());

fn db_symbol(cache: &RwLock<Vec<Symbol>>, prefix: &str, i: usize) -> Symbol {
    {
        let v = read_lock(cache);
        if i < v.len() {
            return v[i];
        }
    }
    let mut v = write_lock(cache);
    while v.len() <= i {
        let s = Symbol::intern(&format!("{prefix}{}", v.len()));
        v.push(s);
    }
    v[i]
}

fn binder_sym(cell: &OnceLock<Symbol>, name: &str) -> Symbol {
    *cell.get_or_init(|| Symbol::intern(name))
}

static TAG_BINDER: OnceLock<Symbol> = OnceLock::new();
static RGN_BINDER: OnceLock<Symbol> = OnceLock::new();
static ALPHA_BINDER: OnceLock<Symbol> = OnceLock::new();

/// Is any free variable of (sorted) `fv` bound in `env`?
fn hits_env(fv: &[Symbol], env: &[Symbol]) -> bool {
    env.iter().any(|b| fv.binary_search(b).is_ok())
}

/// De Bruijn index of `x` in `env` (distance to the innermost binder), if
/// bound.
fn db_index(x: Symbol, env: &[Symbol]) -> Option<usize> {
    env.iter().rev().position(|&b| b == x)
}

/// The α-canonical form of a tag: binders renamed to `!`, bound variables
/// to their de Bruijn index `!i`. Two tags are α-equivalent iff their
/// canonical ids are equal.
pub fn canon_tag(id: TagId) -> TagId {
    if let Some(c) = memo_get(&TAG_CANON, &id) {
        return c;
    }
    let c = canon_tag_rec(id, &mut Vec::new());
    memo_put(&TAG_CANON, id, c);
    c
}

fn canon_tag_rec(id: TagId, env: &mut Vec<Symbol>) -> TagId {
    // A subterm whose free variables miss every enclosing binder
    // canonicalizes exactly as it would at top level — reuse the memo.
    if !env.is_empty() && !hits_env(tag_fv(id), env) {
        return canon_tag(id);
    }
    match id.node() {
        Tag::Int => id,
        Tag::Var(t) => match db_index(*t, env) {
            Some(i) => intern_tag(Tag::Var(db_symbol(&DB_TAG, "!", i))),
            None => id,
        },
        Tag::AnyArrow(t) => match db_index(*t, env) {
            Some(i) => intern_tag(Tag::AnyArrow(db_symbol(&DB_TAG, "!", i))),
            None => id,
        },
        Tag::Prod(a, b) => intern_tag(Tag::Prod(canon_tag_rec(*a, env), canon_tag_rec(*b, env))),
        Tag::App(f, a) => intern_tag(Tag::App(canon_tag_rec(*f, env), canon_tag_rec(*a, env))),
        Tag::Arrow(args) => intern_tag(Tag::Arrow(
            args.iter().map(|a| canon_tag_rec(*a, env)).collect(),
        )),
        Tag::Exist(t, body) => {
            env.push(*t);
            let b = canon_tag_rec(*body, env);
            env.pop();
            intern_tag(Tag::Exist(binder_sym(&TAG_BINDER, "!"), b))
        }
        Tag::Lam(t, body) => {
            env.push(*t);
            let b = canon_tag_rec(*body, env);
            env.pop();
            intern_tag(Tag::Lam(binder_sym(&TAG_BINDER, "!"), b))
        }
    }
}

#[derive(Default)]
struct CanonEnv {
    tags: Vec<Symbol>,
    rgns: Vec<Symbol>,
    alphas: Vec<Symbol>,
}

impl CanonEnv {
    fn is_empty(&self) -> bool {
        self.tags.is_empty() && self.rgns.is_empty() && self.alphas.is_empty()
    }
}

fn canon_region(rho: &Region, env: &CanonEnv) -> Region {
    match rho {
        Region::Var(r) => match db_index(*r, &env.rgns) {
            Some(i) => Region::Var(db_symbol(&DB_RGN, "!r", i)),
            None => *rho,
        },
        Region::Name(_) => *rho,
    }
}

/// Canonical form of a region *set* (`∆`): rename, then sort and
/// deduplicate — the paper's `∆`s are sets, so order is not significant.
fn canon_region_set(rs: &[Region], env: &CanonEnv) -> Vec<Region> {
    let mut out: Vec<Region> = rs.iter().map(|r| canon_region(r, env)).collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// The α-canonical form of a type, with per-namespace de Bruijn naming
/// (`!i` for tags, `!ri` for regions, `!ai` for αs). Two types are
/// α-equivalent iff their canonical ids are equal.
pub fn canon_ty(id: TyId) -> TyId {
    if let Some(c) = memo_get(&TY_CANON, &id) {
        return c;
    }
    let c = canon_ty_rec(id, &mut CanonEnv::default());
    memo_put(&TY_CANON, id, c);
    c
}

fn canon_ty_rec(id: TyId, env: &mut CanonEnv) -> TyId {
    if !env.is_empty() {
        let fv = ty_fv(id);
        if !hits_env(&fv.tvars, &env.tags)
            && !hits_env(&fv.rvars, &env.rgns)
            && !hits_env(&fv.avars, &env.alphas)
        {
            return canon_ty(id);
        }
    }
    match id.node() {
        Ty::Int => id,
        Ty::Alpha(a) => match db_index(*a, &env.alphas) {
            Some(i) => intern_ty(Ty::Alpha(db_symbol(&DB_ALPHA, "!a", i))),
            None => id,
        },
        Ty::Prod(a, b) => intern_ty(Ty::Prod(canon_ty_rec(*a, env), canon_ty_rec(*b, env))),
        Ty::Sum(a, b) => intern_ty(Ty::Sum(canon_ty_rec(*a, env), canon_ty_rec(*b, env))),
        Ty::Left(a) => intern_ty(Ty::Left(canon_ty_rec(*a, env))),
        Ty::Right(a) => intern_ty(Ty::Right(canon_ty_rec(*a, env))),
        Ty::At(inner, rho) => {
            let rho = canon_region(rho, env);
            intern_ty(Ty::At(canon_ty_rec(*inner, env), rho))
        }
        Ty::M(rho, tag) => intern_ty(Ty::M(
            canon_region(rho, env),
            canon_tag_rec(*tag, &mut env.tags),
        )),
        Ty::C(from, to, tag) => intern_ty(Ty::C(
            canon_region(from, env),
            canon_region(to, env),
            canon_tag_rec(*tag, &mut env.tags),
        )),
        Ty::MGen(young, old, tag) => intern_ty(Ty::MGen(
            canon_region(young, env),
            canon_region(old, env),
            canon_tag_rec(*tag, &mut env.tags),
        )),
        Ty::Code { tvars, rvars, args } => {
            let nt = tvars.len();
            let nr = rvars.len();
            env.tags.extend(tvars.iter().map(|(t, _)| *t));
            env.rgns.extend(rvars.iter().copied());
            let args = args.iter().map(|a| canon_ty_rec(*a, env)).collect();
            env.tags.truncate(env.tags.len() - nt);
            env.rgns.truncate(env.rgns.len() - nr);
            intern_ty(Ty::Code {
                tvars: tvars
                    .iter()
                    .map(|(_, k)| (binder_sym(&TAG_BINDER, "!"), *k))
                    .collect(),
                rvars: rvars
                    .iter()
                    .map(|_| binder_sym(&RGN_BINDER, "!r"))
                    .collect(),
                args,
            })
        }
        Ty::ExistTag { tvar, kind, body } => {
            env.tags.push(*tvar);
            let body = canon_ty_rec(*body, env);
            env.tags.pop();
            intern_ty(Ty::ExistTag {
                tvar: binder_sym(&TAG_BINDER, "!"),
                kind: *kind,
                body,
            })
        }
        Ty::ExistAlpha {
            avar,
            regions,
            body,
        } => {
            let regions = canon_region_set(regions, env).into();
            env.alphas.push(*avar);
            let body = canon_ty_rec(*body, env);
            env.alphas.pop();
            intern_ty(Ty::ExistAlpha {
                avar: binder_sym(&ALPHA_BINDER, "!a"),
                regions,
                body,
            })
        }
        Ty::ExistRgn { rvar, bound, body } => {
            let bound = canon_region_set(bound, env).into();
            env.rgns.push(*rvar);
            let body = canon_ty_rec(*body, env);
            env.rgns.pop();
            intern_ty(Ty::ExistRgn {
                rvar: binder_sym(&RGN_BINDER, "!r"),
                bound,
                body,
            })
        }
        Ty::Trans {
            tags,
            regions,
            args,
            rho,
        } => intern_ty(Ty::Trans {
            tags: tags
                .iter()
                .map(|t| canon_tag_rec(*t, &mut env.tags))
                .collect(),
            regions: regions.iter().map(|r| canon_region(r, env)).collect(),
            args: args.iter().map(|a| canon_ty_rec(*a, env)).collect(),
            rho: canon_region(rho, env),
        }),
    }
}

/// α-equivalence of tags as an id compare (after canonicalization).
pub fn tag_alpha_eq(a: TagId, b: TagId) -> bool {
    a == b || canon_tag(a) == canon_tag(b)
}

/// α-equivalence of types as an id compare (after canonicalization).
pub fn ty_alpha_eq(a: TyId, b: TyId) -> bool {
    a == b || canon_ty(a) == canon_ty(b)
}

// ----- telemetry ----------------------------------------------------------

/// Occupancy of the interning subsystem: arena sizes, hit counts, and memo
/// table sizes. Printed by `psgc --stats-intern`.
#[derive(Clone, Copy, Debug, Default)]
pub struct InternStats {
    /// Distinct tag nodes interned.
    pub tag_nodes: usize,
    /// Intern calls that found an existing tag node.
    pub tag_hits: u64,
    /// Distinct type nodes interned.
    pub ty_nodes: usize,
    /// Intern calls that found an existing type node.
    pub ty_hits: u64,
    /// Entries in the tag-normalization memo.
    pub tag_norm: usize,
    /// Entries in the (type, dialect) normalization memo.
    pub ty_norm: usize,
    /// Entries in the tag α-canonicalization memo.
    pub tag_canon: usize,
    /// Entries in the type α-canonicalization memo.
    pub ty_canon: usize,
    /// Tag free-variable fingerprints computed.
    pub tag_fv: usize,
    /// Type free-variable fingerprints computed.
    pub ty_fv: usize,
}

/// A snapshot of the global interner and memo-table occupancy.
pub fn stats() -> InternStats {
    let (tag_nodes, tag_hits) = read_lock(&TAGS)
        .as_ref()
        .map_or((0, 0), |a| (a.len(), a.hits()));
    let (ty_nodes, ty_hits) = read_lock(&TYS)
        .as_ref()
        .map_or((0, 0), |a| (a.len(), a.hits()));
    InternStats {
        tag_nodes,
        tag_hits,
        ty_nodes,
        ty_hits,
        tag_norm: memo_len(&TAG_NORM),
        ty_norm: memo_len(&TY_NORM),
        tag_canon: memo_len(&TAG_CANON),
        ty_canon: memo_len(&TY_CANON),
        tag_fv: memo_len(&TAG_FV),
        ty_fv: memo_len(&TY_FV),
    }
}

impl fmt::Display for InternStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "tag nodes      {:>10}  (hits {})",
            self.tag_nodes, self.tag_hits
        )?;
        writeln!(
            f,
            "ty nodes       {:>10}  (hits {})",
            self.ty_nodes, self.ty_hits
        )?;
        writeln!(f, "tag norm memo  {:>10}", self.tag_norm)?;
        writeln!(f, "ty norm memo   {:>10}", self.ty_norm)?;
        writeln!(f, "tag canon memo {:>10}", self.tag_canon)?;
        writeln!(f, "ty canon memo  {:>10}", self.ty_canon)?;
        writeln!(f, "tag fv memo    {:>10}", self.tag_fv)?;
        write!(f, "ty fv memo     {:>10}", self.ty_fv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syntax::Kind;

    fn s(x: &str) -> Symbol {
        Symbol::intern(x)
    }

    #[test]
    fn structural_equality_is_id_equality() {
        let a = Tag::prod(Tag::Int, Tag::arrow([Tag::Int]));
        let b = Tag::prod(Tag::Int, Tag::arrow([Tag::Int]));
        assert_eq!(a.id(), b.id());
        let c = Tag::prod(Tag::Int, Tag::Int);
        assert_ne!(a.id(), c.id());
    }

    #[test]
    fn canon_renames_binders() {
        let a = Tag::lam(s("u"), Tag::Var(s("u"))).id();
        let b = Tag::lam(s("v"), Tag::Var(s("v"))).id();
        assert_eq!(canon_tag(a), canon_tag(b));
        assert!(tag_alpha_eq(a, b));
    }

    #[test]
    fn canon_keeps_free_vars() {
        let a = Tag::lam(s("u"), Tag::Var(s("w"))).id();
        let b = Tag::lam(s("v"), Tag::Var(s("z"))).id();
        assert!(!tag_alpha_eq(a, b));
    }

    #[test]
    fn canon_distinguishes_depths() {
        // ∃u.∃v.(u × v) vs ∃u.∃v.(v × u): different index patterns.
        let a = Tag::exist(
            s("u"),
            Tag::exist(s("v"), Tag::prod(Tag::Var(s("u")), Tag::Var(s("v")))),
        );
        let b = Tag::exist(
            s("u"),
            Tag::exist(s("v"), Tag::prod(Tag::Var(s("v")), Tag::Var(s("u")))),
        );
        assert!(!tag_alpha_eq(a.id(), b.id()));
    }

    #[test]
    fn ty_canon_region_sets_are_sets() {
        let r1 = Region::Var(s("ra"));
        let r2 = Region::Var(s("rb"));
        let a = Ty::exist_rgn(s("r"), [r1, r2], Ty::Int).id();
        let b = Ty::exist_rgn(s("rr"), [r2, r1, r2], Ty::Int).id();
        assert!(ty_alpha_eq(a, b));
    }

    #[test]
    fn ty_canon_code_binders_positional() {
        let a = Ty::code(
            [(s("t"), Kind::Omega)],
            [s("r")],
            [Ty::m(Region::Var(s("r")), Tag::Var(s("t")))],
        )
        .id();
        let b = Ty::code(
            [(s("u"), Kind::Omega)],
            [s("q")],
            [Ty::m(Region::Var(s("q")), Tag::Var(s("u")))],
        )
        .id();
        assert!(ty_alpha_eq(a, b));
        let c = Ty::code(
            [(s("u"), Kind::Arrow)],
            [s("q")],
            [Ty::m(Region::Var(s("q")), Tag::Var(s("u")))],
        )
        .id();
        assert!(!ty_alpha_eq(a, c));
    }

    #[test]
    fn fv_fingerprints() {
        let t = Tag::exist(s("u"), Tag::prod(Tag::Var(s("u")), Tag::Var(s("w"))));
        let fv = tag_fv(t.id());
        assert!(fv.contains(&s("w")));
        assert!(!fv.contains(&s("u")));
        let sigma = Ty::exist_rgn(
            s("r"),
            [Region::Var(s("rb"))],
            Ty::m(Region::Var(s("r")), Tag::Var(s("t"))),
        );
        let fv = ty_fv(sigma.id());
        assert_eq!(&*fv.rvars, &[s("rb")]);
        assert_eq!(&*fv.tvars, &[s("t")]);
        assert!(fv.avars.is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let _ = Tag::prod(Tag::Int, Tag::Int).id();
        let st = stats();
        assert!(st.tag_nodes > 0);
    }
}
